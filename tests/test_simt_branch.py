"""Tests for the SIMT branch API and atomic edge cases."""
import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu.isa import InstrClass


class TestBranch:
    def _launch(self, m, kernel, n=32):
        return m.launch(kernel, n)

    def test_both_sides_execute_with_disjoint_lanes(self, machine_factory):
        m = machine_factory("cuda")
        seen = {}

        def kernel(ctx):
            cond = ctx.tid % 2 == 0

            def then_fn(sub, mask):
                seen["then"] = sub.tid.copy()

            def else_fn(sub, mask):
                seen["else"] = sub.tid.copy()

            ctx.branch(cond, then_fn, else_fn)

        self._launch(m, kernel)
        assert set(seen["then"]) == set(range(0, 32, 2))
        assert set(seen["else"]) == set(range(1, 32, 2))

    def test_converged_branch_executes_one_side(self, machine_factory):
        m = machine_factory("cuda")
        calls = []

        def kernel(ctx):
            ctx.branch(
                np.ones(ctx.lane_count, dtype=bool),
                lambda sub, mask: calls.append("then"),
                lambda sub, mask: calls.append("else"),
            )

        self._launch(m, kernel)
        assert calls == ["then"]

    def test_charges_control_instructions(self, machine_factory):
        m = machine_factory("cuda")

        def kernel(ctx):
            ctx.branch(ctx.tid % 2 == 0)

        stats = self._launch(m, kernel)
        assert stats.warp_instrs[InstrClass.CTRL] == 2  # SSY + BRA
        assert stats.warp_instrs[InstrClass.COMPUTE] == 1  # SETP

    def test_returns_both_results(self, machine_factory):
        m = machine_factory("cuda")
        out = {}

        def kernel(ctx):
            out["r"] = ctx.branch(
                ctx.tid < 8,
                lambda sub, mask: int(sub.lane_count),
                lambda sub, mask: int(sub.lane_count),
            )

        self._launch(m, kernel)
        assert out["r"] == (8, 24)

    def test_wrong_lane_count_rejected(self, machine_factory):
        m = machine_factory("cuda")

        def kernel(ctx):
            ctx.branch(np.ones(5, dtype=bool))

        with pytest.raises(LaunchError):
            self._launch(m, kernel)

    def test_nested_branches(self, machine_factory):
        m = machine_factory("cuda")
        leaves = []

        def kernel(ctx):
            def outer_then(sub, mask):
                sub.branch(
                    sub.tid < 4,
                    lambda s2, m2: leaves.append(("tt", len(s2.tid))),
                    lambda s2, m2: leaves.append(("tf", len(s2.tid))),
                )

            ctx.branch(ctx.tid < 16, outer_then)

        self._launch(m, kernel)
        assert ("tt", 4) in leaves and ("tf", 12) in leaves


class TestAtomicEdgeCases:
    def test_atomic_max(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array_from(np.zeros(1, dtype=np.uint32), "u32")

        def kernel(ctx):
            addr = np.full(ctx.lane_count, arr.base, dtype=np.uint64)
            ctx.atomic(addr, "u32", ctx.tid.astype(np.uint32), op="max")

        m.launch(kernel, 32)
        assert arr[0] == 31

    def test_atomic_add_conflicting_lanes_exact(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array_from(np.zeros(1, dtype=np.uint32), "u32")

        def kernel(ctx):
            addr = np.full(ctx.lane_count, arr.base, dtype=np.uint64)
            ctx.atomic(addr, "u32", np.ones(ctx.lane_count, np.uint32))

        m.launch(kernel, 96)
        assert arr[0] == 96

    def test_atomic_min_floats(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array_from(np.full(1, 1e9, dtype=np.float32), "f32")

        def kernel(ctx):
            addr = np.full(ctx.lane_count, arr.base, dtype=np.uint64)
            vals = (ctx.tid + 5).astype(np.float32)
            ctx.atomic(addr, "f32", vals, op="min")

        m.launch(kernel, 32)
        assert arr[0] == pytest.approx(5.0)

    def test_unsupported_op(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array("u32", 1)

        def kernel(ctx):
            ctx.atomic(np.full(ctx.lane_count, arr.base, dtype=np.uint64),
                       "u32", 1, op="xor")

        with pytest.raises(ValueError):
            m.launch(kernel, 1)

    def test_atomics_counted_as_store_traffic(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array("u32", 32)

        def kernel(ctx):
            ctx.atomic(arr.addr(ctx.tid), "u32", 1)

        stats = m.launch(kernel, 32)
        assert stats.global_store_transactions == 4
        assert stats.global_load_transactions == 0
