"""Tests for the per-kernel constant-memory indirection (section 2)."""

from repro.gpu.constmem import ConstantMemory
from repro.gpu.isa import ROLE_CONST_INDIRECTION


class TestConstantMemoryModel:
    def test_first_access_misses_then_hits(self):
        cm = ConstantMemory(num_sms=2)
        assert cm.access(0, 5) is False
        assert cm.access(0, 5) is True
        assert cm.stats.accesses == 2
        assert cm.stats.hits == 1

    def test_caches_are_per_sm(self):
        cm = ConstantMemory(num_sms=2)
        cm.access(0, 5)
        assert cm.access(1, 5) is False  # different SM: cold

    def test_new_kernel_cold_caches(self):
        cm = ConstantMemory(num_sms=1)
        cm.access(0, 5)
        cm.begin_kernel()
        assert cm.access(0, 5) is False

    def test_reset_stats(self):
        cm = ConstantMemory(num_sms=1)
        cm.access(0, 1)
        cm.reset_stats()
        assert cm.stats.accesses == 0
        assert cm.stats.hit_rate == 0.0


class TestIndirectionCharging:
    def _run(self, machine_factory, animals, technique):
        m = machine_factory(technique)
        m.register(animals.Dog)
        dogs = m.new_objects(animals.Dog, 512)
        arr = m.array_from(dogs, "u64")

        def kernel(ctx):
            ctx.vcall(arr.ld(ctx, ctx.tid), animals.Animal, "speak")

        return m.launch(kernel, 512)

    def test_vtable_dispatch_pays_const_load(self, machine_factory, animals):
        stats = self._run(machine_factory, animals, "cuda")
        assert stats.const_accesses > 0
        assert stats.role_instrs.get(ROLE_CONST_INDIRECTION, 0) == 16  # warps

    def test_concord_needs_no_indirection(self, machine_factory, animals):
        # direct calls: the target is in the kernel's own code
        stats = self._run(machine_factory, animals, "concord")
        assert stats.const_accesses == 0
        assert ROLE_CONST_INDIRECTION not in stats.role_instrs

    def test_typepointer_still_pays_it(self, machine_factory, animals):
        stats = self._run(machine_factory, animals, "typepointer")
        assert stats.const_accesses > 0

    def test_constant_cache_hits_after_warmup(self, machine_factory, animals):
        # one type, many warps per SM: everything past the first access
        # per SM hits -- the paper's "fits in the dedicated cache"
        stats = self._run(machine_factory, animals, "cuda")
        assert stats.const_hit_rate > 0.5

    def test_not_a_bottleneck(self, machine_factory, animals):
        # the modeled cost of the indirection is a tiny share of memory
        # time, confirming why Figure 1 omits it
        stats = self._run(machine_factory, animals, "cuda")
        const_misses = stats.const_accesses - stats.const_hits
        from repro.gpu.config import small_config

        cfg = small_config()
        const_time = const_misses / cfg.l2_sectors_per_cycle
        assert const_time < 0.1 * stats.memory_cycles
