"""Tests for the TLB hierarchy model."""
import dataclasses

import numpy as np
import pytest

from repro import Machine
from repro.gpu.config import small_config
from repro.gpu.tlb import TLBHierarchy, _LRUSet
from repro.memory.address_space import PAGE_SIZE


class TestLRUSet:
    def test_hit_after_insert(self):
        s = _LRUSet(4)
        assert s.access(1) is False
        assert s.access(1) is True

    def test_lru_eviction(self):
        s = _LRUSet(2)
        s.access(1)
        s.access(2)
        s.access(1)       # refresh 1
        s.access(3)       # evicts 2
        assert s.access(1) is True
        assert s.access(2) is False

    def test_flush(self):
        s = _LRUSet(2)
        s.access(1)
        s.flush()
        assert s.access(1) is False


class TestTLBHierarchy:
    def test_l1_then_l2_then_walk(self):
        tlb = TLBHierarchy(num_sms=2, l1_entries=1, l2_entries=4)
        a = np.array([0], dtype=np.uint64)
        b = np.array([PAGE_SIZE], dtype=np.uint64)
        assert tlb.translate_pages(0, a) == 1     # cold: walk
        assert tlb.translate_pages(0, b) == 1     # evicts page 0 from L1
        assert tlb.translate_pages(0, a) == 0     # L1 miss, L2 hit
        assert tlb.stats.l2_hits == 1
        assert tlb.stats.walks == 2

    def test_per_sm_l1(self):
        tlb = TLBHierarchy(num_sms=2)
        a = np.array([0], dtype=np.uint64)
        tlb.translate_pages(0, a)
        walks = tlb.translate_pages(1, a)   # L1 cold on SM1, L2 hot
        assert walks == 0
        assert tlb.stats.l2_hits == 1

    def test_warp_counts_unique_pages_once(self):
        tlb = TLBHierarchy(num_sms=1)
        addrs = np.array([0, 8, 16, PAGE_SIZE + 4], dtype=np.uint64)
        tlb.translate_pages(0, addrs)
        assert tlb.stats.l1_accesses == 2  # two distinct pages

    def test_out_of_range_sm_raises(self):
        """Wrapping an out-of-range SM id would silently alias two SMs'
        L1 TLB state and corrupt the ablation's hit rates."""
        tlb = TLBHierarchy(num_sms=2)
        a = np.array([0], dtype=np.uint64)
        with pytest.raises(IndexError):
            tlb.translate_pages(2, a)
        with pytest.raises(IndexError):
            tlb.translate_pages(-1, a)
        # and nothing was charged by the failed probes
        assert tlb.stats.l1_accesses == 0

    def test_signed_addrs_compute_exact_pages(self):
        """A signed trace dtype must not promote the page divide to
        float64 (loses exactness above 2**53)."""
        base = np.uint64((1 << 62) + 5 * PAGE_SIZE)
        signed = np.array([base, base + np.uint64(8)]).astype(np.int64)
        t1 = TLBHierarchy(num_sms=1)
        t1.translate_pages(0, signed)
        assert t1.stats.l1_accesses == 1  # one distinct page, exactly
        t2 = TLBHierarchy(num_sms=1)
        t2.translate_pages(0, signed.astype(np.uint64))
        # signed and unsigned traces see identical TLB state
        assert t1.l1s[0]._map.keys() == t2.l1s[0]._map.keys()


class TestMachineIntegration:
    def test_tlb_off_by_default(self, machine_factory):
        m = machine_factory("cuda")
        assert m.tlb is None

    def _tlb_machine(self, technique):
        cfg = dataclasses.replace(small_config(), model_tlb=True,
                                  tlb_l1_entries=4, tlb_l2_entries=8)
        return Machine(technique, config=cfg)

    def test_walks_counted_and_charged(self, animals):
        m = self._tlb_machine("cuda")
        dogs = m.new_objects(animals.Dog, 512)
        arr = m.array_from(dogs, "u64")

        def kernel(ctx):
            ctx.vcall(arr.ld(ctx, ctx.tid), animals.Animal, "speak")

        stats = m.launch(kernel, 512)
        assert stats.tlb_walks > 0
        # walks add to memory time
        base = self._tlb_machine("cuda")
        # identical machine without TLB modelling
        m2 = Machine("cuda", config=small_config())
        dogs2 = m2.new_objects(animals.Cat, 512)  # same size population
        arr2 = m2.array_from(dogs2, "u64")

        def kernel2(ctx):
            ctx.vcall(arr2.ld(ctx, ctx.tid), animals.Animal, "speak")

        stats2 = m2.launch(kernel2, 512)
        assert stats2.tlb_walks == 0

    def test_scattered_layout_walks_more(self, animals):
        """The CUDA allocator's scattered arenas touch more pages per
        warp than SharedOA's packed regions -- the TLB channel."""
        walks = {}
        for tech in ("cuda", "sharedoa"):
            m = self._tlb_machine(tech)
            objs = m.new_objects(animals.Dog, 2048)
            arr = m.array_from(objs, "u64")

            def kernel(ctx):
                ctx.vcall(arr.ld(ctx, ctx.tid), animals.Animal, "speak")

            stats = m.launch(kernel, 2048)
            walks[tech] = m.tlb.stats.l1_accesses
        assert walks["cuda"] > walks["sharedoa"]
