"""Tests for the MMU model: tag handling per operating mode."""
import numpy as np
import pytest

from repro.errors import MMUFault
from repro.memory.address_space import PAGE_SIZE, encode_tag
from repro.memory.mmu import MMU, MMUMode


@pytest.fixture
def mmu(heap):
    heap.sbrk(1 << 16)
    return MMU(heap)


def _arr(*vals):
    return np.array(vals, dtype=np.uint64)


def test_baseline_passes_canonical(mmu):
    out = mmu.translate(_arr(0x1000, 0x2000))
    np.testing.assert_array_equal(out, _arr(0x1000, 0x2000))


def test_baseline_faults_on_tag(mmu):
    with pytest.raises(MMUFault):
        mmu.translate(_arr(encode_tag(0x1000, 5)))
    assert mmu.stats.faults == 1


def test_prototype_faults_on_tag(mmu):
    mmu.set_mode(MMUMode.PROTOTYPE)
    with pytest.raises(MMUFault):
        mmu.translate(_arr(encode_tag(0x1000, 5)))


def test_typepointer_strips_tag(mmu):
    mmu.set_mode(MMUMode.TYPEPOINTER)
    out = mmu.translate(_arr(encode_tag(0x1000, 5), 0x2000))
    np.testing.assert_array_equal(out, _arr(0x1000, 0x2000))
    assert mmu.stats.tag_strips == 1
    assert mmu.stats.faults == 0


def test_mixed_tagged_untagged_typepointer(mmu):
    mmu.set_mode(MMUMode.TYPEPOINTER)
    ptrs = _arr(encode_tag(0x1000, 1), 0x1008, encode_tag(0x1010, 2))
    out = mmu.translate(ptrs)
    np.testing.assert_array_equal(out, _arr(0x1000, 0x1008, 0x1010))


def test_translation_counter(mmu):
    mmu.translate(_arr(0x100))
    mmu.translate(_arr(0x200))
    assert mmu.stats.translations == 2


def test_page_mapping_counts_distinct_pages(mmu):
    mmu.translate(_arr(0x100, 0x200))                   # one page
    assert mmu.mapped_page_count == 1
    mmu.translate(_arr(PAGE_SIZE + 0x10))               # second page
    assert mmu.mapped_page_count == 2
    mmu.translate(_arr(0x300))                          # already mapped
    assert mmu.mapped_page_count == 2
    assert mmu.stats.pages_mapped == 2


def test_translate_scalar(mmu):
    assert mmu.translate_scalar(0x1234) == 0x1234
    mmu.set_mode(MMUMode.TYPEPOINTER)
    assert mmu.translate_scalar(encode_tag(0x1234, 9)) == 0x1234


def test_fault_message_mentions_mode(mmu):
    with pytest.raises(MMUFault, match="baseline"):
        mmu.translate(_arr(encode_tag(0x10, 1)))


def test_stats_reset(mmu):
    mmu.translate(_arr(0x100))
    mmu.stats.reset()
    assert mmu.stats.translations == 0
    # page map survives reset (it's hardware state, not a counter)
    assert mmu.mapped_page_count == 1
