"""Tests for the ISA vocabulary and stats bookkeeping details."""
import pytest

from repro.gpu.isa import InstrClass, Opcode, TraceRecord
from repro.gpu.stats import KernelStats


class TestOpcodes:
    def test_every_opcode_has_a_class(self):
        for op in Opcode:
            assert isinstance(op.klass, InstrClass)
            assert op.mnemonic

    def test_memory_ops(self):
        assert Opcode.LDG.klass is InstrClass.MEM
        assert Opcode.STG.klass is InstrClass.MEM

    def test_dispatch_ops_are_compute(self):
        # the Figure 5b sequence is pure compute before the LDG
        assert Opcode.SHR.klass is InstrClass.COMPUTE
        assert Opcode.AND.klass is InstrClass.COMPUTE
        assert Opcode.FFMA.klass is InstrClass.COMPUTE

    def test_control_ops(self):
        assert Opcode.CALL.klass is InstrClass.CTRL
        assert Opcode.BRA.klass is InstrClass.CTRL
        assert Opcode.RET.klass is InstrClass.CTRL


class TestTraceRecord:
    def test_klass_derived_from_opcode(self):
        r = TraceRecord(opcode=Opcode.LDG, warp_id=0, active_lanes=32)
        assert r.klass is InstrClass.MEM

    def test_frozen(self):
        r = TraceRecord(opcode=Opcode.BRA, warp_id=1, active_lanes=16)
        with pytest.raises(AttributeError):
            r.warp_id = 2


class TestKernelStats:
    def test_fresh_stats_zeroed(self):
        s = KernelStats()
        assert s.total_warp_instrs == 0
        assert s.l1_hit_rate == 0.0
        assert s.l2_hit_rate == 0.0
        assert s.vfunc_pki == 0.0
        assert s.const_hit_rate == 0.0

    def test_add_instr_by_class(self):
        s = KernelStats()
        s.add_instr(InstrClass.MEM, 32)
        s.add_instr(InstrClass.COMPUTE, 16, role="x")
        assert s.warp_instrs[InstrClass.MEM] == 1
        assert s.thread_instrs == 48
        assert s.role_instrs == {"x": 1}

    def test_role_transactions_ignore_none(self):
        s = KernelStats()
        s.add_role_transactions(None, 5)
        s.add_role_transactions("a", 0)
        assert s.role_transactions == {}

    def test_role_levels_accumulate(self):
        s = KernelStats()
        s.add_role_levels("a", 1, 2, 3)
        s.add_role_levels("a", 1, 0, 0)
        assert s.role_levels["a"] == [2, 2, 3]

    def test_summary_readable(self):
        s = KernelStats()
        s.add_instr(InstrClass.MEM, 32)
        text = s.summary()
        assert "MEM=1" in text and "cycles" in text

    def test_vfunc_pki(self):
        s = KernelStats()
        s.vfunc_calls = 5
        s.thread_instrs = 1000
        assert s.vfunc_pki == pytest.approx(5.0)

    def test_merge_role_maps(self):
        a, b = KernelStats(), KernelStats()
        a.role_transactions["x"] = 1
        b.role_transactions["x"] = 2
        b.role_transactions["y"] = 3
        b.role_levels["z"] = [1, 1, 1]
        a.merge(b)
        assert a.role_transactions == {"x": 3, "y": 3}
        assert a.role_levels["z"] == [1, 1, 1]
