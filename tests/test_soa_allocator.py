"""Tests for the DynaSOAr-style structure-of-arrays allocator.

Covers the block/bitmap mechanics directly (allocate, free, lowest-
slot reuse, fragmentation accounting), the field-major address
transposition, and the end-to-end differential: ``soa`` must produce
checksums bit-identical to ``sharedoa`` (same 16-byte header, same
dispatch lowering) while actually laying objects out differently.
"""
import numpy as np
import pytest

from repro import Machine, TypeDescriptor
from repro.errors import AllocatorError, DoubleFree, InvalidAddress
from repro.gpu.config import small_config
from repro.memory.heap import SCALAR_TYPES, Heap
from repro.memory.soa_allocator import BLOCK_CAPACITY, SoaAllocator
from repro.runtime.typesystem import compute_layout
from repro.workloads import make_workload


@pytest.fixture
def soa(heap):
    return SoaAllocator(heap, header_size=16)


def Vec(tag=""):
    return TypeDescriptor(f"Vec#{tag}", fields=[
        ("x", "f32"), ("y", "f32"), ("z", "f64"), ("flag", "u8")])


# ----------------------------------------------------------------------
# block / bitmap mechanics
# ----------------------------------------------------------------------
def test_pointers_stride_by_header_within_block(soa):
    ptrs = [soa.alloc_object("T", 40) for _ in range(8)]
    base = ptrs[0]
    assert ptrs == [base + i * 16 for i in range(8)]
    assert soa.block_count() == 1


def test_block_is_64_objects_then_grows(soa):
    ptrs = [soa.alloc_object("T", 24) for _ in range(BLOCK_CAPACITY + 1)]
    assert soa.block_count() == 2
    blocks = soa.blocks_of("T")
    assert blocks[0].live == BLOCK_CAPACITY and blocks[0].full()
    assert blocks[1].live == 1
    # the 65th object landed in the second block
    assert ptrs[-1] == blocks[1].base


def test_freed_slots_reused_lowest_first(soa):
    ptrs = [soa.alloc_object("T", 32) for _ in range(10)]
    soa.free_object(ptrs[7])
    soa.free_object(ptrs[2])
    soa.free_object(ptrs[5])
    # same block has free slots, so no growth; lowest slot comes back first
    assert soa.alloc_object("T", 32) == ptrs[2]
    assert soa.alloc_object("T", 32) == ptrs[5]
    assert soa.alloc_object("T", 32) == ptrs[7]
    assert soa.block_count() == 1


def test_full_block_returns_to_avail_after_free(soa):
    ptrs = [soa.alloc_object("T", 24) for _ in range(BLOCK_CAPACITY)]
    assert soa.blocks_of("T")[0].full()
    soa.free_object(ptrs[13])
    # the freed slot is preferred over growing a new block
    assert soa.alloc_object("T", 24) == ptrs[13]
    assert soa.block_count() == 1


def test_types_never_share_blocks(soa):
    a = [soa.alloc_object("A", 24) for _ in range(5)]
    b = [soa.alloc_object("B", 24) for _ in range(5)]
    assert soa.block_count() == 2
    assert {p for p in a} == {soa.blocks_of("A")[0].base + i * 16
                              for i in range(5)}
    assert not set(a) & set(b)


def test_alloc_free_reuse_property(soa):
    """Random alloc/free churn: live counts stay exact, freed slots are
    recycled so the block population never exceeds the high-water mark."""
    rng = np.random.default_rng(7)
    live = []
    for step in range(2000):
        if live and rng.random() < 0.45:
            soa.free_object(live.pop(int(rng.integers(len(live)))))
        else:
            live.append(soa.alloc_object("T", 48))
    # exact liveness
    assert soa.live_count() == len(live)
    assert sum(b.live for b in soa.blocks_of("T")) == len(live)
    # no leaks: every live pointer is a distinct slot of some block
    assert len(set(live)) == len(live)
    high_water = soa.block_count()
    # drain everything, then refill to the same population: the
    # allocator must reuse its existing blocks, not grow
    soa.free_objects_many(np.asarray(live, dtype=np.uint64))
    assert soa.live_count() == 0
    assert all(b.live == 0 for b in soa.blocks_of("T"))
    for _ in range(len(live)):
        soa.alloc_object("T", 48)
    assert soa.block_count() == high_water


def test_fragmentation_rises_with_holes_and_recovers(soa):
    ptrs = [soa.alloc_object("T", 64) for _ in range(BLOCK_CAPACITY)]
    assert soa.external_fragmentation() == 0.0
    soa.free_objects_many(np.asarray(ptrs[::2], dtype=np.uint64))
    frag = soa.external_fragmentation()
    assert frag == pytest.approx(0.5)
    # refilling the holes brings fragmentation back down without growth
    for _ in range(BLOCK_CAPACITY // 2):
        soa.alloc_object("T", 64)
    assert soa.external_fragmentation() == 0.0
    assert soa.block_count() == 1


def test_double_free_and_unknown_pointer_rejected(soa):
    p = soa.alloc_object("T", 32)
    soa.free_object(p)
    with pytest.raises(DoubleFree):
        soa.free_object(p)
    with pytest.raises(DoubleFree):
        soa.free_objects_many(np.asarray([p, p], dtype=np.uint64))


def test_object_smaller_than_header_rejected(soa):
    with pytest.raises(AllocatorError, match="smaller than its"):
        soa.alloc_object("T", 8)


def test_inconsistent_size_for_same_type_rejected(soa):
    soa.alloc_object("T", 32)
    with pytest.raises(AllocatorError, match="inconsistent sizes"):
        soa.alloc_object("T", 48)


# ----------------------------------------------------------------------
# field-major transposition
# ----------------------------------------------------------------------
def test_field_addr_transposes_columns(soa):
    layout = compute_layout(Vec("t1"), 16)
    ptrs = [soa.alloc_object(layout.type_desc, layout.size)
            for _ in range(4)]
    base = soa.blocks_of(layout.type_desc)[0].base
    for field in ("x", "y", "z", "flag"):
        off = layout.offset(field)
        fsize = SCALAR_TYPES[layout.dtype(field)][1]
        col = base + BLOCK_CAPACITY * off
        want = [col + i * fsize for i in range(4)]
        got = [soa.field_addr(p, layout, field) for p in ptrs]
        assert got == want
        # consecutive objects' cells are unit-stride (the coalescing win)
        assert got[1] - got[0] == fsize
        vec = soa.field_addrs(np.asarray(ptrs, dtype=np.uint64),
                              layout, field)
        assert vec.tolist() == want
        assert vec.dtype == np.uint64


def test_field_columns_are_disjoint(soa):
    """Writing every field of every object never aliases another cell."""
    layout = compute_layout(Vec("t2"), 16)
    ptrs = [soa.alloc_object(layout.type_desc, layout.size)
            for _ in range(BLOCK_CAPACITY)]
    seen = set()
    for field, dt, _ in layout.field_offsets:
        fsize = SCALAR_TYPES[dt][1]
        for p in ptrs:
            a = soa.field_addr(p, layout, field)
            cells = set(range(a, a + fsize))
            assert not cells & seen
            seen |= cells
        # header column is off-limits to fields
        hdr = set(range(soa.blocks_of(layout.type_desc)[0].base,
                        soa.blocks_of(layout.type_desc)[0].base
                        + BLOCK_CAPACITY * 16))
        assert not seen & hdr


def test_field_addr_rejects_non_slot_addresses(soa):
    layout = compute_layout(Vec("t3"), 16)
    p = soa.alloc_object(layout.type_desc, layout.size)
    with pytest.raises(InvalidAddress):
        soa.field_addr(p + 3, layout, "x")   # mid-slot
    with pytest.raises(InvalidAddress):
        soa.field_addr(1, layout, "x")       # precedes every block
    with pytest.raises(InvalidAddress):
        soa.field_addrs(np.asarray([p, p + 3], dtype=np.uint64),
                        layout, "x")


def test_zeroing_fresh_object_never_stomps_neighbours(heap):
    """The SoA override zeroes exactly the new object's cells: writing a
    neighbour's fields then allocating next door must not clear them."""
    soa = SoaAllocator(heap, header_size=16,
                       layout_for=lambda td: compute_layout(td, 16))
    layout = compute_layout(Vec("t4"), 16)
    p0 = soa.alloc_object(layout.type_desc, layout.size)
    for field, val in (("x", 1.5), ("y", -2.0), ("z", 9.25), ("flag", 7)):
        heap.store(soa.field_addr(p0, layout, field),
                   layout.dtype(field), val)
    p1 = soa.alloc_object(layout.type_desc, layout.size)
    # the fresh object reads zero...
    for field in ("x", "y", "z", "flag"):
        assert heap.load(soa.field_addr(p1, layout, field),
                         layout.dtype(field)) == 0
    # ...and the neighbour kept its values
    assert heap.load(soa.field_addr(p0, layout, "x"), "f32") == 1.5
    assert heap.load(soa.field_addr(p0, layout, "y"), "f32") == -2.0
    assert heap.load(soa.field_addr(p0, layout, "z"), "f64") == 9.25
    assert heap.load(soa.field_addr(p0, layout, "flag"), "u8") == 7


# ----------------------------------------------------------------------
# end-to-end differential: soa ≡ sharedoa
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["GOL", "GEN"])
def test_soa_matches_sharedoa_checksums(name):
    """Same dispatch strategy, different object layout: results must be
    bit-identical while the SoA machine demonstrably runs its own
    allocator (blocks exist, reserved space is block-granular)."""
    sums = {}
    for tech in ("sharedoa", "soa"):
        m = Machine(tech, config=small_config())
        wl = make_workload(name, m, scale=0.04, seed=11)
        wl.run(2)
        sums[tech] = wl.checksum()
        if tech == "soa":
            assert m.allocator.block_count() > 0
            assert m.allocator.stats.reserved_bytes % BLOCK_CAPACITY == 0
    assert sums["soa"] == sums["sharedoa"], sums


def test_soa_machine_object_roundtrip(machine_factory, animals):
    """new_objects + read/write_field + vcall all route through the
    transposed layout on a real machine."""
    m = machine_factory("soa")
    m.register(animals.Dog, animals.Cat)
    dogs = m.new_objects(animals.Dog, 70)   # spills into a second block
    cats = m.new_objects(animals.Cat, 5)
    assert m.allocator.block_count() == 3   # 2 dog blocks + 1 cat block
    lay = m.registry.layout(animals.Animal)
    m.write_field(dogs, lay, "age", np.arange(70, dtype=np.uint32))
    m.write_field(cats, lay, "age", np.full(5, 100, dtype=np.uint32))

    def kernel(ctx):
        ptrs = np.concatenate([dogs, cats])[ctx.tid]
        ctx.vcall(ptrs, animals.Animal, "speak")

    m.launch(kernel, 75)
    ages = m.read_field(dogs, lay, "age")
    assert ages.tolist() == [i + 1 for i in range(70)]   # Dog.speak: +1
    assert m.read_field(cats, lay, "age").tolist() == [102] * 5
