"""Tests for the ``python -m repro`` command-line interface."""
import json

import pytest

from repro import obs
from repro.__main__ import EXPERIMENTS, main
from repro.harness.registry import experiment_names


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_disasm(capsys):
    assert main(["disasm", "typepointer"]) == 0
    out = capsys.readouterr().out
    assert "SHR" in out and "CALL" in out


def test_disasm_concord(capsys):
    assert main(["disasm", "concord"]) == 0
    assert "CALL" not in capsys.readouterr().out


def test_kernel_unknown_technique_exits_2_with_hint(capsys):
    # a bad --techniques entry dies in argparse with a did-you-mean,
    # before any machine is built or the program file is read
    with pytest.raises(SystemExit) as excinfo:
        main(["kernel", "examples/user_kernel.py", "--techniques", "sooa"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown technique 'sooa'" in err
    assert "did you mean" in err and "soa" in err


def test_fuzz_unknown_technique_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["fuzz", "1", "--techniques", "cuda,bogus"])
    assert excinfo.value.code == 2
    assert "unknown technique 'bogus'" in capsys.readouterr().err


def test_disasm_soa(capsys):
    # soa reuses the embedded-vTable lowering (and is a valid target)
    assert main(["disasm", "soa"]) == 0
    out = capsys.readouterr().out
    assert "CALL" in out


def test_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figZZZ"])


def test_unknown_experiment_exits_2_with_hint(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["fig66"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown experiment 'fig66'" in err
    assert "did you mean" in err and "fig6" in err


@pytest.mark.parametrize("args", [
    ["all", "--workers", "0"],
    ["all", "--workers", "-2"],
    ["all", "--workers", "three"],
    ["all", "--timeout", "0"],
    ["all", "--timeout", "-1.5"],
])
def test_invalid_workers_and_timeout_rejected(capsys, args):
    # nonsense resource knobs die in argparse (exit 2), not deep in the
    # service with a confusing traceback
    with pytest.raises(SystemExit) as excinfo:
        main(args)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "must be a positive" in err or "expected a positive" in err


@pytest.mark.parametrize("args", [
    ["serve", "--workers", "0"],
    ["serve", "--queue-limit", "0"],
    ["serve", "--drain-grace", "-1"],
    ["submit", "fig6", "--scale", "0"],
])
def test_serve_cli_validates_knobs(capsys, args):
    with pytest.raises(SystemExit) as excinfo:
        main(args)
    assert excinfo.value.code == 2


def test_submit_unknown_experiment_exits_2_locally(capsys):
    # the client CLI rejects a bad id (with a hint) before connecting
    with pytest.raises(SystemExit) as excinfo:
        main(["submit", "fig66", "--socket", "/nonexistent.sock"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "did you mean" in err and "fig6" in err


def test_submit_without_daemon_fails_cleanly(capsys):
    assert main(["submit", "fig6",
                 "--socket", "/nonexistent/serve.sock"]) == 1
    assert "submit failed" in capsys.readouterr().err


def test_unknown_replay_engine_config_exits_2_with_hint(capsys):
    # a typo'd engine dies in argparse with a did-you-mean, before any
    # experiment dispatch
    with pytest.raises(SystemExit) as excinfo:
        main(["list", "--config", "replay_engine=fussed"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown replay engine 'fussed'" in err
    assert "did you mean" in err and "fused" in err


def test_unknown_replay_engine_env_exits_2_with_hint(capsys, monkeypatch):
    # the env override goes through the same validation as --config
    monkeypatch.setenv("REPRO_REPLAY_ENGINE", "vectr")
    with pytest.raises(SystemExit) as excinfo:
        main(["list"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown replay engine 'vectr'" in err
    assert "did you mean" in err and "vector" in err


def test_valid_replay_engine_config_accepted(capsys):
    assert main(["list", "--config", "replay_engine=fused"]) == 0


def test_status_without_daemon_fails_cleanly(capsys):
    assert main(["status", "--socket", "/nonexistent/serve.sock"]) == 1
    assert "status failed" in capsys.readouterr().err


def test_small_experiment_runs(capsys):
    assert main(["fig1", "--scale", "0.04"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1b" in out
    assert "load vTable*" in out


def test_init_experiment(capsys):
    assert main(["init"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_experiment_registry_complete():
    # every paper table/figure id has a CLI entry
    for required in ("fig1", "table1", "table2", "fig6", "fig7", "fig8",
                     "fig9", "fig10", "fig11", "fig12a", "fig12b", "init",
                     "kernel"):
        assert required in EXPERIMENTS


def test_experiments_dict_mirrors_registry():
    # the compat dict is a view over the registry, same names same order
    assert tuple(EXPERIMENTS) == experiment_names()


def test_compat_experiments_dict_runs():
    result = EXPERIMENTS["init"](0.05)
    assert result.speedup > 1


@pytest.mark.parametrize("name", ["fig12a", "fig12b", "table1"])
def test_quick_flag_shrinks_self_sized_experiments(capsys, name):
    # --quick applies SMOKE_PARAMS, so these finish in seconds
    assert main([name, "--quick", "--scale", "0.04"]) == 0
    assert capsys.readouterr().out.strip()


def test_workloads_flag_restricts_sweep(capsys):
    assert main(["table2", "--scale", "0.04", "--workloads", "TRAF"]) == 0
    out = capsys.readouterr().out
    assert "TRAF" in out
    assert "GOL" not in out


def test_profile_subcommand(capsys):
    assert main(["profile", "TRAF", "--technique", "coal",
                 "--scale", "0.04"]) == 0
    out = capsys.readouterr().out
    assert "profile: TRAF under coal" in out


def test_fuzz_subcommand(capsys):
    assert main(["fuzz", "3"]) == 0
    assert "fuzzed 3 programs" in capsys.readouterr().out


def test_all_serial_no_store(capsys, tmp_path):
    # the full suite through the service, in-process, storeless
    manifest = tmp_path / "manifest.json"
    assert main([
        "all", "--serial", "--no-store", "--quick",
        "--scale", "0.04", "--workloads", "TRAF",
        "--manifest", str(manifest),
    ]) == 0
    out = capsys.readouterr().out
    for name in experiment_names():
        assert name in EXPERIMENTS  # rendered below in registry order
    assert "Figure 6" in out and "speedup" in out
    m = json.loads(manifest.read_text())
    assert m["mode"] == "serial"
    assert m["store"]["enabled"] is False
    assert m["totals"]["shards"] == len(m["shards"]) > 0


def test_all_parallel_with_store(capsys, tmp_path):
    # two workers + a store in a temp dir; manifest says parallel
    manifest = tmp_path / "manifest.json"
    assert main([
        "all", "--workers", "2", "--quick",
        "--scale", "0.04", "--workloads", "TRAF",
        "--store-dir", str(tmp_path / "store"),
        "--manifest", str(manifest),
    ]) == 0
    m = json.loads(manifest.read_text())
    assert m["mode"] == "parallel"
    assert m["num_workers"] == 2
    assert m["store"]["enabled"] is True
    outcomes = set(m["totals"]["outcomes"])
    assert outcomes <= {"ok", "retried"}


def test_all_telemetry_covers_every_layer(capsys, tmp_path):
    # --telemetry dumps one merged registry; worker spans and counters
    # from machine, service and store all land in it
    telemetry = tmp_path / "telemetry.json"
    assert main([
        "all", "--workers", "2", "--quick",
        "--scale", "0.04", "--workloads", "TRAF",
        "--store-dir", str(tmp_path / "store"),
        "--manifest", str(tmp_path / "manifest.json"),
        "--telemetry", str(telemetry),
    ]) == 0
    assert f"[telemetry: {telemetry}]" in capsys.readouterr().out
    payload = json.loads(telemetry.read_text())
    obs.validate_payload(payload)
    counters = payload["counters"]
    assert counters["machine.launches"] > 0
    assert counters["service.shards_ok"] > 0
    assert counters.get("store.bucket_corrupt", 0) == 0
    def names(spans):
        for s in spans:
            yield s["name"]
            yield from names(s["children"])

    span_names = set(names(payload["spans"]))
    assert "service.run" in span_names
    assert any(n.startswith("service.shard.") for n in span_names)
    # worker-side machine spans ride inside their shard span
    assert "machine.launch" in span_names
    # and the same payload is embedded in the run manifest
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["telemetry"]["counters"] == counters


def test_all_serial_telemetry_dump(capsys, tmp_path):
    # serial + storeless still produces a valid registry (no service
    # worker counters, but the machine layer is there)
    telemetry = tmp_path / "telemetry.json"
    assert main([
        "all", "--serial", "--no-store", "--quick",
        "--scale", "0.04", "--workloads", "TRAF",
        "--manifest", str(tmp_path / "manifest.json"),
        "--telemetry", str(telemetry),
    ]) == 0
    payload = json.loads(telemetry.read_text())
    obs.validate_payload(payload)
    assert payload["counters"]["machine.launches"] > 0
    assert payload["counters"]["service.shards_ok"] > 0


def test_profile_experiment_renders_span_tree(capsys):
    # 'profile <experiment>' runs it under a fresh registry and prints
    # the nvtop-style span tree alongside the experiment's own render
    from repro.harness import runner

    runner.clear_cache()  # a warm cache would leave nothing to profile
    assert main(["profile", "fig1", "--scale", "0.04"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1b" in out
    assert "telemetry: fig1" in out
    assert "machine.launch" in out
    assert "machine.launches" in out


def test_selfbench_service_subcommand(capsys, tmp_path):
    out_path = tmp_path / "BENCH_service.json"
    assert main([
        "selfbench", "service", "--scale", "0.04",
        "--workers", "2", "--workloads", "TRAF",
        "--output", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "service bench" in out
    report = json.loads(out_path.read_text())
    assert report["ok"] is True
    assert report["renders_match"] is True
    assert report["warm_store_hit"] is True
    for phase in ("serial_cold", "parallel_cold", "warm_store"):
        assert phase in report["phases"]
    assert report["speedup_vs_serial_cold"]["warm_store"] > 0
