"""Tests for the ``python -m repro`` command-line interface."""
import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_disasm(capsys):
    assert main(["disasm", "typepointer"]) == 0
    out = capsys.readouterr().out
    assert "SHR" in out and "CALL" in out


def test_disasm_concord(capsys):
    assert main(["disasm", "concord"]) == 0
    assert "CALL" not in capsys.readouterr().out


def test_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figZZZ"])


def test_small_experiment_runs(capsys):
    assert main(["fig1", "--scale", "0.04"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1b" in out
    assert "load vTable*" in out


def test_init_experiment(capsys):
    assert main(["init"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_experiment_registry_complete():
    # every paper table/figure id has a CLI entry
    for required in ("fig1", "table1", "table2", "fig6", "fig7", "fig8",
                     "fig9", "fig10", "fig11", "fig12a", "fig12b", "init"):
        assert required in EXPERIMENTS
