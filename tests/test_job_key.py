"""Property tests for the serving daemon's job-key canonicalization.

The dedup/cache key must be a function of the *computation*, not the
encoding of the request: param insertion order and equal-value
re-encodings (``2`` vs ``2.0``) map to the same key, while any
semantically different spec maps to a different one.
"""
from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.jobs import job_key

# JSON-safe scalar params; integral floats are drawn deliberately often
# so the int/float collapse is exercised, with |value| <= 2**40 where
# float integrality is exact
_scalars = st.one_of(
    st.booleans(),
    st.none(),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40).map(float),
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)

_params = st.dictionaries(st.text(min_size=1, max_size=8), _scalars,
                          max_size=6)


def _spec(params, scale=0.25, seed=7, quick=False, experiment="fig6"):
    return {"experiment": experiment, "scale": scale, "seed": seed,
            "quick": quick, "params": params}


@settings(max_examples=60, deadline=None)
@given(params=_params, order_seed=st.integers())
def test_param_insertion_order_is_irrelevant(params, order_seed):
    items = list(params.items())
    random.Random(order_seed).shuffle(items)
    assert job_key(_spec(params)) == job_key(_spec(dict(items)))


@settings(max_examples=60, deadline=None)
@given(params=_params)
def test_int_float_reencodings_collapse(params):
    """``{"n": 2}`` and ``{"n": 2.0}`` are the same computation."""
    as_float = {
        k: float(v) if isinstance(v, int) and not isinstance(v, bool)
        else v
        for k, v in params.items()
    }
    assert job_key(_spec(params)) == job_key(_spec(as_float))


@settings(max_examples=60, deadline=None)
@given(params=_params, scale=st.sampled_from([0.05, 0.25, 1.0]),
       seed=st.integers(min_value=0, max_value=100))
def test_key_is_deterministic(params, scale, seed):
    spec = _spec(params, scale=scale, seed=seed)
    assert job_key(spec) == job_key(dict(spec))


@settings(max_examples=60, deadline=None)
@given(params=_params, extra_value=_scalars)
def test_added_param_changes_key(params, extra_value):
    key = "zz-extra"
    assert key not in params
    grown = dict(params)
    grown[key] = extra_value
    assert job_key(_spec(grown)) != job_key(_spec(params))


@settings(max_examples=40, deadline=None)
@given(params=_params)
def test_distinct_core_fields_are_distinct(params):
    base = job_key(_spec(params))
    assert job_key(_spec(params, scale=0.26)) != base
    assert job_key(_spec(params, seed=8)) != base
    assert job_key(_spec(params, quick=True)) != base
    assert job_key(_spec(params, experiment="tab1")) != base


def test_bool_is_not_collapsed_to_int():
    """True and 1 are different param values (bool is not an int here)."""
    assert (job_key(_spec({"flag": True}))
            != job_key(_spec({"flag": 1})))


def test_huge_floats_stay_floats():
    """Above 2**53 float integrality is inexact; no collapse happens."""
    big = float(2 ** 60)
    assert (job_key(_spec({"n": big}))
            != job_key(_spec({"n": 2 ** 60 + 1})))
