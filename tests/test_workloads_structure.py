"""Functional tests for the STUT spring/node fracture workload."""
import numpy as np
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import make_workload


@pytest.fixture
def stut():
    m = Machine("sharedoa", config=small_config())
    wl = make_workload("STUT", m, scale=0.05, seed=4)
    wl.setup()
    wl._setup_done = True
    return wl


def _node_positions(wl):
    m = wl.machine
    lay = m.registry.layout(wl.NodeBase)
    ox, oy = lay.offset("pos_x"), lay.offset("pos_y")
    out = np.empty((len(wl.node_ptrs), 2), dtype=np.float32)
    for i, p in enumerate(wl.node_ptrs):
        c = m.allocator._canonical(int(p))
        out[i, 0] = m.heap.load(c + ox, "f32")
        out[i, 1] = m.heap.load(c + oy, "f32")
    return out


def test_four_types(stut):
    assert stut.num_types() == 5  # Element, NodeBase abstract + 3 concrete


def test_anchor_row_never_moves(stut):
    before = _node_positions(stut)[: stut.width]
    for _ in range(5):
        stut.iterate()
    after = _node_positions(stut)[: stut.width]
    np.testing.assert_array_equal(before, after)


def test_free_nodes_fall_under_gravity(stut):
    before = _node_positions(stut)
    for _ in range(5):
        stut.iterate()
    after = _node_positions(stut)
    # the bottom row is only held by springs; it must sag downward
    bottom = slice((stut.height - 1) * stut.width, None)
    assert after[bottom, 1].mean() < before[bottom, 1].mean()


def test_springs_break_monotonically(stut):
    broken = [stut.broken_count()]
    for _ in range(6):
        stut.iterate()
        broken.append(stut.broken_count())
    assert all(b2 >= b1 for b1, b2 in zip(broken, broken[1:]))


def test_some_springs_eventually_break(stut):
    for _ in range(10):
        stut.iterate()
    assert stut.broken_count() > 0


def test_positions_finite(stut):
    for _ in range(8):
        stut.iterate()
    assert np.isfinite(_node_positions(stut)).all()


def test_spring_endpoints_are_object_pointers(stut):
    m = stut.machine
    lay = m.registry.layout(stut.Spring)
    c = m.allocator._canonical(int(stut.spring_ptrs[0]))
    pa = int(m.heap.load(c + lay.offset("node_a"), "u64"))
    owner = m.allocator.owner_type(pa)
    assert owner in (stut.Node, stut.AnchorNode)
