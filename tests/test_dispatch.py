"""Tests for the five dispatch strategies (Table 1 lowering)."""
import numpy as np
import pytest

from repro.errors import DispatchError, MMUFault
from repro.gpu.isa import (
    ROLE_DISPATCH_OVERHEAD,
    ROLE_INDIRECT_CALL,
    ROLE_LOAD_VFUNC,
    ROLE_LOAD_VTABLE,
)
from repro.memory.address_space import decode_tag

from conftest import ALL_TECHNIQUES, FIG6_TECHNIQUES, read_age


def _speak_kernel(machine, ptrs, static_type, uniform=False):
    arr = machine.array_from(ptrs, "u64")

    def kernel(ctx):
        p = arr.ld(ctx, ctx.tid)
        ctx.vcall(p, static_type, "speak", uniform=uniform)

    return kernel


@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
def test_dispatch_reaches_correct_impl(machine_factory, animals, technique):
    m = machine_factory(technique)
    m.register(animals.Dog, animals.Cat, animals.Puppy)
    dogs = m.new_objects(animals.Dog, 10)
    cats = m.new_objects(animals.Cat, 10)
    pups = m.new_objects(animals.Puppy, 10)
    ptrs = np.concatenate([dogs, cats, pups])
    m.launch(_speak_kernel(m, ptrs, animals.Animal), len(ptrs))
    assert all(read_age(m, animals, p) == 1 for p in dogs)
    assert all(read_age(m, animals, p) == 2 for p in cats)
    assert all(read_age(m, animals, p) == 10 for p in pups)


@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
def test_virtual_getter_returns_per_lane_values(
    machine_factory, animals, technique
):
    m = machine_factory(technique)
    m.register(animals.Dog, animals.Puppy)
    dogs = m.new_objects(animals.Dog, 4)
    pups = m.new_objects(animals.Puppy, 4)
    ptrs = np.concatenate([dogs, pups])
    arr = m.array_from(ptrs, "u64")
    got = {}

    def kernel(ctx):
        p = arr.ld(ctx, ctx.tid)
        got["legs"] = ctx.vcall(p, animals.Animal, "legs")

    m.launch(kernel, len(ptrs))
    np.testing.assert_array_equal(got["legs"], [4] * 4 + [3] * 4)


class TestCudaLowering:
    def test_roles_attributed(self, machine_factory, animals):
        m = machine_factory("cuda")
        dogs = m.new_objects(animals.Dog, 32)
        stats = m.launch(_speak_kernel(m, dogs, animals.Animal), 32)
        assert stats.role_transactions.get(ROLE_LOAD_VTABLE, 0) > 0
        assert stats.role_transactions.get(ROLE_LOAD_VFUNC, 0) > 0
        assert stats.role_instrs.get(ROLE_INDIRECT_CALL, 0) == 1

    def test_vtable_load_diverged_vfunc_converged(self, machine_factory,
                                                  animals):
        # op A generates ~1 sector per object; op B is converged (1)
        m = machine_factory("cuda")
        dogs = m.new_objects(animals.Dog, 32)
        stats = m.launch(_speak_kernel(m, dogs, animals.Animal), 32)
        a = stats.role_transactions[ROLE_LOAD_VTABLE]
        b = stats.role_transactions[ROLE_LOAD_VFUNC]
        assert a >= 8 * b  # A diverged, B converged


class TestConcordLowering:
    def test_no_vfunc_load_no_indirect_call(self, machine_factory, animals):
        m = machine_factory("concord")
        m.register(animals.Dog, animals.Cat)
        dogs = m.new_objects(animals.Dog, 32)
        stats = m.launch(_speak_kernel(m, dogs, animals.Animal), 32)
        assert stats.role_transactions.get(ROLE_LOAD_VFUNC, 0) == 0
        assert stats.role_instrs.get(ROLE_INDIRECT_CALL, 0) == 0
        # switch compares/branches instead
        assert stats.role_instrs.get(ROLE_DISPATCH_OVERHEAD, 0) > 0

    def test_header_is_type_tag(self, machine_factory, animals):
        m = machine_factory("concord")
        dog = m.new_objects(animals.Dog, 1)[0]
        tag = int(m.heap.load(int(dog), "u32"))
        assert m.registry.by_id(tag) is animals.Dog

    def test_dense_header(self, machine_factory, animals):
        m = machine_factory("concord")
        m.register(animals.Dog)
        # Concord's 4-byte tag packs tighter than an 8-byte vTable*
        m_cuda = machine_factory("cuda")
        m_cuda.register(animals.Dog)
        assert (m.registry.layout(animals.Dog).size
                <= m_cuda.registry.layout(animals.Dog).size)


class TestCOALLowering:
    def test_no_object_dereference_for_type(self, machine_factory, animals):
        m = machine_factory("coal")
        dogs = m.new_objects(animals.Dog, 32)
        stats = m.launch(_speak_kernel(m, dogs, animals.Animal), 32)
        # op A replaced by the range-table walk
        assert stats.role_transactions.get(ROLE_LOAD_VTABLE, 0) == 0
        assert stats.role_transactions.get(ROLE_DISPATCH_OVERHEAD, 0) > 0
        assert stats.role_transactions.get(ROLE_LOAD_VFUNC, 0) > 0

    def test_uniform_call_site_not_instrumented(self, machine_factory,
                                                animals):
        # section 5 heuristic: statically-uniform sites keep the vTable
        m = machine_factory("coal")
        dogs = m.new_objects(animals.Dog, 32)
        uniform_ptrs = np.full(32, dogs[0], dtype=np.uint64)
        stats = m.launch(
            _speak_kernel(m, uniform_ptrs, animals.Animal, uniform=True), 32
        )
        assert stats.role_transactions.get(ROLE_LOAD_VTABLE, 0) > 0
        assert stats.role_transactions.get(ROLE_DISPATCH_OVERHEAD, 0) == 0

    def test_rebuilds_tree_after_new_region(self, machine_factory, animals):
        m = machine_factory("coal")
        dogs = m.new_objects(animals.Dog, 8)
        m.launch(_speak_kernel(m, dogs, animals.Animal), 8)
        # allocate enough new objects to open a new region, then dispatch
        cats = m.new_objects(animals.Cat, 8)
        m.launch(_speak_kernel(m, cats, animals.Animal), 8)
        assert all(read_age(m, animals, p) == 2 for p in cats)

    def test_foreign_pointer_fails_lookup(self, machine_factory, animals):
        m = machine_factory("coal")
        m.new_objects(animals.Dog, 8)
        bogus = np.full(8, m.heap.sbrk(64) + 8, dtype=np.uint64)
        with pytest.raises(DispatchError):
            m.launch(_speak_kernel(m, bogus, animals.Animal), 8)

    def test_requires_range_allocator(self, machine_factory, animals):
        from repro.core.dispatch import COALDispatch

        m = machine_factory("cuda")  # CUDA allocator: no ranges()
        strategy = COALDispatch()
        strategy.bind(m)
        with pytest.raises(DispatchError):
            strategy.prepare_launch()


class TestTypePointerLowering:
    def test_zero_memory_accesses_for_type(self, machine_factory, animals):
        m = machine_factory("typepointer")
        dogs = m.new_objects(animals.Dog, 32)
        stats = m.launch(_speak_kernel(m, dogs, animals.Animal), 32)
        # op A costs no transactions at all (Table 1)
        assert stats.role_transactions.get(ROLE_LOAD_VTABLE, 0) == 0
        assert stats.role_transactions.get(ROLE_DISPATCH_OVERHEAD, 0) in (0, None)
        # SHR/ADD overhead instructions charged
        assert stats.role_instrs.get(ROLE_DISPATCH_OVERHEAD, 0) >= 2

    def test_pointers_carry_vtable_offset(self, machine_factory, animals):
        m = machine_factory("typepointer")
        dog = m.new_objects(animals.Dog, 1)[0]
        assert decode_tag(int(dog)) == m.arena.tag_for_type(animals.Dog)

    def test_untagged_pointer_detected(self, machine_factory, animals):
        # mixing allocators breaks TypePointer (section 6.4 limitation 3)
        m = machine_factory("typepointer")
        m.new_objects(animals.Dog, 1)
        untagged = np.full(4, m.heap.sbrk(64) + 8, dtype=np.uint64)
        with pytest.raises(DispatchError, match="mixing"):
            m.launch(_speak_kernel(m, untagged, animals.Animal), 4)

    def test_prototype_masks_member_accesses(self, machine_factory, animals):
        from repro.gpu.isa import InstrClass

        m_hw = machine_factory("typepointer")
        m_sw = machine_factory("typepointer_proto")
        for m in (m_hw, m_sw):
            dogs = m.new_objects(animals.Dog, 32)
            m.launch(_speak_kernel(m, dogs, animals.Animal), 32)
        hw = m_hw.run_stats.warp_instrs[InstrClass.COMPUTE]
        sw = m_sw.run_stats.warp_instrs[InstrClass.COMPUTE]
        assert sw > hw  # software masking adds AND instructions

    def test_baseline_mmu_faults_on_tagged_pointer(self, machine_factory,
                                                   animals):
        # a stock MMU (no TypePointer support) rejects tagged pointers
        from repro.memory.mmu import MMUMode

        m = machine_factory("typepointer")
        dogs = m.new_objects(animals.Dog, 4)
        m.mmu.set_mode(MMUMode.BASELINE)
        with pytest.raises(MMUFault):
            m.launch(_speak_kernel(m, dogs, animals.Animal), 4)


class TestSerialization:
    @pytest.mark.parametrize("technique", FIG6_TECHNIQUES)
    def test_mixed_types_serialize(self, machine_factory, animals, technique):
        m = machine_factory(technique)
        m.register(animals.Dog, animals.Cat)
        dogs = m.new_objects(animals.Dog, 16)
        cats = m.new_objects(animals.Cat, 16)
        ptrs = np.empty(32, dtype=np.uint64)
        ptrs[0::2] = dogs
        ptrs[1::2] = cats
        stats = m.launch(_speak_kernel(m, ptrs, animals.Animal), 32)
        assert stats.call_serializations == 1  # two groups in one warp

    def test_single_type_no_serialization(self, machine_factory, animals):
        m = machine_factory("cuda")
        dogs = m.new_objects(animals.Dog, 32)
        stats = m.launch(_speak_kernel(m, dogs, animals.Animal), 32)
        assert stats.call_serializations == 0


def test_abstract_dispatch_fails_loudly(machine_factory, animals):
    # constructing an abstract type and calling through it: null vfunc
    m = machine_factory("cuda")
    m.register(animals.Animal)
    ptrs = m.new_objects(animals.Animal, 4)
    with pytest.raises(DispatchError):
        m.launch(_speak_kernel(m, ptrs, animals.Animal), 4)
