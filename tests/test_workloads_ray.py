"""Functional tests for the RAY ray tracer."""
import numpy as np
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import make_workload


@pytest.fixture
def ray():
    m = Machine("sharedoa", config=small_config())
    wl = make_workload("RAY", m, scale=0.3, seed=2)
    wl.setup()
    wl._setup_done = True
    return wl


def _reference_render(wl):
    """Pure-numpy re-implementation of the render for validation."""
    m = wl.machine
    w, h = wl.width, wl.height
    tid = np.arange(wl.n_pixels)
    px = (tid % w).astype(np.float32)
    py = (tid // w).astype(np.float32)
    dx = (px / w - 0.5).astype(np.float32)
    dy = (py / h - 0.5).astype(np.float32)
    norm = np.sqrt(dx * dx + dy * dy + 1.0).astype(np.float32)
    dx, dy, dz = dx / norm, dy / norm, np.float32(1.0) / norm
    nearest = np.full(wl.n_pixels, 1e30, dtype=np.float32)
    albedo = np.full(wl.n_pixels, 0.05, dtype=np.float32)

    slay = m.registry.layout(wl.Sphere)
    play = m.registry.layout(wl.Plane)
    for p in wl.scene_ptrs:
        c = m.allocator._canonical(int(p))
        owner = m.allocator.owner_type(int(p))
        if owner is wl.Sphere:
            cx = m.heap.load(c + slay.offset("cx"), "f32")
            cy = m.heap.load(c + slay.offset("cy"), "f32")
            cz = m.heap.load(c + slay.offset("cz"), "f32")
            r = m.heap.load(c + slay.offset("radius"), "f32")
            alb = m.heap.load(c + slay.offset("albedo"), "f32")
            ox, oy, oz = -cx, -cy, -cz
            b = (ox * dx + oy * dy + oz * dz).astype(np.float32)
            cc = (ox * ox + oy * oy + oz * oz - r * r).astype(np.float32)
            disc = b * b - cc
            sq = np.sqrt(np.maximum(disc, 0)).astype(np.float32)
            t = (-b - sq).astype(np.float32)
            valid = (disc > 0) & (t > 1e-3) & (t < nearest)
        else:
            y0 = m.heap.load(c + play.offset("y0"), "f32")
            alb = m.heap.load(c + play.offset("albedo"), "f32")
            safe = np.where(np.abs(dy) > 1e-6, dy, np.float32(1.0))
            t = np.where(np.abs(dy) > 1e-6, y0 / safe, 1e30).astype(np.float32)
            valid = (t > 1e-3) & (t < nearest)
        nearest = np.where(valid, t, nearest).astype(np.float32)
        albedo = np.where(valid, alb, albedo).astype(np.float32)
    depth = np.minimum(nearest, np.float32(100.0))
    return (albedo / (1.0 + 0.05 * depth)).astype(np.float32)


def test_render_matches_reference(ray):
    ray.iterate()
    got = ray.framebuffer.read()
    expect = _reference_render(ray)
    np.testing.assert_allclose(got, expect, rtol=1e-6)


def test_image_shape(ray):
    ray.iterate()
    img = ray.image()
    assert img.shape == (ray.height, ray.width)
    assert (img >= 0).all()


def test_something_is_hit(ray):
    ray.iterate()
    img = ray.framebuffer.read()
    sky = np.float32(0.05) / (1.0 + 0.05 * 100.0)
    assert (np.abs(img - sky) > 1e-5).any(), "no ray hit any object"


def test_uniform_call_sites_do_not_serialize(ray):
    stats = ray.machine.launch.__self__ if False else None
    ray.iterate()
    # every vcall targets a single object: one group per call site
    assert ray.machine.run_stats.call_serializations == 0


def test_three_types(ray):
    assert ray.num_types() == 3  # Renderable, Sphere, Plane


def test_coal_skips_instrumentation_on_ray():
    """COAL's heuristic leaves RAY's uniform sites uninstrumented."""
    from repro.gpu.isa import ROLE_DISPATCH_OVERHEAD, ROLE_LOAD_VTABLE

    m = Machine("coal", config=small_config())
    wl = make_workload("RAY", m, scale=0.3, seed=2)
    stats = wl.run(1)
    assert stats.role_transactions.get(ROLE_DISPATCH_OVERHEAD, 0) == 0
    assert stats.role_transactions.get(ROLE_LOAD_VTABLE, 0) > 0
