"""Shared fixtures: small machines and a simple type hierarchy."""
from __future__ import annotations

import numpy as np
import pytest

from repro import Machine, TypeDescriptor
from repro.gpu.config import small_config
from repro.memory.heap import Heap

#: All techniques the paper evaluates (plus our prototype variants and
#: the DynaSOAr-family ``soa`` allocator).
ALL_TECHNIQUES = (
    "cuda", "concord", "sharedoa", "coal", "typepointer",
    "typepointer_proto", "typepointer_indexed", "tp_on_cuda", "soa",
)

FIG6_TECHNIQUES = ("cuda", "concord", "sharedoa", "coal", "typepointer")


@pytest.fixture(autouse=True)
def _isolate_global_state():
    """Reset cross-test process-global state around every test.

    Tests used to be ordering-sensitive: obs counters, the machine-level
    default replay memo, the store's warn-once set and any armed fault
    schedule all leak across tests unless each one remembers to clean
    up.  This fixture gives every test a fresh obs registry and a clean
    slate, and restores the previous registry afterwards.
    """
    import repro.faults as faults
    import repro.obs as obs
    from repro.gpu.machine import set_default_replay_memo
    from repro.harness.store import _reset_bucket_warnings
    from repro.runtime.naming import reset_naming

    prev_reg = obs.set_registry(obs.Registry())
    prev_memo = set_default_replay_memo(None)
    reset_naming()
    try:
        yield
    finally:
        faults.disarm()
        _reset_bucket_warnings()
        reset_naming()
        set_default_replay_memo(prev_memo)
        obs.set_registry(prev_reg)


@pytest.fixture
def heap():
    return Heap(capacity=1 << 20)


@pytest.fixture
def machine_factory():
    """Factory for small machines: machine_factory('coal')."""

    def make(technique: str = "cuda", **kwargs) -> Machine:
        kwargs.setdefault("config", small_config())
        return Machine(technique, **kwargs)

    return make


class AnimalHierarchy:
    """A tiny polymorphic hierarchy used across dispatch tests.

    Dog.speak adds 1 to ``age``; Cat.speak adds 2; Puppy (a subclass of
    Dog) overrides speak to add 10 and also overrides ``legs``.
    """

    def __init__(self, tag: str):
        h = self

        def dog_speak(ctx, objs):
            age = ctx.load_field(objs, h.Animal, "age")
            ctx.alu(1)
            ctx.store_field(objs, h.Animal, "age", age + np.uint32(1))

        def cat_speak(ctx, objs):
            age = ctx.load_field(objs, h.Animal, "age")
            ctx.alu(1)
            ctx.store_field(objs, h.Animal, "age", age + np.uint32(2))

        def puppy_speak(ctx, objs):
            age = ctx.load_field(objs, h.Animal, "age")
            ctx.alu(1)
            ctx.store_field(objs, h.Animal, "age", age + np.uint32(10))

        def legs4(ctx, objs):
            return np.full(len(objs), 4, dtype=np.uint32)

        def legs3(ctx, objs):
            # puppies in this test universe have 3 legs (distinguishable)
            return np.full(len(objs), 3, dtype=np.uint32)

        self.Animal = TypeDescriptor(
            f"Animal#{tag}",
            fields=[("age", "u32"), ("weight", "f32")],
            methods={"speak": None, "legs": None},
        )
        self.Dog = TypeDescriptor(
            f"Dog#{tag}", base=self.Animal,
            methods={"speak": dog_speak, "legs": legs4},
        )
        self.Cat = TypeDescriptor(
            f"Cat#{tag}", base=self.Animal,
            methods={"speak": cat_speak, "legs": legs4},
        )
        self.Puppy = TypeDescriptor(
            f"Puppy#{tag}", fields=[("toys", "u32")], base=self.Dog,
            methods={"speak": puppy_speak, "legs": legs3},
        )


_counter = [0]


@pytest.fixture
def animals():
    """A fresh AnimalHierarchy with unique type names per test."""
    _counter[0] += 1
    return AnimalHierarchy(f"t{_counter[0]}")


def read_age(machine: Machine, hierarchy, ptr) -> int:
    return int(machine.read_field(int(ptr), hierarchy.Animal, "age"))
