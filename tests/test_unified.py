"""Tests for the SharedOA unified-memory facade (section 4)."""

from repro.runtime.unified import SharedObjectSpace, cpu_call


def test_shared_new_allocates_objects(machine_factory, animals):
    m = machine_factory("sharedoa")
    space = SharedObjectSpace(m)
    ptrs = space.shared_new(animals.Dog, 10)
    assert len(ptrs) == 10
    assert m.allocator.live_count() == 10


def test_init_kernel_gates_gpu_readiness(machine_factory, animals):
    m = machine_factory("sharedoa")
    space = SharedObjectSpace(m)
    assert space.ready_for_gpu  # nothing allocated yet
    space.shared_new(animals.Dog, 4)
    assert not space.ready_for_gpu
    cycles = space.run_init_kernel()
    assert cycles > 0
    assert space.ready_for_gpu


def test_init_kernel_cost_scales_with_objects(machine_factory, animals):
    m = machine_factory("sharedoa")
    space = SharedObjectSpace(m)
    space.shared_new(animals.Dog, 1000)
    c1 = space.run_init_kernel()
    space.shared_new(animals.Dog, 9000)
    c2 = space.run_init_kernel()
    assert c2 > c1


def test_init_phase_report(machine_factory, animals):
    m = machine_factory("sharedoa")
    space = SharedObjectSpace(m)
    space.shared_new(animals.Dog, 100)
    report = space.init_phase_report()
    assert report.objects == 100
    assert report.total_cycles > report.init_kernel_cycles


def test_cpu_call_resolves_through_cpu_vtable(machine_factory, animals):
    m = machine_factory("sharedoa")
    space = SharedObjectSpace(m)
    dog = space.shared_new(animals.Dog, 1)[0]
    impl, tdesc = cpu_call(m, dog, animals.Animal, "speak")
    assert tdesc is animals.Dog
    assert impl is animals.Dog.vtable_impls()[animals.Animal.slot_of("speak")]


def test_sharedoa_init_much_cheaper_than_cuda(machine_factory, animals):
    # the section 8.2 claim: host-side SharedOA init is far faster than
    # device-side CUDA new (modeled; the harness reports ~80x)
    m_cuda = machine_factory("cuda")
    m_soa = machine_factory("sharedoa")
    m_cuda.new_objects(animals.Dog, 500)
    m_soa.new_objects(animals.Dog, 500)
    assert (
        m_cuda.allocator.stats.modeled_alloc_cycles
        > 10 * m_soa.allocator.stats.modeled_alloc_cycles
    )
