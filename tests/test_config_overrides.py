"""GPUConfig.with_overrides / config_with_knobs (sweep + --config path)."""
import pytest

from repro.gpu.config import (
    CacheGeometry,
    base_configs,
    config_with_knobs,
    scaled_config,
)


def test_with_overrides_replaces_scalar_knobs():
    base = scaled_config()
    cfg = base.with_overrides(num_sms=4, model_tlb=False)
    assert cfg.num_sms == 4
    assert cfg.model_tlb is False
    # untouched knobs survive, and the base is not mutated
    assert cfg.warp_size == base.warp_size
    assert base.num_sms != 4 or base.model_tlb is True


def test_with_overrides_rejects_unknown_with_hint():
    with pytest.raises(ValueError, match="did you mean.*num_sms"):
        scaled_config().with_overrides(num_sm=4)
    with pytest.raises(ValueError, match="unknown GPUConfig knob"):
        scaled_config().with_overrides(definitely_not_a_knob=1)


def test_with_overrides_nested_geometry_mapping():
    base = scaled_config()
    cfg = base.with_overrides(l1={"size_bytes": 8192})
    assert cfg.l1.size_bytes == 8192
    # unspecified geometry fields keep the base values
    assert cfg.l1.assoc == base.l1.assoc
    assert cfg.l1.line_bytes == base.l1.line_bytes


def test_with_overrides_accepts_whole_geometry():
    geo = CacheGeometry(size_bytes=16384, assoc=4)
    cfg = scaled_config().with_overrides(l2=geo)
    assert cfg.l2 is geo


def test_with_overrides_reruns_geometry_checks():
    with pytest.raises(ValueError, match="multiple of the line size"):
        scaled_config().with_overrides(l1={"size_bytes": 1000})
    with pytest.raises(ValueError, match="associativity"):
        scaled_config().with_overrides(l1={"size_bytes": 128, "assoc": 3})
    with pytest.raises(ValueError, match="unknown CacheGeometry"):
        scaled_config().with_overrides(l1={"sized_bytes": 4096})


def test_config_with_knobs_dotted_keys():
    cfg = config_with_knobs(scaled_config(),
                            {"l1.size_bytes": 8192, "model_tlb": False})
    assert cfg.l1.size_bytes == 8192
    assert cfg.model_tlb is False


def test_config_with_knobs_renames_deterministically():
    base = scaled_config()
    a = config_with_knobs(base, {"num_sms": 4})
    b = config_with_knobs(base, {"num_sms": 4})
    c = config_with_knobs(base, {"num_sms": 8})
    assert a.name == b.name                  # same knobs -> same name
    assert a.name != c.name                  # different knobs -> distinct
    assert a.name != base.name               # never collides with the base
    assert a.name.startswith(base.name + "+")
    # int/float collapse canonically: 4 and 4.0 are the same point
    d = config_with_knobs(base, {"num_sms": 4.0})
    assert d.name == a.name


def test_config_with_knobs_rejects_mixed_forms():
    with pytest.raises(ValueError, match="pick one form"):
        config_with_knobs(scaled_config(),
                          {"l1": {"size_bytes": 8192},
                           "l1.assoc": 2})
    with pytest.raises(ValueError, match="dotted knobs must start"):
        config_with_knobs(scaled_config(), {"dram.banks": 4})


def test_config_with_knobs_explicit_name_wins():
    cfg = config_with_knobs(scaled_config(),
                            {"num_sms": 4, "name": "mine"})
    assert cfg.name == "mine"


def test_base_configs_construct():
    for name, factory in base_configs().items():
        cfg = factory()
        assert cfg.num_sms >= 1, name
