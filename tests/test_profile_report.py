"""Tests for the nvprof-style profile report and repeated runs."""
import pytest

from repro.gpu.config import small_config
from repro.harness.profile_report import (
    RepeatedRuns,
    profile_report,
    run_repeated,
)


def test_profile_report_contents(machine_factory, animals):
    m = machine_factory("coal")
    dogs = m.new_objects(animals.Dog, 64)
    arr = m.array_from(dogs, "u64")

    def kernel(ctx):
        ctx.vcall(arr.ld(ctx, ctx.tid), animals.Animal, "speak")

    m.launch(kernel, 64)
    text = profile_report(m)
    for needle in ("gld_transactions", "L1 hit rate", "vFuncPKI",
                   "virtual function calls", "coal"):
        assert needle in text


def test_profile_report_empty_machine(machine_factory):
    text = profile_report(machine_factory("cuda"), title="empty")
    assert "launches" in text and "empty" in text


class TestRepeatedRuns:
    def test_statistics(self):
        r = RepeatedRuns("X", "cuda", [10.0, 20.0, 30.0])
        assert r.mean == pytest.approx(20.0)
        assert r.min == 10.0 and r.max == 30.0
        assert r.spread == pytest.approx(1.0)

    def test_run_repeated_produces_spread(self):
        r = run_repeated("TRAF", "cuda", seeds=(1, 2, 3), scale=0.04,
                         config=small_config())
        assert len(r.cycles) == 3
        assert r.min <= r.mean <= r.max

    def test_error_bars_are_tight(self):
        # Figure 6's error bars are small: input seeds move the cycle
        # counts by a few percent, not qualitatively
        r = run_repeated("GOL", "sharedoa", seeds=(1, 5, 9), scale=0.04,
                         config=small_config())
        assert r.spread < 0.25

    def test_ordering_stable_across_seeds(self):
        # the paper's min/max never cross between techniques; check the
        # same: worst-case COAL still beats best-case CUDA on GOL
        cuda = run_repeated("GOL", "cuda", seeds=(1, 5), scale=0.04,
                            config=small_config())
        coal = run_repeated("GOL", "coal", seeds=(1, 5), scale=0.04,
                            config=small_config())
        assert coal.max < cuda.min * 1.3
