"""Tests for the per-launch kernel history and summary."""
import numpy as np

from repro.harness.profile_report import kernel_summary


def test_history_records_labels(machine_factory):
    m = machine_factory("cuda")
    arr = m.array("u32", 32)

    def alpha(ctx):
        arr.ld(ctx, ctx.tid)

    def beta(ctx):
        arr.st(ctx, ctx.tid, np.zeros(ctx.lane_count, dtype=np.uint32))

    m.launch(alpha, 32)
    m.launch(beta, 32)
    m.launch(alpha, 32)
    names = [n for n, _ in m.launch_history]
    assert names == ["alpha", "beta", "alpha"]


def test_explicit_label(machine_factory):
    m = machine_factory("cuda")
    arr = m.array("u32", 32)
    m.launch(lambda ctx: arr.ld(ctx, ctx.tid), 32, label="gather_pass")
    assert m.launch_history[0][0] == "gather_pass"


def test_summary_aggregates_repeated_kernels(machine_factory):
    m = machine_factory("cuda")
    arr = m.array("u32", 64)

    def work(ctx):
        arr.ld(ctx, ctx.tid)

    for _ in range(3):
        m.launch(work, 64)
    text = kernel_summary(m)
    assert "work" in text
    assert "| 3 " in text or " 3 " in text  # three launches aggregated


def test_summary_empty(machine_factory):
    assert "no launches" in kernel_summary(machine_factory("cuda"))


def test_history_reset(machine_factory):
    m = machine_factory("cuda")
    arr = m.array("u32", 32)
    m.launch(lambda ctx: arr.ld(ctx, ctx.tid), 32)
    m.reset_run()
    assert m.launch_history == []


def test_history_bounded(machine_factory):
    m = machine_factory("cuda")
    m.max_history = 4
    arr = m.array("u32", 32)
    for _ in range(10):
        m.launch(lambda ctx: arr.ld(ctx, ctx.tid), 32)
    assert len(m.launch_history) == 4
    assert m.launches == 10  # counting continues past the bound
