"""Golden regression tests: pinned functional results per workload.

These checksums were produced by the validated implementation (each
workload's algorithm is separately checked against a pure-numpy or
graph-theoretic reference in its own test file) and pin the exact
behaviour: any future change to allocation order, dispatch resolution,
kernel scheduling or arithmetic that silently alters results trips
these before anything subtler does.

All values are allocator/technique independent (see
test_equivalence.py), so one technique suffices here.
"""
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import make_workload

#: (scale=0.04, seed=11, 2 iterations, small_config) golden checksums
GOLDEN = {
    "TRAF": 43125.0,
    "GOL": 24155.0,
    "STUT": 44736.65,
    "GEN": 47720.0,
    "BFS-vE": 7479.0,
    "CC-vE": 184976.0,
    "PR-vE": 11751839.3,
    "BFS-vEN": 1915001100.0,
    "CC-vEN": 184976.0,
    "PR-vEN": 11751839.3,
    "RAY": 49.2499,
}


@pytest.mark.parametrize("name,expected", sorted(GOLDEN.items()))
def test_golden_checksum(name, expected):
    m = Machine("cuda", config=small_config())
    wl = make_workload(name, m, scale=0.04, seed=11)
    wl.run(2)
    assert wl.checksum() == pytest.approx(expected, rel=1e-9), (
        f"{name} changed behaviour: checksum {wl.checksum()!r} vs "
        f"golden {expected!r}. If the change is intentional (new rules, "
        f"new charging does NOT count -- checksums are cost-independent), "
        f"regenerate the GOLDEN table."
    )


def test_checksums_are_cost_model_independent():
    """Golden values must not depend on the GPU config (pure function
    of the input), so cost-model tuning can never trip them."""
    from repro.gpu.config import scaled_config

    for name in ("TRAF", "BFS-vE"):
        m = Machine("cuda", config=scaled_config())
        wl = make_workload(name, m, scale=0.04, seed=11)
        wl.run(2)
        assert wl.checksum() == pytest.approx(GOLDEN[name], rel=1e-9)
