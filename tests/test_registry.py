"""The experiment registry: uniform signatures over every table/figure."""
from __future__ import annotations

import inspect

import pytest

from repro.harness.registry import (
    EXPERIMENT_REGISTRY,
    SMOKE_PARAMS,
    Experiment,
    ExperimentOptions,
    experiment_names,
    get_experiment,
    register,
    render_experiment,
    run_experiment,
    smoke_options,
)

#: every paper artifact the suite reproduces, in presentation order,
#: plus the user-kernel cross-check experiment
PAPER_ARTIFACTS = ("fig1", "table1", "table2", "fig6", "fig7", "fig8",
                   "fig9", "fig10", "fig11", "fig12a", "fig12b", "init",
                   "kernel")

#: options that finish the whole registry in seconds
QUICK = smoke_options(scale=0.04, workloads=("TRAF",))


def test_registry_is_complete_and_ordered():
    assert experiment_names() == PAPER_ARTIFACTS


def test_every_entry_is_an_experiment_with_uniform_signature():
    for name in experiment_names():
        exp = get_experiment(name)
        assert isinstance(exp, Experiment)
        assert exp.name == name
        assert exp.description
        # run takes exactly one options argument; render one result
        # (extra defaulted params are closure bindings, not API surface)
        def required(fn):
            return [p for p in inspect.signature(fn).parameters.values()
                    if p.default is inspect.Parameter.empty]

        assert len(required(exp.run)) == 1
        assert len(required(exp.render)) == 1


def test_get_unknown_experiment_raises_with_known_names():
    with pytest.raises(KeyError, match="fig6"):
        get_experiment("figZZZ")


def test_duplicate_registration_rejected():
    exp = get_experiment("fig6")
    with pytest.raises(ValueError):
        register(exp)


def test_cells_declared_for_sweep_experiments():
    # sweep-backed experiments declare their cells; self-sized ones don't
    sweep = {"fig1", "table2", "fig6", "fig7", "fig8", "fig9", "fig11"}
    for name in experiment_names():
        exp = get_experiment(name)
        if name in sweep:
            cells = exp.cells(QUICK)
            assert cells and all(len(c) == 2 for c in cells)
            # restricted options restrict the cells
            assert {wl for wl, _ in cells} == {"TRAF"}
        else:
            assert exp.cells is None


def test_options_params_are_per_experiment():
    o = ExperimentOptions(params={"fig10": {"chunk_sizes": (64,)}})
    assert o.params_for("fig10") == {"chunk_sizes": (64,)}
    assert o.params_for("fig12a") == {}


def test_options_default_workloads_is_full_registry():
    from repro.workloads import workload_names

    assert ExperimentOptions().workload_list() == workload_names()
    assert ExperimentOptions(workloads=("GOL",)).workload_list() == ["GOL"]


def test_smoke_params_cover_the_self_sized_experiments():
    self_sized = {n for n in experiment_names()
                  if get_experiment(n).cells is None}
    assert self_sized <= set(SMOKE_PARAMS)


@pytest.mark.parametrize("name", PAPER_ARTIFACTS)
def test_run_and_render_smoke(name):
    """Every experiment runs and renders under one shared options value."""
    result = run_experiment(name, QUICK)
    text = render_experiment(name, result)
    assert isinstance(text, str) and text.strip()


def test_run_experiment_defaults_options():
    # init is cheap enough to run at default options
    result = run_experiment("init", ExperimentOptions(
        params={"init": {"num_objects": 1500}}))
    assert "speedup" in render_experiment("init", result)
