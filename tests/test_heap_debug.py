"""Tests for the heap debugging tools."""
import pytest

from repro.errors import MemoryError_
from repro.memory.cuda_allocator import CudaHeapAllocator
from repro.memory.debug import HeapChecker, allocation_map
from repro.memory.shared_oa import SharedOAAllocator
from repro.memory.typepointer_alloc import TypePointerAllocator


@pytest.fixture
def soa(heap):
    return SharedOAAllocator(heap, initial_chunk_objects=4)


class TestLeakAccounting:
    def test_leaks_since_checkpoint(self, soa):
        checker = HeapChecker(soa)
        a = soa.alloc_object("A", 16)
        checker.checkpoint()
        b = soa.alloc_object("A", 16)
        leaks = checker.leaks_since_checkpoint()
        assert [r.addr for r in leaks] == [b]

    def test_freed_since_checkpoint(self, soa):
        checker = HeapChecker(soa)
        a = soa.alloc_object("A", 16)
        checker.checkpoint()
        soa.free_object(a)
        freed = checker.freed_since_checkpoint()
        assert [r.addr for r in freed] == [a]

    def test_balanced_trace_no_leaks(self, soa):
        checker = HeapChecker(soa)
        checker.checkpoint()
        p = soa.alloc_object("A", 16)
        soa.free_object(p)
        # slot reuse means a later alloc at the same address is not a
        # leak relative to... no: it IS a new object.  Balanced here:
        assert checker.leaks_since_checkpoint() == []
        assert checker.freed_since_checkpoint() == []

    def test_requires_checkpoint(self, soa):
        with pytest.raises(MemoryError_):
            HeapChecker(soa).leaks_since_checkpoint()


class TestIntegrity:
    def test_clean_allocator_passes(self, soa):
        for i in range(10):
            soa.alloc_object(f"T{i % 2}", 16)
        HeapChecker(soa).check_all()

    def test_cuda_allocator_passes(self, heap):
        cuda = CudaHeapAllocator(heap)
        for _ in range(10):
            cuda.alloc_object("A", 24)
        HeapChecker(cuda).check_all()

    def test_typepointer_wrapper_passes(self, heap):
        inner = SharedOAAllocator(heap, initial_chunk_objects=4)
        tp = TypePointerAllocator(inner, lambda t: 64)
        for _ in range(6):
            tp.alloc_object("A", 16)
        HeapChecker(tp).check_all()

    def test_overlap_detected(self, soa):
        soa.alloc_object("A", 16)
        # corrupt the allocator's book-keeping to fake an overlap
        addr = next(iter(soa._live))
        soa._live[addr + 8] = ("A", 16)
        with pytest.raises(MemoryError_, match="overlap"):
            HeapChecker(soa).check_no_overlaps()

    def test_escaped_object_detected(self, soa):
        soa.alloc_object("A", 16)
        # an object recorded outside any region
        soa._live[0xDEAD00] = ("A", 16)
        with pytest.raises(MemoryError_, match="region"):
            HeapChecker(soa).check_objects_in_ranges()


class TestAllocationMap:
    def test_map_contents(self, soa):
        for _ in range(3):
            soa.alloc_object("A", 16)
        soa.alloc_object("B", 24)
        text = allocation_map(soa)
        assert "4 live objects" in text
        assert "x3" in text and "x1" in text

    def test_map_truncates(self, soa):
        for _ in range(30):
            soa.alloc_object("A", 16)
        text = allocation_map(soa, max_rows=5)
        assert "more" in text


def test_workload_run_is_leak_balanced():
    """GOL retypes thousands of cells; every free must pair an alloc."""
    from repro.gpu.config import small_config
    from repro.gpu.machine import Machine
    from repro.workloads import make_workload

    m = Machine("sharedoa", config=small_config())
    wl = make_workload("GOL", m, scale=0.04, seed=3)
    wl.setup()
    wl._setup_done = True
    checker = HeapChecker(m.allocator)
    before = m.allocator.live_count()
    wl.iterate()
    # retyping is one-for-one: the population never changes
    assert m.allocator.live_count() == before
    checker.check_all()
