"""Tests for the fragmentation metrics module."""
import pytest

from repro.memory.cuda_allocator import CudaHeapAllocator
from repro.memory.fragmentation import measure, per_type_usage
from repro.memory.heap import Heap
from repro.memory.shared_oa import SharedOAAllocator
from repro.memory.typepointer_alloc import TypePointerAllocator


def test_sharedoa_no_internal_fragmentation(heap):
    soa = SharedOAAllocator(heap, initial_chunk_objects=8)
    for _ in range(8):
        soa.alloc_object("A", 24)
    report = measure(soa)
    assert report.internal_fragmentation == 0.0
    assert report.external_fragmentation == pytest.approx(0.0)
    assert report.region_count == 1


def test_cuda_internal_fragmentation_positive(heap):
    cuda = CudaHeapAllocator(heap)
    for _ in range(20):
        cuda.alloc_object("A", 20)
    report = measure(cuda)
    assert report.internal_fragmentation > 0.2  # padding + rounding


def test_partial_region_external_fragmentation(heap):
    soa = SharedOAAllocator(heap, initial_chunk_objects=100)
    soa.alloc_object("A", 16)
    report = measure(soa)
    assert report.external_fragmentation == pytest.approx(0.99)


def test_measure_through_typepointer_wrapper(heap):
    inner = SharedOAAllocator(heap, initial_chunk_objects=10)
    tp = TypePointerAllocator(inner, lambda t: 64)
    tp.alloc_object("A", 16)
    report = measure(tp)
    assert report.region_count == 1
    assert 0 <= report.external_fragmentation < 1


def test_per_type_usage(heap):
    soa = SharedOAAllocator(heap, initial_chunk_objects=4)
    for _ in range(6):
        soa.alloc_object("A", 16)
    for _ in range(2):
        soa.alloc_object("B", 32)
    usage = per_type_usage(soa)
    assert usage["A"]["live_objects"] == 6
    assert usage["B"]["live_objects"] == 2
    assert usage["A"]["reserved_bytes"] == (4 + 8) * 16
    assert usage["B"]["regions"] == 1


def test_report_str(heap):
    soa = SharedOAAllocator(heap, initial_chunk_objects=4)
    soa.alloc_object("A", 16)
    text = str(measure(soa))
    assert "external" in text and "regions" in text


def test_frees_increase_external_fragmentation(heap):
    soa = SharedOAAllocator(heap, initial_chunk_objects=8)
    ptrs = [soa.alloc_object("A", 16) for _ in range(8)]
    before = soa.external_fragmentation()
    for p in ptrs[:4]:
        soa.free_object(p)
    assert soa.external_fragmentation() > before
