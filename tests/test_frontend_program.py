"""User kernel programs: loading, cross-technique runs, serve glue."""
from __future__ import annotations

import contextlib
import threading

import pytest

from repro import FrontendError
from repro.__main__ import main
from repro.frontend import DEMO_SOURCE, load_program, run_program
from repro.frontend.program import ProgramResult
from repro.harness.registry import ExperimentOptions, run_experiment
from repro.serve.jobs import job_key

#: a minimal but non-trivial program used by the file-based tests
TINY_SOURCE = """\
import numpy as np
from repro import device_class, kernel, virtual, abstract


@device_class
class Box:
    weight: "u32"

    @abstract
    def tare(self, ctx): ...


@device_class
class Heavy(Box):
    @virtual
    def tare(self, ctx):
        w = self.weight
        ctx.alu(1)
        self.weight = w + np.uint32(7)


@kernel
def tare_all(ctx, boxes):
    Box.view(ctx, boxes.ld(ctx, ctx.tid)).tare()


def run(machine):
    n = 64
    ptrs = Heavy.alloc(machine, n)
    boxes = machine.array_from(ptrs, "u64")
    tare_all[n](machine, boxes)
    return float(Box.read_field(machine, ptrs, "weight").sum())
"""


# ----------------------------------------------------------------------
# load_program
# ----------------------------------------------------------------------
def test_load_program_needs_exactly_one_input(tmp_path):
    with pytest.raises(FrontendError, match="exactly one"):
        load_program()
    with pytest.raises(FrontendError, match="exactly one"):
        load_program(source="run = None", path=str(tmp_path / "x.py"))


def test_load_program_missing_file():
    with pytest.raises(FrontendError, match="cannot read"):
        load_program(path="/nonexistent/kernels.py")


def test_load_program_syntax_error_fails_before_any_machine():
    with pytest.raises(FrontendError, match="failed to load"):
        load_program(source="def run(machine:\n")


def test_load_program_import_time_error_is_wrapped():
    with pytest.raises(FrontendError, match="ZeroDivisionError"):
        load_program(source="x = 1 / 0\ndef run(machine): return 0\n")


def test_load_program_requires_run_entry():
    with pytest.raises(FrontendError, match="must define run"):
        load_program(source="x = 3\n")
    with pytest.raises(FrontendError, match="must define run"):
        load_program(source="run = 42\n")


def test_load_program_from_file(tmp_path):
    path = tmp_path / "tiny.py"
    path.write_text(TINY_SOURCE)
    entry = load_program(path=str(path))
    assert callable(entry)


# ----------------------------------------------------------------------
# run_program
# ----------------------------------------------------------------------
def test_demo_program_agrees_across_techniques():
    entry = load_program(source=DEMO_SOURCE)
    result = run_program(entry, techniques=("cuda", "typepointer"))
    assert result.ok
    assert result.checksums["cuda"] == result.checksums["typepointer"]
    assert result.checksums["cuda"] == 4096.0
    # per-technique stats really come from independent machines
    assert result.stats["cuda"].global_load_transactions > \
        result.stats["typepointer"].global_load_transactions
    assert "all techniques agree" in result.table


def test_program_result_flags_divergence():
    r = ProgramResult(techniques=("a", "b"),
                      checksums={"a": 1.0, "b": 2.0})
    assert not r.ok
    r2 = ProgramResult(techniques=())
    assert not r2.ok            # vacuous agreement is not agreement


def test_tiny_program_checksum():
    entry = load_program(source=TINY_SOURCE)
    result = run_program(entry, techniques=("cuda",))
    assert result.checksums["cuda"] == 64 * 7.0


# ----------------------------------------------------------------------
# registry + CLI
# ----------------------------------------------------------------------
def test_kernel_experiment_runs_program_from_path(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(TINY_SOURCE)
    result = run_experiment("kernel", ExperimentOptions(params={
        "kernel": {"path": str(path), "techniques": ("cuda", "coal"),
                   "config": "small"},
    }))
    assert result.ok
    assert result.techniques == ("cuda", "coal")
    assert result.checksums["coal"] == 64 * 7.0


def test_cli_kernel_command(tmp_path, capsys):
    path = tmp_path / "prog.py"
    path.write_text(TINY_SOURCE)
    assert main(["kernel", str(path), "--techniques",
                 "cuda,typepointer"]) == 0
    out = capsys.readouterr().out
    assert "all techniques agree" in out
    assert "typepointer" in out


def test_cli_kernel_demo_quick(capsys):
    assert main(["kernel", "--quick"]) == 0
    assert "all techniques agree" in capsys.readouterr().out


# ----------------------------------------------------------------------
# serve: stable job keys, --program plumbing, end-to-end
# ----------------------------------------------------------------------
def _kernel_spec(source):
    return {"experiment": "kernel", "scale": 0.05, "seed": 7,
            "quick": True, "params": {"source": source}}


def test_kernel_job_key_is_stable_over_source():
    assert job_key(_kernel_spec(TINY_SOURCE)) == \
        job_key(_kernel_spec(TINY_SOURCE))
    assert job_key(_kernel_spec(TINY_SOURCE)) != \
        job_key(_kernel_spec(DEMO_SOURCE))


def test_submit_program_flag_requires_kernel_experiment(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(TINY_SOURCE)
    with pytest.raises(SystemExit):
        main(["submit", "fig6", "--program", str(path)])
    with pytest.raises(SystemExit):
        main(["submit", "kernel", "--program",
              str(tmp_path / "missing.py")])


def test_submit_program_ships_source_in_params(tmp_path):
    from test_serve import serving

    path = tmp_path / "prog.py"
    path.write_text(TINY_SOURCE)
    specs = []

    def compute(spec):
        specs.append(spec)
        return {"rendered": "ok"}

    with serving(tmp_path, compute) as (server, client, _):
        rc = main(["submit", "kernel", "--program", str(path),
                   "--socket", server.socket_path, "--quick"])
    assert rc == 0
    assert len(specs) == 1
    assert specs[0]["experiment"] == "kernel"
    assert specs[0]["params"]["source"] == TINY_SOURCE


def test_serve_runs_kernel_job_end_to_end(tmp_path):
    """A user program travels through the daemon's real compute path."""
    with serving_real(tmp_path) as (server, client):
        reply = client.submit("kernel", quick=True, scale=0.05,
                              params={"source": TINY_SOURCE,
                                      "techniques": ("cuda",)})
    assert reply["ok"] is True, reply
    assert "all techniques agree" in reply["rendered"]
    assert "448.000" in reply["rendered"]     # 64 boxes tared by 7


@contextlib.contextmanager
def serving_real(tmp_path):
    """The in-process daemon with its *real* service-backed compute."""
    from repro.serve import ReproServer, ServeClient

    sock = str(tmp_path / "serve.sock")
    server = ReproServer(socket_path=sock, workers=1, use_store=False)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(10), "daemon never started listening"
    try:
        yield server, ServeClient(socket_path=sock)
    finally:
        server.request_shutdown()
        thread.join(60)
        assert not thread.is_alive(), "daemon failed to drain"
