"""The parallel experiment service: scheduling, robustness, bit-identity."""
from __future__ import annotations

import copy
import multiprocessing
import os
import select
import threading
import time

import pytest

from repro.harness import runner
from repro.harness.registry import (
    experiment_names,
    get_experiment,
    smoke_options,
)
from repro.harness.service import (
    MANIFEST_SCHEMA,
    ExperimentService,
    ShardReport,
    default_num_workers,
    run_shards,
    validate_manifest,
)

#: options that run the whole registry in seconds
QUICK = smoke_options(scale=0.04, workloads=("TRAF",))


@pytest.fixture(autouse=True)
def _fresh_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


# ----------------------------------------------------------------------
# shard scheduler robustness (fault-injecting workers)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def test_run_shards_basic_parallel():
    values, reports = run_shards([1, 2, 3, 4, 5], _square, num_workers=2)
    assert values == [1, 4, 9, 16, 25]
    assert [r.outcome for r in reports] == ["ok"] * 5
    assert all(r.attempts == 1 for r in reports)
    assert all(isinstance(r, ShardReport) for r in reports)


def test_run_shards_serial_when_one_worker():
    values, reports = run_shards([2, 3], _square, num_workers=1)
    assert values == [4, 9]
    assert [r.outcome for r in reports] == ["ok", "ok"]


_marker_dir = [None]


def _crash_once(x):
    """Die hard on the first attempt per item; succeed on the retry."""
    marker = os.path.join(_marker_dir[0], f"seen-{x}")
    if _in_worker() and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(3)  # silent death: no result ever reaches the pipe
    return x + 100


def test_run_shards_retries_once_on_worker_death(tmp_path):
    _marker_dir[0] = str(tmp_path)
    values, reports = run_shards([1, 2, 3], _crash_once, num_workers=2)
    assert values == [101, 102, 103]
    assert [r.outcome for r in reports] == ["retried"] * 3
    assert all(r.attempts == 2 for r in reports)


def _raise_once(x):
    marker = os.path.join(_marker_dir[0], f"raised-{x}")
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError(f"injected failure for {x}")
    return x


def test_run_shards_retries_once_on_worker_exception(tmp_path):
    _marker_dir[0] = str(tmp_path)
    values, reports = run_shards([7], _raise_once, num_workers=2)
    assert values == [7]
    assert reports[0].outcome == "retried"
    assert reports[0].attempts == 2


def _always_raise(x):
    if _in_worker():
        raise RuntimeError("never works in a worker")
    return x * 10


def test_run_shards_falls_back_serial_after_two_failures():
    values, reports = run_shards([4], _always_raise, num_workers=2)
    assert values == [40]
    assert reports[0].outcome == "fallback"
    assert reports[0].attempts == 3        # two worker tries + serial
    assert "never works" in reports[0].error


def _sleep_in_worker(x):
    if _in_worker():
        time.sleep(30)
    return x - 1


def test_run_shards_timeout_recomputes_serially():
    t0 = time.perf_counter()
    values, reports = run_shards(
        [5], _sleep_in_worker, num_workers=2, timeout_s=0.4,
    )
    assert values == [4]
    assert reports[0].outcome == "timeout"
    assert reports[0].attempts == 3
    assert "exceeded" in reports[0].error
    # both worker attempts were cut off at the deadline, not joined
    assert time.perf_counter() - t0 < 20


def test_run_shards_degrades_when_multiprocessing_unavailable(monkeypatch):
    from repro.harness import service

    def broken():
        raise OSError("no forking here")

    monkeypatch.setattr(service, "_mp_context", broken)
    values, reports = run_shards([1, 2], _square, num_workers=4)
    assert values == [1, 4]
    assert [r.outcome for r in reports] == ["fallback", "fallback"]
    assert "multiprocessing unavailable" in reports[0].error


# ----------------------------------------------------------------------
# the service: bit-identity, manifest, store integration
# ----------------------------------------------------------------------
def _render_all(service: ExperimentService, **kwargs):
    run = service.run(options=QUICK, **kwargs)
    return {n: run.render(n) for n in experiment_names()}, run


def test_parallel_output_bit_identical_to_serial():
    """The acceptance bar: every registry experiment renders the same
    text whether the sweep ran in-process or on a worker pool."""
    serial = {
        n: get_experiment(n).render(get_experiment(n).run(QUICK))
        for n in experiment_names()
    }
    runner.clear_cache()
    parallel, run = _render_all(
        ExperimentService(2, use_store=False), manifest_path=None,
    )
    assert parallel == serial
    assert run.manifest["mode"] == "parallel"
    bad = [r for r in run.reports if r.outcome not in ("ok", "retried")]
    assert not bad, [r.shard for r in bad]


def test_manifest_records_every_shard(tmp_path):
    manifest_path = tmp_path / "m.json"
    _, run = _render_all(
        ExperimentService(2, use_store=False),
        manifest_path=str(manifest_path),
    )
    m = run.manifest
    assert m["schema"] == MANIFEST_SCHEMA
    assert m["num_workers"] == 2
    assert m["options"]["workloads"] == ["TRAF"]
    assert m["experiments"] == list(experiment_names())
    assert m["totals"]["shards"] == len(m["shards"]) == len(run.reports)
    for shard in m["shards"]:
        assert shard["kind"] in ("cell", "experiment")
        assert shard["outcome"] in ("ok", "retried", "timeout", "fallback")
        assert shard["wall_s"] >= 0
    # the manifest landed on disk as JSON
    import json

    assert json.loads(manifest_path.read_text())["schema"] == MANIFEST_SCHEMA


def test_warm_store_run_hits_the_memo(tmp_path):
    sdir = str(tmp_path / "store")
    cold, cold_run = _render_all(
        ExperimentService(2, store_dir=sdir), manifest_path=None)
    assert not cold_run.manifest["store"]["warm_start"]
    runner.clear_cache()
    warm, warm_run = _render_all(
        ExperimentService(2, store_dir=sdir), manifest_path=None)
    assert warm_run.manifest["store"]["warm_start"]
    assert warm_run.manifest["totals"]["memo_hits"] > 0
    assert warm_run.manifest["totals"]["memo_hit_rate"] > 0.9
    assert warm == cold


def test_service_runs_subset_of_registry():
    service = ExperimentService(1, use_store=False)
    run = service.run(["init", "fig12b"], QUICK)
    assert set(run.results) == {"init", "fig12b"}
    assert run.manifest["mode"] == "serial"
    assert "speedup" in run.render("init")


def test_warm_cells_seeds_the_runner_cache():
    service = ExperimentService(2, use_store=False)
    reports = service.warm_cells(["fig6"], QUICK)
    assert reports  # something was computed
    # every fig6 cell is now a cache hit: no new shards needed
    assert service._missing_cells([get_experiment("fig6")], QUICK) == []
    # and rerunning warm_cells finds nothing to do
    assert service.warm_cells(["fig6"], QUICK) == []


def test_install_store_memo_persists_inprocess_runs(tmp_path):
    sdir = str(tmp_path / "store")
    service = ExperimentService(1, store_dir=sdir)
    restore = service.install_store_memo()
    try:
        runner.run_one("TRAF", "cuda", scale=0.04, use_cache=False)
    finally:
        restore()
    assert service.store.is_warm()
    # a fresh install over the warm store replays the identical run
    service2 = ExperimentService(1, store_dir=sdir)
    restore2 = service2.install_store_memo()
    try:
        runner.run_one("TRAF", "cuda", scale=0.04, use_cache=False)
        assert runner.REPLAY_MEMO.hits > 0
        assert runner.REPLAY_MEMO.misses == 0
    finally:
        restore2()


def test_install_store_memo_noop_without_store():
    service = ExperimentService(1, use_store=False)
    before = runner.REPLAY_MEMO
    restore = service.install_store_memo()
    assert runner.REPLAY_MEMO is before
    restore()


def test_default_num_workers_bounded():
    n = default_num_workers()
    assert 1 <= n <= 8


# ----------------------------------------------------------------------
# interrupt robustness: no orphaned shard processes
# ----------------------------------------------------------------------
def _report_pid_and_hang(x):
    """Worker that records its pid, then blocks until terminated.

    Uses ``select`` (not ``time.sleep``) so the parent's patched
    ``time.sleep`` never leaks into the forked child.
    """
    if not _in_worker():
        return x
    with open(os.path.join(_marker_dir[0], "worker.pid"), "w") as f:
        f.write(str(os.getpid()))
    while True:
        select.select([], [], [], 1.0)


def test_run_shards_interrupt_terminates_children(tmp_path, monkeypatch):
    """Ctrl-C in the parent must not orphan live shard processes (they
    hold replay-store locks)."""
    from repro.harness import service

    _marker_dir[0] = str(tmp_path)
    pid_file = tmp_path / "worker.pid"
    real_sleep = time.sleep

    def interrupting_sleep(seconds):
        if pid_file.exists():
            raise KeyboardInterrupt
        real_sleep(seconds)

    monkeypatch.setattr(service.time, "sleep", interrupting_sleep)
    with pytest.raises(KeyboardInterrupt):
        run_shards([1], _report_pid_and_hang, num_workers=2, timeout_s=None)
    monkeypatch.undo()

    pid = int(pid_file.read_text())
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            break                     # terminated and fully reaped
        time.sleep(0.05)
    else:
        os.kill(pid, 9)
        pytest.fail(f"shard process {pid} survived the interrupt")


# ----------------------------------------------------------------------
# manifest validation + re-entrant (threaded) service use
# ----------------------------------------------------------------------
def test_validate_manifest_accepts_real_run():
    service = ExperimentService(1, use_store=False)
    run = service.run(["init"], QUICK)
    validate_manifest(run.manifest)     # must not raise


def test_validate_manifest_rejects_corruption():
    service = ExperimentService(1, use_store=False)
    manifest = service.run(["init"], QUICK).manifest

    with pytest.raises(ValueError, match="not a"):
        validate_manifest({"schema": "something-else/1"})
    with pytest.raises(ValueError, match="mode"):
        validate_manifest({**manifest, "mode": "warp-speed"})

    bad = copy.deepcopy(manifest)
    bad["totals"]["shards"] += 1
    with pytest.raises(ValueError, match="totals.shards"):
        validate_manifest(bad)

    bad = copy.deepcopy(manifest)
    bad["shards"][0]["outcome"] = "vanished"
    with pytest.raises(ValueError, match="outcome"):
        validate_manifest(bad)

    bad = copy.deepcopy(manifest)
    bad["shards"][0]["memo_hits"] += 5     # totals now disagree
    with pytest.raises(ValueError, match="memo"):
        validate_manifest(bad)

    bad = copy.deepcopy(manifest)
    bad["totals"]["memo_hit_rate"] = 1.5
    with pytest.raises(ValueError, match="memo_hit_rate"):
        validate_manifest(bad)


def test_write_manifest_schema_checks_first(tmp_path):
    path = tmp_path / "m.json"
    with pytest.raises(ValueError):
        ExperimentService.write_manifest(str(path), {"schema": "nope"})
    assert not path.exists()


def test_service_run_is_thread_safe():
    """Two threads driving one service concurrently (the serving
    daemon's usage pattern) serialize on the internal lock and both
    produce correct, renderable results."""
    service = ExperimentService(1, use_store=False)
    results = {}
    errors = []

    def go(name):
        try:
            results[name] = service.run([name], QUICK)
        except Exception as exc:       # pragma: no cover - failure path
            errors.append((name, exc))

    threads = [threading.Thread(target=go, args=(n,))
               for n in ("init", "fig12b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert not errors
    assert set(results) == {"init", "fig12b"}
    assert "speedup" in results["init"].render("init")
    validate_manifest(results["init"].manifest)
    validate_manifest(results["fig12b"].manifest)
