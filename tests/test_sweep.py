"""repro.sweep: spec resolution, deterministic IDs, driver, resume, reports."""
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.faults as faults
from repro.faults import FaultSchedule, InjectedFault, ScheduleEntry
from repro.harness.resultdb import ResultDB
from repro.sweep import (
    SweepSpec,
    SweepSpecError,
    load_spec,
    pareto_report,
    run_sweep,
    sensitivity_report,
)
from repro.sweep.cli import sweep_cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]

SPEC_DICT = {
    "name": "t",
    "workloads": ["TRAF"],
    "techniques": ["cuda", "soa"],
    "scale": 0.02,
    "axes": {"l1.size_bytes": [4096, 8192], "model_tlb": [True, False]},
}


# ----------------------------------------------------------------------
# spec resolution + deterministic point IDs
# ----------------------------------------------------------------------
def test_cross_product_resolution():
    points = load_spec(SPEC_DICT).resolve_points()
    assert len(points) == 8          # 2 techniques x 2 sizes x 2 tlb
    assert len({p.point_id for p in points}) == 8
    assert {p.technique for p in points} == {"cuda", "soa"}
    assert {p.knobs["l1.size_bytes"] for p in points} == {4096, 8192}


def test_point_ids_are_deterministic_and_content_addressed():
    a = load_spec(SPEC_DICT).resolve_points()
    b = load_spec(json.loads(json.dumps(SPEC_DICT))).resolve_points()
    assert [p.point_id for p in a] == [p.point_id for p in b]
    # axis declaration order does not change identities, only order
    flipped = dict(SPEC_DICT)
    flipped["axes"] = {"model_tlb": [True, False],
                      "l1.size_bytes": [4096, 8192]}
    c = load_spec(flipped).resolve_points()
    assert {p.point_id for p in c} == {p.point_id for p in a}
    # a changed knob value is a different point
    other = dict(SPEC_DICT)
    other["scale"] = 0.03
    d = load_spec(other).resolve_points()
    assert not ({p.point_id for p in d} & {p.point_id for p in a})


def test_explicit_points_and_dedup():
    spec = load_spec({
        "name": "t", "workloads": ["TRAF"], "techniques": ["cuda"],
        "scale": 0.02,
        "points": [
            {"num_sms": 8},
            {"num_sms": 8},                      # duplicate collapses
            {"technique": "soa", "num_sms": 8},  # distinct
        ],
    })
    points = spec.resolve_points()
    # 1 axis-free cross-product point + 2 distinct explicit points
    assert len(points) == 3
    assert points[1].knobs == {"num_sms": 8}
    assert points[2].technique == "soa"


def test_technique_aliases_resolve_canonically():
    base = load_spec({"name": "t", "techniques": ["typepointer"],
                      "scale": 0.02})
    alias = load_spec({"name": "t", "techniques": ["tp"], "scale": 0.02})
    try:
        a, b = base.resolve_points(), alias.resolve_points()
    except SweepSpecError:
        pytest.skip("no 'tp' alias registered")
    assert a[0].point_id == b[0].point_id


def test_spec_validation_errors():
    with pytest.raises(SweepSpecError, match="did you mean"):
        load_spec({"name": "t", "workloads": ["TRAFF"]})
    with pytest.raises(SweepSpecError, match="technique"):
        load_spec({"name": "t", "techniques": ["cudaa"]})
    with pytest.raises(SweepSpecError, match="unknown GPUConfig knob"):
        load_spec({"name": "t", "axes": {"num_smss": [2, 4]}})
    with pytest.raises(SweepSpecError, match="multiple of the line"):
        load_spec({"name": "t", "axes": {"l1.size_bytes": [1000]}})
    with pytest.raises(SweepSpecError, match="non-empty 'name'"):
        load_spec({"axes": {}})
    with pytest.raises(SweepSpecError, match="reserved"):
        load_spec({"name": "bench:mine"})
    with pytest.raises(SweepSpecError, match="unknown spec field"):
        load_spec({"name": "t", "axis": {"num_sms": [2]}})


def test_tomlish_spec_parses(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(
        '# a comment\n'
        'name = "l1"\n'
        'techniques = ["cuda", "soa"]\n'
        'scale = 0.02\n'
        '\n'
        '[axes]\n'
        '"l1.size_bytes" = [4096, 8192]\n'
        'model_tlb = [true, false]\n'
    )
    spec = load_spec(path)
    assert spec.name == "l1"
    assert spec.axes == {"l1.size_bytes": [4096, 8192],
                         "model_tlb": [True, False]}
    assert len(spec.resolve_points()) == 8


def test_json_spec_parses(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_DICT))
    assert len(load_spec(path).resolve_points()) == 8


# ----------------------------------------------------------------------
# driver: end-to-end run, resume, failure isolation
# ----------------------------------------------------------------------
def _small_spec(n_sizes=2):
    return SweepSpec.from_dict({
        "name": "drv", "workloads": ["TRAF"], "techniques": ["cuda"],
        "scale": 0.02,
        "axes": {"l1.size_bytes": [4096 * (i + 1) for i in range(n_sizes)]},
    })


def test_run_sweep_records_all_points(tmp_path):
    db_path = tmp_path / "r.sqlite"
    report = run_sweep(_small_spec(), db_path, num_workers=1,
                       use_store=False)
    assert report.ok and report.computed == 2 and report.skipped == 0
    with ResultDB(db_path) as db:
        assert db.point_count(sweep="drv") == 2
        rows = db.query_rows(sweep="drv", metrics=["cycles", "wall_s"])
        assert all(r["cycles"] > 0 for r in rows)
        assert all(r["wall_s"] > 0 for r in rows)
        # knob values landed queryable
        assert {r["l1.size_bytes"] for r in rows} == {4096, 8192}


def test_rerun_skips_everything(tmp_path):
    db_path = tmp_path / "r.sqlite"
    run_sweep(_small_spec(), db_path, num_workers=1, use_store=False)
    report = run_sweep(_small_spec(), db_path, num_workers=1,
                       use_store=False)
    assert report.skipped == 2 and report.computed == 0
    with ResultDB(db_path) as db:
        assert db.point_count(sweep="drv") == 2     # row count exact


def test_aborted_sweep_resumes_without_recompute(tmp_path):
    """Crash after N commits -> rerun computes only the remainder."""
    db_path = tmp_path / "r.sqlite"
    spec = _small_spec(4)
    # abort the driver at the 3rd point-record; points 1-2 are durable
    faults.arm(FaultSchedule(0, [
        ScheduleEntry("sweep.point.record", "raise", hit=3)]))
    try:
        with pytest.raises(InjectedFault):
            run_sweep(spec, db_path, num_workers=1, use_store=False,
                      batch_size=4)
    finally:
        faults.disarm()
    with ResultDB(db_path) as db:
        done = db.ok_point_ids()
        stamps = {r["point_id"]: r["created_unix"]
                  for r in db.fetch_points(sweep="drv")}
    assert len(done) == 2

    report = run_sweep(spec, db_path, num_workers=1, use_store=False)
    assert report.skipped == 2 and report.computed == 2 and report.ok
    with ResultDB(db_path) as db:
        assert db.point_count(sweep="drv") == 4     # exact, no dupes
        after = {r["point_id"]: r["created_unix"]
                 for r in db.fetch_points(sweep="drv")}
    for pid in done:           # completed points were NOT recomputed
        assert after[pid] == stamps[pid]


def test_point_failure_is_isolated(tmp_path, monkeypatch):
    """One broken point records as error; the rest still complete."""
    import repro.sweep.driver as driver

    real = driver._service_worker

    def flaky(payload):
        if payload["config"].l1.size_bytes == 8192:
            raise RuntimeError("injected point failure")
        return real(payload)

    monkeypatch.setattr(driver, "_service_worker", flaky)
    db_path = tmp_path / "r.sqlite"
    report = run_sweep(_small_spec(), db_path, num_workers=1,
                       use_store=False)
    assert report.computed == 1 and report.failed == 1 and not report.ok
    with ResultDB(db_path) as db:
        (bad,) = db.fetch_points(sweep="drv", status="error")
        assert "injected point failure" in bad["error"]
    # the failed point is not skipped: a rerun (fault gone) retries it
    monkeypatch.setattr(driver, "_service_worker", real)
    report = run_sweep(_small_spec(), db_path, num_workers=1,
                       use_store=False)
    assert report.skipped == 1 and report.computed == 1 and report.ok


@pytest.mark.slow
def test_sigterm_mid_sweep_then_resume(tmp_path):
    """Kill a real sweep subprocess mid-run; the rerun recomputes only
    the missing points and the DB row count stays exact."""
    db_path = tmp_path / "r.sqlite"
    spec_path = tmp_path / "spec.json"
    spec_dict = {
        "name": "sig", "workloads": ["TRAF"], "techniques": ["cuda"],
        "scale": 0.02,
        "axes": {"l1.size_bytes": [4096, 8192, 16384, 32768]},
    }
    spec_path.write_text(json.dumps(spec_dict))
    child = (
        "import sys\n"
        "import repro.faults as faults\n"
        "from repro.faults import FaultSchedule, ScheduleEntry\n"
        "from repro.sweep import load_spec, run_sweep\n"
        "faults.arm(FaultSchedule(0, [ScheduleEntry("
        "'sweep.point.record', 'delay', arg=0.4, once=False)]))\n"
        "run_sweep(load_spec(sys.argv[1]), sys.argv[2], num_workers=1,\n"
        "          use_store=False, batch_size=1,\n"
        "          echo=lambda m: print(m, flush=True))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-c", child, str(spec_path), str(db_path)],
        cwd=str(REPO_ROOT), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 60
        # wait for the first batch-commit echo, then kill mid-flight
        for line in proc.stdout:
            if line.startswith("  ["):
                break
            if time.monotonic() > deadline:
                pytest.fail("sweep never made progress")
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    except BaseException:
        proc.kill()
        proc.wait(timeout=10)
        raise
    assert proc.returncode != 0     # it really was killed

    with ResultDB(db_path) as db:
        done = db.ok_point_ids()
        stamps = {r["point_id"]: r["created_unix"]
                  for r in db.fetch_points(sweep="sig")}
    assert 1 <= len(done) < 4, "SIGTERM landed too early/late"

    report = run_sweep(load_spec(spec_dict), db_path, num_workers=1,
                       use_store=False)
    assert report.skipped == len(done)
    assert report.computed == 4 - len(done)
    assert report.ok
    with ResultDB(db_path) as db:
        assert db.point_count(sweep="sig") == 4      # exact row count
        after = {r["point_id"]: r["created_unix"]
                 for r in db.fetch_points(sweep="sig")}
    for pid in done:               # zero recompute of completed points
        assert after[pid] == stamps[pid]


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@pytest.fixture
def seeded_db(tmp_path):
    """A hand-built database: cycles halve as l1 doubles, dram flat."""
    with ResultDB(tmp_path / "r.sqlite") as db:
        run = db.begin_run("sweep", "s")
        grid = [
            ("cuda", 4096, 400.0, 100.0),
            ("cuda", 8192, 200.0, 100.0),
            ("soa", 4096, 300.0, 80.0),
            ("soa", 8192, 150.0, 120.0),
        ]
        for tech, l1, cycles, dram in grid:
            db.record_point(
                run, f"{tech}-{l1}", sweep="s", workload="TRAF",
                technique=tech, scale=0.05, seed=7, iterations=None,
                base_config="scaled", spec={}, status="ok", outcome="ok",
                knobs={"l1.size_bytes": l1},
                metrics={"cycles": cycles, "dram_accesses": dram})
        yield db


def test_sensitivity_report(seeded_db):
    rep = sensitivity_report(seeded_db, "l1.size_bytes", "cycles",
                             sweep="s")
    assert rep.values == [4096, 8192]
    by_tech = {r["technique"]: r for r in rep.rows}
    assert by_tech["cuda"]["cells"] == {"4096": 400.0, "8192": 200.0}
    assert by_tech["cuda"]["ratio"] == pytest.approx(2.0)
    text = rep.render()
    assert "l1.size_bytes=4096" in text and "cuda" in text


def test_sensitivity_over_identity_column(seeded_db):
    rep = sensitivity_report(seeded_db, "technique", "cycles", sweep="s")
    assert set(rep.values) == {"cuda", "soa"}


def test_pareto_report(seeded_db):
    rep = pareto_report(seeded_db, ["cycles", "dram_accesses"], sweep="s")
    ids = {r["point_id"] for r in rep.frontier}
    # cuda@4096 (400,100) is dominated by cuda@8192 (200,100);
    # the other three points trade cycles against dram traffic
    assert ids == {"cuda-8192", "soa-4096", "soa-8192"}
    assert rep.dominated == 1
    assert "1 dominated" in rep.render()


def test_pareto_maximize_flips_axis(seeded_db):
    rep = pareto_report(seeded_db, ["cycles", "dram_accesses"],
                        maximize=["dram_accesses"], sweep="s")
    ids = {r["point_id"] for r in rep.frontier}
    assert "soa-8192" in ids        # best cycles AND best (max) dram
    with pytest.raises(ValueError, match="at least two"):
        pareto_report(seeded_db, ["cycles"], sweep="s")
    with pytest.raises(ValueError, match="maximize"):
        pareto_report(seeded_db, ["cycles", "dram_accesses"],
                      maximize=["nope"], sweep="s")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_run_query_report(tmp_path, capsys):
    spec_path = tmp_path / "s.json"
    spec_path.write_text(json.dumps(SPEC_DICT))
    db = str(tmp_path / "r.sqlite")

    assert sweep_cli_main(["--db", db, "run", str(spec_path),
                           "--dry-run"]) == 0
    assert "(8 points)" in capsys.readouterr().out

    assert sweep_cli_main(["--db", db, "run", str(spec_path),
                           "--workers", "1", "--no-store"]) == 0
    out = capsys.readouterr().out
    assert "8 computed, 0 failed" in out

    assert sweep_cli_main(["--db", db, "ls"]) == 0
    assert "8 points (8 ok" in capsys.readouterr().out

    assert sweep_cli_main(["--db", db, "query", "--sweep", "t",
                           "--where", "technique=soa",
                           "--metrics", "cycles"]) == 0
    out = capsys.readouterr().out
    assert "soa" in out and "cuda" not in out

    csv_path = tmp_path / "rows.csv"
    assert sweep_cli_main(["--db", db, "query", "--sweep", "t",
                           "--metrics", "cycles",
                           "--output", str(csv_path)]) == 0
    capsys.readouterr()
    header = csv_path.read_text().splitlines()[0]
    assert "point_id" in header and "cycles" in header

    assert sweep_cli_main(["--db", db, "report", "sensitivity",
                           "--knob", "l1.size_bytes",
                           "--metric", "l1_hit_rate"]) == 0
    assert "sensitivity" in capsys.readouterr().out

    assert sweep_cli_main(["--db", db, "report", "pareto",
                           "--metrics", "cycles,dram_accesses"]) == 0
    assert "pareto frontier" in capsys.readouterr().out


def test_cli_bad_spec_exits_2(tmp_path, capsys):
    spec_path = tmp_path / "bad.json"
    spec_path.write_text(json.dumps({"name": "x",
                                     "axes": {"num_smss": [1]}}))
    assert sweep_cli_main(["--db", str(tmp_path / "r.sqlite"),
                           "run", str(spec_path)]) == 2
    assert "did you mean" in capsys.readouterr().err


def test_main_routes_sweep(tmp_path, capsys, monkeypatch):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_RESULTDB", str(tmp_path / "r.sqlite"))
    assert main(["sweep", "ls"]) == 0
    assert "no sweeps" in capsys.readouterr().out


def test_main_config_override(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["fig6", "--config", "num_smss=4"])
    assert excinfo.value.code == 2
    assert "did you mean" in capsys.readouterr().err
