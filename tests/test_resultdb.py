"""SQLite result database: schema, upserts, queries, BENCH importers."""
import json

import pytest

from repro.harness.resultdb import (
    ResultDB,
    ResultDBError,
    default_db_path,
    import_bench_file,
)


@pytest.fixture
def db(tmp_path):
    with ResultDB(tmp_path / "r.sqlite") as rdb:
        yield rdb


def _record(db, run_id, pid, **over):
    kwargs = dict(
        sweep="s", workload="TRAF", technique="cuda", scale=0.05,
        seed=7, iterations=None, base_config="scaled",
        spec={"workload": "TRAF"}, status="ok", outcome="ok",
        attempts=1, wall_s=0.1, error=None,
        knobs={"num_sms": 4}, metrics={"cycles": 100.0},
        telemetry=None,
    )
    kwargs.update(over)
    db.record_point(run_id, pid, **kwargs)


def test_wal_mode_and_schema_version(db):
    mode = db._conn.execute("PRAGMA journal_mode").fetchone()[0]
    assert mode == "wal"
    row = db._conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
    assert int(row["value"]) == 1


def test_version_mismatch_refused(tmp_path):
    path = tmp_path / "r.sqlite"
    with ResultDB(path) as rdb:
        rdb._conn.execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'")
        rdb._conn.commit()
    with pytest.raises(ResultDBError, match="schema version"):
        ResultDB(path)


def test_record_point_upserts_by_point_id(db):
    run = db.begin_run("sweep", "s")
    _record(db, run, "p1", metrics={"cycles": 100.0})
    _record(db, run, "p1", metrics={"cycles": 50.0, "tlb_walks": 3})
    points = db.fetch_points(sweep="s")
    assert len(points) == 1
    assert points[0]["metrics"] == {"cycles": 50.0, "tlb_walks": 3.0}
    # knobs/metrics tables carry exactly one generation of rows
    n = db._conn.execute("SELECT COUNT(*) AS n FROM metrics").fetchone()["n"]
    assert n == 2


def test_ok_point_ids_filters_candidates(db):
    run = db.begin_run("sweep", "s")
    _record(db, run, "good")
    _record(db, run, "bad", status="error", error="boom",
            metrics={})
    assert db.ok_point_ids() == {"good"}
    assert db.ok_point_ids({"good", "missing"}) == {"good"}
    # a failed point is not skipped on rerun, and can be overwritten
    _record(db, run, "bad")
    assert db.ok_point_ids() == {"good", "bad"}


def test_where_matches_canonically(db):
    run = db.begin_run("sweep", "s")
    _record(db, run, "p1", knobs={"num_sms": 4, "model_tlb": True})
    assert db.fetch_points(where={"num_sms": 4.0})      # int/float collapse
    assert db.fetch_points(where={"model_tlb": True})
    assert not db.fetch_points(where={"num_sms": 8})
    # where keys may also be identity columns or metrics
    assert db.fetch_points(where={"technique": "cuda"})
    assert db.fetch_points(where={"cycles": 100})
    assert not db.fetch_points(where={"no_such_key": 1})


def test_query_rows_flat_and_ordered(db):
    run = db.begin_run("sweep", "s")
    _record(db, run, "p2", workload="GOL", knobs={"num_sms": 8},
            metrics={"cycles": 5.0, "tlb_walks": 1.0})
    _record(db, run, "p1", metrics={"cycles": 9.0})
    rows = db.query_rows(sweep="s")
    assert [r["workload"] for r in rows] == ["GOL", "TRAF"]
    assert rows[0]["num_sms"] == 8
    assert rows[0]["cycles"] == 5.0
    # metric subset selection
    rows = db.query_rows(sweep="s", metrics=["tlb_walks"])
    assert "cycles" not in rows[0]


def test_sweeps_summary_counts_errors(db):
    run = db.begin_run("sweep", "s")
    _record(db, run, "p1")
    _record(db, run, "p2", status="error", error="x", metrics={})
    (summary,) = db.sweeps()
    assert summary["points"] == 2
    assert summary["ok"] == 1
    assert summary["errors"] == 1


def test_telemetry_roundtrip(db):
    run = db.begin_run("sweep", "s")
    _record(db, run, "p1", telemetry={"counters": {"x": 1}})
    assert db.telemetry_for("p1") == {"counters": {"x": 1}}
    assert db.telemetry_for("nope") is None


def test_rejects_unknown_status(db):
    run = db.begin_run("sweep", "s")
    with pytest.raises(ResultDBError, match="status"):
        _record(db, run, "p1", status="wedged")


def test_default_db_path_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTDB", str(tmp_path / "env.sqlite"))
    assert default_db_path() == str(tmp_path / "env.sqlite")


# ----------------------------------------------------------------------
# BENCH importers
# ----------------------------------------------------------------------
def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def test_import_selfbench(db, tmp_path):
    path = _write(tmp_path, "BENCH_pipeline.json", {
        "schema": "repro-selfbench/2",
        "scale": 0.05, "seed": 7, "config": "scaled-v100",
        "runs": [
            {"workload": "TRAF", "technique": "cuda", "engine": "numpy",
             "wall_s": 1.5, "cycles": 100, "checksum": 3.25},
            {"workload": "TRAF", "technique": "soa", "engine": "numpy",
             "wall_s": 1.0, "cycles": 80, "checksum": 3.25},
        ],
    })
    info = import_bench_file(db, path)
    assert info["kind"] == "bench-pipeline"
    assert info["points"] == 2
    rows = db.query_rows(sweep="bench:pipeline")
    assert {r["technique"] for r in rows} == {"cuda", "soa"}
    assert rows[0]["engine"] == "numpy"
    # re-import upserts: same deterministic IDs, no duplicates
    info2 = import_bench_file(db, path)
    assert info2["points"] == 2
    assert db.point_count(sweep="bench:pipeline") == 2


def test_import_service_bench(db, tmp_path):
    path = _write(tmp_path, "BENCH_service.json", {
        "schema": "repro-service-bench/1",
        "workers": 4, "scale": 0.05, "experiments": ["fig6"],
        "phases": {
            "serial": {"wall_s": 10.0, "mode": "serial",
                       "warm_start": False,
                       "totals": {"shards": 5, "memo_hits": 0,
                                  "memo_misses": 5, "memo_hit_rate": 0.0}},
            "parallel": {"wall_s": 4.0, "mode": "parallel",
                         "warm_start": True,
                         "totals": {"shards": 5, "memo_hits": 5,
                                    "memo_misses": 0,
                                    "memo_hit_rate": 1.0}},
        },
    })
    info = import_bench_file(db, path)
    assert info["points"] == 2
    rows = db.query_rows(sweep="bench:service")
    assert {r["phase"] for r in rows} == {"serial", "parallel"}


def test_import_loadtest(db, tmp_path):
    path = _write(tmp_path, "BENCH_serve.json", {
        "schema": "repro-loadtest/1",
        "mode": "daemon", "workers": 3, "requests": 100, "wall_s": 2.0,
        "throughput_rps": 50.0, "dedup_rate": 0.5, "cache_hit_rate": 0.4,
        "shed_fraction": 0.0, "failed": 0,
        "spec": {"scale": 0.05, "seed": 7, "users": 1000,
                 "concurrency": 8},
        "latency_s": {"p50": 0.01, "p95": 0.05, "p99": 0.09,
                      "max": 0.2},
    })
    info = import_bench_file(db, path)
    assert info["points"] == 1
    (row,) = db.query_rows(sweep="bench:serve")
    assert row["throughput_rps"] == 50.0
    assert row["users"] == 1000


def test_import_rejects_unknown_schema(db, tmp_path):
    path = _write(tmp_path, "BENCH_weird.json", {"schema": "nope/9"})
    with pytest.raises(ResultDBError, match="unknown BENCH schema"):
        import_bench_file(db, path)


def test_selfbench_records_into_db(tmp_path):
    # the selfbench writer doubles as a recorder: with db_path set the
    # BENCH report is imported into the sweep DB in the same call
    from repro.harness.selfbench import run_selfbench

    out = tmp_path / "BENCH_pipeline.json"
    dbp = tmp_path / "results.sqlite"
    report = run_selfbench(workloads=["TRAF"], techniques=("cuda",),
                           scale=0.05, output=str(out),
                           db_path=str(dbp))
    assert report["resultdb"]["kind"] == "bench-pipeline"
    # one point per (engine, workload, technique) run
    assert report["resultdb"]["points"] == len(report["runs"])
    with ResultDB(dbp) as db:
        rows = db.query_rows(sweep="bench:pipeline")
        assert {r["engine"] for r in rows} == {"reference", "vector",
                                               "fused"}
        assert all(r["workload"] == "TRAF" for r in rows)


def test_selfbench_without_db_path_records_nothing(tmp_path):
    from repro.harness.selfbench import run_selfbench

    out = tmp_path / "BENCH_pipeline.json"
    report = run_selfbench(workloads=["TRAF"], techniques=("cuda",),
                           scale=0.05, output=str(out))
    assert "resultdb" not in report
