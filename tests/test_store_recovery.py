"""Store recovery paths, driven through the failpoint layer.

These used to be testable only by monkeypatching internals; now the
faults armed here flow through exactly the code a real failure would.
"""
from __future__ import annotations

import pickle
import sys
import threading
import time
import warnings

import pytest

import repro.faults as faults
import repro.obs as obs
from repro.faults import FaultSchedule, InjectedFault, ScheduleEntry
from repro.harness.store import (
    STORE_VERSION,
    ReplayMemoStore,
    _FileLock,
    _SCHEMA,
)


@pytest.fixture
def store(tmp_path):
    return ReplayMemoStore(tmp_path / "store")


def _no_tmp_files(store):
    return list(store.root.glob("*.tmp*")) == []


def _lock_free(store, bucket):
    with _FileLock(store._lock_path(bucket), timeout_s=1.0):
        return True


# ----------------------------------------------------------------------
# injected faults on the merge path are retried, never torn
# ----------------------------------------------------------------------
def test_lock_acquire_fault_is_retried(store):
    sched = FaultSchedule(0, [ScheduleEntry("store.lock.acquire", "raise")])
    with sched.armed() as armed:
        assert store.merge_bucket("b", {b"k": 1}) == 1
    assert armed.consumed() == [("store.lock.acquire", "raise")]
    assert obs.registry().counters.get(
        "faults.retried.store.lock.acquire") == 1
    assert store.load_bucket("b") == {b"k": 1}
    assert _lock_free(store, "b")


def test_flush_fault_is_retried_without_torn_write(store):
    store.merge_bucket("b", {b"old": 0})
    sched = FaultSchedule(0, [ScheduleEntry("store.bucket.flush", "raise")])
    with sched.armed():
        assert store.merge_bucket("b", {b"new": 1}) == 2
    assert store.load_bucket("b") == {b"old": 0, b"new": 1}
    assert _no_tmp_files(store)
    assert _lock_free(store, "b")


def test_replace_fault_reaps_tmp_and_retries(store):
    sched = FaultSchedule(0, [ScheduleEntry("store.bucket.replace", "raise")])
    with sched.armed():
        assert store.merge_bucket("b", {b"k": 2}) == 1
    assert store.load_bucket("b") == {b"k": 2}
    assert _no_tmp_files(store)


def test_persistent_fault_surfaces_typed_error(store):
    """When retries are exhausted the caller gets the injected error
    itself -- typed, attributable -- and the store is still clean."""
    sched = FaultSchedule(
        0, [ScheduleEntry("store.bucket.flush", "raise", once=False)])
    with sched.armed():
        with pytest.raises(InjectedFault) as err:
            store.merge_bucket("b", {b"k": 1})
    assert err.value.failpoint == "store.bucket.flush"
    assert obs.registry().counters.get(
        "faults.surfaced.store.bucket.flush") == 1
    assert obs.registry().counters.get(
        "faults.retried.store.bucket.flush") == 2
    assert _no_tmp_files(store)
    assert _lock_free(store, "b")
    assert store.load_bucket("b") == {}


# ----------------------------------------------------------------------
# corrupt reads: warn once, even under concurrent readers
# ----------------------------------------------------------------------
def test_corrupt_read_warns_once_under_concurrent_readers(store):
    store.merge_bucket("b", {b"k": 1})
    sched = FaultSchedule(
        0, [ScheduleEntry("store.bucket.read", "corrupt", arg=5,
                          once=False)])
    n_readers = 6
    barrier = threading.Barrier(n_readers)
    results = []

    def read():
        barrier.wait()
        results.append(store.load_bucket("b"))

    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        with sched.armed():
            threads = [threading.Thread(target=read)
                       for _ in range(n_readers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
    assert results == [{}] * n_readers            # every read fell back
    relevant = [w for w in recorded
                if "replay-store bucket" in str(w.message)]
    assert len(relevant) == 1                     # warned exactly once
    assert obs.registry().counters.get("store.bucket_corrupt") == n_readers
    # the on-disk bucket was never modified by the corrupt *reads*
    with sched.armed():
        pass                                      # disarmed again
    assert store.load_bucket("b") == {b"k": 1}


def test_corrupt_read_does_not_poison_next_merge(store):
    store.merge_bucket("b", {b"k": 1})
    sched = FaultSchedule(
        0, [ScheduleEntry("store.bucket.read", "corrupt", arg=9)])
    with sched.armed():
        # the merge's read-side sees garbage, recovers to {}, and the
        # rewrite must still land atomically
        assert store.merge_bucket("b", {b"k2": 2}) >= 1
    entries = store.load_bucket("b")
    assert entries.get(b"k2") == 2
    assert _no_tmp_files(store)


# ----------------------------------------------------------------------
# version skew
# ----------------------------------------------------------------------
def test_version_skew_reload(store):
    path = store.bucket_path("b")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as f:
        pickle.dump({"schema": _SCHEMA, "version": STORE_VERSION + 1,
                     "entries": {b"stale": 99}}, f)
    with warnings.catch_warnings(record=True) as recorded:
        warnings.simplefilter("always")
        assert store.load_bucket("b") == {}       # skewed file ignored
        assert store.load_bucket("b") == {}       # and warned only once
    assert len([w for w in recorded
                if "replay-store bucket" in str(w.message)]) == 1
    assert obs.registry().counters.get(
        "store.bucket_version_mismatch") == 2
    # the next merge rewrites the bucket at the current version
    store.merge_bucket("b", {b"fresh": 1})
    with open(path, "rb") as f:
        payload = pickle.load(f)
    assert payload["version"] == STORE_VERSION
    assert store.load_bucket("b") == {b"fresh": 1}


# ----------------------------------------------------------------------
# stale-lock break: the loser still eventually acquires
# ----------------------------------------------------------------------
def test_stale_break_loser_eventually_acquires(tmp_path, monkeypatch):
    monkeypatch.setitem(sys.modules, "fcntl", None)   # lock-file protocol
    lock_path = tmp_path / "b.lock"
    lock_path.write_text("held by a dead process\n")
    import os
    old = time.time() - 3600
    os.utime(lock_path, (old, old))

    n = 3
    barrier = threading.Barrier(n)
    acquired = []
    order_lock = threading.Lock()

    def contend(idx):
        barrier.wait()
        with _FileLock(lock_path, timeout_s=10.0, stale_s=300.0):
            with order_lock:
                acquired.append(idx)
            time.sleep(0.01)

    threads = [threading.Thread(target=contend, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30.0)
    # exactly one waiter broke the stale lock, but every contender --
    # winners and losers alike -- eventually acquired, serially
    assert sorted(acquired) == list(range(n))
    assert obs.registry().counters.get("store.stale_locks_broken") == 1
    assert not lock_path.exists()                 # released afterwards
