"""Tests for Machine wiring: techniques, allocators, MMU modes."""
import numpy as np
import pytest

from repro import Machine
from repro.errors import LaunchError
from repro.gpu.machine import FIGURE6_TECHNIQUES, TECHNIQUES
from repro.memory.cuda_allocator import CudaHeapAllocator
from repro.memory.mmu import MMUMode
from repro.memory.shared_oa import SharedOAAllocator
from repro.memory.typepointer_alloc import TypePointerAllocator

from conftest import ALL_TECHNIQUES


def test_unknown_technique_rejected():
    with pytest.raises(LaunchError):
        Machine("magic")


def test_constructor_knobs_are_keyword_only():
    from repro.gpu.config import small_config

    with pytest.raises(TypeError):
        Machine("cuda", small_config())
    with pytest.raises(TypeError):
        Machine("sharedoa", None, 128)
    # the same knobs spelled as keywords are fine
    m = Machine("sharedoa", config=small_config(),
                initial_chunk_objects=128, heap_capacity=1 << 20,
                merge_adjacent=False)
    assert m.technique == "sharedoa"


def test_launch_label_annotated_optional():
    import typing

    hints = typing.get_type_hints(Machine.launch)
    assert hints["label"] == typing.Optional[str]


@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
def test_machine_batch_free(machine_factory, animals, technique):
    m = machine_factory(technique)
    dogs = m.new_objects(animals.Dog, 12)
    cats = m.new_objects(animals.Cat, 12)
    assert m.allocator.live_count() == 24
    m.free_objects(dogs)                      # ndarray input
    m.free_objects([int(p) for p in cats])    # iterable input
    assert m.allocator.live_count() == 0
    assert m.allocator.stats.frees == 24


def test_machine_batch_free_single_and_empty(machine_factory, animals):
    m = machine_factory("typepointer")
    objs = m.new_objects(animals.Dog, 2)
    m.free_objects([])                        # no-op
    m.free_objects(objs[:1])                  # single-element path
    assert m.allocator.live_count() == 1
    m.free_objects(objs[1:])
    assert m.allocator.live_count() == 0


def test_default_replay_memo_hook(machine_factory):
    from repro.gpu.machine import set_default_replay_memo
    from repro.harness.runner import ReplayMemo

    memo = ReplayMemo()
    prev = set_default_replay_memo(memo)
    try:
        m = machine_factory("cuda")
        assert m._replay_memo is memo
    finally:
        set_default_replay_memo(prev)
    # restored: new machines no longer pick it up
    assert machine_factory("cuda")._replay_memo is prev


def test_technique_lists_consistent():
    assert set(FIGURE6_TECHNIQUES) <= set(TECHNIQUES)
    assert set(ALL_TECHNIQUES) == set(TECHNIQUES)


@pytest.mark.parametrize(
    "technique,alloc_cls",
    [
        ("cuda", CudaHeapAllocator),
        ("concord", CudaHeapAllocator),
        ("sharedoa", SharedOAAllocator),
        ("coal", SharedOAAllocator),
        ("typepointer", TypePointerAllocator),
        ("typepointer_proto", TypePointerAllocator),
        ("tp_on_cuda", TypePointerAllocator),
    ],
)
def test_allocator_wiring(machine_factory, technique, alloc_cls):
    assert isinstance(machine_factory(technique).allocator, alloc_cls)


def test_tp_on_cuda_wraps_cuda_allocator(machine_factory):
    m = machine_factory("tp_on_cuda")
    assert isinstance(m.allocator.inner, CudaHeapAllocator)


def test_typepointer_wraps_sharedoa(machine_factory):
    m = machine_factory("typepointer")
    assert isinstance(m.allocator.inner, SharedOAAllocator)


@pytest.mark.parametrize(
    "technique,mode",
    [
        ("cuda", MMUMode.BASELINE),
        ("concord", MMUMode.BASELINE),
        ("sharedoa", MMUMode.BASELINE),
        ("coal", MMUMode.BASELINE),
        ("typepointer", MMUMode.TYPEPOINTER),
        ("typepointer_proto", MMUMode.PROTOTYPE),
        ("tp_on_cuda", MMUMode.TYPEPOINTER),
    ],
)
def test_mmu_mode_wiring(machine_factory, technique, mode):
    assert machine_factory(technique).mmu.mode is mode


def test_header_sizes(machine_factory, animals):
    # CUDA: one vTable*; SharedOA: CPU+GPU vTable*; Concord: 4B tag
    sizes = {}
    for tech in ("cuda", "concord", "sharedoa"):
        m = machine_factory(tech)
        m.register(animals.Dog)
        sizes[tech] = m.registry.layout(animals.Dog).size
    assert sizes["concord"] <= sizes["cuda"] <= sizes["sharedoa"]


def test_new_objects_constructs_headers(machine_factory, animals):
    m = machine_factory("sharedoa")
    dog = m.new_objects(animals.Dog, 1)[0]
    gpu_vt = int(m.heap.load(int(dog), "u64"))
    assert m.arena.type_of_vtable_addr(gpu_vt) is animals.Dog
    # the CPU vTable pointer (offset 8) differs from the GPU one
    cpu_vt = int(m.heap.load(int(dog) + 8, "u64"))
    assert cpu_vt != gpu_vt


def test_free_objects(machine_factory, animals):
    m = machine_factory("cuda")
    dogs = m.new_objects(animals.Dog, 10)
    m.free_objects(dogs[:5])
    assert m.allocator.live_count() == 5


def test_array_from_roundtrip(machine_factory):
    m = machine_factory("cuda")
    vals = np.array([1.5, -2.5, 3.25], dtype=np.float64)
    arr = m.array_from(vals, "f64")
    np.testing.assert_array_equal(arr.read(), vals)


def test_device_array_validation(machine_factory):
    m = machine_factory("cuda")
    with pytest.raises(ValueError):
        m.array("u32", 0)
    with pytest.raises(ValueError):
        m.array("nope", 4)
    arr = m.array("u32", 4)
    with pytest.raises(IndexError):
        arr.addr(np.array([4], dtype=np.uint64))
    with pytest.raises(ValueError):
        arr.write(np.zeros(3))


def test_device_array_item_access(machine_factory):
    m = machine_factory("cuda")
    arr = m.array("u32", 4)
    arr[2] = 42
    assert arr[2] == 42
    assert len(arr) == 4


def test_describe(machine_factory):
    text = machine_factory("coal").describe()
    assert "coal" in text and "SharedOA" in text


def test_register_builds_vtables_for_bases(machine_factory, animals):
    m = machine_factory("cuda")
    m.register(animals.Puppy)  # should pull in Dog and Animal
    assert m.arena.num_tables() == 3
