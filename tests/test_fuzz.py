"""Tests for (and via) the differential dispatch fuzzer."""

import pytest

from repro.harness.fuzz import (
    FuzzProgram,
    _execute,
    _oracle,
    fuzz,
    generate_program,
)


def test_generation_deterministic():
    a, b = generate_program(42), generate_program(42)
    assert a == b
    assert generate_program(43) != a


def test_programs_always_have_work():
    for seed in range(10):
        prog = generate_program(seed)
        assert ("call", "work") in prog.ops
        assert any(op[0] == "alloc" for op in prog.ops)


def test_oracle_simple_program():
    prog = FuzzProgram(
        seed=0, num_leaf_types=2, multipliers=[2, 3], adders=[1, 0],
        ops=[("alloc", 0), ("alloc", 1), ("call", "work"),
             ("call", "work")],
    )
    # type0: v = (0*2+1)=1 then (1*2+1)=3 ; type1: v = 0 then 0
    assert _oracle(prog) == ((3, 0), (0, 0))


def test_oracle_free_removes_object():
    prog = FuzzProgram(
        seed=0, num_leaf_types=1, multipliers=[2], adders=[5],
        ops=[("alloc", 0), ("alloc", 0), ("free", 0), ("call", "work")],
    )
    assert len(_oracle(prog)) == 1


def test_execute_matches_oracle_on_known_program():
    prog = FuzzProgram(
        seed=1, num_leaf_types=3, multipliers=[1, 2, 3], adders=[4, 0, 7],
        ops=[("alloc", 0), ("alloc", 1), ("alloc", 2), ("call", "work"),
             ("free", 1), ("call", "tweak"), ("alloc", 1),
             ("call", "work")],
    )
    expected = _oracle(prog)
    for tech in ("cuda", "coal", "typepointer"):
        assert _execute(prog, tech) == expected, tech


def test_fuzz_batch_all_techniques():
    """The headline: 12 random programs x every dispatch implementation
    agree bit-exactly with the pure-Python oracle."""
    report = fuzz(num_programs=12, start_seed=100)
    assert report.ok, report.divergences


def test_fuzz_report_counts():
    report = fuzz(num_programs=3, start_seed=50,
                  techniques=("cuda",))
    assert report.programs == 3
    assert report.ok


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(1000, 1016))
def test_fuzz_fixed_seed_block(seed):
    """Differential fuzz over a pinned seed block, one seed per test so
    a regression names the exact failing program.  Nightly CI runs a
    much larger sweep via ``python -m repro fuzz``."""
    report = fuzz(num_programs=1, start_seed=seed)
    assert report.ok, report.divergences


def test_frontend_execute_matches_oracle_on_known_program():
    prog = FuzzProgram(
        seed=1, num_leaf_types=3, multipliers=[1, 2, 3], adders=[4, 0, 7],
        ops=[("alloc", 0), ("alloc", 1), ("alloc", 2), ("call", "work"),
             ("free", 1), ("call", "tweak"), ("alloc", 1),
             ("call", "work")],
    )
    expected = _oracle(prog)
    for tech in ("cuda", "coal", "typepointer"):
        assert _execute(prog, tech, frontend=True) == expected, tech


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(2000, 2008))
def test_fuzz_frontend_fixed_seed_block(seed):
    """The same pinned-seed discipline for the device_class/@kernel
    lowering: every generated program, declared through the public
    front-end, must agree with the oracle under every technique."""
    report = fuzz(num_programs=1, start_seed=seed, frontend=True)
    assert report.ok, report.divergences
