"""Tests for the technique registry (repro.techniques).

The registry is the single seam through which Machine, the harness
sweeps, the fuzzer and the CLI learn what techniques exist; these
tests pin its contract: registration rules, alias resolution,
did-you-mean errors and the tag-driven queries.
"""
import pytest

from repro import Machine, UnknownTechniqueError, techniques
from repro.gpu.config import small_config
from repro.memory.mmu import MMUMode

from conftest import ALL_TECHNIQUES, FIG6_TECHNIQUES


def test_available_lists_all_builtins_in_order():
    assert techniques.available() == ALL_TECHNIQUES


def test_resolve_returns_spec_with_matching_name():
    spec = techniques.resolve("coal")
    assert spec.name == "coal"
    assert spec.header_size == 16


@pytest.mark.parametrize("alias,canonical", [
    ("tp", "typepointer"),
    ("dynasoar", "soa"),
    ("soaalloc", "soa"),
])
def test_alias_resolution(alias, canonical):
    assert techniques.resolve(alias).name == canonical


def test_unknown_name_raises_with_hints():
    with pytest.raises(UnknownTechniqueError) as excinfo:
        techniques.resolve("sooa")
    err = excinfo.value
    assert err.technique == "sooa"
    assert set(err.known) == set(ALL_TECHNIQUES)
    assert "soa" in err.hints
    assert "did you mean" in str(err)
    assert "soa" in str(err)


def test_unknown_name_without_close_match_still_lists_known():
    with pytest.raises(UnknownTechniqueError) as excinfo:
        techniques.resolve("zzzzzz")
    msg = str(excinfo.value)
    assert "known techniques" in msg
    assert "typepointer" in msg


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="duplicate technique 'cuda'"):
        techniques.register(
            "cuda", lambda m: None, lambda: None, header_size=8)


def test_alias_collision_rejected():
    # both against a canonical name and against an existing alias
    with pytest.raises(ValueError, match="duplicate"):
        techniques.register(
            "fresh1", lambda m: None, lambda: None, header_size=8,
            aliases=("soa",))
    with pytest.raises(ValueError, match="duplicate"):
        techniques.register(
            "fresh2", lambda m: None, lambda: None, header_size=8,
            aliases=("tp",))
    # the failed registrations must not leak partial state
    assert "fresh1" not in techniques.available()
    assert "fresh2" not in techniques.available()


def test_registering_name_shadowing_alias_rejected():
    with pytest.raises(ValueError, match="duplicate technique 'tp'"):
        techniques.register("tp", lambda m: None, lambda: None,
                            header_size=8)


def test_unknown_tags_rejected():
    with pytest.raises(ValueError, match="unknown technique tags"):
        techniques.register(
            "fresh3", lambda m: None, lambda: None, header_size=8,
            tags=("paper", "bogus_tag"))
    assert "fresh3" not in techniques.available()


def test_register_unregister_roundtrip():
    from repro.core.dispatch import SharedVTableDispatch
    from repro.memory.shared_oa import SharedOAAllocator

    spec = techniques.register(
        "mytech",
        lambda m: SharedOAAllocator(m.heap),
        SharedVTableDispatch,
        header_size=16,
        aliases=("mt",),
        description="test-local technique",
        tags=("fuzz",),
    )
    try:
        assert spec.name == "mytech"
        assert "mytech" in techniques.available()
        assert techniques.resolve("mt").name == "mytech"
        assert "mytech" in techniques.fuzz_techniques()
        # a Machine builds through the user registration, no core edits
        m = Machine("mytech", config=small_config())
        assert m.technique == "mytech"
        assert m.strategy.header_size == 16
    finally:
        techniques.unregister("mytech")
    assert "mytech" not in techniques.available()
    with pytest.raises(UnknownTechniqueError):
        techniques.resolve("mt")  # aliases die with the registration


def test_unregister_unknown_raises_keyerror():
    with pytest.raises(KeyError):
        techniques.unregister("never_registered")


def test_paper_query_is_the_figure6_five():
    assert techniques.paper_techniques() == FIG6_TECHNIQUES


def test_figure_query_is_paper_five_plus_soa():
    assert techniques.figure_techniques() == FIG6_TECHNIQUES + ("soa",)


def test_fuzz_query_includes_soa_and_prototypes():
    fuzzed = techniques.fuzz_techniques()
    assert "soa" in fuzzed
    assert "typepointer_proto" in fuzzed
    assert "typepointer_indexed" in fuzzed
    assert "tp_on_cuda" not in fuzzed  # Figure 11 variant, not a default


def test_microbench_query():
    assert techniques.microbench_techniques() == (
        "cuda", "coal", "typepointer", "soa")


def test_machine_resolves_through_registry():
    m = Machine("dynasoar", config=small_config())
    assert m.technique == "soa"  # aliases canonicalise
    assert type(m.allocator).__name__ == "SoaAllocator"
    assert m.mmu.mode is MMUMode.BASELINE


def test_machine_unknown_technique_error():
    with pytest.raises(UnknownTechniqueError, match="did you mean"):
        Machine("typepointre", config=small_config())


def test_deprecated_tuples_mirror_registry():
    from repro.gpu.machine import FIGURE6_TECHNIQUES, TECHNIQUES

    assert tuple(TECHNIQUES) == techniques.available()
    assert tuple(FIGURE6_TECHNIQUES) == techniques.paper_techniques()


def test_spec_mmu_modes():
    assert techniques.get("typepointer").mmu_mode is MMUMode.TYPEPOINTER
    assert techniques.get("typepointer_proto").mmu_mode is MMUMode.PROTOTYPE
    assert techniques.get("soa").mmu_mode is MMUMode.BASELINE
