"""The cluster layer: hash ring, router, failover, shedding."""
from __future__ import annotations

import contextlib
import threading
import time

import pytest

from repro.serve import ClusterRouter, HashRing, ReproServer, ServeClient
from repro.serve.cluster import WorkerConfig


# ----------------------------------------------------------------------
# hash ring units
# ----------------------------------------------------------------------
def test_ring_lookup_is_deterministic_across_instances():
    a = HashRing(("w0", "w1", "w2"))
    b = HashRing(("w2", "w0", "w1"))    # insertion order must not matter
    keys = [f"key-{i}" for i in range(200)]
    assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]


def test_ring_spreads_keys_over_all_workers():
    ring = HashRing(("w0", "w1", "w2"))
    owners = {ring.lookup(f"key-{i}") for i in range(500)}
    assert owners == {"w0", "w1", "w2"}


def test_ring_remove_only_remaps_the_lost_arc():
    """Consistent-hashing stability: dropping one worker must not move
    any key that it did not own -- the survivors keep their (warm-cache)
    key sets intact."""
    ring = HashRing(("w0", "w1", "w2"))
    keys = [f"key-{i}" for i in range(1000)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("w1")
    for k in keys:
        after = ring.lookup(k)
        if before[k] == "w1":
            assert after in ("w0", "w2")
        else:
            assert after == before[k], (
                f"{k} moved {before[k]} -> {after} though w1 owned "
                f"neither")


def test_ring_add_only_steals_from_existing_arcs():
    ring = HashRing(("w0", "w1"))
    keys = [f"key-{i}" for i in range(1000)]
    before = {k: ring.lookup(k) for k in keys}
    ring.add("w2")
    moved = {k for k in keys if ring.lookup(k) != before[k]}
    # everything that moved now belongs to the newcomer, and it got a
    # non-trivial share
    assert moved and all(ring.lookup(k) == "w2" for k in moved)
    # re-removing the newcomer restores the original assignment exactly
    ring.remove("w2")
    assert {k: ring.lookup(k) for k in keys} == before


def test_ring_empty_and_membership():
    ring = HashRing()
    assert ring.lookup("anything") is None
    ring.add("w0")
    assert "w0" in ring and len(ring) == 1
    ring.add("w0")                      # idempotent
    assert len(ring) == 1
    ring.remove("w0")
    assert ring.lookup("anything") is None


# ----------------------------------------------------------------------
# router over attached in-process daemons
# ----------------------------------------------------------------------
class TaggedCompute:
    """Worker-identifying compute: the reply names the worker that ran
    it, so tests can observe routing from the outside."""

    def __init__(self, tag: str, delay: float = 0.0):
        self.tag = tag
        self.delay = delay
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, spec):
        with self._lock:
            self.calls.append((spec["experiment"], spec["seed"]))
        if self.delay:
            time.sleep(self.delay)
        return {"rendered": f"{self.tag}:{spec['experiment']}"
                            f":{spec['seed']}"}


@contextlib.contextmanager
def attached_cluster(tmp_path, n=2, delay=0.0, **server_kw):
    """n in-thread daemons + a router attached to their sockets."""
    servers, threads, socks, computes = [], [], {}, {}
    for i in range(n):
        wid = f"w{i}"
        sock = str(tmp_path / f"{wid}.sock")
        compute = TaggedCompute(wid, delay=delay)
        server = ReproServer(socket_path=sock, compute=compute,
                             use_store=False, **server_kw)
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.ready.wait(10), f"daemon {wid} never started"
        servers.append(server)
        threads.append(thread)
        socks[wid] = sock
        computes[wid] = compute
    rsock = str(tmp_path / "router.sock")
    router = ClusterRouter(socket_path=rsock, attach=socks)
    rc = {}
    rthread = threading.Thread(
        target=lambda: rc.setdefault("code", router.run()), daemon=True)
    rthread.start()
    assert router.ready.wait(30), "router never became ready"
    try:
        yield router, servers, computes, ServeClient(socket_path=rsock), rc
    finally:
        router.request_shutdown()
        rthread.join(30)
        assert not rthread.is_alive(), "router failed to drain"
        for server in servers:
            server.request_shutdown()
        for thread in threads:
            thread.join(20)


def test_router_routes_consistently_and_tags_the_worker(tmp_path):
    with attached_cluster(tmp_path, n=2) as (router, _, _, client, _):
        first = client.submit("init", seed=1, quick=True, scale=0.05)
        again = client.submit("init", seed=1, quick=True, scale=0.05)
        assert first["ok"] and again["ok"]
        # same job key -> same worker, and the repeat is a cache hit
        # on that worker (the ring preserved its locality)
        assert first["worker"] == again["worker"]
        assert again["outcome"] == "cached"
        assert first["rendered"] == again["rendered"]
        assert first["rendered"].startswith(first["worker"] + ":")


def test_router_spreads_distinct_keys_over_workers(tmp_path):
    with attached_cluster(tmp_path, n=2) as (router, _, computes,
                                             client, _):
        workers_seen = set()
        for seed in range(24):
            reply = client.submit("init", seed=seed, quick=True,
                                  scale=0.05)
            assert reply["ok"], reply
            workers_seen.add(reply["worker"])
            # the reply really came from the worker the router named
            assert reply["rendered"].startswith(reply["worker"] + ":")
        assert workers_seen == {"w0", "w1"}
        # each worker computed exactly the keys routed to it
        for wid, compute in computes.items():
            assert compute.calls, f"{wid} computed nothing"


def test_router_preserves_dedup_join_across_duplicates(tmp_path):
    with attached_cluster(tmp_path, n=2, delay=0.8) as (
            router, _, computes, client, _):
        sock = str(tmp_path / "router.sock")
        replies = [None] * 4

        def go(i):
            c = ServeClient(socket_path=sock)
            replies[i] = c.submit("init", seed=3, quick=True, scale=0.05)

        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert all(r and r["ok"] for r in replies), replies
        # all four landed on one worker and collapsed to one computation
        assert len({r["worker"] for r in replies}) == 1
        total_calls = sum(len(c.calls) for c in computes.values())
        assert total_calls == 1
        outcomes = sorted(r["outcome"] for r in replies)
        assert outcomes == ["computed", "dedup", "dedup", "dedup"]


def test_router_sheds_at_the_front_after_worker_backpressure(tmp_path):
    with attached_cluster(tmp_path, n=1, delay=2.0, queue_limit=1,
                          job_threads=1) as (router, _, _, client, _):
        sock = str(tmp_path / "router.sock")
        background = threading.Thread(
            target=lambda: ServeClient(socket_path=sock).submit(
                "init", seed=1, quick=True, scale=0.05),
            daemon=True)
        background.start()
        time.sleep(0.4)                  # seed=1 is now occupying the slot
        first = client.submit("init", seed=2, quick=True, scale=0.05)
        assert first["ok"] is False and first["error"] == "queue_full"
        assert first.get("shed_by") != "router"     # the worker said no
        assert first["retry_after"] > 0
        # the router remembered the backpressure window: the next submit
        # for that arc is shed at the front without touching the worker
        second = client.submit("init", seed=4, quick=True, scale=0.05)
        assert second["ok"] is False and second["error"] == "queue_full"
        assert second.get("shed_by") == "router"
        assert second["retry_after"] > 0
        assert router.shed >= 1
        background.join(15)


def test_router_fails_over_when_an_attached_worker_dies(tmp_path):
    with attached_cluster(tmp_path, n=2) as (router, servers, _,
                                             client, _):
        # learn which worker owns each seed, then kill one worker
        owner = {}
        for seed in range(12):
            reply = client.submit("init", seed=seed, quick=True,
                                  scale=0.05)
            owner[seed] = reply["worker"]
        assert set(owner.values()) == {"w0", "w1"}
        servers[0].request_shutdown()            # w0 goes away
        # every key -- including w0's -- still gets an answer, now from
        # w1: the router sees the drain (or the closed socket), evicts
        # w0 from the ring and resubmits transparently
        for seed in range(12):
            reply = client.submit("init", seed=seed, quick=True,
                                  scale=0.05)
            assert reply["ok"], reply
            assert reply["worker"] == "w1"
        assert router.worker_deaths >= 1


def test_router_status_aggregates_workers(tmp_path):
    with attached_cluster(tmp_path, n=2) as (router, _, _, client, _):
        for seed in range(6):
            assert client.submit("init", seed=seed, quick=True,
                                 scale=0.05)["ok"]
        status = client.status()
        assert status["ok"] is True
        assert status["jobs_completed"] == 6
        assert status["jobs_admitted"] == 6
        cluster = status["cluster"]
        assert cluster["ring"] == ["w0", "w1"]
        assert cluster["routed"] == 6
        assert set(status["workers"]) == {"w0", "w1"}
        assert all(w["alive"] for w in status["workers"].values())
        health = client.health()
        assert health["ok"] is True and health["workers_on_ring"] == 2


# ----------------------------------------------------------------------
# spawn mode: real subprocess workers under supervision
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_spawned_cluster_restarts_a_killed_worker_and_drains(tmp_path):
    router = ClusterRouter(
        num_workers=2,
        socket_path=str(tmp_path / "router.sock"),
        worker_dir=str(tmp_path / "workers"),
        worker_config=WorkerConfig(synthetic_s=0.005, use_store=False),
    )
    rc = {}
    thread = threading.Thread(
        target=lambda: rc.setdefault("code", router.run()), daemon=True)
    thread.start()
    assert router.ready.wait(120), "spawned cluster never became ready"
    try:
        client = ServeClient(socket_path=str(tmp_path / "router.sock"),
                             timeout=60.0)
        for seed in range(8):
            assert client.submit("init", seed=seed, quick=True,
                                 scale=0.05)["ok"]
        killed = router.kill_worker()
        assert killed in ("w0", "w1")
        deadline = time.monotonic() + 60.0
        while ((router.worker_restarts < 1 or len(router.ring) < 2)
               and time.monotonic() < deadline):
            time.sleep(0.1)
        assert router.worker_deaths >= 1
        assert router.worker_restarts >= 1
        assert len(router.ring) == 2, "killed worker never rejoined"
        # the cluster still answers for every key after the restart
        for seed in range(8):
            assert client.submit("init", seed=seed, quick=True,
                                 scale=0.05)["ok"]
    finally:
        router.request_shutdown()
        thread.join(120)
    assert not thread.is_alive(), "cluster failed to drain"
    assert rc["code"] == 0
