"""Tests for the simulated device heap."""
import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAddress
from repro.memory.heap import Heap


def test_sbrk_returns_aligned_disjoint_regions(heap):
    a = heap.sbrk(100, 16)
    b = heap.sbrk(100, 16)
    assert a % 16 == 0 and b % 16 == 0
    assert b >= a + 100


def test_sbrk_zero(heap):
    a = heap.sbrk(0)
    b = heap.sbrk(16)
    assert b >= a


def test_sbrk_negative_rejected(heap):
    with pytest.raises(ValueError):
        heap.sbrk(-1)


def test_null_guard_faults(heap):
    with pytest.raises(InvalidAddress):
        heap.load(0, "u64")
    with pytest.raises(InvalidAddress):
        heap.store(8, "u32", 1)


def test_access_beyond_brk_faults(heap):
    addr = heap.sbrk(64)
    with pytest.raises(InvalidAddress):
        heap.load(addr + 64, "u64")


def test_scalar_roundtrip_all_dtypes(heap):
    addr = heap.sbrk(128)
    cases = [
        ("u8", 200), ("u16", 65000), ("u32", 4_000_000_000),
        ("i32", -123456), ("u64", 2**60), ("i64", -(2**40)),
        ("f32", 1.5), ("f64", -2.25),
    ]
    for i, (dt, val) in enumerate(cases):
        heap.store(addr + i * 16, dt, val)
        got = heap.load(addr + i * 16, dt)
        assert got == val or np.isclose(float(got), float(val))


def test_heap_grows_on_demand():
    h = Heap(capacity=1024)
    addr = h.sbrk(100_000)
    h.store(addr + 99_992, "u64", 77)
    assert h.load(addr + 99_992, "u64") == 77


def test_growth_preserves_contents():
    h = Heap(capacity=1024)
    a = h.sbrk(100)
    h.store(a, "u64", 0xDEADBEEF)
    h.sbrk(1 << 20)  # force growth
    assert h.load(a, "u64") == 0xDEADBEEF


def test_gather_scatter_roundtrip(heap):
    base = heap.sbrk(1024)
    addrs = np.array([base, base + 40, base + 8, base + 200], dtype=np.uint64)
    vals = np.array([1, 2, 3, 4], dtype=np.uint64)
    heap.scatter(addrs, "u64", vals)
    got = heap.gather(addrs, "u64")
    np.testing.assert_array_equal(got, vals)


def test_gather_empty(heap):
    out = heap.gather(np.empty(0, dtype=np.uint64), "u32")
    assert out.size == 0
    heap.scatter(np.empty(0, dtype=np.uint64), "u32", np.empty(0))


def test_gather_out_of_range_faults(heap):
    base = heap.sbrk(64)
    bad = np.array([base, base + 10**9], dtype=np.uint64)
    with pytest.raises(InvalidAddress):
        heap.gather(bad, "u32")


def test_scatter_null_guard_faults(heap):
    heap.sbrk(64)
    with pytest.raises(InvalidAddress):
        heap.scatter(np.array([4], dtype=np.uint64), "u32",
                     np.array([1], dtype=np.uint32))


def test_scatter_duplicate_addresses_last_wins(heap):
    base = heap.sbrk(64)
    addrs = np.array([base, base, base], dtype=np.uint64)
    heap.scatter(addrs, "u32", np.array([1, 2, 3], dtype=np.uint32))
    assert heap.load(base, "u32") == 3


def test_misaligned_scalar_access(heap):
    base = heap.sbrk(64)
    heap.store(base + 3, "u32", 0x01020304)
    assert heap.load(base + 3, "u32") == 0x01020304


def test_read_write_array_roundtrip(heap):
    base = heap.sbrk(4 * 100)
    vals = np.arange(100, dtype=np.float32)
    heap.write_array(base, "f32", vals)
    np.testing.assert_array_equal(heap.read_array(base, "f32", 100), vals)


def test_fill(heap):
    base = heap.sbrk(64)
    heap.fill(base, 64, 0xFF)
    assert heap.load(base + 32, "u8") == 0xFF
    heap.fill(base, 64, 0)
    assert heap.load(base + 32, "u8") == 0


def test_sbrk_regions_zeroed(heap):
    a = heap.sbrk(256)
    assert heap.load(a + 128, "u64") == 0


@given(
    offsets=st.lists(
        st.integers(min_value=0, max_value=96), min_size=1, max_size=32
    ),
    values=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=32
    ),
)
def test_gather_reads_what_scatter_wrote(offsets, values):
    h = Heap(capacity=1 << 16)
    base = h.sbrk(512, 16)
    n = min(len(offsets), len(values))
    # deduplicate offsets so last-write-wins doesn't confuse the check
    uniq = sorted(set(offsets[:n]))
    addrs = np.array([base + o * 4 for o in uniq], dtype=np.uint64)
    vals = np.array(values[: len(uniq)], dtype=np.uint32)
    if len(vals) < len(addrs):
        addrs = addrs[: len(vals)]
    h.scatter(addrs, "u32", vals)
    np.testing.assert_array_equal(h.gather(addrs, "u32"), vals)
