"""Differential test: front-end GOL is bit-identical to the raw path.

``RawGol`` below is a frozen copy of the *pre-front-end* Game of Life:
hand-built :class:`TypeDescriptor` hierarchies, closure kernels with
explicit ``load_field``/``store_field``/``vcall`` charges, launched
straight through ``Machine.launch``.  The refactored workload in
:mod:`repro.workloads.game_of_life` declares the same hierarchy through
``device_class`` and launches through ``@kernel`` -- and must produce
the *same checksum and the same KernelStats, field for field*, under
every Figure 6 technique.  Any charge the front-end adds, drops or
reorders shows up here as a stats mismatch.
"""
from __future__ import annotations

import numpy as np
import pytest

from conftest import FIG6_TECHNIQUES
from repro import Machine, TypeDescriptor
from repro.gpu.config import small_config
from repro.memory.address_space import strip_tag_array
from repro.workloads import make_workload

SCALE = 0.04
SEED = 11
ITERATIONS = 2


class RawGol:
    """Pre-refactor GOL, kept verbatim as the bit-identity reference."""

    GRID_W = 128
    GRID_H = 128
    ALIVE_FRACTION = 0.35

    def __init__(self, machine: Machine, scale: float = SCALE,
                 seed: int = SEED):
        self.machine = machine
        self.scale = scale
        self.seed = seed

        tag = "rawgol"
        agent = TypeDescriptor(f"Agent#{tag}", methods={"update": None})
        cell = TypeDescriptor(
            f"Cell#{tag}", base=agent,
            fields=[("alive", "u32"), ("state", "u32"),
                    ("neighbors", "u32"), ("index", "u32")],
        )

        def alive_update(ctx, objs):
            n = ctx.load_field(objs, cell, "neighbors")
            ctx.alu(3)  # two compares + select
            survives = (n == 2) | (n == 3)
            new_state = np.where(survives, 1, 0)
            ctx.store_field(objs, cell, "state",
                            new_state.astype(np.uint32))
            ctx.store_field(objs, cell, "alive",
                            (new_state == 1).astype(np.uint32))

        def dead_update(ctx, objs):
            n = ctx.load_field(objs, cell, "neighbors")
            ctx.alu(2)  # compare + select
            born = n == 3
            new_state = np.where(born, 1, 0)
            ctx.store_field(objs, cell, "state",
                            new_state.astype(np.uint32))
            ctx.store_field(objs, cell, "alive",
                            (new_state == 1).astype(np.uint32))

        self.Cell = cell
        self.state_types = {
            1: TypeDescriptor(f"AliveCell#{tag}", base=cell,
                              methods={"update": alive_update}),
            0: TypeDescriptor(f"DeadCell#{tag}", base=cell,
                              methods={"update": dead_update}),
        }

    # -- setup: identical construction order to CellularAutomaton ------
    def setup(self) -> None:
        m = self.machine
        rng = np.random.default_rng(self.seed)
        side_scale = max(0.1, self.scale) ** 0.5
        self.width = max(16, int(self.GRID_W * side_scale))
        self.height = max(16, int(self.GRID_H * side_scale))
        self.n_cells = self.width * self.height

        m.register(*self.state_types.values())
        states = (rng.random(self.n_cells) < self.ALIVE_FRACTION
                  ).astype(np.int64)
        self.states = states
        ptrs = np.empty(self.n_cells, dtype=np.uint64)
        for i in range(self.n_cells):
            ptrs[i] = self._construct_cell(i, int(states[i]))
        self.cell_ptrs = ptrs
        self.grid = m.array_from(ptrs, "u64")

        idx = np.arange(self.n_cells)
        x = idx % self.width
        y = idx // self.width
        self._neighbor_idx = []
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                nx = (x + dx) % self.width
                ny = (y + dy) % self.height
                self._neighbor_idx.append(
                    (ny * self.width + nx).astype(np.int64))

    def _construct_cell(self, index: int, state: int) -> int:
        m = self.machine
        tdesc = self.state_types[state]
        ptr = m.new_objects(tdesc, 1)[0]
        c = m.allocator._canonical(int(ptr))
        lay = m.registry.layout(tdesc)
        m.heap.store(c + lay.offset("alive"), "u32",
                     1 if state == 1 else 0)
        m.heap.store(c + lay.offset("state"), "u32", state)
        m.heap.store(c + lay.offset("index"), "u32", index)
        return int(ptr)

    # -- compute: raw closure kernels through Machine.launch -----------
    def iterate(self) -> None:
        m = self.machine
        grid, neighbor_idx, cell = self.grid, self._neighbor_idx, self.Cell

        def count_kernel(ctx):
            ptrs = grid.ld(ctx, ctx.tid)
            counts = np.zeros(ctx.lane_count, dtype=np.uint32)
            for nidx in neighbor_idx:
                nb_ptrs = grid.ld(ctx, nidx[ctx.tid])
                alive = ctx.load_field(nb_ptrs, cell, "alive")
                ctx.alu(1)
                counts += alive
            ctx.store_field(ptrs, cell, "neighbors", counts)

        def update_kernel(ctx):
            ptrs = grid.ld(ctx, ctx.tid)
            ctx.vcall(ptrs, cell, "update")

        m.launch(count_kernel, self.n_cells, label="count_kernel")
        m.launch(update_kernel, self.n_cells, label="update_kernel")
        self._retype_phase()

    def _retype_phase(self) -> None:
        m = self.machine
        lay = m.registry.layout(self.Cell)
        off_state = lay.offset("state")
        canon = strip_tag_array(self.cell_ptrs)
        new_states = m.heap.gather(canon + np.uint64(off_state), "u32")
        changed_idx = np.flatnonzero(new_states != self.states)
        for i in changed_idx.tolist():
            new_state = int(new_states[i])
            m.free_objects([int(self.cell_ptrs[i])])
            new_ptr = self._construct_cell(i, new_state)
            self.cell_ptrs[i] = new_ptr
            self.grid[i] = new_ptr
            self.states[i] = new_state

    def run(self, iterations: int = ITERATIONS):
        self.setup()
        self.machine.reset_run()
        for _ in range(iterations):
            self.iterate()
        return self.machine.run_stats

    def checksum(self) -> float:
        return float(
            (self.states.astype(np.int64)
             * (np.arange(self.n_cells) % 97 + 1)).sum()
        )


# ----------------------------------------------------------------------
@pytest.mark.parametrize("technique", FIG6_TECHNIQUES)
def test_frontend_gol_bit_identical_to_raw_reference(technique):
    ref_machine = Machine(technique, config=small_config())
    ref = RawGol(ref_machine)
    ref_stats = ref.run(ITERATIONS)

    dsl_machine = Machine(technique, config=small_config())
    wl = make_workload("GOL", dsl_machine, scale=SCALE, seed=SEED)
    dsl_stats = wl.run(ITERATIONS)

    assert wl.checksum() == ref.checksum()
    # KernelStats is a dataclass: == compares every counter and every
    # cycle figure, so any extra/missing/reordered charge fails here
    assert dsl_stats == ref_stats


def test_frontend_gol_matches_numpy_reference():
    m = Machine("cuda", config=small_config())
    wl = make_workload("GOL", m, scale=SCALE, seed=SEED)
    wl.run(1)
    expected = wl.reference_step(
        np.asarray(
            (np.random.default_rng(SEED).random(wl.n_cells)
             < wl.ALIVE_FRACTION), dtype=np.int64))
    np.testing.assert_array_equal(wl.states, expected)
