"""Tests for the fault-injection layer (repro.faults)."""
from __future__ import annotations

import os
import pickle

import pytest

import repro.faults as faults
import repro.obs as obs
from repro.faults import (
    FaultError,
    FaultSchedule,
    InjectedDisconnect,
    InjectedFault,
    RetryPolicy,
    ScheduleEntry,
)
from repro.faults import core


# ----------------------------------------------------------------------
# registry + checkpoints
# ----------------------------------------------------------------------
def test_catalog_covers_every_layer():
    declared = faults.declared()
    for name in ("store.lock.acquire", "store.bucket.read",
                 "store.bucket.flush", "store.bucket.replace",
                 "service.shard.spawn", "service.shard.result",
                 "service.shard.body", "serve.frame.read",
                 "serve.frame.write", "serve.admit", "serve.drain"):
        assert name in declared, name
        assert all(a in faults.ACTIONS for a in declared[name])


def test_failpoint_is_noop_when_disarmed():
    assert faults.active() is None
    faults.failpoint("store.lock.acquire")          # must not raise
    assert faults.mangle("store.bucket.read", b"xyz") == b"xyz"


def test_declare_rejects_unknown_action():
    with pytest.raises(ValueError):
        faults.declare("bogus.point", "explode")


def test_armed_raise_fires_at_hit_count():
    sched = FaultSchedule(0, [ScheduleEntry("p", "raise", hit=2)])
    with sched.armed():
        faults.failpoint("p")                       # hit 1: below threshold
        with pytest.raises(InjectedFault) as err:
            faults.failpoint("p")                   # hit 2: fires
        assert err.value.failpoint == "p"
        faults.failpoint("p")                       # once: spent
    faults.failpoint("p")                           # disarmed again


def test_once_false_fires_repeatedly():
    sched = FaultSchedule(0, [ScheduleEntry("p", "raise", hit=1, once=False)])
    with sched.armed():
        for _ in range(3):
            with pytest.raises(InjectedFault):
                faults.failpoint("p")


def test_fired_counters_land_in_obs():
    reg = obs.Registry()
    prev = obs.set_registry(reg)
    try:
        sched = FaultSchedule(0, [ScheduleEntry("p", "delay", arg=0.0)])
        with sched.armed():
            faults.failpoint("p")
    finally:
        obs.set_registry(prev)
    assert reg.counters.get("faults.fired") == 1
    assert reg.counters.get("faults.fired.p") == 1


def test_corrupt_mangles_data_deterministically():
    sched = FaultSchedule(0, [ScheduleEntry("p", "corrupt", arg=99)])
    with sched.armed():
        out1 = faults.mangle("p", b"\x00" * 32)
    with sched.armed():
        out2 = faults.mangle("p", b"\x00" * 32)
    assert out1 == out2 != b"\x00" * 32
    # corrupt at a control (no-data) site is inert
    with sched.armed():
        faults.failpoint("p")


def test_corrupt_bytes_never_identity():
    assert faults.corrupt_bytes(b"", 1) == b"\xff"
    data = os.urandom(64)
    assert faults.corrupt_bytes(data, 7) != data
    # and actually breaks a pickle
    blob = pickle.dumps({"k": 1})
    with pytest.raises(Exception):
        pickle.loads(faults.corrupt_bytes(blob, 3))


def test_disconnect_is_a_connection_reset():
    sched = FaultSchedule(0, [ScheduleEntry("p", "disconnect")])
    with sched.armed():
        with pytest.raises(ConnectionResetError):
            faults.failpoint("p")


def test_kill_downgrades_in_arming_process():
    """A kill aimed at worker shards must never SIGKILL the process
    that armed the schedule."""
    sched = FaultSchedule(0, [ScheduleEntry("p", "kill")])
    with sched.armed():
        with pytest.raises(InjectedFault):
            faults.failpoint("p")                   # not os.kill!


def test_arm_twice_rejected():
    sched = FaultSchedule(0, [ScheduleEntry("p", "raise")])
    with sched.armed():
        with pytest.raises(RuntimeError):
            core.arm(sched)


def test_once_token_claimed_exactly_once(tmp_path):
    sched = FaultSchedule(0, [ScheduleEntry("p", "raise")])
    with sched.armed(scratch_dir=str(tmp_path)) as armed:
        token = tmp_path / "fp-0.token"
        assert token.exists()
        with pytest.raises(InjectedFault):
            faults.failpoint("p")
        assert not token.exists()                   # consumed
        faults.failpoint("p")                       # spent: no-op
        assert armed.consumed() == [("p", "raise")]


def test_set_bypass_swaps_checkpoints():
    sched = FaultSchedule(0, [ScheduleEntry("p", "raise")])
    with sched.armed():
        faults.set_bypass(True)
        try:
            faults.failpoint("p")                   # stubbed out
            assert faults.mangle("p", b"ab") == b"ab"
        finally:
            faults.set_bypass(False)
        with pytest.raises(InjectedFault):
            faults.failpoint("p")


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def test_generate_is_deterministic_and_seed_sensitive():
    a = FaultSchedule.generate(7)
    assert a == FaultSchedule.generate(7)
    assert any(FaultSchedule.generate(s) != a for s in range(8, 16))


def test_generate_respects_declared_actions():
    declared = faults.declared()
    for seed in range(40):
        for entry in FaultSchedule.generate(seed).entries:
            assert entry.action in declared[entry.name], entry


def test_schedule_roundtrip():
    sched = FaultSchedule.generate(11)
    clone = FaultSchedule.from_dict(sched.to_dict())
    assert clone == sched
    with pytest.raises(ValueError):
        FaultSchedule.from_dict({"schema": "nope"})


def test_dry_run_replays_identically():
    for seed in range(12):
        sched = FaultSchedule.generate(seed)
        assert sched.dry_run() == sched.dry_run(), sched.describe()


def test_entry_validation():
    with pytest.raises(ValueError):
        ScheduleEntry("p", "explode")
    with pytest.raises(ValueError):
        ScheduleEntry("p", "raise", hit=0)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
def test_retry_policy_retries_then_succeeds():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise InjectedFault("p")
        return "done"

    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, seed=1)
    assert policy.run(flaky, sleep=lambda _t: None) == "done"
    assert len(calls) == 3


def test_retry_policy_exhausts_and_reraises():
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, seed=1)

    def always():
        raise InjectedFault("p")

    with pytest.raises(InjectedFault):
        policy.run(always, sleep=lambda _t: None)


def test_retry_policy_counts_retried_and_surfaced():
    reg = obs.Registry()
    prev = obs.set_registry(reg)
    try:
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, seed=1)
        with pytest.raises(InjectedFault):
            policy.run(lambda: (_ for _ in ()).throw(InjectedFault("p")),
                       sleep=lambda _t: None)
    finally:
        obs.set_registry(prev)
    assert reg.counters.get("faults.retried.p") == 2
    assert reg.counters.get("faults.surfaced.p") == 1


def test_retry_policy_does_not_catch_unrelated_errors():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.0,
                         retry_on=(FaultError,), seed=1)
    calls = []

    def boom():
        calls.append(1)
        raise KeyError("not transient")

    with pytest.raises(KeyError):
        policy.run(boom, sleep=lambda _t: None)
    assert len(calls) == 1


def test_retry_policy_backoff_bounded_and_seeded():
    a = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05, seed=3)
    b = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05, seed=3)
    gen_a, gen_b = a.backoff(), b.backoff()
    seq = [next(gen_a) for _ in range(8)]
    assert seq == [next(gen_b) for _ in range(8)]
    assert all(0.0 <= d <= 0.05 * 1.25 for d in seq)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_fault_of_walks_cause_chain():
    inner = InjectedFault("p")
    try:
        try:
            raise inner
        except InjectedFault as exc:
            raise RuntimeError("wrapped") from exc
    except RuntimeError as outer:
        assert faults.fault_of(outer) is inner
    assert faults.fault_of(KeyError("x")) is None
    assert faults.fault_of(None) is None


def test_error_types():
    err = InjectedDisconnect("serve.frame.read")
    assert isinstance(err, FaultError)
    assert isinstance(err, ConnectionResetError)
    assert "serve.frame.read" in str(err)


# ----------------------------------------------------------------------
# chaos harness (in-process smoke; CI and `repro chaos` soak more seeds)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_chaos_smoke_two_seeds():
    from repro.faults.chaos import format_report, run_chaos

    report = run_chaos(num_seeds=2, start_seed=0, scale=0.05,
                       verbose=False)
    assert report.ok, format_report(report)
    assert len(report.seeds) == 2
    text = format_report(report)
    assert "PASS" in text
