"""Cross-validation of the replay engines.

The ReferenceEngine is the executable specification (the dict-based
SectoredCache hierarchy); the VectorEngine and FusedEngine must be
*bit-identical* on every counter, across dispatch strategies, workloads
and random access streams.  The differential matrix below runs every
registered technique against every Figure-6 workload under all three
engines and compares whole KernelStats records, not checksums.
"""
from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LaunchError, UnknownEngineError
from repro.gpu.cache import MemoryHierarchy
from repro.gpu.config import CacheGeometry, GPUConfig, small_config
from repro.gpu.machine import Machine
from repro.gpu.replay import (
    ENGINE_ENV_VAR,
    ENGINES,
    FusedEngine,
    ReferenceEngine,
    VectorEngine,
    make_engine,
    resolve_engine_name,
)
from repro.gpu.stats import KernelStats
from repro.gpu.trace import MemoryTrace, role_id
from repro.techniques import available as all_techniques
from repro.workloads import make_workload, workload_names

FIG6_TECHNIQUES = ("cuda", "concord", "sharedoa", "coal", "typepointer")


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
def test_default_engine_is_vector():
    assert GPUConfig().replay_engine == "vector"


def test_engines_registry_names():
    assert ENGINES == ("reference", "vector", "fused")


def test_resolve_engine_prefers_env(monkeypatch):
    cfg = replace(small_config(), replay_engine="vector")
    monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
    assert resolve_engine_name(cfg) == "reference"
    monkeypatch.delenv(ENGINE_ENV_VAR)
    assert resolve_engine_name(cfg) == "vector"


def test_resolve_engine_rejects_unknown(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "warp-drive")
    with pytest.raises(LaunchError):
        resolve_engine_name(small_config())


def test_resolve_engine_unknown_carries_hints(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "fussed")
    with pytest.raises(UnknownEngineError) as excinfo:
        resolve_engine_name(small_config())
    err = excinfo.value
    assert err.engine == "fussed"
    assert err.known == ENGINES
    assert "fused" in err.hints
    assert "did you mean" in str(err)


def test_make_engine_constructs_named_engines():
    cfg = small_config()
    hier = MemoryHierarchy(cfg)
    assert isinstance(make_engine("reference", cfg, hier), ReferenceEngine)
    assert isinstance(make_engine("vector", cfg, hier), VectorEngine)
    assert isinstance(make_engine("fused", cfg, hier), FusedEngine)
    with pytest.raises(UnknownEngineError) as excinfo:
        make_engine("vectr", cfg, hier)
    assert "vector" in excinfo.value.hints
    # UnknownEngineError subclasses LaunchError: existing callers that
    # catch the broad class keep working
    assert isinstance(excinfo.value, LaunchError)


def test_machine_respects_config_engine():
    for name in ENGINES:
        m = Machine("cuda", config=replace(small_config(),
                                           replay_engine=name))
        assert m.engine.name == name


# ----------------------------------------------------------------------
# differential matrix: every technique x every Figure-6 workload x all
# three engines, whole-KernelStats equality
# ----------------------------------------------------------------------
def _run(workload: str, technique: str, engine: str):
    cfg = replace(small_config(), replay_engine=engine)
    m = Machine(technique, config=cfg)
    wl = make_workload(workload, m, scale=0.1, seed=3)
    return wl.run(1), wl.checksum()


@pytest.mark.parametrize("technique", all_techniques())
@pytest.mark.parametrize("workload", workload_names())
def test_engines_bit_identical_on_workloads(workload, technique):
    ref_stats, ref_ck = _run(workload, technique, "reference")
    vec_stats, vec_ck = _run(workload, technique, "vector")
    fus_stats, fus_ck = _run(workload, technique, "fused")
    # KernelStats is a dataclass: == covers every counter, including the
    # per-role dicts and the timing-model outputs derived from them
    assert vec_stats == ref_stats
    assert fus_stats == ref_stats
    assert vec_ck == ref_ck
    assert fus_ck == ref_ck


@pytest.mark.parametrize("engine", ["vector", "fused"])
def test_engines_bit_identical_under_object_churn(engine):
    # GOL retypes objects between launches: allocator reuse stresses
    # cache-state carry-over across waves and launches
    ref_stats, _ = _run("GOL", "typepointer", "reference")
    eng_stats, _ = _run("GOL", "typepointer", engine)
    assert eng_stats == ref_stats


# ----------------------------------------------------------------------
# fused-engine plan cache: repeated waves take the memoized path
# ----------------------------------------------------------------------
def _captured_waves(workload: str, technique: str, scale: float = 0.1):
    """Run a workload under the vector engine, capturing its raw waves."""
    cfg = replace(small_config(), replay_engine="vector")
    m = Machine(technique, config=cfg)
    waves = []
    inner = m.engine.replay_wave

    def capture(traces, stats):
        waves.append(list(traces))
        inner(traces, stats)

    m.engine.replay_wave = capture
    wl = make_workload(workload, m, scale=scale, seed=3)
    wl.run(1)
    return waves


def test_fused_plan_cache_hits_stay_bit_identical():
    cfg = small_config()
    waves = _captured_waves("BFS-vE", "cuda")
    # replay the stream twice through ONE engine: the second pass runs
    # entirely out of the plan cache, against evolved cache state
    vec, fus = VectorEngine(cfg), FusedEngine(cfg)
    vs, fs = KernelStats(), KernelStats()
    for _ in range(2):
        for traces in waves:
            vec.replay_wave(traces, vs)
            fus.replay_wave(traces, fs)
    assert len(fus._plans) > 0
    assert fs == vs
    assert fus.dram_row_hits == vec.dram_row_hits
    assert fus._open_rows == vec._open_rows


def test_fused_plan_cache_respects_byte_budget():
    cfg = small_config()
    waves = _captured_waves("TRAF", "cuda")
    fus = FusedEngine(cfg)
    fus._plans.budget = 1  # evict everything but the newest plan
    stats = KernelStats()
    for traces in waves:
        fus.replay_wave(traces, stats)
    assert len(fus._plans) <= 1
    vec = VectorEngine(cfg)
    vs = KernelStats()
    for traces in waves:
        vec.replay_wave(traces, vs)
    assert stats == vs  # eviction affects speed only, never counters


# ----------------------------------------------------------------------
# sharded L1 replay: the WaveShardPool partition is bit-identical
# ----------------------------------------------------------------------
def test_fused_shard_pool_bit_identical():
    from repro.harness.service import WaveShardPool

    cfg = small_config()
    waves = _captured_waves("BFS-vE", "typepointer")
    serial = FusedEngine(cfg)
    ser_stats = KernelStats()
    for traces in waves:
        serial.replay_wave(traces, ser_stats)

    sharded = FusedEngine(cfg)
    shd_stats = KernelStats()
    with WaveShardPool(cfg, num_shards=2) as pool:
        sharded.attach_shard_pool(pool)
        for traces in waves:
            sharded.replay_wave(traces, shd_stats)
    assert shd_stats == ser_stats
    assert sharded.dram_row_hits == serial.dram_row_hits
    assert sharded._open_rows == serial._open_rows


def test_fused_shard_pool_must_attach_before_first_wave():
    cfg = small_config()
    waves = _captured_waves("TRAF", "cuda")
    engine = FusedEngine(cfg)
    engine.replay_wave(waves[0], KernelStats())

    class _Pool:
        num_shards = 2

    with pytest.raises(LaunchError):
        engine.attach_shard_pool(_Pool())


# ----------------------------------------------------------------------
# property test: random access streams, all three engines in lockstep
# ----------------------------------------------------------------------
#: tiny geometry so evictions and row conflicts happen within a handful
#: of accesses (L1: 8 lines in 4 sets; L2: 32 lines in 16 sets)
_PROP_CFG = GPUConfig(
    name="prop-gpu",
    num_sms=2,
    l1=CacheGeometry(size_bytes=1024, assoc=2),
    l2=CacheGeometry(size_bytes=4096, assoc=2),
    dram_row_bytes=512,
    dram_num_banks=2,
)

_access = st.tuples(
    st.integers(min_value=0, max_value=31),        # line index
    st.integers(min_value=1, max_value=15),        # sector mask
    st.booleans(),                                 # store?
    st.sampled_from([None, "vtable", "vfunc"]),    # role
)
_warp = st.lists(_access, min_size=0, max_size=16)


def _build_trace(sm: int, accs) -> MemoryTrace:
    t = MemoryTrace(sm=sm)
    for line_idx, mask, store, role in accs:
        base = line_idx * 128
        addrs = [base + s * 32 for s in range(4) if mask & (1 << s)]
        t.append_access(np.asarray(addrs, dtype=np.uint64), 1, store,
                        role_id(role))
    return t.finalize()


@given(waves=st.lists(st.lists(_warp, min_size=1, max_size=4),
                      min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_random_streams_bit_identical(waves):
    ref = ReferenceEngine(MemoryHierarchy(_PROP_CFG))
    vec = VectorEngine(_PROP_CFG)
    fus = FusedEngine(_PROP_CFG)
    ref_stats, vec_stats, fus_stats = (KernelStats(), KernelStats(),
                                       KernelStats())
    for wave in waves:
        traces = [_build_trace(w % _PROP_CFG.num_sms, accs)
                  for w, accs in enumerate(wave)]
        # engines replay the same frozen traces; state persists across
        # waves in both (caches are not flushed between kernels)
        ref.replay_wave(traces, ref_stats)
        vec.replay_wave(traces, vec_stats)
        fus.replay_wave(traces, fus_stats)
    assert vec_stats == ref_stats
    assert fus_stats == ref_stats
    # row-buffer state must agree too, not just the counters so far
    assert vec.dram_row_hits == ref.hierarchy.dram_row_hits
    assert vec._open_rows == ref.hierarchy._open_rows
    assert fus.dram_row_hits == ref.hierarchy.dram_row_hits
    assert fus._open_rows == ref.hierarchy._open_rows
