"""Cross-validation of the replay engines.

The ReferenceEngine is the executable specification (the dict-based
SectoredCache hierarchy); the VectorEngine must be *bit-identical* on
every counter, across dispatch strategies, workloads and random access
streams.
"""
from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LaunchError
from repro.gpu.cache import MemoryHierarchy
from repro.gpu.config import CacheGeometry, GPUConfig, small_config
from repro.gpu.machine import Machine
from repro.gpu.replay import (
    ENGINE_ENV_VAR,
    ENGINES,
    ReferenceEngine,
    VectorEngine,
    make_engine,
    resolve_engine_name,
)
from repro.gpu.stats import KernelStats
from repro.gpu.trace import MemoryTrace, role_id
from repro.workloads import make_workload

FIG6_TECHNIQUES = ("cuda", "concord", "sharedoa", "coal", "typepointer")


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
def test_default_engine_is_vector():
    assert GPUConfig().replay_engine == "vector"


def test_resolve_engine_prefers_env(monkeypatch):
    cfg = replace(small_config(), replay_engine="vector")
    monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
    assert resolve_engine_name(cfg) == "reference"
    monkeypatch.delenv(ENGINE_ENV_VAR)
    assert resolve_engine_name(cfg) == "vector"


def test_resolve_engine_rejects_unknown(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "warp-drive")
    with pytest.raises(LaunchError):
        resolve_engine_name(small_config())


def test_make_engine_constructs_named_engines():
    cfg = small_config()
    hier = MemoryHierarchy(cfg)
    assert isinstance(make_engine("reference", cfg, hier), ReferenceEngine)
    assert isinstance(make_engine("vector", cfg, hier), VectorEngine)
    with pytest.raises(LaunchError):
        make_engine("nope", cfg, hier)


def test_machine_respects_config_engine():
    for name in ENGINES:
        m = Machine("cuda", config=replace(small_config(),
                                           replay_engine=name))
        assert m.engine.name == name


# ----------------------------------------------------------------------
# differential: full workloads, all five dispatch strategies
# ----------------------------------------------------------------------
def _run(workload: str, technique: str, engine: str):
    cfg = replace(small_config(), replay_engine=engine)
    m = Machine(technique, config=cfg)
    wl = make_workload(workload, m, scale=0.1, seed=3)
    return wl.run(1), wl.checksum()


@pytest.mark.parametrize("technique", FIG6_TECHNIQUES)
@pytest.mark.parametrize("workload", ["TRAF", "BFS-vE"])
def test_engines_bit_identical_on_workloads(workload, technique):
    ref_stats, ref_ck = _run(workload, technique, "reference")
    vec_stats, vec_ck = _run(workload, technique, "vector")
    # KernelStats is a dataclass: == covers every counter, including the
    # per-role dicts and the timing-model outputs derived from them
    assert vec_stats == ref_stats
    assert vec_ck == ref_ck


def test_engines_bit_identical_under_object_churn():
    # GOL retypes objects between launches: allocator reuse stresses
    # cache-state carry-over across waves and launches
    ref_stats, _ = _run("GOL", "typepointer", "reference")
    vec_stats, _ = _run("GOL", "typepointer", "vector")
    assert vec_stats == ref_stats


# ----------------------------------------------------------------------
# property test: random access streams, SectoredCache vs vectorized
# ----------------------------------------------------------------------
#: tiny geometry so evictions and row conflicts happen within a handful
#: of accesses (L1: 8 lines in 4 sets; L2: 32 lines in 16 sets)
_PROP_CFG = GPUConfig(
    name="prop-gpu",
    num_sms=2,
    l1=CacheGeometry(size_bytes=1024, assoc=2),
    l2=CacheGeometry(size_bytes=4096, assoc=2),
    dram_row_bytes=512,
    dram_num_banks=2,
)

_access = st.tuples(
    st.integers(min_value=0, max_value=31),        # line index
    st.integers(min_value=1, max_value=15),        # sector mask
    st.booleans(),                                 # store?
    st.sampled_from([None, "vtable", "vfunc"]),    # role
)
_warp = st.lists(_access, min_size=0, max_size=16)


def _build_trace(sm: int, accs) -> MemoryTrace:
    t = MemoryTrace(sm=sm)
    for line_idx, mask, store, role in accs:
        base = line_idx * 128
        addrs = [base + s * 32 for s in range(4) if mask & (1 << s)]
        t.append_access(np.asarray(addrs, dtype=np.uint64), 1, store,
                        role_id(role))
    return t.finalize()


@given(waves=st.lists(st.lists(_warp, min_size=1, max_size=4),
                      min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_random_streams_bit_identical(waves):
    ref = ReferenceEngine(MemoryHierarchy(_PROP_CFG))
    vec = VectorEngine(_PROP_CFG)
    ref_stats, vec_stats = KernelStats(), KernelStats()
    for wave in waves:
        traces = [_build_trace(w % _PROP_CFG.num_sms, accs)
                  for w, accs in enumerate(wave)]
        # engines replay the same frozen traces; state persists across
        # waves in both (caches are not flushed between kernels)
        ref.replay_wave(traces, ref_stats)
        vec.replay_wave(traces, vec_stats)
    assert vec_stats == ref_stats
    # row-buffer state must agree too, not just the counters so far
    assert vec.dram_row_hits == ref.hierarchy.dram_row_hits
    assert vec._open_rows == ref.hierarchy._open_rows
