"""The cross-run replay memo: exact hits, drain-on-miss, attach rules."""
from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.harness.runner import ReplayMemo


def _fresh_machine() -> Machine:
    m = Machine("cuda", config=small_config())
    return m


def _make_kernels(m: Machine):
    """Two kernels over the same device array: a strided load pass and
    a gather pass with a different (cache-hostile) access pattern."""
    arr = m.array_from(np.arange(256, dtype=np.uint64), "u64")

    def k_stream(ctx):
        v = arr.ld(ctx, ctx.tid)
        arr.st(ctx, ctx.tid, v + np.uint64(1))

    def k_scatter(ctx):
        idx = (ctx.tid * np.uint64(37)) % np.uint64(256)
        arr.st(ctx, idx, arr.ld(ctx, idx) * np.uint64(2))

    return k_stream, k_scatter


def _run_sequence(m: Machine, kernels):
    for k in kernels:
        m.launch(k, 256)
    return m.run_stats


def test_memo_hit_reproduces_stats_exactly():
    memo = ReplayMemo()

    m1 = _fresh_machine()
    m1.set_replay_memo(memo)
    base = _run_sequence(m1, _make_kernels(m1))
    assert memo.hits == 0
    assert memo.misses > 0
    first_misses = memo.misses

    m2 = _fresh_machine()
    m2.set_replay_memo(memo)
    replayed = _run_sequence(m2, _make_kernels(m2))
    # identical launch sequence -> every wave comes out of the memo
    assert memo.hits == first_misses
    assert memo.misses == first_misses
    assert replayed == base


def test_memo_matches_memoless_run():
    memo = ReplayMemo()
    m1 = _fresh_machine()
    m1.set_replay_memo(memo)
    _run_sequence(m1, _make_kernels(m1))

    m2 = _fresh_machine()
    m2.set_replay_memo(memo)
    memod = _run_sequence(m2, _make_kernels(m2))

    m3 = _fresh_machine()
    plain = _run_sequence(m3, _make_kernels(m3))
    assert memod == plain


def test_drain_on_miss_rebuilds_cache_state():
    # machine B hits on kernel 1 (engine state update deferred), then
    # diverges on kernel 2; the pending traces must be drained so the
    # live replay of kernel 2 sees the cache state kernel 1 left behind
    memo = ReplayMemo()
    mA = _fresh_machine()
    mA.set_replay_memo(memo)
    kA1, kA2 = _make_kernels(mA)
    mA.launch(kA1, 256)

    mB = _fresh_machine()
    mB.set_replay_memo(memo)
    kB1, kB2 = _make_kernels(mB)
    mB.launch(kB1, 256)       # memo hit
    hits_after_k1 = memo.hits
    assert hits_after_k1 > 0
    mB.launch(kB2, 256)       # divergence from what the memo has seen

    # ground truth: the same two launches with no memo at all
    mC = _fresh_machine()
    kC1, kC2 = _make_kernels(mC)
    mC.launch(kC1, 256)
    mC.launch(kC2, 256)
    assert mB.run_stats == mC.run_stats


def test_memo_keys_include_engine_and_geometry():
    from dataclasses import replace

    memo = ReplayMemo()
    m1 = Machine("cuda", config=small_config())
    m1.set_replay_memo(memo)
    _run_sequence(m1, _make_kernels(m1))
    misses = memo.misses

    # same launches under the other engine must not share keys
    m2 = Machine("cuda",
                 config=replace(small_config(), replay_engine="reference"))
    m2.set_replay_memo(memo)
    _run_sequence(m2, _make_kernels(m2))
    assert memo.hits == 0
    assert memo.misses == 2 * misses


def test_attach_after_launch_rejected():
    m = _fresh_machine()
    (k1, _) = _make_kernels(m)
    m.launch(k1, 256)
    with pytest.raises(LaunchError):
        m.set_replay_memo(ReplayMemo())
