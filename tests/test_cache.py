"""Tests for the sectored caches and the hierarchy (incl. DRAM rows)."""
import pytest

from repro.gpu.cache import MemoryHierarchy, SectoredCache
from repro.gpu.config import CacheGeometry, small_config


@pytest.fixture
def tiny_cache():
    # 2 sets x 2 ways x 128B lines = 512B
    return SectoredCache(CacheGeometry(size_bytes=512, assoc=2))


class TestSectoredCache:
    def test_cold_miss_then_hit(self, tiny_cache):
        assert tiny_cache.access(0, 0b0001) == 0b0001   # miss
        assert tiny_cache.access(0, 0b0001) == 0        # hit
        assert tiny_cache.accesses == 2
        assert tiny_cache.hits == 1

    def test_sector_miss_on_resident_line(self, tiny_cache):
        tiny_cache.access(0, 0b0001)
        missed = tiny_cache.access(0, 0b0110)   # two new sectors
        assert missed == 0b0110
        # now everything present
        assert tiny_cache.access(0, 0b0111) == 0

    def test_hits_plus_misses_equals_accesses(self, tiny_cache):
        import random

        rng = random.Random(3)
        misses = 0
        for _ in range(200):
            line = rng.randrange(16) * 128
            mask = rng.randrange(1, 16)
            missed = tiny_cache.access(line, mask)
            misses += bin(missed).count("1")
        assert tiny_cache.hits + misses == tiny_cache.accesses

    def test_lru_eviction(self, tiny_cache):
        # set 0 holds lines 0 and 256 (2 ways); touching 512 evicts LRU=0
        tiny_cache.access(0, 1)
        tiny_cache.access(256, 1)
        tiny_cache.access(256, 1)       # line 0 is now LRU
        tiny_cache.access(512, 1)       # evicts line 0
        assert tiny_cache.access(256, 1) == 0      # survived
        assert tiny_cache.access(0, 1) == 1        # was evicted

    def test_lru_updated_on_hit(self, tiny_cache):
        tiny_cache.access(0, 1)
        tiny_cache.access(256, 1)
        tiny_cache.access(0, 1)         # refresh line 0
        tiny_cache.access(512, 1)       # evicts 256, not 0
        assert tiny_cache.access(0, 1) == 0

    def test_no_allocate_mode(self, tiny_cache):
        tiny_cache.access(0, 1, allocate=False)
        assert tiny_cache.access(0, 1) == 1   # still a miss

    def test_invalidate(self, tiny_cache):
        tiny_cache.access(0, 0b1111)
        tiny_cache.invalidate()
        assert tiny_cache.access(0, 0b0001) == 0b0001

    def test_resident_lines(self, tiny_cache):
        tiny_cache.access(0, 1)
        tiny_cache.access(128, 1)
        assert tiny_cache.resident_lines() == 2

    def test_hit_rate(self, tiny_cache):
        assert tiny_cache.hit_rate == 0.0
        tiny_cache.access(0, 1)
        tiny_cache.access(0, 1)
        assert tiny_cache.hit_rate == pytest.approx(0.5)


class TestGeometryValidation:
    def test_bad_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=100, assoc=2)

    def test_bad_assoc(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=512, assoc=3)

    def test_derived_counts(self):
        g = CacheGeometry(size_bytes=64 * 1024, assoc=4)
        assert g.num_lines == 512
        assert g.num_sets == 128
        assert g.sectors_per_line == 4


class TestHierarchy:
    @pytest.fixture
    def hier(self):
        return MemoryHierarchy(small_config())

    def test_load_path_accounting(self, hier):
        l1, l2, dram = hier.load(0, 0, 0b0011)
        assert (l1, l2, dram) == (0, 0, 2)
        l1, l2, dram = hier.load(0, 0, 0b0011)
        assert (l1, l2, dram) == (2, 0, 0)

    def test_l2_shared_between_sms(self, hier):
        hier.load(0, 0, 0b0001)          # SM0 pulls into L2
        l1, l2, dram = hier.load(1, 0, 0b0001)  # SM1: L1 miss, L2 hit
        assert (l1, l2, dram) == (0, 1, 0)

    def test_l1_private_per_sm(self, hier):
        hier.load(0, 0, 0b0001)
        l1, _, _ = hier.load(1, 0, 0b0001)
        assert l1 == 0

    def test_store_write_through(self, hier):
        hier.store(0, 0, 0b0001)
        # the store allocated in L2 but not L1
        l1, l2, dram = hier.load(0, 0, 0b0001)
        assert l1 == 0 and l2 == 1 and dram == 0

    def test_store_updates_resident_l1_line(self, hier):
        hier.load(0, 0, 0b0001)
        hier.store(0, 0, 0b0010)   # store hit extends the line
        l1, _, _ = hier.load(0, 0, 0b0010)
        assert l1 == 1

    def test_l1_totals(self, hier):
        hier.load(0, 0, 0b0001)
        hier.load(1, 128, 0b0001)
        acc, hits = hier.l1_totals()
        assert acc == 2 and hits == 0

    def test_reset_stats_keeps_contents(self, hier):
        hier.load(0, 0, 0b0001)
        hier.reset_stats()
        assert hier.dram_accesses == 0
        l1, _, _ = hier.load(0, 0, 0b0001)
        assert l1 == 1  # contents survived


class TestDRAMRows:
    @pytest.fixture
    def hier(self):
        return MemoryHierarchy(small_config())

    def test_streaming_hits_open_row(self, hier):
        cfg = small_config()
        # consecutive lines in one row: first access misses, rest hit
        for i in range(8):
            hier.load(0, i * 128, 0b1111)
        assert hier.dram_row_misses == 1
        assert hier.dram_row_hits == 7

    def test_scattered_accesses_miss_rows(self, hier):
        row = small_config().dram_row_bytes
        banks = small_config().dram_num_banks
        stride = row * banks  # same bank, different rows every time
        for i in range(8):
            hier.load(0, i * stride, 0b0001)
        assert hier.dram_row_misses == 8
        assert hier.dram_row_hits == 0

    def test_rows_in_different_banks_stay_open(self, hier):
        row = small_config().dram_row_bytes
        # alternate between two banks: both rows stay open
        for _ in range(4):
            hier.load(0, 0, 0b0001)
            hier.load(0, row, 0b0001)
        # after the cold pass everything hits in cache, so force misses
        # by touching new sectors each time
        hier.reset_stats()
        for i in range(1, 4):
            hier.load(0, i * 128, 0b0001)            # bank 0, row 0
            hier.load(0, row + i * 128, 0b0001)      # bank 1, row 1
        assert hier.dram_row_misses == 0

    def test_cache_hits_do_not_touch_dram_rows(self, hier):
        hier.load(0, 0, 0b0001)
        before = hier.dram_row_misses + hier.dram_row_hits
        hier.load(0, 0, 0b0001)  # L1 hit
        assert hier.dram_row_misses + hier.dram_row_hits == before
