"""Tests for the index-encoded TypePointer fallback (section 6.1/6.2).

When programs need more vTable bytes than the 15 tag bits can address
directly, the paper's fallback stores a type *index* and multiplies it
by a padded table stride with a fused multiply-add -- reaching 32K
types at the cost of padding every table.
"""
import numpy as np
import pytest

from repro.errors import TypeTagOverflow
from repro.memory.address_space import decode_tag
from repro.runtime.typesystem import TypeDescriptor
from repro.runtime.vtable import VTableArena

from conftest import read_age


def _speak_kernel(machine, ptrs, static_type):
    arr = machine.array_from(ptrs, "u64")

    def kernel(ctx):
        ctx.vcall(arr.ld(ctx, ctx.tid), static_type, "speak")

    return kernel


def test_dispatch_correct_through_indices(machine_factory, animals):
    m = machine_factory("typepointer_indexed")
    m.register(animals.Dog, animals.Cat)
    dogs = m.new_objects(animals.Dog, 16)
    cats = m.new_objects(animals.Cat, 16)
    ptrs = np.concatenate([dogs, cats])
    m.launch(_speak_kernel(m, ptrs, animals.Animal), 32)
    assert all(read_age(m, animals, p) == 1 for p in dogs)
    assert all(read_age(m, animals, p) == 2 for p in cats)


def test_tags_are_small_indices_not_offsets(machine_factory, animals):
    m = machine_factory("typepointer_indexed")
    dog = m.new_objects(animals.Dog, 1)[0]
    cat = m.new_objects(animals.Cat, 1)[0]
    # indices are tiny consecutive integers, not byte offsets
    assert decode_tag(int(dog)) in (1, 2)
    assert decode_tag(int(cat)) in (1, 2)
    assert decode_tag(int(dog)) != decode_tag(int(cat))


def test_index_zero_reserved(heap):
    arena = VTableArena(heap)
    T = TypeDescriptor("Idx0", methods={"f": lambda ctx, o: None})
    assert arena.index_for_type(T) >= 1


def test_index_stable(heap):
    arena = VTableArena(heap)
    T = TypeDescriptor("IdxStable", methods={"f": lambda ctx, o: None})
    assert arena.index_for_type(T) == arena.index_for_type(T)


def test_padded_table_readable(heap):
    def f(ctx, objs):
        pass

    arena = VTableArena(heap)
    T = TypeDescriptor("IdxRead", methods={"f": f})
    idx = arena.index_for_type(T)
    addr = arena.indexed_base + idx * arena.padded_table_stride()
    fn = int(heap.load(addr, "u64"))
    assert arena.impl_of_code_addr(fn) is f
    assert arena.type_of_index(idx) is T


def test_too_many_methods_rejected(heap):
    arena = VTableArena(heap)
    methods = {f"m{i}": (lambda ctx, o: None)
               for i in range(arena.INDEXED_SLOTS + 1)}
    T = TypeDescriptor("IdxBig", methods=methods)
    with pytest.raises(TypeTagOverflow):
        arena.index_for_type(T)


def test_index_mode_reaches_more_types_than_offset_mode(heap):
    """The point of the fallback: with many wide types, byte offsets
    exhaust the 32KiB arena while indices keep going."""
    def f(ctx, objs):
        pass

    arena = VTableArena(heap)
    methods = {f"m{i}": f for i in range(16)}  # 128B per table
    # offset mode dies after ~255 such types (32KiB / 128B)
    with pytest.raises(TypeTagOverflow):
        for i in range(400):
            arena.ensure_type(TypeDescriptor(f"Wide{i}", methods=methods))
    # index mode happily assigns indices beyond that point
    arena2 = VTableArena(heap)
    for i in range(400):
        arena2.index_for_type(TypeDescriptor(f"WideI{i}", methods=methods))
    assert arena2._index_cursor > 256


def test_ffma_charged_instead_of_add(machine_factory, animals):
    m_idx = machine_factory("typepointer_indexed")
    dogs = m_idx.new_objects(animals.Dog, 32)
    stats = m_idx.launch(_speak_kernel(m_idx, dogs, animals.Animal), 32)
    # still zero operation-A memory traffic
    from repro.gpu.isa import ROLE_LOAD_VTABLE

    assert stats.role_transactions.get(ROLE_LOAD_VTABLE, 0) == 0


def test_performance_equivalent_to_offset_mode(machine_factory, animals):
    cycles = {}
    for tech in ("typepointer", "typepointer_indexed"):
        m = machine_factory(tech)
        m.register(animals.Dog, animals.Cat)
        dogs = m.new_objects(animals.Dog, 256)
        cats = m.new_objects(animals.Cat, 256)
        ptrs = np.concatenate([dogs, cats])
        stats = m.launch(_speak_kernel(m, ptrs, animals.Animal), 512)
        cycles[tech] = stats.cycles
    # within a few percent: one FFMA swapped for one ADD (section 6.2)
    ratio = cycles["typepointer_indexed"] / cycles["typepointer"]
    assert 0.9 < ratio < 1.1
