"""Tests for the experiment harness: runner, aggregation, reports."""
import math

import pytest

from repro.gpu.config import small_config
from repro.harness import (
    fig1_breakdown,
    fig6_performance,
    format_table,
    geomean,
    geomean_by_technique,
    init_performance,
    matrix_table,
    normalized,
    run_one,
    run_sweep,
)
from repro.harness.runner import clear_cache

SMALL = dict(scale=0.04, config=small_config())


class TestRunner:
    def test_run_one_records_counters(self):
        rec = run_one("TRAF", "cuda", **SMALL)
        assert rec.cycles > 0
        assert rec.gld_transactions > 0
        assert rec.vfunc_calls > 0
        assert 0 <= rec.l1_hit_rate <= 1
        assert rec.num_types == 6

    def test_cache_hit_returns_same_object(self):
        clear_cache()
        a = run_one("RAY", "cuda", scale=0.2, config=small_config())
        b = run_one("RAY", "cuda", scale=0.2, config=small_config())
        assert a is b

    def test_cache_key_distinguishes_technique(self):
        a = run_one("RAY", "cuda", scale=0.2, config=small_config())
        b = run_one("RAY", "coal", scale=0.2, config=small_config())
        assert a is not b

    def test_use_cache_false_bypasses(self):
        a = run_one("RAY", "cuda", scale=0.2, config=small_config())
        b = run_one("RAY", "cuda", scale=0.2, config=small_config(),
                    use_cache=False)
        assert a is not b

    def test_run_sweep_covers_grid(self):
        recs = run_sweep(workloads=["TRAF", "RAY"],
                         techniques=("cuda", "coal"), **SMALL)
        assert set(recs) == {("TRAF", "cuda"), ("TRAF", "coal"),
                             ("RAY", "cuda"), ("RAY", "coal")}


class TestAggregation:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        assert math.isnan(geomean([]))

    def test_normalized_invert_gives_performance(self):
        recs = run_sweep(workloads=["TRAF"], techniques=("cuda", "sharedoa"),
                         **SMALL)
        perf = normalized(recs, "cycles", baseline="sharedoa", invert=True)
        assert perf[("TRAF", "sharedoa")] == pytest.approx(1.0)
        direct = normalized(recs, "cycles", baseline="sharedoa")
        assert direct[("TRAF", "cuda")] == pytest.approx(
            1.0 / perf[("TRAF", "cuda")]
        )

    def test_geomean_by_technique(self):
        ratios = {("a", "x"): 1.0, ("b", "x"): 4.0, ("a", "y"): 2.0}
        gm = geomean_by_technique(ratios)
        assert gm["x"] == pytest.approx(2.0)
        assert gm["y"] == pytest.approx(2.0)


class TestReport:
    def test_format_table_alignment(self):
        t = format_table(["name", "v"], [["aa", 1.5], ["b", 2.0]],
                         title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "aa" in lines[3] and "1.500" in t

    def test_matrix_table_with_gm(self):
        ratios = {("w1", "cuda"): 0.5, ("w1", "coal"): 1.1}
        t = matrix_table(ratios, ("cuda", "coal"), gm_row={"cuda": 0.5,
                                                           "coal": 1.1})
        assert "GM" in t and "w1" in t


class TestFigureHarnesses:
    def test_fig6_on_subset(self):
        res = fig6_performance(workloads=["TRAF", "RAY"], **SMALL)
        assert res.figure == "fig6"
        assert ("TRAF", "cuda") in res.values
        assert res.summary["sharedoa"] == pytest.approx(1.0)
        assert "Figure 6" in res.table

    def test_fig1_shares_sum_to_one(self):
        res = fig1_breakdown(workloads=["TRAF"], **SMALL)
        assert sum(res.summary.values()) == pytest.approx(1.0)
        assert res.summary["load_vtable_ptr"] > res.summary["indirect_call"]

    def test_init_performance_positive_speedup(self):
        cmp_ = init_performance(num_objects=2000, config=small_config())
        assert cmp_.speedup > 1.0
        assert cmp_.objects == 2000
