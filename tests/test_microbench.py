"""Tests for the section-8.3 scalability microbenchmarks."""
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads.microbench import BranchMicrobench, ObjectMicrobench


def _machine(tech="cuda"):
    return Machine(tech, config=small_config())


class TestObjectMicrobench:
    def test_objects_allocated_round_robin_types(self):
        m = _machine()
        bench = ObjectMicrobench(m, num_objects=64, num_types=4)
        owners = [m.allocator.owner_type(int(p)) for p in bench.ptrs]
        for i, owner in enumerate(owners):
            assert owner is bench.leaves[i % 4]

    def test_every_warp_sees_num_types(self):
        m = _machine()
        bench = ObjectMicrobench(m, num_objects=64, num_types=4)
        stats = bench.run()
        # 2 warps x 4 types -> 3 extra serialisations per warp
        assert stats.call_serializations == 2 * 3

    def test_work_actually_executes(self):
        m = _machine()
        bench = ObjectMicrobench(m, num_objects=32, num_types=2)
        bench.run(iterations=3)
        lay = m.registry.layout(bench.base)
        off = lay.offset("value")
        # type 0 adds 1 per iteration, type 1 adds 2
        v0 = m.heap.load(m.allocator._canonical(int(bench.ptrs[0])) + off, "u32")
        v1 = m.heap.load(m.allocator._canonical(int(bench.ptrs[1])) + off, "u32")
        assert (v0, v1) == (3, 6)

    def test_vfunc_calls_scale_with_objects(self):
        m = _machine()
        bench = ObjectMicrobench(m, num_objects=96, num_types=3)
        stats = bench.run()
        assert stats.vfunc_calls == 96

    def test_rejects_zero_types(self):
        with pytest.raises(ValueError):
            ObjectMicrobench(_machine(), 32, 0)

    @pytest.mark.parametrize("tech", ["cuda", "coal", "typepointer"])
    def test_runs_under_all_fig12_techniques(self, tech):
        bench = ObjectMicrobench(_machine(tech), 64, 4)
        stats = bench.run()
        assert stats.cycles > 0


class TestBranchMicrobench:
    def test_no_dispatch_memory(self):
        m = _machine()
        bench = BranchMicrobench(m, num_threads=64, num_types=4)
        stats = bench.run()
        from repro.gpu.isa import ROLE_LOAD_VTABLE

        assert ROLE_LOAD_VTABLE not in stats.role_transactions
        assert stats.vfunc_calls == 0

    def test_payload_executes(self):
        m = _machine()
        bench = BranchMicrobench(m, num_threads=32, num_types=2)
        bench.run(iterations=2)
        data = bench.data.read()
        # type k adds k+1 per iteration; thread i has type i%2
        assert data[0] == 2 and data[1] == 4

    def test_instructions_grow_with_types(self):
        m1 = _machine()
        s1 = BranchMicrobench(m1, 64, 1).run()
        m2 = _machine()
        s2 = BranchMicrobench(m2, 64, 8).run()
        assert s2.total_warp_instrs > s1.total_warp_instrs

    def test_branch_cheaper_than_cuda_dispatch(self):
        mb = _machine()
        branch = BranchMicrobench(mb, 256, 4).run()
        mo = _machine("cuda")
        cuda = ObjectMicrobench(mo, 256, 4).run()
        assert branch.cycles < cuda.cycles
        assert (branch.global_load_transactions
                < cuda.global_load_transactions)

    def test_rejects_zero_types(self):
        with pytest.raises(ValueError):
            BranchMicrobench(_machine(), 32, 0)
