"""The serving daemon: admission, dedup, backpressure, cache, drain."""
from __future__ import annotations

import contextlib
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.serve import LRUCache, ReproServer, ServeClient, ServeError
from repro.serve.jobs import Admission, job_key

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# cache + admission units
# ----------------------------------------------------------------------
def test_lru_cache_evicts_least_recently_used():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh 'a'
    cache.put("c", 3)                   # evicts 'b'
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["hits"] == 3 and stats["misses"] == 1
    assert stats["size"] == 2


def test_lru_cache_capacity_zero_disables():
    cache = LRUCache(capacity=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


def test_lru_cache_concurrent_get_put_stress():
    """Regression: unlocked OrderedDict mutation from executor threads.

    8 threads hammer one cache with interleaved get/put; without the
    internal lock this corrupts the OrderedDict (KeyError/RuntimeError
    out of move_to_end/popitem) and loses counter increments.
    """
    cache = LRUCache(capacity=32)
    errors = []
    n_threads, ops = 8, 3000

    def hammer(tid):
        try:
            for i in range(ops):
                key = f"k{(tid * ops + i * 7) % 96}"
                if i % 3 == 0:
                    cache.put(key, i)
                else:
                    cache.get(key)
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors, errors
    stats = cache.stats()
    assert stats["size"] <= 32
    # every get incremented exactly one of hits/misses
    total_gets = sum(1 for t in range(n_threads) for i in range(ops)
                     if i % 3 != 0)
    assert stats["hits"] + stats["misses"] == total_gets


def test_job_key_canonical():
    spec = {"experiment": "fig6", "scale": 0.1, "seed": 7,
            "quick": True, "params": {"b": 2, "a": 1}}
    reordered = {"params": {"a": 1, "b": 2}, "quick": True, "seed": 7,
                 "scale": 0.1, "experiment": "fig6"}
    assert job_key(spec) == job_key(reordered)
    assert job_key(spec) != job_key({**spec, "scale": 0.2})
    assert job_key(spec) != job_key({**spec, "params": {"a": 1}})


def test_admission_complete_caches_before_freeing_the_slot():
    """Regression: ``complete`` popped the job before caching, so a
    duplicate submit racing in that window found the key in neither the
    job table nor the cache and was admitted for a full recompute.  The
    probe cache asserts the job is still tabled at ``put`` time: at no
    observable point is the key unclaimed."""

    class ProbeCache(LRUCache):
        def __init__(self, adm_box):
            super().__init__(capacity=4)
            self.adm_box = adm_box
            self.put_seen_tabled = None

        def put(self, key, value):
            # a racing decide() here must dedup-join (key still tabled)
            # or -- after super().put -- hit the cache; never re-admit
            self.put_seen_tabled = key in self.adm_box["adm"].jobs
            super().put(key, value)

    async def scenario():
        box = {}
        adm = Admission(queue_limit=4, cache_size=4)
        box["adm"] = adm
        adm.cache = ProbeCache(box)
        spec = {"experiment": "fig6"}
        decision = adm.decide("k1", spec)
        assert decision.kind == "admitted"
        adm.complete(decision.job, {"rendered": "r"}, wall_s=0.1)
        assert adm.cache.put_seen_tabled is True
        # post-conditions: slot freed, result served from the cache
        assert "k1" not in adm.jobs
        assert adm.decide("k1", spec).kind == "cached"

    import asyncio

    asyncio.run(scenario())


def test_admission_retry_after_tracks_latency():
    adm = Admission(queue_limit=4, cache_size=4, job_threads=2)
    assert adm.retry_after() > 0            # cold default
    adm.ewma_wall_s = 10.0
    adm.jobs = {"k1": None, "k2": None, "k3": None, "k4": None}
    assert adm.retry_after() == pytest.approx(10.0 * 4 / 2, rel=0.01)
    adm.jobs = {}


# ----------------------------------------------------------------------
# in-process server harness (injected compute, Unix socket)
# ----------------------------------------------------------------------
class FakeCompute:
    def __init__(self, delay: float = 0.0, fail: bool = False):
        self.delay = delay
        self.fail = fail
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, spec):
        with self._lock:
            self.calls.append(spec["experiment"])
        time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("injected compute failure")
        return {"rendered": f"result:{spec['experiment']}"}


@contextlib.contextmanager
def serving(tmp_path, compute, **kwargs):
    sock = str(tmp_path / "serve.sock")
    kwargs.setdefault("use_store", False)
    server = ReproServer(socket_path=sock, compute=compute, **kwargs)
    rc = {}
    thread = threading.Thread(
        target=lambda: rc.setdefault("code", server.run()), daemon=True)
    thread.start()
    assert server.ready.wait(10), "daemon never started listening"
    try:
        yield server, ServeClient(socket_path=sock), rc
    finally:
        server.request_shutdown()
        thread.join(20)
        assert not thread.is_alive(), "daemon failed to drain"


def _parallel_submits(sock_path, names, **kw):
    """Fire one submit per name from its own thread + connection."""
    replies = [None] * len(names)

    def go(i):
        client = ServeClient(socket_path=sock_path)
        replies[i] = client.submit(names[i], **kw)

    threads = [threading.Thread(target=go, args=(i,))
               for i in range(len(names))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    return replies


def test_health_and_status_idle(tmp_path):
    with serving(tmp_path, FakeCompute()) as (server, client, _):
        health = client.health()
        assert health["ok"] is True and health["status"] == "ok"
        status = client.status()
        assert status["inflight"] == 0
        assert status["draining"] is False
        assert status["jobs_admitted"] == 0
        assert status["endpoint"].startswith("unix:")


def test_concurrent_duplicates_collapse_to_one_computation(tmp_path):
    compute = FakeCompute(delay=0.8)
    with serving(tmp_path, compute) as (server, client, _):
        sock = server.socket_path
        replies = _parallel_submits(sock, ["fig6"] * 4, quick=True,
                                    scale=0.05)
        assert all(r["ok"] for r in replies)
        assert all(r["rendered"] == "result:fig6" for r in replies)
        outcomes = sorted(r["outcome"] for r in replies)
        assert outcomes == ["computed", "dedup", "dedup", "dedup"]
        assert compute.calls == ["fig6"]            # exactly one run
        assert all(r["waiters"] == 4 for r in replies)
        status = client.status()
        assert status["jobs_admitted"] == 1
        assert status["jobs_completed"] == 1
        assert status["dedup_joined"] == 3


def test_queue_full_returns_backpressure_reply(tmp_path):
    compute = FakeCompute(delay=1.0)
    with serving(tmp_path, compute, queue_limit=1,
                 job_threads=1) as (server, client, _):
        slow = threading.Thread(
            target=lambda: ServeClient(
                socket_path=server.socket_path).submit("fig6"))
        slow.start()
        deadline = time.monotonic() + 5.0
        while client.status()["inflight"] == 0:
            assert time.monotonic() < deadline, "job never admitted"
            time.sleep(0.02)
        reply = client.submit("fig7")        # distinct key, queue full
        slow.join(15)
        assert reply["ok"] is False
        assert reply["error"] == "queue_full"
        assert reply["retry_after"] >= 0
        assert reply["queue_limit"] == 1
        assert client.status()["rejected_queue_full"] == 1
        # once the queue drains, the same submission is admitted
        retry = client.submit("fig7")
        assert retry["ok"] is True and retry["outcome"] == "computed"


def test_cold_then_warm_submit_hits_the_cache(tmp_path):
    compute = FakeCompute()
    with serving(tmp_path, compute) as (server, client, _):
        cold = client.submit("init", quick=True)
        warm = client.submit("init", quick=True)
        assert cold["outcome"] == "computed"
        assert warm["outcome"] == "cached"
        assert warm["rendered"] == cold["rendered"]
        assert compute.calls == ["init"]
        status = client.status()
        assert status["cache"]["hits"] == 1
        # a different key misses the cache and recomputes
        other = client.submit("init", quick=True, scale=0.07)
        assert other["outcome"] == "computed"
        stats = client.stats()
        obs.validate_payload(stats["telemetry"])
        assert stats["cache"]["hits"] == 1
        assert stats["counters"]["jobs_completed"] == 2
        assert stats["latency"]["init"]["count"] == 2


def test_health_and_stats_answer_while_job_in_flight(tmp_path):
    compute = FakeCompute(delay=1.0)
    with serving(tmp_path, compute) as (server, client, _):
        bg = threading.Thread(
            target=lambda: ServeClient(
                socket_path=server.socket_path).submit("fig6"))
        bg.start()
        deadline = time.monotonic() + 5.0
        while client.health()["inflight"] == 0:
            assert time.monotonic() < deadline, "job never admitted"
            time.sleep(0.02)
        t0 = time.perf_counter()
        health = client.health()
        stats = client.stats()
        elapsed = time.perf_counter() - t0
        bg.join(15)
        assert health["ok"] and health["inflight"] == 1
        assert stats["ok"] and stats["inflight"] == 1
        obs.validate_payload(stats["telemetry"])
        assert elapsed < 0.9, "control verbs blocked behind the job"


def test_failed_job_reports_and_is_not_cached(tmp_path):
    compute = FakeCompute(fail=True)
    with serving(tmp_path, compute) as (server, client, _):
        reply = client.submit("fig6")
        assert reply["ok"] is False
        assert reply["error"] == "job_failed"
        assert "injected compute failure" in reply["detail"]
        status = client.status()
        assert status["jobs_failed"] == 1
        assert status["cache"]["size"] == 0
        assert status["inflight"] == 0      # the slot was freed


def test_unknown_experiment_rejected_with_hint(tmp_path):
    with serving(tmp_path, FakeCompute()) as (server, client, _):
        reply = client.submit("fig66")
        assert reply["ok"] is False
        assert reply["error"] == "unknown_experiment"
        assert "fig6" in reply["hint"]


def test_drain_finishes_inflight_then_refuses_submits(tmp_path):
    compute = FakeCompute(delay=1.0)
    with serving(tmp_path, compute) as (server, client, rc):
        result = {}
        bg = threading.Thread(
            target=lambda: result.setdefault("r", ServeClient(
                socket_path=server.socket_path).submit("fig6")))
        bg.start()
        deadline = time.monotonic() + 5.0
        while client.status()["inflight"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        drain = client.drain()
        assert drain["ok"] is True and drain["inflight"] == 1
        # still answering, but not admitting
        refused = client.submit("fig7")
        assert refused["ok"] is False and refused["error"] == "draining"
        assert client.health()["status"] == "draining"
        bg.join(15)
        assert result["r"]["ok"] is True    # in-flight job completed
    assert rc["code"] == 0
    # the daemon is gone: connections now fail
    with pytest.raises(ServeError):
        ServeClient(socket_path=str(tmp_path / "serve.sock")).health()


# ----------------------------------------------------------------------
# client timeout contract (regression: hardcoded/unbounded waits)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def silent_listener(tmp_path=None):
    """A server that accepts connections but never replies.

    Yields a (host, port, socket_path) triple; socket_path is None in
    TCP mode.  Models a hung daemon for the timeout regressions.
    """
    import socket as socket_mod

    if tmp_path is not None:
        path = str(tmp_path / "silent.sock")
        srv = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        srv.bind(path)
    else:
        path = None
        srv = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        srv.bind(("127.0.0.1", 0))
    srv.listen(8)
    srv.settimeout(0.1)
    accepted = []
    stop = threading.Event()

    def accept_loop():
        while not stop.is_set():
            try:
                conn, _ = srv.accept()
            except OSError:
                continue
            accepted.append(conn)         # hold it open, never reply

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        if path is None:
            yield srv.getsockname()[0], srv.getsockname()[1], None
        else:
            yield None, None, path
    finally:
        stop.set()
        thread.join(5)
        for conn in accepted:
            conn.close()
        srv.close()


def test_client_receive_respects_instance_timeout_unix(tmp_path):
    """Regression: the receive must honor ``self.timeout`` -- a hung
    daemon bounds the request at the configured timeout, not forever."""
    with silent_listener(tmp_path) as (_, _, path):
        client = ServeClient(socket_path=path, timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(ServeError):
            client.health()
        assert time.monotonic() - t0 < 5.0


def test_client_connect_respects_instance_timeout_tcp():
    """Regression: ``socket.create_connection`` hardcoded a 10s connect
    timeout, ignoring the configured ``self.timeout`` on the TCP path."""
    with silent_listener() as (host, port, _):
        client = ServeClient(host=host, port=port, timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(ServeError):
            client.status()
        assert time.monotonic() - t0 < 5.0


def test_wait_until_ready_bounds_the_receive(tmp_path):
    """Regression: with ``self.timeout is None``, wait_until_ready only
    bounded *connect* retries -- a daemon that accepted but never
    replied hung the client forever.  The receive now consumes the same
    deadline."""
    with silent_listener(tmp_path) as (_, _, path):
        client = ServeClient(socket_path=path, timeout=None)
        t0 = time.monotonic()
        with pytest.raises(ServeError, match="not ready|closed|connect"):
            client.wait_until_ready(1.0)
        assert time.monotonic() - t0 < 6.0


# ----------------------------------------------------------------------
# the real daemon: subprocess + SIGTERM drain + store flush
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sigterm_drains_inflight_job_and_flushes_store(tmp_path):
    sock = tmp_path / "serve.sock"
    store = tmp_path / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(sock),
         "--workers", "1", "--store-dir", str(store),
         "--drain-grace", "120"],
        cwd=str(REPO_ROOT), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        client = ServeClient(socket_path=str(sock))
        client.wait_until_ready(30.0)
        result = {}
        bg = threading.Thread(
            target=lambda: result.setdefault("r", client.submit(
                "fig12b", quick=True, scale=0.05)))
        bg.start()
        time.sleep(0.3)                     # let the job get admitted
        proc.send_signal(signal.SIGTERM)    # drain mid-flight
        bg.join(120)
        out, _ = proc.communicate(timeout=60)
    except BaseException:
        proc.kill()
        proc.wait(timeout=10)
        raise
    assert proc.returncode == 0, out
    assert result["r"]["ok"] is True, result["r"]
    assert "Figure 12b" in result["r"]["rendered"]
    assert "[serve] drained (SIGTERM)" in out
    # the replay store was flushed and left unlocked (the .lock inode
    # may persist -- fcntl locks live on the fd -- but must be free)
    assert list(store.glob("*.pkl")), "store was never flushed"
    from repro.harness.store import _FileLock

    for lock_path in store.glob("*.lock"):
        with _FileLock(lock_path, timeout_s=5.0):
            pass                        # acquirable: nobody holds it
    # the socket file was cleaned up
    assert not sock.exists()
