"""Tests for DeviceArray charged/uncharged access semantics."""
import numpy as np
import pytest

from repro.gpu.isa import InstrClass


@pytest.fixture
def m(machine_factory):
    return machine_factory("cuda")


def test_host_access_uncharged(m):
    arr = m.array("u32", 64)
    arr.write(np.arange(64, dtype=np.uint32))
    arr.read()
    arr[5] = 99
    _ = arr[5]
    assert m.run_stats.total_warp_instrs == 0


def test_kernel_access_charged(m):
    arr = m.array_from(np.arange(64, dtype=np.uint32), "u32")

    def kernel(ctx):
        arr.ld(ctx, ctx.tid)
        arr.st(ctx, ctx.tid, np.zeros(ctx.lane_count, dtype=np.uint32))

    stats = m.launch(kernel, 64)
    assert stats.warp_instrs[InstrClass.MEM] == 4  # 2 per warp x 2 warps


def test_gather_with_indirection(m):
    arr = m.array_from(np.arange(100, dtype=np.float64) * 1.5, "f64")
    idx = np.array([3, 97, 0, 41], dtype=np.int64)
    out = {}

    def kernel(ctx):
        out["v"] = arr.ld(ctx, idx[: ctx.lane_count])

    m.launch(kernel, 4)
    np.testing.assert_array_equal(out["v"], idx * 1.5)


def test_addr_arithmetic(m):
    arr = m.array("u64", 10)
    addrs = arr.addr(np.array([0, 1, 9], dtype=np.uint64))
    assert addrs[1] - addrs[0] == 8
    assert addrs[2] == arr.base + 72


def test_out_of_bounds_kernel_access(m):
    arr = m.array("u32", 4)

    def kernel(ctx):
        arr.ld(ctx, ctx.tid)  # tids 0..31 exceed the 4-element array

    with pytest.raises(IndexError):
        m.launch(kernel, 32)


def test_write_shape_mismatch(m):
    arr = m.array("u32", 4)
    with pytest.raises(ValueError):
        arr.write(np.zeros(5, dtype=np.uint32))


def test_arrays_do_not_overlap(m):
    a = m.array("u64", 100)
    b = m.array("u64", 100)
    assert b.base >= a.base + 800 or a.base >= b.base + 800


def test_len(m):
    assert len(m.array("u8", 7)) == 7
