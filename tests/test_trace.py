"""The memory-trace IR: batched coalescing, CSR layout, wave flattening."""
from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.coalescing import coalesce, coalesce_arrays
from repro.gpu.stats import KernelStats
from repro.gpu.trace import (
    MemoryTrace,
    POPCOUNT4,
    TRACE_ENCODING_VERSION,
    decode_wave,
    encode_wave,
    flatten_wave,
    role_id,
    role_name,
)

addr_lists = st.lists(
    st.integers(min_value=0, max_value=4096), min_size=1, max_size=32
)
widths = st.sampled_from([1, 4, 8, 16, 32])


# ----------------------------------------------------------------------
# coalesce_arrays is the batched form of coalesce
# ----------------------------------------------------------------------
@given(addrs=addr_lists, width=widths)
def test_coalesce_arrays_matches_coalesce(addrs, width):
    a = np.asarray(addrs, dtype=np.uint64)
    txns = coalesce(a, width)
    lines, masks = coalesce_arrays(a, width)
    assert [t.line_addr for t in txns] == lines.tolist()
    assert [t.sector_mask for t in txns] == masks.tolist()


# ----------------------------------------------------------------------
# deferred per-warp coalescing reproduces per-access coalescing
# ----------------------------------------------------------------------
accesses = st.lists(
    st.tuples(addr_lists, widths, st.booleans(),
              st.sampled_from([None, "roleA", "roleB"])),
    min_size=1, max_size=12,
)


@given(accs=accesses)
@settings(max_examples=60, deadline=None)
def test_finalize_matches_per_access_coalescing(accs):
    trace = MemoryTrace(sm=0)
    expect = []
    for addrs, width, store, role in accs:
        a = np.asarray(addrs, dtype=np.uint64)
        trace.append_access(a, width, store, role_id(role))
        expect.append(coalesce_arrays(a, width))
    trace.finalize()

    assert trace.n_accesses == len(accs)
    for i, (lines, masks) in enumerate(expect):
        s = int(trace.txn_start[i])
        e = s + int(trace.txn_count[i])
        assert trace.line[s:e].tolist() == lines.tolist()
        assert trace.mask[s:e].tolist() == masks.tolist()
    assert trace.store.tolist() == [a[2] for a in accs]
    assert [role_name(r) for r in trace.role.tolist()] == [a[3] for a in accs]


@given(accs=accesses)
@settings(max_examples=40, deadline=None)
def test_finalize_defers_transaction_counters(accs):
    trace = MemoryTrace(sm=1)
    expect = KernelStats()
    for addrs, width, store, role in accs:
        a = np.asarray(addrs, dtype=np.uint64)
        trace.append_access(a, width, store, role_id(role))
        _, masks = coalesce_arrays(a, width)
        n = int(POPCOUNT4[masks].sum())
        if store:
            expect.global_store_transactions += n
        else:
            expect.global_load_transactions += n
            expect.add_role_transactions(role, n)
    got = KernelStats()
    trace.finalize(got)
    assert got.global_load_transactions == expect.global_load_transactions
    assert got.global_store_transactions == expect.global_store_transactions
    assert got.role_transactions == expect.role_transactions


def test_empty_trace_finalize():
    trace = MemoryTrace(sm=2).finalize(KernelStats())
    assert trace.n_accesses == 0
    assert trace.n_txns == 0
    assert trace.total_sectors() == 0
    assert flatten_wave([trace]) is None


def test_zero_lane_access_keeps_boundaries():
    trace = MemoryTrace(sm=0)
    trace.append_access(np.empty(0, dtype=np.uint64), 4, False, 0)
    trace.append_access(np.array([128], dtype=np.uint64), 4, False, 0)
    trace.finalize()
    assert trace.txn_count.tolist() == [0, 1]
    assert trace.txn_start.tolist() == [0, 0]


# ----------------------------------------------------------------------
# flatten_wave preserves the round-robin replay invariant
# ----------------------------------------------------------------------
def _naive_round_robin(traces):
    """Access r of every warp (warp order) before access r+1 of any."""
    line, mask, sm, store, role = [], [], [], [], []
    cursors = [0] * len(traces)
    remaining = sum(t.n_accesses for t in traces)
    while remaining:
        for i, t in enumerate(traces):
            c = cursors[i]
            if c >= t.n_accesses:
                continue
            cursors[i] = c + 1
            remaining -= 1
            s = int(t.txn_start[c])
            e = s + int(t.txn_count[c])
            line.extend(t.line[s:e].tolist())
            mask.extend(t.mask[s:e].tolist())
            sm.extend([t.sm] * (e - s))
            store.extend([bool(t.store[c])] * (e - s))
            role.extend([int(t.role[c])] * (e - s))
    return line, mask, sm, store, role


@given(
    warps=st.lists(accesses, min_size=1, max_size=4),
    sms=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_flatten_wave_is_round_robin(warps, sms):
    traces = []
    for w, accs in enumerate(warps):
        t = MemoryTrace(sm=w % sms)
        for addrs, width, store, role in accs:
            t.append_access(np.asarray(addrs, dtype=np.uint64), width,
                            store, role_id(role))
        traces.append(t.finalize())
    flat = flatten_wave(traces)
    line, mask, sm, store, role = _naive_round_robin(traces)
    if not line:
        assert flat is None
        return
    f_line, f_mask, f_sm, f_store, f_role, f_nsec = flat
    assert f_line.tolist() == line
    assert f_mask.tolist() == mask
    assert f_sm.tolist() == sm
    assert f_store.tolist() == store
    assert f_role.tolist() == role
    assert f_nsec.tolist() == POPCOUNT4[np.asarray(mask)].tolist()


# ----------------------------------------------------------------------
# digests and role interning
# ----------------------------------------------------------------------
def _digest(trace):
    h = hashlib.sha1()
    trace.digest_into(h)
    return h.digest()


def test_digest_distinguishes_replay_relevant_content():
    def make(mask_addr):
        t = MemoryTrace(sm=0)
        t.append_access(np.array([mask_addr], dtype=np.uint64), 4, False, 0)
        return t.finalize()

    assert _digest(make(0)) == _digest(make(0))
    # different sector of the same line -> different mask -> new digest
    assert _digest(make(0)) != _digest(make(32))


def test_role_interning_round_trips():
    assert role_id(None) == 0
    assert role_name(0) is None
    rid = role_id("some-role")
    assert rid > 0
    assert role_id("some-role") == rid
    assert role_name(rid) == "some-role"


# ----------------------------------------------------------------------
# delta-encoded wave codec: encode -> decode is the identity on every
# column (dtype, shape, values), including empty and one-access traces
# ----------------------------------------------------------------------
_COLUMNS = ("line", "mask", "txn_count", "txn_start", "store", "role")


def _assert_traces_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.sm == w.sm
        assert g.n_accesses == w.n_accesses
        assert g.n_txns == w.n_txns
        for col in _COLUMNS:
            ga, wa = getattr(g, col), getattr(w, col)
            assert ga.dtype == wa.dtype, col
            assert ga.shape == wa.shape, col
            assert np.array_equal(ga, wa), col


def _wave_from(warps, sms):
    traces = []
    for w, accs in enumerate(warps):
        t = MemoryTrace(sm=w % sms)
        for addrs, width, store, role in accs:
            t.append_access(np.asarray(addrs, dtype=np.uint64), width,
                            store, role_id(role))
        traces.append(t.finalize())
    return traces


@given(
    # empty inner lists produce finalized traces with zero accesses
    warps=st.lists(st.lists(st.tuples(addr_lists, widths, st.booleans(),
                                      st.sampled_from([None, "vtable"])),
                            min_size=0, max_size=8),
                   min_size=0, max_size=4),
    sms=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_wave_codec_round_trips(warps, sms):
    traces = _wave_from(warps, sms)
    got = decode_wave(encode_wave(traces))
    _assert_traces_equal(got, traces)


def test_wave_codec_round_trips_empty_wave():
    assert decode_wave(encode_wave([])) == []


def test_wave_codec_round_trips_empty_and_single_access_traces():
    empty = MemoryTrace(sm=3).finalize()
    single = MemoryTrace(sm=1)
    single.append_access(np.array([1 << 40], dtype=np.uint64), 1, True,
                         role_id("vtable"))
    wave = [empty, single.finalize()]
    got = decode_wave(encode_wave(wave))
    _assert_traces_equal(got, wave)


def test_wave_codec_line_deltas_survive_non_monotone_addresses():
    # descending addresses make the uint64 deltas wrap; the cumsum on
    # decode must wrap back to the exact original values
    t = MemoryTrace(sm=0)
    for addr in (1 << 50, 128, 1 << 63, 0):
        t.append_access(np.array([addr], dtype=np.uint64), 1, False, 0)
    wave = [t.finalize()]
    got = decode_wave(encode_wave(wave))
    _assert_traces_equal(got, wave)


def test_wave_codec_decodes_at_offset():
    # buckets concatenate encoded waves: decoding must work mid-buffer
    w1 = _wave_from([[((0, 128), 1, False, None)]], 1)
    w2 = _wave_from([[((256,), 1, True, "vtable")]], 2)
    b1, b2 = encode_wave(w1), encode_wave(w2)
    buf = b1 + b2
    _assert_traces_equal(decode_wave(buf, 0), w1)
    _assert_traces_equal(decode_wave(buf, len(b1)), w2)


def test_wave_codec_rejects_bad_magic_and_version():
    buf = bytearray(encode_wave([MemoryTrace(sm=0).finalize()]))
    bad_magic = b"XXXX" + bytes(buf[4:])
    with pytest.raises(ValueError, match="magic"):
        decode_wave(bad_magic)
    bad_version = bytes(buf[:4]) + (TRACE_ENCODING_VERSION + 1).to_bytes(
        4, "little") + bytes(buf[8:])
    with pytest.raises(ValueError, match="version"):
        decode_wave(bad_version)
