"""The TypePointer corner cases of section 6.4, demonstrated.

The paper lists three programs that break TypePointer (all of them
undefined or abusive C/C++ anyway):

1. clobbering the upper 15 pointer bits,
2. abusive pointer casts,
3. mixing the TypePointer allocator with tag-unaware allocators.

These tests show the failure modes are *real and observable* in the
model -- clobbered tags dispatch the wrong function under TypePointer
while classic vTable dispatch is immune -- which is exactly the
trade-off the paper documents.
"""
import numpy as np
import pytest

from repro.errors import DispatchError
from repro.memory.address_space import encode_tag, strip_tag

from conftest import read_age


def _speak(machine, ptrs, static_type):
    arr = machine.array_from(ptrs, "u64")

    def kernel(ctx):
        ctx.vcall(arr.ld(ctx, ctx.tid), static_type, "speak")

    return kernel


class TestTagClobbering:
    """Limitation 1: manipulating the upper pointer bits."""

    def test_clobbered_tag_dispatches_wrong_function(self, machine_factory,
                                                     animals):
        m = machine_factory("typepointer")
        m.register(animals.Dog, animals.Cat)
        dogs = m.new_objects(animals.Dog, 4)
        cats = m.new_objects(animals.Cat, 4)
        cat_tag = m.arena.tag_for_type(animals.Cat)
        # a program that rewrites the upper bits of a Dog pointer...
        clobbered = np.array(
            [encode_tag(strip_tag(int(p)), cat_tag) for p in dogs],
            dtype=np.uint64,
        )
        m.launch(_speak(m, clobbered, animals.Animal), 4)
        # ...makes the Dog *speak like a Cat* (age += 2, not += 1)
        assert all(read_age(m, animals, p) == 2 for p in dogs)

    def test_vtable_dispatch_immune_to_pointer_games(self, machine_factory,
                                                     animals):
        # classic CUDA dispatch reads the embedded vTable*: the object
        # itself stays authoritative no matter what the pointer says
        m = machine_factory("cuda")
        m.register(animals.Dog, animals.Cat)
        dogs = m.new_objects(animals.Dog, 4)
        m.launch(_speak(m, dogs, animals.Animal), 4)
        assert all(read_age(m, animals, p) == 1 for p in dogs)

    def test_garbage_tag_faults(self, machine_factory, animals):
        m = machine_factory("typepointer")
        dogs = m.new_objects(animals.Dog, 2)
        garbage = np.array(
            [encode_tag(strip_tag(int(p)), 0x7ABC) for p in dogs],
            dtype=np.uint64,
        )
        with pytest.raises(DispatchError):
            m.launch(_speak(m, garbage, animals.Animal), 2)


class TestAllocatorMixing:
    """Limitation 3: tag-unaware allocations."""

    def test_raw_allocation_rejected_by_dispatch(self, machine_factory,
                                                 animals):
        m = machine_factory("typepointer")
        m.register(animals.Dog)
        # an object created by a tag-unaware path: valid memory, no tag
        raw = m.heap.sbrk(64, 16)
        m.strategy.on_construct(raw, animals.Dog)
        ptrs = np.full(2, raw, dtype=np.uint64)
        with pytest.raises(DispatchError, match="mixing"):
            m.launch(_speak(m, ptrs, animals.Animal), 2)

    def test_same_object_fine_under_coal(self, machine_factory, animals):
        # COAL only needs the address to fall in a SharedOA range, so
        # the same mixing scenario is a lookup failure, not silence
        m = machine_factory("coal")
        m.register(animals.Dog)
        m.new_objects(animals.Dog, 4)
        raw = m.heap.sbrk(64, 16)
        m.strategy.on_construct(raw, animals.Dog)
        ptrs = np.full(2, raw, dtype=np.uint64)
        with pytest.raises(DispatchError):
            m.launch(_speak(m, ptrs, animals.Animal), 2)


class TestUpcastDowncast:
    """Well-defined C++ pointer use keeps working under every technique."""

    def test_base_pointer_dispatches_derived_impl(self, machine_factory,
                                                  animals):
        # calling through Animal* on a Puppy runs Puppy::speak
        for tech in ("cuda", "typepointer", "coal"):
            m = machine_factory(tech)
            m.register(animals.Puppy)
            pups = m.new_objects(animals.Puppy, 4)
            m.launch(_speak(m, pups, animals.Animal), 4)
            assert all(read_age(m, animals, p) == 10 for p in pups)

    def test_mid_hierarchy_static_type(self, machine_factory, animals):
        # Dog* pointing at a Puppy also dispatches Puppy::speak
        m = machine_factory("typepointer")
        m.register(animals.Puppy)
        pups = m.new_objects(animals.Puppy, 4)
        m.launch(_speak(m, pups, animals.Dog), 4)
        assert all(read_age(m, animals, p) == 10 for p in pups)
