"""Tests for SharedOA: regions, doubling, merging, range table."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocatorError, DoubleFree
from repro.memory.heap import Heap
from repro.memory.shared_oa import SharedOAAllocator


@pytest.fixture
def soa(heap):
    return SharedOAAllocator(heap, initial_chunk_objects=4)


class TestPlacement:
    def test_same_type_packed_contiguously(self, soa):
        ptrs = [soa.alloc_object("A", 24) for _ in range(4)]
        strides = np.diff(ptrs)
        assert (strides == 24).all()

    def test_types_in_disjoint_regions(self, soa):
        a = [soa.alloc_object("A", 16) for _ in range(4)]
        b = [soa.alloc_object("B", 16) for _ in range(4)]
        ranges = soa.ranges()
        assert len(ranges) == 2
        (a0, a1, ta), (b0, b1, tb) = ranges
        assert a1 <= b0
        assert {ta, tb} == {"A", "B"}
        assert all(a0 <= p < a1 for p in (a if ta == "A" else b))

    def test_natural_stride_no_internal_fragmentation(self, soa):
        # objects packed at 8-byte-aligned natural stride (section 4)
        p0 = soa.alloc_object("A", 20)
        p1 = soa.alloc_object("A", 20)
        assert p1 - p0 == 24  # align8(20)

    def test_inconsistent_size_rejected(self, soa):
        soa.alloc_object("A", 16)
        with pytest.raises(AllocatorError):
            soa.alloc_object("A", 64)


class TestGrowthAndMerging:
    def test_region_doubling(self, heap):
        soa = SharedOAAllocator(heap, initial_chunk_objects=4,
                                merge_adjacent=False)
        for _ in range(4 + 8 + 16):
            soa.alloc_object("A", 16)
        caps = [r.capacity for r in soa.regions_of("A")]
        assert caps == [4, 8, 16]

    def test_adjacent_regions_merge(self, heap):
        soa = SharedOAAllocator(heap, initial_chunk_objects=4)
        # no interleaving allocations: the doubled region lands adjacent
        for _ in range(12):
            soa.alloc_object("A", 16)
        assert soa.region_count() == 1
        assert soa.regions_of("A")[0].capacity >= 12

    def test_interleaved_types_do_not_merge(self, heap):
        soa = SharedOAAllocator(heap, initial_chunk_objects=2)
        for _ in range(3):
            soa.alloc_object("A", 16)
            soa.alloc_object("B", 16)
        # A and B regions alternate in the address space: no merge
        assert soa.region_count() >= 3

    def test_merge_disabled(self, heap):
        soa = SharedOAAllocator(heap, initial_chunk_objects=2,
                                merge_adjacent=False)
        for _ in range(6):
            soa.alloc_object("A", 16)
        assert soa.region_count() == 2

    def test_range_table_version_bumps_on_growth(self, heap):
        soa = SharedOAAllocator(heap, initial_chunk_objects=2)
        v0 = soa.range_table_version
        soa.alloc_object("A", 16)
        v1 = soa.range_table_version
        assert v1 > v0
        soa.alloc_object("A", 16)  # fits in existing region
        assert soa.range_table_version == v1

    def test_custom_growth_factor(self, heap):
        soa = SharedOAAllocator(heap, initial_chunk_objects=2,
                                growth_factor=4, merge_adjacent=False)
        for _ in range(2 + 8):
            soa.alloc_object("A", 16)
        assert [r.capacity for r in soa.regions_of("A")] == [2, 8]


class TestFreeing:
    def test_free_and_reuse_slot(self, soa):
        a = soa.alloc_object("A", 16)
        soa.free_object(a)
        b = soa.alloc_object("A", 16)
        assert b == a

    def test_double_free(self, soa):
        a = soa.alloc_object("A", 16)
        soa.free_object(a)
        with pytest.raises(DoubleFree):
            soa.free_object(a)

    def test_region_live_counts(self, soa):
        ptrs = [soa.alloc_object("A", 16) for _ in range(4)]
        region = soa.regions_of("A")[0]
        assert region.live == 4
        soa.free_object(ptrs[1])
        assert region.live == 3


class TestLookup:
    def test_type_of_address(self, soa):
        a = soa.alloc_object("A", 16)
        b = soa.alloc_object("B", 16)
        assert soa.type_of_address(a) == "A"
        assert soa.type_of_address(b) == "B"
        assert soa.type_of_address(5) is None

    def test_every_live_object_in_exactly_one_range(self, soa):
        for i in range(30):
            soa.alloc_object(f"T{i % 3}", 16)
        ranges = soa.ranges()
        for addr, tkey, _ in soa.live_objects():
            hits = [t for (b, e, t) in ranges if b <= addr < e]
            assert hits == [tkey]


class TestFragmentation:
    def test_fragmentation_grows_with_chunk_size(self):
        frags = []
        for chunk in (4, 64, 1024):
            heap = Heap(capacity=1 << 20)
            soa = SharedOAAllocator(heap, initial_chunk_objects=chunk)
            for _ in range(40):
                soa.alloc_object("A", 16)
            frags.append(soa.external_fragmentation())
        assert frags[0] < frags[-1]

    def test_full_region_zero_fragmentation(self, heap):
        soa = SharedOAAllocator(heap, initial_chunk_objects=4)
        for _ in range(4):
            soa.alloc_object("A", 16)
        assert soa.external_fragmentation() == pytest.approx(0.0)


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.booleans()),
        min_size=1, max_size=80,
    ),
    chunk=st.sampled_from([1, 2, 4, 16]),
)
@settings(max_examples=30, deadline=None)
def test_invariants_under_alloc_free_property(ops, chunk):
    """No overlap; every live object inside exactly one same-type range."""
    heap = Heap(capacity=1 << 20)
    soa = SharedOAAllocator(heap, initial_chunk_objects=chunk)
    live = {0: [], 1: [], 2: []}
    sizes = {0: 16, 1: 24, 2: 40}
    for type_id, is_free in ops:
        if is_free and live[type_id]:
            soa.free_object(live[type_id].pop())
        else:
            live[type_id].append(soa.alloc_object(type_id, sizes[type_id]))

    # ranges must not overlap
    ranges = soa.ranges()
    for (b0, e0, _), (b1, _, _) in zip(ranges, ranges[1:]):
        assert e0 <= b1
    # each live object inside exactly one range, of its own type
    for t, ptrs in live.items():
        for p in ptrs:
            hits = [(b, e, rt) for (b, e, rt) in ranges if b <= p < e]
            assert len(hits) == 1
            assert hits[0][2] == t
    # live objects never overlap each other
    spans = sorted(
        (p, p + sizes[t]) for t, ptrs in live.items() for p in ptrs
    )
    for (a0, a1), (b0, _) in zip(spans, spans[1:]):
        assert a1 <= b0
