"""Tests for the SIMT executor: charging, waves, vcall mechanics."""
import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpu.isa import InstrClass


class TestInstructionCharging:
    def test_alu_and_ctrl_counted(self, machine_factory):
        m = machine_factory("cuda")

        def kernel(ctx):
            ctx.alu(3)
            ctx.ctrl(2)

        stats = m.launch(kernel, 32)
        assert stats.warp_instrs[InstrClass.COMPUTE] == 3
        assert stats.warp_instrs[InstrClass.CTRL] == 2
        assert stats.thread_instrs == 5 * 32

    def test_partial_warp_thread_instrs(self, machine_factory):
        m = machine_factory("cuda")

        def kernel(ctx):
            ctx.alu(1)

        stats = m.launch(kernel, 40)  # one full warp + 8 lanes
        assert stats.warp_instrs[InstrClass.COMPUTE] == 2
        assert stats.thread_instrs == 32 + 8

    def test_invalid_thread_count(self, machine_factory):
        m = machine_factory("cuda")
        with pytest.raises(LaunchError):
            m.launch(lambda ctx: None, 0)


class TestMemoryOps:
    def test_load_returns_heap_values(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array_from(np.arange(64, dtype=np.uint32), "u32")
        seen = {}

        def kernel(ctx):
            seen.setdefault("v", []).append(arr.ld(ctx, ctx.tid))

        m.launch(kernel, 64)
        np.testing.assert_array_equal(
            np.concatenate(seen["v"]), np.arange(64, dtype=np.uint32)
        )

    def test_store_visible_after_launch(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array("u32", 64)

        def kernel(ctx):
            arr.st(ctx, ctx.tid, ctx.tid.astype(np.uint32) * 2)

        m.launch(kernel, 64)
        np.testing.assert_array_equal(
            arr.read(), np.arange(64, dtype=np.uint32) * 2
        )

    def test_transactions_counted(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array_from(np.zeros(32, dtype=np.uint64), "u64")

        def kernel(ctx):
            arr.ld(ctx, ctx.tid)   # 32 u64 = 256B = 8 sectors

        stats = m.launch(kernel, 32)
        assert stats.global_load_transactions == 8
        assert stats.warp_instrs[InstrClass.MEM] == 1

    def test_store_transactions_separate(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array("u32", 32)

        def kernel(ctx):
            arr.st(ctx, ctx.tid, np.zeros(ctx.lane_count, dtype=np.uint32))

        stats = m.launch(kernel, 32)
        assert stats.global_store_transactions == 4
        assert stats.global_load_transactions == 0

    def test_cache_counters_consistent(self, machine_factory):
        m = machine_factory("cuda")
        arr = m.array_from(np.zeros(256, dtype=np.uint32), "u32")

        def kernel(ctx):
            arr.ld(ctx, ctx.tid)

        stats = m.launch(kernel, 256)
        assert stats.l1_accesses == stats.global_load_transactions
        assert stats.l1_hits + stats.l2_accesses == stats.l1_accesses
        assert stats.l2_hits + stats.dram_accesses == stats.l2_accesses


class TestWaveReplay:
    def test_wave_interleaving_defeats_intra_warp_prefetch(self):
        """A warp's second pass over its data can be evicted by peers.

        With serial (1-resident) execution the second load of the same
        address always hits; with many resident warps sharing a tiny L1
        it often does not -- the section-1 thrashing effect.
        """
        from repro import Machine
        from repro.gpu.config import GPUConfig, CacheGeometry

        def run(resident):
            cfg = GPUConfig(
                name=f"wave{resident}", num_sms=1, schedulers_per_sm=1,
                l1=CacheGeometry(size_bytes=1024, assoc=2),
                l2=CacheGeometry(size_bytes=4096, assoc=2),
                resident_warps_per_sm=resident,
            )
            m = Machine("cuda", config=cfg)
            arr = m.array_from(np.zeros(1024, dtype=np.uint64), "u64")

            def kernel(ctx):
                arr.ld(ctx, ctx.tid)   # first touch
                arr.ld(ctx, ctx.tid)   # re-touch: hit iff line survived
            return m.launch(kernel, 1024).l1_hit_rate

        assert run(1) > run(32)

    def test_results_identical_across_wave_sizes(self):
        """Functional results must not depend on the wave size."""
        from repro import Machine
        from repro.gpu.config import GPUConfig

        outs = []
        for resident in (1, 4, 64):
            cfg = GPUConfig(name=f"w{resident}", num_sms=2,
                            resident_warps_per_sm=resident)
            m = Machine("cuda", config=cfg)
            arr = m.array("u32", 256)

            def kernel(ctx):
                arr.st(ctx, ctx.tid, (ctx.tid * 3 + 1).astype(np.uint32))

            m.launch(kernel, 256)
            outs.append(arr.read())
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])


class TestVcall:
    def test_lane_pointer_mismatch_rejected(self, machine_factory, animals):
        m = machine_factory("cuda")
        dogs = m.new_objects(animals.Dog, 8)

        def kernel(ctx):
            ctx.vcall(dogs[:4], animals.Animal, "speak")

        with pytest.raises(LaunchError):
            m.launch(kernel, 8)

    def test_vfunc_calls_counted_per_thread(self, machine_factory, animals):
        m = machine_factory("cuda")
        dogs = m.new_objects(animals.Dog, 48)
        arr = m.array_from(dogs, "u64")

        def kernel(ctx):
            ctx.vcall(arr.ld(ctx, ctx.tid), animals.Animal, "speak")

        stats = m.launch(kernel, 48)
        assert stats.vfunc_calls == 48

    def test_nested_vcall(self, machine_factory, animals):
        from repro.runtime.typesystem import TypeDescriptor

        m = machine_factory("cuda")
        m.register(animals.Dog)
        dogs = m.new_objects(animals.Dog, 8)
        dog_arr = m.array_from(dogs, "u64")
        outer_results = {}

        def outer_impl(ctx, objs):
            # nested virtual call from inside a virtual function body
            inner = dog_arr.ld(ctx, ctx.tid % len(dogs))
            outer_results["legs"] = ctx.vcall(inner, animals.Animal, "legs")

        Outer = TypeDescriptor(
            f"Outer#{id(self_ := object()):x}", methods={"go": outer_impl}
        )
        outers = m.new_objects(Outer, 8)
        arr = m.array_from(outers, "u64")

        def kernel(ctx):
            ctx.vcall(arr.ld(ctx, ctx.tid), Outer, "go")

        m.launch(kernel, 8)
        np.testing.assert_array_equal(outer_results["legs"], [4] * 8)

    def test_run_stats_accumulate(self, machine_factory, animals):
        m = machine_factory("cuda")
        dogs = m.new_objects(animals.Dog, 32)
        arr = m.array_from(dogs, "u64")

        def kernel(ctx):
            ctx.vcall(arr.ld(ctx, ctx.tid), animals.Animal, "speak")

        m.launch(kernel, 32)
        m.launch(kernel, 32)
        assert m.launches == 2
        assert m.run_stats.vfunc_calls == 64
        m.reset_run()
        assert m.run_stats.vfunc_calls == 0
