"""Unit + property tests for the 49-bit VA space and tag helpers."""
import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.memory.address_space import (
    ADDR_MASK,
    MAX_TAG,
    TAG_BITS,
    VA_BITS,
    align_up,
    decode_tag,
    decode_tag_array,
    encode_tag,
    has_tag_array,
    is_canonical,
    strip_tag,
    strip_tag_array,
)


def test_constants_match_paper():
    # 64-bit values represent a 49-bit virtual address (section 1)
    assert VA_BITS == 49
    assert TAG_BITS == 15
    # 15 bits encode up to 32K distinct offsets (section 6.1)
    assert MAX_TAG == (1 << 15) - 1


def test_encode_decode_roundtrip_scalar():
    ptr = encode_tag(0x1234_5678, 0x42)
    assert decode_tag(ptr) == 0x42
    assert strip_tag(ptr) == 0x1234_5678


def test_encode_rejects_tagged_address():
    tagged = encode_tag(100, 1)
    with pytest.raises(ValueError):
        encode_tag(tagged, 2)


def test_encode_rejects_oversized_tag():
    with pytest.raises(ValueError):
        encode_tag(100, MAX_TAG + 1)
    with pytest.raises(ValueError):
        encode_tag(100, -1)


def test_is_canonical():
    assert is_canonical(0)
    assert is_canonical(ADDR_MASK)
    assert not is_canonical(ADDR_MASK + 1)
    assert not is_canonical(encode_tag(5, 1))


def test_zero_tag_is_identity():
    assert encode_tag(0xABC, 0) == 0xABC
    assert decode_tag(0xABC) == 0


def test_array_helpers_match_scalar():
    addrs = [0x10, 0xFF00, ADDR_MASK]
    tags = [0, 7, MAX_TAG]
    ptrs = np.array(
        [encode_tag(a, t) for a, t in zip(addrs, tags)], dtype=np.uint64
    )
    np.testing.assert_array_equal(
        strip_tag_array(ptrs), np.array(addrs, dtype=np.uint64)
    )
    np.testing.assert_array_equal(
        decode_tag_array(ptrs), np.array(tags, dtype=np.uint64)
    )
    np.testing.assert_array_equal(
        has_tag_array(ptrs), np.array([False, True, True])
    )


@given(
    addr=st.integers(min_value=0, max_value=ADDR_MASK),
    tag=st.integers(min_value=0, max_value=MAX_TAG),
)
def test_roundtrip_property(addr, tag):
    ptr = encode_tag(addr, tag)
    assert decode_tag(ptr) == tag
    assert strip_tag(ptr) == addr
    assert 0 <= ptr < 2**64


@given(
    addrs=st.lists(st.integers(min_value=0, max_value=ADDR_MASK),
                   min_size=1, max_size=32),
    tags=st.lists(st.integers(min_value=0, max_value=MAX_TAG),
                  min_size=1, max_size=32),
)
def test_array_roundtrip_property(addrs, tags):
    n = min(len(addrs), len(tags))
    ptrs = np.array(
        [encode_tag(a, t) for a, t in zip(addrs[:n], tags[:n])],
        dtype=np.uint64,
    )
    np.testing.assert_array_equal(
        strip_tag_array(ptrs), np.array(addrs[:n], dtype=np.uint64)
    )
    np.testing.assert_array_equal(
        decode_tag_array(ptrs), np.array(tags[:n], dtype=np.uint64)
    )


def test_align_up():
    assert align_up(0, 8) == 0
    assert align_up(1, 8) == 8
    assert align_up(8, 8) == 8
    assert align_up(9, 16) == 16
    assert align_up(17, 16) == 32


def test_align_up_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_up(5, 3)
    with pytest.raises(ValueError):
        align_up(5, 0)


@given(
    value=st.integers(min_value=0, max_value=1 << 50),
    shift=st.integers(min_value=0, max_value=12),
)
def test_align_up_property(value, shift):
    alignment = 1 << shift
    out = align_up(value, alignment)
    assert out >= value
    assert out % alignment == 0
    assert out - value < alignment
