"""Cross-module property-based tests (hypothesis).

These tie whole subsystems together: random type populations must
dispatch identically under every technique; random alloc/free traces
must keep COAL's segment tree consistent with the allocator; random
access patterns must keep the cache accounting exact.
"""
import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Machine, TypeDescriptor
from repro.gpu.config import small_config
from repro.memory.heap import Heap
from repro.memory.shared_oa import SharedOAAllocator



def _make_hierarchy(tag, num_types):
    base = TypeDescriptor(
        f"PBase#{tag}", fields=[("acc", "u32")], methods={"bump": None}
    )
    leaves = []
    for k in range(num_types):
        inc = np.uint32(k + 1)

        def bump(ctx, objs, _inc=inc, _base=base):
            v = ctx.load_field(objs, _base, "acc")
            ctx.store_field(objs, _base, "acc", v + _inc)

        leaves.append(
            TypeDescriptor(f"PLeaf{k}#{tag}", base=base,
                           methods={"bump": bump})
        )
    return base, leaves


_uid = [0]


@given(
    kinds=st.lists(st.integers(0, 3), min_size=1, max_size=96),
    iterations=st.integers(1, 3),
)
@settings(max_examples=15, deadline=None)
def test_dispatch_equivalence_property(kinds, iterations):
    """Any type mix, any iteration count: all techniques agree exactly."""
    results = {}
    for tech in ("cuda", "concord", "coal", "typepointer",
                 "typepointer_indexed"):
        _uid[0] += 1
        m = Machine(tech, config=small_config())
        base, leaves = _make_hierarchy(f"{tech}{_uid[0]}", 4)
        m.register(*leaves)
        ptrs = np.array(
            [m.new_objects(leaves[k], 1)[0] for k in kinds], dtype=np.uint64
        )
        arr = m.array_from(ptrs, "u64")

        def kernel(ctx):
            ctx.vcall(arr.ld(ctx, ctx.tid), base, "bump")

        for _ in range(iterations):
            m.launch(kernel, len(ptrs))
        off = m.registry.layout(base).offset("acc")
        results[tech] = tuple(
            int(m.heap.load(m.allocator._canonical(int(p)) + off, "u32"))
            for p in ptrs
        )
        # ground truth: each object bumped (kind+1) per iteration
        expect = tuple((k + 1) * iterations for k in kinds)
        assert results[tech] == expect, tech
    assert len(set(results.values())) == 1


@given(
    ops=st.lists(st.tuples(st.integers(0, 2), st.booleans()),
                 min_size=1, max_size=60),
)
@settings(max_examples=20, deadline=None)
def test_segment_tree_tracks_allocator_property(ops):
    """After any alloc/free trace, the tree resolves every live object
    to its true type and rejects addresses outside all ranges."""
    from repro.core.range_table import VirtualRangeTable

    heap = Heap(capacity=1 << 20)
    soa = SharedOAAllocator(heap, initial_chunk_objects=2)
    live = {0: [], 1: [], 2: []}
    for t, is_free in ops:
        if is_free and live[t]:
            soa.free_object(live[t].pop())
        else:
            live[t].append(soa.alloc_object(t, 16 + t * 8))
    if not soa.ranges():
        return
    vt_of = {t: 1000 + t for t in (0, 1, 2)}
    table = VirtualRangeTable(heap, soa.ranges(), lambda t: vt_of[t])
    for t, ptrs in live.items():
        for p in ptrs:
            assert table.scalar_lookup(p) == vt_of[t]
    # an address below every range resolves to nothing
    assert table.scalar_lookup(1) is None


@given(
    seeds=st.integers(0, 10_000),
    n_accesses=st.integers(1, 40),
)
@settings(max_examples=20, deadline=None)
def test_cache_accounting_exact_property(seeds, n_accesses):
    """hits + next-level accesses == accesses at every level, for any
    random access stream through a real Machine."""
    rng = np.random.default_rng(seeds)
    m = Machine("cuda", config=small_config())
    arr = m.array_from(np.zeros(512, dtype=np.uint64), "u64")
    idx = rng.integers(0, 512, size=(n_accesses, 32))

    def kernel(ctx):
        for row in idx:
            arr.ld(ctx, row[: ctx.lane_count])

    stats = m.launch(kernel, 32)
    assert stats.l1_hits + stats.l2_accesses == stats.l1_accesses
    assert stats.l2_hits + stats.dram_accesses == stats.l2_accesses
    assert stats.global_load_transactions == stats.l1_accesses


@given(counts=st.lists(st.integers(1, 40), min_size=1, max_size=5))
@settings(max_examples=15, deadline=None)
def test_typepointer_tags_always_resolve_property(counts):
    """Every pointer a TypePointer machine hands out decodes to the
    type it was allocated as, regardless of allocation interleaving."""
    from repro.memory.address_space import decode_tag

    _uid[0] += 1
    m = Machine("typepointer", config=small_config())
    base, leaves = _make_hierarchy(f"tp{_uid[0]}", len(counts))
    m.register(*leaves)
    for k, n in enumerate(counts):
        ptrs = m.new_objects(leaves[k], n)
        for p in ptrs:
            tag = decode_tag(int(p))
            assert m.arena.type_of_tag(tag) is leaves[k]
