"""Tests for the memory-access coalescer."""
import numpy as np
from hypothesis import given, strategies as st

from repro.gpu.coalescing import (
    LINE_BYTES,
    SECTOR_BYTES,
    coalesce,
    count_sectors,
    sector_addresses,
)


def _addrs(*vals):
    return np.array(vals, dtype=np.uint64)


def test_converged_access_is_one_transaction():
    # all 32 lanes load the same word: 1 sector (op B of Figure 1)
    txns = coalesce(np.full(32, 0x1000, dtype=np.uint64), 8)
    assert len(txns) == 1
    assert txns[0].num_sectors == 1


def test_fully_diverged_access_is_32_sectors():
    # each lane in its own sector (op A of Figure 1, scattered objects)
    addrs = np.arange(32, dtype=np.uint64) * 256 + 0x1000
    assert count_sectors(addrs, 8) == 32


def test_unit_stride_u32_coalesces():
    # 32 consecutive u32s span 128B = 4 sectors
    addrs = np.arange(32, dtype=np.uint64) * 4
    assert count_sectors(addrs, 4) == 4


def test_unit_stride_u64_coalesces():
    addrs = np.arange(32, dtype=np.uint64) * 8
    assert count_sectors(addrs, 8) == 8


def test_stride_two_wastes_bandwidth():
    # 64B stride: one sector per lane touched, none shared
    addrs = np.arange(32, dtype=np.uint64) * 64
    assert count_sectors(addrs, 4) == 32


def test_sector_straddling_access():
    # an 8-byte load at offset 28 touches two sectors
    assert count_sectors(_addrs(28), 8) == 2
    assert count_sectors(_addrs(24), 8) == 1


def test_empty_access():
    assert coalesce(np.empty(0, dtype=np.uint64), 8) == []
    assert count_sectors(np.empty(0, dtype=np.uint64), 8) == 0


def test_transactions_group_by_line():
    # sectors 0 and 1 of line 0, sector 0 of line 1
    addrs = _addrs(0, 32, 128)
    txns = coalesce(addrs, 4)
    assert len(txns) == 2
    assert txns[0].line_addr == 0 and txns[0].sector_mask == 0b0011
    assert txns[1].line_addr == 128 and txns[1].sector_mask == 0b0001


def test_transaction_sector_mask_width():
    addrs = _addrs(0, 32, 64, 96)  # all four sectors of one line
    txns = coalesce(addrs, 4)
    assert len(txns) == 1
    assert txns[0].sector_mask == 0b1111
    assert txns[0].num_sectors == 4


def test_sector_addresses_sorted_unique():
    addrs = _addrs(100, 100, 40, 200)
    out = sector_addresses(addrs, 4)
    assert list(out) == [32, 96, 192]
    assert all(a % SECTOR_BYTES == 0 for a in out)


def test_duplicate_addresses_coalesce():
    addrs = np.full(32, 0xABC0, dtype=np.uint64)
    assert count_sectors(addrs, 4) == 1


@given(
    lanes=st.lists(
        st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=32
    ),
    width=st.sampled_from([1, 4, 8]),
)
def test_count_matches_brute_force(lanes, width):
    addrs = np.array(lanes, dtype=np.uint64)
    expect = set()
    for a in lanes:
        for b in range(a, a + width):
            expect.add(b // SECTOR_BYTES)
    assert count_sectors(addrs, width) == len(expect)
    txns = coalesce(addrs, width)
    got = set()
    for t in txns:
        for s in range(LINE_BYTES // SECTOR_BYTES):
            if t.sector_mask >> s & 1:
                got.add((t.line_addr + s * SECTOR_BYTES) // SECTOR_BYTES)
    assert got == expect


@given(
    lanes=st.lists(
        st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=32
    ),
)
def test_transaction_count_bounds(lanes):
    addrs = np.array(lanes, dtype=np.uint64)
    n = count_sectors(addrs, 4)
    assert 1 <= n <= 2 * len(lanes)
