"""Tests for the virtual range table / segment tree (Algorithm 1)."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.range_table import EMPTY_MIN, NODE_BYTES, VirtualRangeTable
from repro.memory.heap import Heap


def _table(heap, ranges):
    """Build a table with fake vTable addresses 1000+i per range."""
    payload = {t: 1000 + i for i, (_, _, t) in enumerate(ranges)}
    return VirtualRangeTable(heap, ranges, lambda t: payload[t]), payload


class TestConstruction:
    def test_single_range(self, heap):
        t, pay = _table(heap, [(100, 200, "A")])
        assert t.depth == 0
        assert t.tree_size == 1
        assert t.scalar_lookup(150) == pay["A"]
        assert t.scalar_lookup(99) is None
        assert t.scalar_lookup(200) is None

    def test_pow2_padding(self, heap):
        t, _ = _table(heap, [(0, 10, "A"), (10, 20, "B"), (20, 30, "C")])
        assert t.num_leaves == 4
        assert t.tree_size == 7
        assert t.depth == 2

    def test_overlapping_ranges_rejected(self, heap):
        with pytest.raises(ValueError):
            _table(heap, [(0, 100, "A"), (50, 150, "B")])

    def test_adjacent_ranges_ok(self, heap):
        t, pay = _table(heap, [(0, 100, "A"), (100, 200, "B")])
        assert t.scalar_lookup(99) == pay["A"]
        assert t.scalar_lookup(100) == pay["B"]

    def test_empty_leaf_sentinels(self, heap):
        t, _ = _table(heap, [(0, 10, "A"), (10, 20, "B"), (20, 30, "C")])
        # padding leaf must never match
        lo, hi, payload = t._read_node(t.tree_size - 1)
        assert lo == EMPTY_MIN and hi == 0 and payload == 0

    def test_nodes_stored_in_heap(self, heap):
        brk_before = heap.brk
        t, _ = _table(heap, [(0, 10, "A"), (10, 20, "B")])
        assert heap.brk >= brk_before + t.tree_size * NODE_BYTES


class TestScalarLookup:
    def test_matches_linear_scan(self, heap):
        ranges = [(i * 100, i * 100 + 60, f"T{i}") for i in range(1, 9)]
        t, _ = _table(heap, ranges)
        for addr in range(80, 900, 7):
            assert t.scalar_lookup(addr) == t.linear_lookup(addr)

    def test_gap_between_ranges_returns_none(self, heap):
        t, _ = _table(heap, [(0, 50, "A"), (100, 150, "B")])
        assert t.scalar_lookup(75) is None


class _FakeCtx:
    """Minimal execution-context stub counting charged operations."""

    def __init__(self, heap):
        self.heap = heap
        self.loads = 0
        self.alus = 0
        self.ctrls = 0

    def charged_load(self, addrs, width, role=None):
        self.loads += 1

    def peek(self, addrs, dtype="u64"):
        return self.heap.gather(np.asarray(addrs, dtype=np.uint64), dtype)

    def alu(self, n=1, op=None, role=None):
        self.alus += n

    def ctrl(self, n=1, op=None, role=None):
        self.ctrls += n


class TestWarpLookup:
    def test_warp_lookup_matches_scalar(self, heap):
        ranges = [(i * 64, i * 64 + 64, f"T{i}") for i in range(5)]
        t, _ = _table(heap, ranges)
        ctx = _FakeCtx(heap)
        addrs = np.array([5, 70, 200, 319, 64, 128], dtype=np.uint64)
        out = t.lookup_warp(ctx, addrs, role="x")
        expect = [t.scalar_lookup(int(a)) for a in addrs]
        np.testing.assert_array_equal(out, np.array(expect, dtype=np.uint64))

    def test_lookup_cost_is_logarithmic(self, heap):
        ranges = [(i * 64, i * 64 + 64, f"T{i}") for i in range(8)]
        t, _ = _table(heap, ranges)
        ctx = _FakeCtx(heap)
        t.lookup_warp(ctx, np.array([5], dtype=np.uint64), role="x")
        # depth=3 levels + 1 payload load
        assert t.depth == 3
        assert ctx.loads == t.depth + 1

    def test_unmatched_address_raises(self, heap):
        from repro.errors import DispatchError

        t, _ = _table(heap, [(100, 200, "A"), (300, 400, "B")])
        ctx = _FakeCtx(heap)
        with pytest.raises(DispatchError):
            t.lookup_warp(ctx, np.array([250], dtype=np.uint64), role="x")

    def test_single_range_warp_lookup(self, heap):
        from repro.errors import DispatchError

        t, pay = _table(heap, [(100, 200, "A")])
        ctx = _FakeCtx(heap)
        out = t.lookup_warp(ctx, np.array([150, 199], dtype=np.uint64), "x")
        assert list(out) == [pay["A"], pay["A"]]
        with pytest.raises(DispatchError):
            t.lookup_warp(ctx, np.array([250], dtype=np.uint64), "x")


@given(
    widths=st.lists(st.integers(8, 512), min_size=1, max_size=24),
    gaps=st.lists(st.integers(0, 64), min_size=1, max_size=24),
    probes=st.lists(st.integers(0, 1 << 15), min_size=1, max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_tree_equals_linear_scan_property(widths, gaps, probes):
    """For random non-overlapping ranges, Algorithm 1 == linear scan."""
    n = min(len(widths), len(gaps))
    ranges = []
    cursor = 16
    for i in range(n):
        base = cursor + gaps[i]
        end = base + widths[i]
        ranges.append((base, end, f"T{i}"))
        cursor = end
    heap = Heap(capacity=1 << 20)
    t, _ = _table(heap, ranges)
    for p in probes:
        assert t.scalar_lookup(p) == t.linear_lookup(p)
