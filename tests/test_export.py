"""Tests for JSON export/import of figure results."""
import pytest

from repro.harness.export import export_figure, figure_to_dict, load_figure
from repro.harness.figures import FigureResult


@pytest.fixture
def result():
    return FigureResult(
        figure="fig6",
        values={("TRAF", "cuda"): 0.5, ("TRAF", "coal"): 1.1},
        summary={"cuda": 0.5, "coal": 1.1},
        table="Figure 6: ...",
    )


def test_roundtrip(tmp_path, result):
    path = export_figure(result, tmp_path / "fig6.json")
    restored = load_figure(path)
    assert restored.figure == result.figure
    assert restored.values == result.values
    assert restored.summary == result.summary
    assert restored.table == result.table


def test_tuple_keys_flattened(result):
    d = figure_to_dict(result)
    assert "TRAF||cuda" in d["values"]


def test_numeric_tuple_keys(tmp_path):
    r = FigureResult(
        figure="fig12a",
        values={("cuda", 16384): 2.0, ("branch", 16384): 1.0},
        summary={"cuda": 2.0},
        table="t",
    )
    restored = load_figure(export_figure(r, tmp_path / "f.json"))
    assert restored.values[("cuda", 16384)] == 2.0


def test_creates_parent_dirs(tmp_path, result):
    path = export_figure(result, tmp_path / "deep" / "dir" / "x.json")
    assert path.exists()


def test_numpy_values_serializable(tmp_path):
    import numpy as np

    r = FigureResult(
        figure="x",
        values={"a": np.float64(1.5)},
        summary={"a": np.float64(1.5)},
        table="t",
    )
    restored = load_figure(export_figure(r, tmp_path / "n.json"))
    assert restored.values["a"] == 1.5
