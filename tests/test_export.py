"""Tests for JSON export/import of figure results."""
import json

import pytest

import repro.faults as faults
from repro.faults import FaultSchedule, InjectedFault, ScheduleEntry
from repro.harness.export import (
    EXPORT_SCHEMA,
    ROWS_SCHEMA,
    export_figure,
    export_rows,
    figure_to_dict,
    load_figure,
    load_rows,
    rows_to_payload,
    validate_export,
    write_json_atomic,
)
from repro.harness.figures import FigureResult


@pytest.fixture
def result():
    return FigureResult(
        figure="fig6",
        values={("TRAF", "cuda"): 0.5, ("TRAF", "coal"): 1.1},
        summary={"cuda": 0.5, "coal": 1.1},
        table="Figure 6: ...",
    )


def test_roundtrip(tmp_path, result):
    path = export_figure(result, tmp_path / "fig6.json")
    restored = load_figure(path)
    assert restored.figure == result.figure
    assert restored.values == result.values
    assert restored.summary == result.summary
    assert restored.table == result.table


def test_tuple_keys_flattened(result):
    d = figure_to_dict(result)
    assert "TRAF||cuda" in d["values"]


def test_numeric_tuple_keys(tmp_path):
    r = FigureResult(
        figure="fig12a",
        values={("cuda", 16384): 2.0, ("branch", 16384): 1.0},
        summary={"cuda": 2.0},
        table="t",
    )
    restored = load_figure(export_figure(r, tmp_path / "f.json"))
    assert restored.values[("cuda", 16384)] == 2.0


def test_creates_parent_dirs(tmp_path, result):
    path = export_figure(result, tmp_path / "deep" / "dir" / "x.json")
    assert path.exists()


def test_numpy_values_serializable(tmp_path):
    import numpy as np

    r = FigureResult(
        figure="x",
        values={"a": np.float64(1.5)},
        summary={"a": np.float64(1.5)},
        table="t",
    )
    restored = load_figure(export_figure(r, tmp_path / "n.json"))
    assert restored.values["a"] == 1.5


# ----------------------------------------------------------------------
# atomicity: a failure between temp-write and rename never tears a file
# ----------------------------------------------------------------------
def test_atomic_write_survives_injected_crash(tmp_path, result):
    """A fault at the rename seam leaves the old file fully intact."""
    path = tmp_path / "fig.json"
    export_figure(result, path)
    before = path.read_text()

    faults.arm(FaultSchedule(0, [ScheduleEntry("export.write", "raise")]))
    try:
        with pytest.raises(InjectedFault):
            write_json_atomic({"schema": "torn"}, path)
    finally:
        faults.disarm()

    assert path.read_text() == before           # old contents survive
    assert list(tmp_path.glob("*.tmp")) == []   # no temp debris

    # the retry (failpoint is once=True) succeeds and replaces the file
    write_json_atomic(figure_to_dict(result), path)
    assert json.loads(path.read_text())["figure"] == result.figure


def test_atomic_csv_write_survives_injected_crash(tmp_path):
    rows = [{"a": 1, "b": 2.5}]
    path = tmp_path / "rows.csv"
    export_rows(rows, path)
    before = path.read_text()

    faults.arm(FaultSchedule(0, [ScheduleEntry("export.write", "raise")]))
    try:
        with pytest.raises(InjectedFault):
            export_rows([{"a": 9, "b": 9.0}], path)
    finally:
        faults.disarm()
    assert path.read_text() == before
    assert list(tmp_path.glob("*.tmp")) == []


# ----------------------------------------------------------------------
# schema stamping + validation
# ----------------------------------------------------------------------
def test_export_is_schema_stamped(tmp_path, result):
    data = json.loads(export_figure(result, tmp_path / "f.json").read_text())
    assert data["schema"] == EXPORT_SCHEMA
    validate_export(data)  # round-trips through the validator


def test_validate_export_rejects_bad_payloads():
    with pytest.raises(ValueError, match="schema"):
        validate_export({"figure": "fig6"})
    with pytest.raises(ValueError, match="not a number"):
        validate_export({"schema": EXPORT_SCHEMA, "figure": "f",
                         "table": "t", "values": {"a": "oops"},
                         "summary": {}})
    with pytest.raises(ValueError, match="columns"):
        validate_export({"schema": ROWS_SCHEMA, "columns": "a,b",
                         "rows": []})
    with pytest.raises(ValueError, match="outside"):
        validate_export({"schema": ROWS_SCHEMA, "columns": ["a"],
                         "rows": [{"a": 1, "z": 2}]})


def test_load_figure_rejects_corrupt_schema(tmp_path, result):
    path = export_figure(result, tmp_path / "f.json")
    data = json.loads(path.read_text())
    data["values"]["TRAF||cuda"] = "corrupted"
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_figure(path)


# ----------------------------------------------------------------------
# sweep query rows: CSV/JSON round-trip
# ----------------------------------------------------------------------
def test_rows_roundtrip_json(tmp_path):
    rows = [{"workload": "TRAF", "cycles": 10.0},
            {"workload": "GOL", "cycles": 20.0, "extra": 1}]
    path = export_rows(rows, tmp_path / "rows.json")
    payload = load_rows(path)
    assert payload["schema"] == ROWS_SCHEMA
    assert payload["columns"] == ["workload", "cycles", "extra"]
    assert payload["rows"] == rows


def test_rows_csv_has_uniform_header(tmp_path):
    rows = [{"a": 1}, {"a": 2, "b": 3}]
    path = export_rows(rows, tmp_path / "rows.csv")
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,"        # missing column -> empty cell
    assert lines[2] == "2,3"


def test_rows_to_payload_respects_explicit_columns():
    payload = rows_to_payload([{"a": 1, "b": 2}], columns=["b", "a"])
    assert payload["columns"] == ["b", "a"]
    validate_export(payload)
