"""The loadtest harness: schedule determinism, zipf shape, reports."""
from __future__ import annotations

import contextlib
import threading
import time
from collections import Counter

import pytest

from repro.serve import ReproServer
from repro.serve.loadtest import (
    LoadtestSpec,
    _Tally,
    build_report,
    generate_schedule,
    percentile,
    run_loadtest,
    validate_loadtest_report,
)


# ----------------------------------------------------------------------
# generator determinism + shape
# ----------------------------------------------------------------------
def test_schedule_is_deterministic_for_a_seed():
    spec = LoadtestSpec(users=500, seed=42, rate=100.0, burst_prob=0.2)
    assert generate_schedule(spec) == generate_schedule(spec)
    other = generate_schedule(LoadtestSpec(users=500, seed=43,
                                           rate=100.0, burst_prob=0.2))
    assert generate_schedule(spec) != other


def test_schedule_zipf_popularity_is_head_heavy():
    spec = LoadtestSpec(users=2000, seed=7, zipf_alpha=1.3,
                        key_space=32, burst_prob=0.0)
    counts = Counter(r.seed for r in generate_schedule(spec))
    # rank 0 (seed 1000) dominates and every seed stays in the universe
    hottest = counts.most_common(1)[0]
    assert hottest[0] == 1000
    assert hottest[1] >= 3 * counts.get(1000 + 10, 1)
    assert all(1000 <= s < 1000 + 32 for s in counts)


def test_schedule_bursts_duplicate_at_the_same_arrival():
    spec = LoadtestSpec(users=40, seed=3, burst_prob=1.0, burst_size=4,
                        rate=50.0)
    schedule = generate_schedule(spec)
    assert len(schedule) == 40
    assert all(r.burst for r in schedule)
    # each burst is burst_size identical requests at one offset
    by_offset = Counter((r.offset_s, r.seed) for r in schedule)
    sizes = set(by_offset.values())
    assert sizes <= {4, 40 % 4 or 4}
    # the trailing burst may be truncated to hit users exactly
    assert sum(by_offset.values()) == 40


def test_schedule_open_loop_offsets_are_monotonic():
    spec = LoadtestSpec(users=200, seed=9, rate=250.0, burst_prob=0.1)
    schedule = generate_schedule(spec)
    offsets = [r.offset_s for r in schedule]
    assert offsets == sorted(offsets)
    assert offsets[-1] > 0
    closed = generate_schedule(LoadtestSpec(users=50, seed=9))
    assert all(r.offset_s == 0.0 for r in closed)


def test_percentile_helper():
    values = sorted([1.0, 2.0, 3.0, 4.0, 5.0])
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.5) == 3.0
    assert percentile(values, 1.0) == 5.0
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0


# ----------------------------------------------------------------------
# report schema
# ----------------------------------------------------------------------
def _fabricated_report():
    spec = LoadtestSpec(users=4)
    tally = _Tally()
    tally.record("computed", 0.010)
    tally.record("cached", 0.002)
    tally.record("dedup", 0.004)
    tally.record("shed", 0.001)
    return build_report(spec, tally, wall_s=0.5)


def test_build_report_validates_and_counts():
    report = _fabricated_report()
    validate_loadtest_report(report)
    assert report["requests"] == 4
    assert report["completed"] == 4 and report["failed"] == 0
    assert report["shed_fraction"] == 0.25
    assert report["latency_s"]["p50"] <= report["latency_s"]["p99"]
    assert report["ok"] is True


def test_validate_loadtest_report_rejects_corruption():
    report = _fabricated_report()
    bad = dict(report, schema="nope/1")
    with pytest.raises(ValueError, match="not a repro-loadtest/1"):
        validate_loadtest_report(bad)
    bad = dict(report)
    del bad["latency_s"]
    with pytest.raises(ValueError, match="lacks 'latency_s'"):
        validate_loadtest_report(bad)
    bad = dict(report,
               latency_s=dict(report["latency_s"], p50=9.9))
    with pytest.raises(ValueError, match="not monotonic"):
        validate_loadtest_report(bad)
    bad = dict(report, outcomes={"computed": 1})
    with pytest.raises(ValueError, match="outcomes sum"):
        validate_loadtest_report(bad)


# ----------------------------------------------------------------------
# end to end against an attached daemon
# ----------------------------------------------------------------------
@contextlib.contextmanager
def one_daemon(tmp_path):
    sock = str(tmp_path / "serve.sock")

    def compute(spec):
        time.sleep(0.002)
        return {"rendered": f"r:{spec['experiment']}:{spec['seed']}"}

    server = ReproServer(socket_path=sock, compute=compute,
                         use_store=False, queue_limit=64, cache_size=256,
                         job_threads=4)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(10)
    try:
        yield sock
    finally:
        server.request_shutdown()
        thread.join(20)


def test_run_loadtest_against_attached_daemon(tmp_path):
    spec = LoadtestSpec(users=120, concurrency=8, seed=11,
                        key_space=16, burst_prob=0.2)
    with one_daemon(tmp_path) as sock:
        report = run_loadtest(spec, endpoint={"socket_path": sock})
    validate_loadtest_report(report)
    assert report["requests"] == 120
    assert report["failed"] == 0 and report["ok"] is True
    # zipf + bursts must exercise the daemon's collapse paths
    outcomes = report["outcomes"]
    assert outcomes.get("computed", 0) <= 16
    assert outcomes.get("cached", 0) + outcomes.get("dedup", 0) > 0
    assert report["cache_hit_rate"] + report["dedup_rate"] > 0
    assert report["throughput_rps"] > 0
    assert report["cluster"] == {}      # attach mode: no cluster block


def test_run_loadtest_kill_requires_a_booted_cluster(tmp_path):
    spec = LoadtestSpec(users=4, concurrency=2)
    with one_daemon(tmp_path) as sock:
        with pytest.raises(ValueError, match="booted cluster"):
            run_loadtest(spec, endpoint={"socket_path": sock},
                         kill_after_requests=1)
