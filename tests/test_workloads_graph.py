"""Functional tests for the GraphChi workloads vs. reference algorithms."""
import numpy as np
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import make_workload
from repro.workloads.graphchi import INF_LEVEL


def _make(name, scale=0.04, seed=13, technique="sharedoa", iterations=0):
    m = Machine(technique, config=small_config())
    wl = make_workload(name, m, scale=scale, seed=seed)
    wl.setup()
    wl._setup_done = True
    for _ in range(iterations):
        wl.iterate()
    return wl


def _reference_bfs(n, src, dst, root=0):
    """Plain BFS levels over the directed graph."""
    adj = [[] for _ in range(n)]
    for s, d in zip(src, dst):
        adj[int(s)].append(int(d))
    levels = np.full(n, int(INF_LEVEL), dtype=np.int64)
    levels[root] = 0
    frontier = [root]
    while frontier:
        nxt = []
        for u in frontier:
            for v in adj[u]:
                if levels[v] > levels[u] + 1:
                    levels[v] = levels[u] + 1
                    nxt.append(v)
        frontier = nxt
    return levels


def _reference_components(n, src, dst):
    """Min-label over undirected closure (what CC converges to)."""
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for s, d in zip(src, dst):
        a, b = find(int(s)), find(int(d))
        if a != b:
            parent[max(a, b)] = min(a, b)
    labels = np.empty(n, dtype=np.int64)
    comp_min = {}
    for v in range(n):
        r = find(v)
        comp_min.setdefault(r, v)
    for v in range(n):
        labels[v] = comp_min[find(v)]
    return labels


class TestBFS:
    @pytest.mark.parametrize("name", ["BFS-vE", "BFS-vEN"])
    def test_levels_converge_to_reference(self, name):
        wl = _make(name)
        expect = _reference_bfs(wl.n_vertices, wl.edge_src, wl.edge_dst)
        for _ in range(40):  # enough iterations to converge
            wl.iterate()
        got = wl.levels().astype(np.int64)
        np.testing.assert_array_equal(got, expect)

    def test_levels_monotonically_decrease(self):
        wl = _make("BFS-vE")
        prev = wl.levels().astype(np.int64)
        for _ in range(5):
            wl.iterate()
            cur = wl.levels().astype(np.int64)
            assert (cur <= prev).all()
            prev = cur

    def test_root_stays_zero(self):
        wl = _make("BFS-vEN", iterations=5)
        assert wl.levels()[0] == 0


class TestCC:
    @pytest.mark.parametrize("name", ["CC-vE", "CC-vEN"])
    def test_labels_converge_to_components(self, name):
        wl = _make(name)
        expect = _reference_components(wl.n_vertices, wl.edge_src, wl.edge_dst)
        for _ in range(60):
            wl.iterate()
        got = wl.labels().astype(np.int64)
        np.testing.assert_array_equal(got, expect)

    def test_multiple_components_exist(self):
        # the CC graphs are built block-confined: >1 component
        wl = _make("CC-vE", iterations=60)
        assert len(np.unique(wl.labels())) > 1

    def test_labels_never_increase(self):
        wl = _make("CC-vE")
        prev = wl.labels().astype(np.int64)
        for _ in range(5):
            wl.iterate()
            cur = wl.labels().astype(np.int64)
            assert (cur <= prev).all()
            prev = cur


class TestPageRank:
    @pytest.mark.parametrize("name", ["PR-vE", "PR-vEN"])
    def test_rank_mass_conserved(self, name):
        wl = _make(name, iterations=10)
        total = float(wl.ranks().astype(np.float64).sum())
        # damped PageRank totals stay near 1 (dangling mass aside)
        assert 0.5 < total < 1.5

    def test_ranks_positive(self):
        wl = _make("PR-vE", iterations=8)
        assert (wl.ranks() > 0).all()

    def test_high_indegree_gets_high_rank(self):
        wl = _make("PR-vE")
        indeg = np.bincount(wl.edge_dst, minlength=wl.n_vertices)
        for _ in range(12):
            wl.iterate()
        ranks = wl.ranks().astype(np.float64)
        top_in = np.argsort(indeg)[-5:]
        bottom_in = np.argsort(indeg)[:5]
        assert ranks[top_in].mean() > ranks[bottom_in].mean()

    def test_ve_and_ven_agree(self):
        a = _make("PR-vE", iterations=6)
        b = _make("PR-vEN", iterations=6)
        np.testing.assert_allclose(a.ranks(), b.ranks(), rtol=1e-5)


class TestGraphConstruction:
    def test_edge_objects_match_arrays(self):
        wl = _make("BFS-vE")
        m = wl.machine
        lay = m.registry.layout(wl.Edge)
        for j in range(0, wl.n_edges, 211):
            c = m.allocator._canonical(int(wl.edge_ptrs[j]))
            assert int(m.heap.load(c + lay.offset("src"), "u32")) == wl.edge_src[j]
            assert int(m.heap.load(c + lay.offset("dst"), "u32")) == wl.edge_dst[j]

    def test_no_self_loops(self):
        wl = _make("CC-vEN")
        assert (wl.edge_src != wl.edge_dst).all()

    def test_four_types(self):
        wl = _make("BFS-vE")
        assert wl.num_types() == 4

    def test_ven_has_higher_pki(self):
        ve = _make("BFS-vE")
        ven = _make("BFS-vEN")
        s_ve = ve.machine
        s_ven = ven.machine
        ve.iterate()
        ven.iterate()
        assert (
            s_ven.run_stats.vfunc_pki > s_ve.run_stats.vfunc_pki
        ), "vEN should perform more virtual calls per instruction"
