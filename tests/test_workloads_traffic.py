"""Functional tests for the TRAF Nagel-Schreckenberg workload."""
import numpy as np
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import make_workload


@pytest.fixture
def traf():
    m = Machine("sharedoa", config=small_config())
    wl = make_workload("TRAF", m, scale=0.05, seed=9)
    wl.setup()
    wl._setup_done = True
    return wl


def test_six_types_registered(traf):
    # RoadAgent, Vehicle (abstract) + Car, Truck, TrafficLight, Sensor
    assert traf.num_types() == 6


def test_vehicles_never_collide(traf):
    for _ in range(6):
        traf.iterate()
        pos = traf.vehicle_positions()
        assert len(np.unique(pos)) == len(pos), "two vehicles share a cell"


def test_positions_stay_on_road(traf):
    for _ in range(4):
        traf.iterate()
    assert (traf.vehicle_positions() < traf.length).all()


def test_occupancy_matches_vehicle_positions(traf):
    for _ in range(3):
        traf.iterate()
    occ = traf.occupancy.read()
    pos = traf.vehicle_positions()
    marked = set(np.flatnonzero(occ))
    assert set(int(p) for p in pos) == marked


def test_traffic_moves(traf):
    before = traf.vehicle_positions().copy()
    for _ in range(4):
        traf.iterate()
    after = traf.vehicle_positions()
    assert (before != after).any()


def test_velocities_bounded(traf):
    from repro.workloads.traffic import CAR_VMAX

    m = traf.machine
    lay = m.registry.layout(traf.Vehicle)
    for _ in range(4):
        traf.iterate()
    for p in traf._vehicle_ptrs[:50]:
        c = m.allocator._canonical(int(p))
        vel = int(m.heap.load(c + lay.offset("vel"), "u32"))
        assert vel <= CAR_VMAX


def test_lights_toggle_signals(traf):
    changed = False
    prev = traf.signals.read().copy()
    for _ in range(12):
        traf.iterate()
        cur = traf.signals.read()
        if (cur != prev).any():
            changed = True
        prev = cur.copy()
    assert changed, "no traffic light ever toggled"


def test_red_light_blocks_traffic(traf):
    # signals array only ever holds 0/1 written by lights
    for _ in range(5):
        traf.iterate()
    sig = traf.signals.read()
    assert set(np.unique(sig)) <= {0, 1}


def test_checksum_changes_over_time(traf):
    a = traf.checksum()
    traf.iterate()
    b = traf.checksum()
    assert a != b
