"""Tests for the roofline timing model."""
import pytest

from repro.gpu.config import GPUConfig, small_config
from repro.gpu.isa import InstrClass
from repro.gpu.stats import KernelStats
from repro.gpu.timing import (
    bottleneck,
    compute_cycles,
    finalize_timing,
    memory_cycles,
)


def _stats(compute=0, mem_instrs=0, l1=0, l2=0, dram=0, rows=0):
    s = KernelStats()
    s.warp_instrs[InstrClass.COMPUTE] = compute
    s.warp_instrs[InstrClass.MEM] = mem_instrs
    s.l1_accesses = l1
    s.l2_accesses = l2
    s.dram_accesses = dram
    s.dram_row_misses = rows
    return s


def test_compute_cycles_scale_with_issue_width():
    cfg = GPUConfig(num_sms=4, schedulers_per_sm=2)
    s = _stats(compute=80)
    assert compute_cycles(s, cfg) == pytest.approx(10.0)


def test_memory_cycles_sum_levels():
    cfg = GPUConfig(
        l1_sectors_per_cycle=10.0, l2_sectors_per_cycle=5.0,
        dram_sectors_per_cycle=2.0, dram_row_miss_penalty_sectors=0.0,
    )
    s = _stats(l1=100, l2=50, dram=20)
    assert memory_cycles(s, cfg) == pytest.approx(10 + 10 + 10)


def test_row_misses_penalised():
    cfg = GPUConfig(
        dram_sectors_per_cycle=2.0, dram_row_miss_penalty_sectors=8.0,
    )
    base = memory_cycles(_stats(dram=20), cfg)
    worse = memory_cycles(_stats(dram=20, rows=10), cfg)
    assert worse == pytest.approx(base + 10 * 8.0 / 2.0)


def test_finalize_adds_components_and_overheads():
    cfg = small_config()
    s = _stats(compute=160, l1=32)
    finalize_timing(s, cfg)
    expected = (
        s.compute_cycles + s.memory_cycles
        + cfg.kernel_launch_cycles + cfg.base_memory_latency_cycles
    )
    assert s.cycles == pytest.approx(expected)
    assert s.compute_cycles > 0 and s.memory_cycles > 0


def test_bottleneck_classification():
    s = _stats()
    s.compute_cycles, s.memory_cycles = 10.0, 5.0
    assert bottleneck(s) == "compute"
    s.compute_cycles, s.memory_cycles = 1.0, 5.0
    assert bottleneck(s) == "memory"


def test_empty_launch_not_free():
    cfg = small_config()
    s = _stats()
    finalize_timing(s, cfg)
    assert s.cycles >= cfg.kernel_launch_cycles


def test_cycles_to_seconds():
    cfg = GPUConfig(core_clock_ghz=1.0)
    assert cfg.cycles_to_seconds(1e9) == pytest.approx(1.0)


def test_issue_width():
    cfg = GPUConfig(num_sms=80, schedulers_per_sm=4)
    assert cfg.issue_width == 320


def test_stats_merge_consistency():
    a = _stats(compute=10, l1=5, dram=2, rows=1)
    b = _stats(compute=20, l1=7, dram=3, rows=2)
    a.merge(b)
    assert a.warp_instrs[InstrClass.COMPUTE] == 30
    assert a.l1_accesses == 12
    assert a.dram_accesses == 5
    assert a.dram_row_misses == 3
