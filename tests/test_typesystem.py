"""Tests for TypeDescriptor, layouts and the registry."""
import pytest

from repro.errors import TypeSystemError
from repro.runtime.typesystem import (
    TypeDescriptor,
    TypeRegistry,
    compute_layout,
)


def _impl(ctx, objs):
    pass


def _impl2(ctx, objs):
    pass


class TestHierarchy:
    def test_mro_base_to_derived(self):
        A = TypeDescriptor("A1")
        B = TypeDescriptor("B1", base=A)
        C = TypeDescriptor("C1", base=B)
        assert C.mro() == [A, B, C]

    def test_fields_accumulate_base_first(self):
        A = TypeDescriptor("A2", fields=[("x", "u32")])
        B = TypeDescriptor("B2", fields=[("y", "f64")], base=A)
        assert [f.name for f in B.all_fields()] == ["x", "y"]

    def test_duplicate_field_rejected(self):
        A = TypeDescriptor("A3", fields=[("x", "u32")])
        with pytest.raises(TypeSystemError):
            TypeDescriptor("B3", fields=[("x", "u32")], base=A)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(TypeSystemError):
            TypeDescriptor("A4", fields=[("x", "u128")])

    def test_is_subtype_of(self):
        A = TypeDescriptor("A5")
        B = TypeDescriptor("B5", base=A)
        assert B.is_subtype_of(A)
        assert B.is_subtype_of(B)
        assert not A.is_subtype_of(B)


class TestVTableSlots:
    def test_slots_assigned_in_declaration_order(self):
        A = TypeDescriptor("A6", methods={"f": None, "g": None})
        assert A.vtable_slots() == {"f": 0, "g": 1}

    def test_override_keeps_slot(self):
        A = TypeDescriptor("A7", methods={"f": _impl, "g": None})
        B = TypeDescriptor("B7", base=A, methods={"f": _impl2})
        assert B.vtable_slots() == {"f": 0, "g": 1}
        assert B.vtable_impls()[0] is _impl2

    def test_new_methods_extend_table(self):
        A = TypeDescriptor("A8", methods={"f": _impl})
        B = TypeDescriptor("B8", base=A, methods={"h": _impl2})
        assert B.vtable_slots() == {"f": 0, "h": 1}
        assert A.num_virtual_methods() == 1
        assert B.num_virtual_methods() == 2

    def test_inherited_impl_resolves(self):
        A = TypeDescriptor("A9", methods={"f": _impl})
        B = TypeDescriptor("B9", base=A)
        assert B.vtable_impls()[0] is _impl

    def test_abstract_detection(self):
        A = TypeDescriptor("A10", methods={"f": None})
        B = TypeDescriptor("B10", base=A, methods={"f": _impl})
        assert A.is_abstract()
        assert not B.is_abstract()

    def test_slot_of_unknown_method(self):
        A = TypeDescriptor("A11", methods={"f": _impl})
        with pytest.raises(TypeSystemError):
            A.slot_of("nope")


class TestLayout:
    def test_fields_after_header_with_natural_alignment(self):
        T = TypeDescriptor(
            "L1", fields=[("a", "u8"), ("b", "u64"), ("c", "u32")]
        )
        lay = compute_layout(T, header_size=8)
        assert lay.offset("a") == 8
        assert lay.offset("b") == 16   # aligned up from 9
        assert lay.offset("c") == 24
        assert lay.size == 32          # rounded to 8

    def test_header_size_shifts_offsets(self):
        T = TypeDescriptor("L2", fields=[("a", "u32")])
        assert compute_layout(T, 8).offset("a") == 8
        assert compute_layout(T, 16).offset("a") == 16
        assert compute_layout(T, 4).offset("a") == 4

    def test_base_field_offset_consistent_in_subtype(self):
        A = TypeDescriptor("L3", fields=[("x", "u32")])
        B = TypeDescriptor("L4", fields=[("y", "u32")], base=A)
        la = compute_layout(A, 8)
        lb = compute_layout(B, 8)
        assert la.offset("x") == lb.offset("x")

    def test_unknown_field(self):
        T = TypeDescriptor("L5", fields=[("a", "u32")])
        lay = compute_layout(T, 8)
        with pytest.raises(TypeSystemError):
            lay.offset("zzz")
        with pytest.raises(TypeSystemError):
            lay.dtype("zzz")

    def test_empty_type_has_nonzero_size(self):
        T = TypeDescriptor("L6")
        assert compute_layout(T, 8).size >= 8


class TestRegistry:
    def test_register_includes_bases(self):
        A = TypeDescriptor("R1")
        B = TypeDescriptor("R2", base=A)
        reg = TypeRegistry(header_size=8)
        reg.register(B)
        assert len(reg) == 2
        assert reg.type_id(A) != reg.type_id(B)

    def test_type_ids_stable_and_reversible(self):
        A = TypeDescriptor("R3")
        reg = TypeRegistry(header_size=8)
        reg.register(A)
        tid = reg.type_id(A)
        assert reg.by_id(tid) is A
        with pytest.raises(TypeSystemError):
            reg.by_id(999)

    def test_same_name_different_object_rejected(self):
        reg = TypeRegistry(header_size=8)
        reg.register(TypeDescriptor("R4"))
        with pytest.raises(TypeSystemError):
            reg.register(TypeDescriptor("R4"))

    def test_layout_cached_and_lazy(self):
        A = TypeDescriptor("R5", fields=[("x", "u32")])
        reg = TypeRegistry(header_size=16)
        lay = reg.layout(A)  # implicit registration
        assert lay.offset("x") == 16
        assert reg.layout(A) is lay

    def test_concrete_types_filter(self):
        A = TypeDescriptor("R6", methods={"f": None})
        B = TypeDescriptor("R7", base=A, methods={"f": _impl})
        reg = TypeRegistry(header_size=8)
        reg.register(B)
        assert reg.concrete_types() == [B]
