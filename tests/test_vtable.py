"""Tests for the contiguous vTable arena."""
import pytest

from repro.errors import DispatchError, TypeTagOverflow
from repro.memory.address_space import MAX_TAG
from repro.runtime.typesystem import TypeDescriptor
from repro.runtime.vtable import ARENA_BYTES, VTableArena


def _impl(ctx, objs):
    pass


def _impl2(ctx, objs):
    pass


@pytest.fixture
def arena(heap):
    return VTableArena(heap)


def _type(name, methods):
    return TypeDescriptor(name, methods=methods)


def test_tables_are_contiguous(arena):
    A = _type("VA1", {"f": _impl, "g": _impl})
    B = _type("VB1", {"f": _impl})
    off_a = arena.ensure_type(A)
    off_b = arena.ensure_type(B)
    assert off_b == off_a + 16  # two 8-byte entries in A's table


def test_offset_zero_reserved_for_null_tag(arena):
    A = _type("VA2", {"f": _impl})
    assert arena.ensure_type(A) > 0
    # a tag of 0 never resolves to a type (section 6.4 mixing detection)
    with pytest.raises(DispatchError):
        arena.type_of_tag(0)


def test_ensure_type_idempotent(arena):
    A = _type("VA3", {"f": _impl})
    assert arena.ensure_type(A) == arena.ensure_type(A)
    assert arena.num_tables() == 1


def test_tag_fits_15_bits(arena):
    A = _type("VA4", {"f": _impl})
    assert 0 < arena.tag_for_type(A) <= MAX_TAG


def test_vtable_entries_readable_from_heap(arena, heap):
    A = _type("VA5", {"f": _impl, "g": _impl2})
    addr = arena.vtable_addr(A)
    fn_f = int(heap.load(addr, "u64"))
    fn_g = int(heap.load(addr + 8, "u64"))
    assert arena.impl_of_code_addr(fn_f) is _impl
    assert arena.impl_of_code_addr(fn_g) is _impl2


def test_shared_impl_shares_code_address(arena, heap):
    A = _type("VA6", {"f": _impl})
    B = TypeDescriptor("VB6", base=A)  # inherits f
    fa = int(heap.load(arena.vtable_addr(A), "u64"))
    fb = int(heap.load(arena.vtable_addr(B), "u64"))
    assert fa == fb


def test_pure_virtual_entry_is_null(arena, heap):
    A = _type("VA7", {"f": None})
    addr = arena.vtable_addr(A)
    assert int(heap.load(addr, "u64")) == 0
    with pytest.raises(DispatchError, match="pure-virtual"):
        arena.impl_of_code_addr(0)


def test_unknown_code_address_rejected(arena):
    with pytest.raises(DispatchError):
        arena.impl_of_code_addr(0xDEAD)


def test_type_of_vtable_addr(arena):
    A = _type("VA8", {"f": _impl})
    assert arena.type_of_vtable_addr(arena.vtable_addr(A)) is A
    with pytest.raises(DispatchError):
        arena.type_of_vtable_addr(12345)


def test_vfunc_entry_addr(arena):
    A = _type("VA9", {"f": _impl, "g": _impl2})
    assert arena.vfunc_entry_addr(A, 1) == arena.vtable_addr(A) + 8


def test_arena_exhaustion(arena):
    # fill the 32KiB arena with many large tables until it overflows
    methods = {f"m{i}": _impl for i in range(64)}  # 512B per table
    with pytest.raises(TypeTagOverflow):
        for i in range(ARENA_BYTES // 512 + 2):
            arena.ensure_type(_type(f"Big{i}", methods))


def test_bytes_used_tracks_tables(arena):
    before = arena.bytes_used
    arena.ensure_type(_type("VA10", {"f": _impl, "g": _impl, "h": _impl}))
    assert arena.bytes_used == before + 24
