"""The paper's functional validation (section 8): every technique must
produce bit-identical workload results.

A wrong segment tree, a mis-encoded tag or a bad switch lowering shows
up here as a checksum mismatch, because dispatch is resolved through
each technique's own data structures.
"""
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import make_workload, workload_names

from conftest import ALL_TECHNIQUES

#: tiny scale: this is about correctness, not performance shape
SCALE = 0.04


@pytest.mark.parametrize("name", workload_names())
def test_all_techniques_agree(name):
    checksums = {}
    for tech in ALL_TECHNIQUES:
        m = Machine(tech, config=small_config())
        wl = make_workload(name, m, scale=SCALE, seed=11)
        wl.run(2)
        checksums[tech] = wl.checksum()
    baseline = checksums["cuda"]
    assert all(v == baseline for v in checksums.values()), checksums


@pytest.mark.parametrize("name", workload_names())
def test_runs_are_deterministic(name):
    sums = []
    for _ in range(2):
        m = Machine("coal", config=small_config())
        wl = make_workload(name, m, scale=SCALE, seed=11)
        wl.run(2)
        sums.append(wl.checksum())
    assert sums[0] == sums[1]


def test_different_seeds_differ():
    """The checksum actually depends on the input (sanity of the test)."""
    sums = set()
    for seed in (1, 2, 3):
        m = Machine("cuda", config=small_config())
        wl = make_workload("TRAF", m, scale=SCALE, seed=seed)
        wl.run(2)
        sums.add(wl.checksum())
    assert len(sums) >= 2


@pytest.mark.parametrize("name", ["GOL", "BFS-vE", "STUT"])
def test_allocator_configuration_never_changes_answers(name):
    """Chunk size and region merging are pure layout decisions: any
    combination must produce bit-identical results (COAL dispatches
    through the range table those decisions shape, so this genuinely
    exercises the tree under different region geometries)."""
    sums = set()
    for chunk, merge in ((16, True), (16, False), (1024, True),
                         (1024, False)):
        m = Machine("coal", config=small_config(),
                    initial_chunk_objects=chunk, merge_adjacent=merge)
        wl = make_workload(name, m, scale=SCALE, seed=11)
        wl.run(2)
        sums.add(wl.checksum())
    assert len(sums) == 1, sums


@pytest.mark.parametrize("name", ["GOL", "TRAF"])
def test_gpu_configuration_never_changes_answers(name):
    """The cost model (cache sizes, wave size, bandwidths) must never
    leak into functional results."""
    from repro.gpu.config import scaled_config

    sums = set()
    for cfg in (small_config(), scaled_config()):
        m = Machine("typepointer", config=cfg)
        wl = make_workload(name, m, scale=SCALE, seed=11)
        wl.run(2)
        sums.add(wl.checksum())
    assert len(sums) == 1, sums
