"""Tests for the workload framework itself."""
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import (
    WORKLOAD_REGISTRY,
    make_workload,
    workload_names,
)
from repro.workloads.base import PaperCharacteristics


def test_registry_holds_all_eleven():
    assert len(WORKLOAD_REGISTRY) == 11
    assert workload_names() == [
        "TRAF", "GOL", "STUT", "GEN",
        "BFS-vE", "CC-vE", "PR-vE",
        "BFS-vEN", "CC-vEN", "PR-vEN",
        "RAY",
    ]


def test_make_workload_unknown_name():
    m = Machine("cuda", config=small_config())
    with pytest.raises(KeyError):
        make_workload("NOPE", m)


def test_paper_characteristics_attached():
    for name, cls in WORKLOAD_REGISTRY.items():
        assert isinstance(cls.paper, PaperCharacteristics), name
        assert cls.paper.objects > 0
        assert cls.paper.types >= 3
        assert cls.paper.vfunc_pki > 0
        assert cls.suite, name
        assert cls.description, name


def test_scale_must_be_positive():
    m = Machine("cuda", config=small_config())
    with pytest.raises(ValueError):
        make_workload("RAY", m, scale=0)


def test_run_excludes_setup_and_counts_iterations():
    m = Machine("cuda", config=small_config())
    wl = make_workload("TRAF", m, scale=0.04)
    stats = wl.run(2)
    # TRAF launches two kernels per iteration
    assert m.launches == 4
    assert stats.vfunc_calls > 0


def test_run_continues_accumulating():
    m = Machine("cuda", config=small_config())
    wl = make_workload("TRAF", m, scale=0.04)
    first = wl.run(1).cycles
    second = wl.run(1).cycles
    assert second > first  # accumulated run stats


def test_scaled_minimum():
    m = Machine("cuda", config=small_config())
    wl = make_workload("RAY", m, scale=0.0001)
    wl.setup()
    assert wl.n_pixels >= 16 * 8  # clamped minima keep workloads sane


def test_seed_controls_inputs():
    sums = set()
    for seed in (1, 2):
        m = Machine("cuda", config=small_config())
        wl = make_workload("GOL", m, scale=0.04, seed=seed)
        wl.run(1)
        sums.add(wl.checksum())
    assert len(sums) == 2
