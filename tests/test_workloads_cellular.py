"""Functional tests for GOL and GEN against pure-numpy references."""
import numpy as np
import pytest

from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.workloads import make_workload


@pytest.fixture
def gol():
    m = Machine("sharedoa", config=small_config())
    wl = make_workload("GOL", m, scale=0.04, seed=5)
    wl.setup()
    wl._setup_done = True
    return wl


@pytest.fixture
def gen():
    m = Machine("sharedoa", config=small_config())
    wl = make_workload("GEN", m, scale=0.04, seed=5)
    wl.setup()
    wl._setup_done = True
    return wl


class TestGameOfLife:
    def test_matches_reference_step(self, gol):
        expected = gol.states.copy()
        for _ in range(3):
            expected = gol.reference_step(expected)
            gol.iterate()
            np.testing.assert_array_equal(gol.states, expected)

    def test_retyping_tracks_state(self, gol):
        gol.iterate()
        m = gol.machine
        for i in range(gol.n_cells):
            owner = m.allocator.owner_type(int(gol.cell_ptrs[i]))
            assert owner is gol.state_types[int(gol.states[i])]

    def test_retyping_frees_old_objects(self, gol):
        live_before = gol.machine.allocator.live_count()
        gol.iterate()
        # every cell is exactly one live object, flips notwithstanding
        assert gol.machine.allocator.live_count() == live_before

    def test_types_registered(self, gol):
        # Agent, Cell (abstract) + Alive, Dead = 4 types (Table 2)
        assert gol.num_types() == 4

    def test_alive_field_mirrors_state(self, gol):
        gol.iterate()
        m = gol.machine
        lay = m.registry.layout(gol.Cell)
        for i in range(0, gol.n_cells, 97):
            c = m.allocator._canonical(int(gol.cell_ptrs[i]))
            alive = int(m.heap.load(c + lay.offset("alive"), "u32"))
            assert alive == (1 if gol.states[i] == 1 else 0)


class TestGeneration:
    def test_matches_reference_step(self, gen):
        expected = gen.states.copy()
        for _ in range(3):
            expected = gen.reference_step(expected)
            gen.iterate()
            np.testing.assert_array_equal(gen.states, expected)

    def test_three_concrete_states(self, gen):
        assert len(gen.state_types) == 3
        gen.iterate()
        # after one step some cells should be in the dying state
        assert (gen.states == 2).any()

    def test_alive_decays_to_dying(self, gen):
        alive_before = set(np.flatnonzero(gen.states == 1))
        gen.iterate()
        dying_now = set(np.flatnonzero(gen.states == 2))
        assert alive_before == dying_now
