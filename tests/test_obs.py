"""Tests for repro.obs: spans, counters, merging, validation."""
import json
import time

import pytest

from repro import obs


@pytest.fixture
def reg():
    """A fresh registry installed as the process-wide one."""
    fresh = obs.Registry(enabled=True)
    prev = obs.set_registry(fresh)
    try:
        yield fresh
    finally:
        obs.set_registry(prev)


class TestCounters:
    def test_count_accumulates(self, reg):
        obs.count("a.b")
        obs.count("a.b", 4)
        assert reg.counters == {"a.b": 5}

    def test_disabled_is_a_noop(self, reg):
        obs.set_enabled(False)
        obs.count("a.b")
        with obs.span("x"):
            pass
        obs.add_time("y", 1.0)
        assert reg.counters == {}
        assert reg.root.children == {}


class TestSpans:
    def test_nesting_aggregates(self, reg):
        for _ in range(3):
            with obs.span("outer"):
                time.sleep(0.001)
                with obs.span("inner"):
                    pass
        outer = reg.root.children["outer"]
        assert outer.count == 3
        assert "inner" in outer.children
        inner = outer.children["inner"]
        assert inner.count == 3
        # children can never outlast their parent
        assert inner.total_s <= outer.total_s

    def test_add_time_lands_under_current_span(self, reg):
        with obs.span("outer"):
            obs.add_time("phase", 0.25, count=7)
        phase = reg.root.children["outer"].children["phase"]
        assert phase.count == 7
        assert phase.total_s == pytest.approx(0.25)

    def test_add_root_time_ignores_the_open_span(self, reg):
        # cross-thread reporters (serve job callbacks) must not nest
        # under whatever span the owning thread happens to have open:
        # their wall time overlaps it and would break children <= parent
        with obs.span("outer"):
            obs.add_root_time("job", 99.0)
        assert "job" not in reg.root.children["outer"].children
        job = reg.root.children["job"]
        assert job.count == 1
        assert job.total_s == pytest.approx(99.0)
        obs.validate_payload(reg.to_dict())

    def test_exception_still_pops_the_stack(self, reg):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        assert reg._stack == [reg.root]
        assert reg.root.children["boom"].count == 1


class TestSerialization:
    def test_roundtrip_is_json_safe(self, reg):
        with obs.span("a"):
            with obs.span("b"):
                pass
        obs.count("c", 2)
        payload = json.loads(json.dumps(reg.to_dict()))
        assert payload["schema"] == obs.SCHEMA
        obs.validate_payload(payload)
        other = obs.Registry(enabled=True)
        other.merge_dict(payload)
        assert other.counters == {"c": 2}
        assert other.root.children["a"].children["b"].count == 1

    def test_merge_sums_counts_and_times(self, reg):
        with obs.span("a"):
            t0 = time.perf_counter()
            time.sleep(0.002)
            obs.add_time("b", time.perf_counter() - t0, count=2)
        payload = reg.to_dict()
        merged = obs.merge_payloads([payload, payload, None])
        obs.validate_payload(merged)
        a = next(s for s in merged["spans"] if s["name"] == "a")
        b = a["children"][0]
        assert a["count"] == 2
        assert b["count"] == 4
        assert b["total_s"] == pytest.approx(
            2 * payload["spans"][0]["children"][0]["total_s"])

    def test_validate_rejects_negative_counter(self):
        with pytest.raises(ValueError):
            obs.validate_payload(
                {"schema": obs.SCHEMA, "counters": {"x": -1}, "spans": []}
            )

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            obs.validate_payload({"schema": "nope", "counters": {},
                                  "spans": []})

    def test_validate_rejects_overflowing_children(self):
        payload = {
            "schema": obs.SCHEMA,
            "counters": {},
            "spans": [{
                "name": "p", "count": 1, "total_s": 1.0,
                "children": [{"name": "c", "count": 1, "total_s": 2.0,
                              "children": []}],
            }],
        }
        with pytest.raises(ValueError):
            obs.validate_payload(payload)


class TestRender:
    def test_render_names_spans_and_counters(self, reg):
        with obs.span("machine.launch"):
            obs.add_time("machine.replay", 0.001)
        obs.count("machine.memo_hits", 3)
        text = reg.render(title="telemetry: test")
        assert "telemetry: test" in text
        assert "machine.launch" in text
        assert "machine.replay" in text
        assert "machine.memo_hits" in text

    def test_render_empty(self):
        text = obs.render_payload({"schema": obs.SCHEMA, "counters": {},
                                   "spans": []})
        assert "no spans" in text


class TestIntegration:
    def test_machine_records_phases_and_memo_counters(self, reg):
        import numpy as np

        from repro.gpu.config import small_config
        from repro.gpu.machine import Machine
        from repro.harness.runner import ReplayMemo

        memo = ReplayMemo()
        for _ in range(2):
            m = Machine("cuda", config=small_config())
            m.set_replay_memo(memo)
            arr = m.array_from(np.arange(64, dtype=np.uint64), "u64")

            def k(ctx):
                arr.st(ctx, ctx.tid, arr.ld(ctx, ctx.tid) + np.uint64(1))

            m.launch(k, 64)
        assert reg.counters["machine.memo_misses"] > 0
        assert reg.counters["machine.memo_hits"] > 0
        assert reg.counters["machine.launches"] == 2
        launch = reg.root.children["machine.launch"]
        assert launch.count == 2
        for phase in ("machine.capture", "machine.coalesce",
                      "machine.replay"):
            assert phase in launch.children
        obs.validate_payload(reg.to_dict())

    def test_allocator_counters(self, reg, machine_factory, animals):
        m = machine_factory("sharedoa")
        ptrs = m.new_objects(animals.Dog, 10)
        m.free_objects(ptrs)
        assert reg.counters["memory.alloc_objects"] == 10
        assert reg.counters["memory.free_objects"] == 10
