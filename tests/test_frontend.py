"""The device_class / @kernel front-end: lowering, misuse, launches."""
from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FrontendError,
    LaunchConfigError,
    abstract,
    device_class,
    kernel,
    virtual,
)
from repro.errors import LaunchError
from repro.frontend import is_device_class
from repro.runtime.typesystem import TypeDescriptor


def _shape_hierarchy(tag: str):
    """A fresh two-level device hierarchy for one test."""

    @device_class(name=f"Shape#{tag}")
    class Shape:
        area: "u32"

        @abstract
        def compute(self, ctx): ...

    @device_class(name=f"Square#{tag}")
    class Square(Shape):
        side: "u32"

        @virtual
        def compute(self, ctx):
            s = self.side
            ctx.alu(1)
            self.area = s * s

    return Shape, Square


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
def test_device_class_lowers_to_type_descriptor():
    Shape, Square = _shape_hierarchy("lower")
    assert is_device_class(Shape) and is_device_class(Square)
    td = Square.descriptor()
    assert isinstance(td, TypeDescriptor)
    assert td.base is Shape.descriptor()
    assert [f.name for f in td.all_fields()] == ["area", "side"]
    assert list(td.vtable_slots()) == ["compute"]
    assert Shape.descriptor().is_abstract()
    assert not td.is_abstract()


def test_device_class_name_override_and_default():
    @device_class
    class Plain:
        x: "u32"

    assert Plain.descriptor().name == "Plain"
    Shape, _ = _shape_hierarchy("named")
    assert Shape.descriptor().name == "Shape#named"


def test_non_class_rejected():
    with pytest.raises(FrontendError, match="expects a class"):
        device_class(lambda: None)


def test_bad_field_dtype_rejected():
    with pytest.raises(FrontendError, match="dtype"):
        @device_class
        class Bad:
            x: "complex128"


def test_non_scalar_annotation_rejected():
    with pytest.raises(FrontendError, match="dtype"):
        @device_class
        class Bad:
            x: int


def test_plain_base_class_rejected():
    class NotDevice:
        pass

    with pytest.raises(FrontendError, match="must itself be a device"):
        @device_class
        class Bad(NotDevice):
            x: "u32"


def test_multiple_device_bases_rejected():
    @device_class
    class A:
        x: "u32"

    @device_class
    class B:
        y: "u32"

    with pytest.raises(FrontendError, match="multiple inheritance"):
        @device_class
        class Bad(A, B):
            pass


def test_non_virtual_override_rejected():
    Shape, _ = _shape_hierarchy("nonvirt")

    with pytest.raises(FrontendError, match="without @virtual"):
        @device_class
        class Bad(Shape):
            def compute(self, ctx):
                pass


def test_field_method_name_overlap_rejected():
    with pytest.raises(FrontendError, match="both as field"):
        @device_class
        class Bad:
            work: "u32"

            @virtual
            def work(self, ctx):  # noqa: F811 - the collision under test
                pass


def test_alloc_of_abstract_class_rejected(machine_factory):
    Shape, _ = _shape_hierarchy("abs")
    with pytest.raises(FrontendError, match="abstract"):
        Shape.alloc(machine_factory(), 4)


# ----------------------------------------------------------------------
# instance views
# ----------------------------------------------------------------------
def test_view_unknown_field_read_and_write_rejected(machine_factory):
    _, Square = _shape_hierarchy("unk")
    m = machine_factory()
    m.register(Square.descriptor())
    ptrs = Square.alloc(m, 8)

    hits = []

    @kernel
    def probe(ctx, arr):
        view = Square.view(ctx, arr.ld(ctx, ctx.tid))
        with pytest.raises(FrontendError, match="no device field"):
            view.perimeter
        with pytest.raises(FrontendError, match="not a declared"):
            view.perimeter = np.uint32(1)
        hits.append(1)

    probe[8](m, m.array_from(ptrs, "u64"))
    assert hits  # the kernel body actually ran


def test_view_dispatch_and_field_access(machine_factory):
    _, Square = _shape_hierarchy("disp")
    m = machine_factory("typepointer")
    m.register(Square.descriptor())
    ptrs = Square.alloc(m, 16)
    Square.write_field(m, ptrs, "side", np.arange(16, dtype=np.uint32))
    arr = m.array_from(ptrs, "u64")

    @kernel
    def compute_all(ctx, arr):
        Square.view(ctx, arr.ld(ctx, ctx.tid)).compute()

    stats = compute_all[16](m, arr)
    assert stats.vfunc_calls > 0
    got = Square.read_field(m, ptrs, "area")
    np.testing.assert_array_equal(
        got, (np.arange(16, dtype=np.uint32) ** 2))


# ----------------------------------------------------------------------
# kernel geometry / launch validation
# ----------------------------------------------------------------------
def test_kernel_zero_threads_rejected():
    @kernel
    def k(ctx):
        pass

    with pytest.raises(LaunchConfigError, match="positive"):
        k[0]
    with pytest.raises(LaunchConfigError, match="positive"):
        k[-3]


def test_kernel_non_integer_geometry_rejected():
    @kernel
    def k(ctx):
        pass

    with pytest.raises(LaunchConfigError, match="integer"):
        k[2.5]
    with pytest.raises(LaunchConfigError, match="integer"):
        k[True]
    with pytest.raises(LaunchConfigError, match="grid"):
        k["many", 32]


def test_kernel_bad_tuple_geometry_rejected():
    @kernel
    def k(ctx):
        pass

    with pytest.raises(LaunchConfigError, match="dimensions"):
        k[1, 2, 3]


def test_kernel_grid_block_multiplies(machine_factory):
    seen = []

    @kernel
    def k(ctx):
        seen.append(ctx.lane_count)

    k[2, 32](machine_factory())
    assert sum(seen) == 64


def test_kernel_decoration_time_geometry(machine_factory):
    ran = []

    @kernel(grid=1, block=32)
    def k(ctx):
        ran.append(ctx.lane_count)

    k(machine_factory())
    assert sum(ran) == 32


def test_kernel_call_without_geometry_rejected(machine_factory):
    @kernel
    def k(ctx):
        pass

    with pytest.raises(LaunchConfigError, match="no geometry"):
        k(machine_factory())


def test_kernel_decorator_positional_misuse_rejected():
    with pytest.raises(LaunchConfigError, match="no positional"):
        kernel(32)


def test_machine_launch_validates_thread_count(machine_factory):
    m = machine_factory()
    for bad in (0, -1, 2.5, "12", None, False):
        with pytest.raises(LaunchConfigError):
            m.launch(lambda ctx: None, bad)
    # the typed error still satisfies pre-existing LaunchError handlers
    assert issubclass(LaunchConfigError, LaunchError)


def test_kernel_stats_returned_per_launch(machine_factory):
    m = machine_factory()
    data = m.array("u32", 64)
    data.write(np.zeros(64, dtype=np.uint32))

    @kernel
    def bump(ctx, data):
        v = data.ld(ctx, ctx.tid)
        ctx.alu(1)
        data.st(ctx, ctx.tid, v + np.uint32(1))

    stats = bump.launch(m, 64, data)
    assert stats.thread_instrs > 0 and stats.cycles > 0
    np.testing.assert_array_equal(data.read(),
                                  np.ones(64, dtype=np.uint32))
