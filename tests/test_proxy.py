"""Tests for host-side object proxies."""
import pytest

from repro.errors import TypeSystemError
from repro.runtime.proxy import ObjectProxy, proxies


@pytest.fixture
def dog(machine_factory, animals):
    m = machine_factory("typepointer")
    m.register(animals.Dog)
    ptr = m.new_objects(animals.Dog, 1)[0]
    return m, ptr, animals


def test_field_read_write(dog):
    m, ptr, animals = dog
    p = ObjectProxy(m, ptr, animals.Animal)
    assert p.age == 0
    p.age = 7
    assert p.age == 7
    p.weight = 2.5
    assert p.weight == pytest.approx(2.5)


def test_writes_visible_to_kernels(dog, machine_factory):
    m, ptr, animals = dog
    import numpy as np

    ObjectProxy(m, ptr, animals.Animal).age = 10
    arr = m.array_from(np.array([ptr], dtype=np.uint64), "u64")

    def kernel(ctx):
        ctx.vcall(arr.ld(ctx, ctx.tid), animals.Animal, "speak")

    m.launch(kernel, 1)
    assert ObjectProxy(m, ptr, animals.Animal).age == 11  # Dog adds 1


def test_unknown_field_raises_attribute_error(dog):
    m, ptr, animals = dog
    p = ObjectProxy(m, ptr, animals.Animal)
    with pytest.raises(AttributeError):
        _ = p.nonexistent
    with pytest.raises(AttributeError):
        p.nonexistent = 1


def test_type_of_ground_truth(dog):
    m, ptr, animals = dog
    p = ObjectProxy(m, ptr, animals.Animal)
    assert p.type_of() is animals.Dog


def test_type_of_dead_object(dog):
    m, ptr, animals = dog
    m.free_objects([ptr])
    p = ObjectProxy(m, ptr, animals.Animal)
    with pytest.raises(TypeSystemError):
        p.type_of()


def test_cpu_side_dispatch_uses_dynamic_type(machine_factory, animals):
    m = machine_factory("sharedoa")
    m.register(animals.Puppy)
    ptr = m.new_objects(animals.Puppy, 1)[0]
    # static type Animal, dynamic type Puppy: resolves Puppy::speak
    p = ObjectProxy(m, ptr, animals.Animal)
    impl = p.call("speak")
    assert impl is animals.Puppy.vtable_impls()[animals.Animal.slot_of("speak")]


def test_pure_virtual_cpu_call(machine_factory, animals):
    m = machine_factory("cuda")
    m.register(animals.Animal)
    ptr = m.new_objects(animals.Animal, 1)[0]
    with pytest.raises(TypeSystemError):
        ObjectProxy(m, ptr, animals.Animal).call("speak")


def test_tagged_pointer_transparent(dog):
    m, ptr, animals = dog
    p = ObjectProxy(m, ptr, animals.Animal)
    assert p.ptr != p.address  # TypePointer tags present
    assert "tagged" in repr(p)


def test_fields_dict(dog):
    m, ptr, animals = dog
    p = ObjectProxy(m, ptr, animals.Animal)
    p.age = 4
    d = p.fields()
    assert d["age"] == 4 and "weight" in d


def test_host_access_uncharged(dog):
    m, ptr, animals = dog
    p = ObjectProxy(m, ptr, animals.Animal)
    p.age = 1
    _ = p.age
    assert m.run_stats.total_warp_instrs == 0


def test_batch_proxies(machine_factory, animals):
    m = machine_factory("cuda")
    ptrs = m.new_objects(animals.Cat, 5)
    ps = proxies(m, ptrs, animals.Animal)
    assert len(ps) == 5
    assert all(x.type_of() is animals.Cat for x in ps)
