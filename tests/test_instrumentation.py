"""Tests for the compiler-view module: heuristic + disassembly."""
import pytest

from repro.core.instrumentation import (
    CallSite,
    disassemble,
    mnemonics,
    should_instrument_coal,
)


class TestHeuristic:
    def test_diverged_site_instrumented(self):
        assert should_instrument_coal(CallSite("hit")) is True

    def test_uniform_site_skipped(self):
        assert should_instrument_coal(CallSite("hit", uniform=True)) is False


class TestDisassembly:
    def test_cuda_sequence_is_figure_1a(self):
        ops = mnemonics(disassemble("cuda", slot=1))
        assert ops == ["LDG", "LDG", "LDC", "CALL"]

    def test_typepointer_sequence_is_figure_5b(self):
        # Figure 5b: SHR, ADD, LDG, CALL (plus the section-2 LDC)
        ops = mnemonics(disassemble("typepointer", slot=0))
        assert ops == ["SHR", "ADD", "LDG", "LDC", "CALL"]

    def test_indexed_variant_uses_ffma(self):
        # section 6.2: "the ADD instruction is then replaced with a
        # fused multiply-add"
        ops = mnemonics(disassemble("typepointer_indexed"))
        assert "FFMA" in ops and "ADD" not in ops

    def test_concord_has_no_indirect_call(self):
        ops = mnemonics(disassemble("concord", num_types=4))
        assert "CALL" not in ops
        assert ops.count("BRA") >= 2
        assert "LDC" not in ops  # no per-kernel table needed

    def test_concord_switch_depth_scales_with_types(self):
        few = disassemble("concord", num_types=2)
        many = disassemble("concord", num_types=16)
        assert len(many) > len(few)

    def test_coal_walk_depth(self):
        d2 = disassemble("coal", tree_depth=2)
        d4 = disassemble("coal", tree_depth=4)
        assert len(d4) > len(d2)
        ops = mnemonics(d2)
        assert ops[-1] == "CALL"
        assert ops.count("LDG") == 2 + 2  # 2 levels + payload + vfunc

    def test_coal_uniform_site_lowers_to_cuda(self):
        site = CallSite("hit", uniform=True)
        assert disassemble("coal", site=site) == disassemble("cuda")

    def test_slot_offset_appears(self):
        text = "\n".join(disassemble("cuda", slot=3))
        assert "0x18" in text

    def test_unknown_technique(self):
        with pytest.raises(ValueError):
            disassemble("quantum")

    def test_sharedoa_same_code_as_cuda(self):
        # the allocator changes, the code does not (Figure 7's CUDA bar)
        assert disassemble("sharedoa") == disassemble("cuda")
