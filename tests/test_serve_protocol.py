"""The ``repro-serve/1`` wire format: framing + envelope validation."""
from __future__ import annotations

import asyncio
import socket
import struct

import pytest

from repro.serve import protocol


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_sync_frame_roundtrip():
    a, b = socket.socketpair()
    try:
        msg = protocol.request("status", nested={"x": [1, 2, 3]})
        protocol.send_frame(a, msg)
        assert protocol.recv_frame(b) == msg
        # frames are delimited: two back-to-back messages stay distinct
        protocol.send_frame(a, protocol.request("health"))
        protocol.send_frame(a, protocol.request("drain"))
        assert protocol.recv_frame(b)["verb"] == "health"
        assert protocol.recv_frame(b)["verb"] == "drain"
    finally:
        a.close()
        b.close()


def test_recv_frame_none_on_clean_eof():
    a, b = socket.socketpair()
    a.close()
    try:
        assert protocol.recv_frame(b) is None
    finally:
        b.close()


def test_recv_frame_raises_on_truncated_frame():
    a, b = socket.socketpair()
    try:
        frame = protocol.encode_frame(protocol.request("status"))
        a.sendall(frame[:-3])
        a.close()
        with pytest.raises(protocol.ProtocolError, match="mid-frame"):
            protocol.recv_frame(b)
    finally:
        b.close()


def test_recv_frame_rejects_oversized_header():
    a, b = socket.socketpair()
    try:
        a.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
        with pytest.raises(protocol.ProtocolError, match="MAX_FRAME"):
            protocol.recv_frame(b)
    finally:
        a.close()
        b.close()


def test_decode_body_rejects_non_objects():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b"[1, 2, 3]")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_body(b"not json at all")


def test_async_frame_roundtrip():
    async def go():
        a, b = socket.socketpair()
        reader_a, writer_a = await asyncio.open_connection(sock=a)
        reader_b, writer_b = await asyncio.open_connection(sock=b)
        try:
            await protocol.write_frame(
                writer_a, protocol.response("health", status="ok"))
            msg = await protocol.read_frame(reader_b)
            assert msg["verb"] == "health" and msg["ok"] is True
            writer_a.close()
            await writer_a.wait_closed()
            assert await protocol.read_frame(reader_b) is None
        finally:
            writer_b.close()
    asyncio.run(go())


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def test_envelope_builders():
    req = protocol.request("submit", experiment="fig6")
    assert req["schema"] == protocol.SCHEMA and "ok" not in req
    ok = protocol.response("submit", rendered="t")
    assert ok["ok"] is True
    err = protocol.error_reply("submit", "queue_full", retry_after=2.5)
    assert err["ok"] is False and err["error"] == "queue_full"


def test_validate_envelope_accepts_good_replies():
    protocol.validate_envelope(protocol.response("status", inflight=0))
    protocol.validate_envelope(
        protocol.error_reply("submit", "queue_full", retry_after=1.5))
    protocol.validate_envelope(
        protocol.error_reply("error", "bad_request", detail="nope"))


@pytest.mark.parametrize("payload", [
    "not a dict",
    {"schema": "repro-serve/999", "verb": "status", "ok": True},
    {"schema": protocol.SCHEMA, "verb": "frobnicate", "ok": True},
    {"schema": protocol.SCHEMA, "verb": "status"},              # no ok
    {"schema": protocol.SCHEMA, "verb": "status", "ok": 1},     # not bool
    {"schema": protocol.SCHEMA, "verb": "submit", "ok": False},  # no error
    {"schema": protocol.SCHEMA, "verb": "submit", "ok": False,
     "error": "made_up_code"},
    {"schema": protocol.SCHEMA, "verb": "submit", "ok": False,
     "error": "queue_full", "retry_after": -1},
    {"schema": protocol.SCHEMA, "verb": "submit", "ok": False,
     "error": "queue_full", "retry_after": True},
])
def test_validate_envelope_rejects_malformed(payload):
    with pytest.raises(protocol.ProtocolError):
        protocol.validate_envelope(payload)


def test_oversized_outgoing_frame_rejected():
    with pytest.raises(protocol.ProtocolError, match="MAX_FRAME"):
        protocol.encode_frame(
            protocol.response("stats", blob="x" * (protocol.MAX_FRAME + 1)))
