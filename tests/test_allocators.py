"""Tests for the CUDA-like allocator and the TypePointer wrapper."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DoubleFree, TypeTagOverflow
from repro.memory.address_space import MAX_TAG, decode_tag, strip_tag
from repro.memory.cuda_allocator import HEADER_PAD, CudaHeapAllocator
from repro.memory.heap import Heap
from repro.memory.typepointer_alloc import TypePointerAllocator


@pytest.fixture
def cuda_alloc(heap):
    return CudaHeapAllocator(heap)


class TestCudaAllocator:
    def test_allocations_do_not_overlap(self, cuda_alloc):
        ptrs = [cuda_alloc.alloc_object("T", 24) for _ in range(200)]
        spans = sorted((p, p + 24) for p in ptrs)
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_padding_between_objects(self, cuda_alloc):
        # paper 8.2: the CUDA allocator pads between allocations
        assert cuda_alloc.size_class(24) >= 24 + HEADER_PAD

    def test_consecutive_allocations_scatter(self, cuda_alloc):
        # consecutive device-side allocations land in different arenas
        a = cuda_alloc.alloc_object("T", 24)
        b = cuda_alloc.alloc_object("T", 24)
        assert abs(b - a) > 1024

    def test_free_and_reuse(self, cuda_alloc):
        a = cuda_alloc.alloc_object("T", 24)
        cuda_alloc.free_object(a)
        # same size class reuses the freed slot
        ptrs = [cuda_alloc.alloc_object("T", 24) for _ in range(10)]
        assert a in ptrs

    def test_double_free_raises(self, cuda_alloc):
        a = cuda_alloc.alloc_object("T", 24)
        cuda_alloc.free_object(a)
        with pytest.raises(DoubleFree):
            cuda_alloc.free_object(a)

    def test_free_unknown_raises(self, cuda_alloc):
        with pytest.raises(DoubleFree):
            cuda_alloc.free_object(0x123456)

    def test_owner_type_tracking(self, cuda_alloc):
        a = cuda_alloc.alloc_object("A", 16)
        b = cuda_alloc.alloc_object("B", 16)
        assert cuda_alloc.owner_type(a) == "A"
        assert cuda_alloc.owner_type(b) == "B"
        cuda_alloc.free_object(a)
        assert cuda_alloc.owner_type(a) is None

    def test_live_count_and_stats(self, cuda_alloc):
        ptrs = [cuda_alloc.alloc_object("T", 32) for _ in range(5)]
        assert cuda_alloc.live_count() == 5
        assert cuda_alloc.stats.live_bytes == 160
        cuda_alloc.free_object(ptrs[0])
        assert cuda_alloc.live_count() == 4
        assert cuda_alloc.stats.frees == 1

    def test_rejects_nonpositive_size(self, cuda_alloc):
        with pytest.raises(ValueError):
            cuda_alloc.alloc_object("T", 0)

    def test_alloc_raw_disjoint_from_objects(self, cuda_alloc):
        obj = cuda_alloc.alloc_object("T", 64)
        raw = cuda_alloc.alloc_raw(256)
        assert raw >= obj + 64 or raw + 256 <= obj

    def test_modeled_alloc_cost_is_expensive(self, cuda_alloc):
        # the device-side new of section 8.2 pays a large per-call cost
        cuda_alloc.alloc_object("T", 16)
        assert cuda_alloc.stats.modeled_alloc_cycles >= 1000

    def test_internal_fragmentation_reported(self, cuda_alloc):
        from repro.memory.fragmentation import measure

        for _ in range(50):
            cuda_alloc.alloc_object("T", 20)
        report = measure(cuda_alloc)
        assert report.internal_fragmentation > 0

    @given(sizes=st.lists(st.integers(1, 200), min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_no_overlap_property(self, sizes):
        heap = Heap(capacity=1 << 20)
        alloc = CudaHeapAllocator(heap)
        spans = []
        for i, s in enumerate(sizes):
            p = alloc.alloc_object(f"T{i % 3}", s)
            spans.append((p, p + s))
        spans.sort()
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0


class TestBatchFree:
    """free_objects_many: the vectorised mirror of on_construct_many."""

    def test_cuda_batch_free_matches_serial(self, heap):
        a = CudaHeapAllocator(heap)
        b = CudaHeapAllocator(Heap(capacity=1 << 20))
        pa = [a.alloc_object(f"T{i % 3}", 16 + 8 * (i % 4)) for i in range(40)]
        pb = [b.alloc_object(f"T{i % 3}", 16 + 8 * (i % 4)) for i in range(40)]
        assert pa == pb
        victims = pa[::2]
        a.free_objects_many(np.array(victims, dtype=np.uint64))
        for p in pb[::2]:
            b.free_object(p)
        assert a.live_count() == b.live_count() == 20
        assert a.stats.frees == b.stats.frees == 20
        assert a.stats.live_bytes == b.stats.live_bytes
        # the free lists are in the same state: identical reuse order
        after_a = [a.alloc_object("T0", 16) for _ in range(10)]
        after_b = [b.alloc_object("T0", 16) for _ in range(10)]
        assert after_a == after_b

    def test_sharedoa_batch_free_matches_serial(self):
        from repro.memory.shared_oa import SharedOAAllocator

        a = SharedOAAllocator(Heap(capacity=1 << 20), initial_chunk_objects=16)
        b = SharedOAAllocator(Heap(capacity=1 << 20), initial_chunk_objects=16)
        pa = [a.alloc_object(f"T{i % 2}", 24) for i in range(50)]
        pb = [b.alloc_object(f"T{i % 2}", 24) for i in range(50)]
        assert pa == pb
        a.free_objects_many(np.array(pa[10:40], dtype=np.uint64))
        for p in pb[10:40]:
            b.free_object(p)
        assert a.live_count() == b.live_count() == 20
        after_a = [a.alloc_object("T0", 24) for _ in range(15)]
        after_b = [b.alloc_object("T0", 24) for _ in range(15)]
        assert after_a == after_b

    def test_batch_free_validates_before_mutating(self, cuda_alloc):
        ptrs = [cuda_alloc.alloc_object("T", 24) for _ in range(5)]
        bogus = np.array(ptrs + [0xDEAD0], dtype=np.uint64)
        with pytest.raises(DoubleFree):
            cuda_alloc.free_objects_many(bogus)
        # atomic: the valid half of the failed batch is still live
        assert cuda_alloc.live_count() == 5
        cuda_alloc.free_objects_many(np.array(ptrs, dtype=np.uint64))
        assert cuda_alloc.live_count() == 0

    def test_batch_free_rejects_duplicates(self, cuda_alloc):
        p = cuda_alloc.alloc_object("T", 24)
        q = cuda_alloc.alloc_object("T", 24)
        with pytest.raises(DoubleFree):
            cuda_alloc.free_objects_many(np.array([p, q, p], dtype=np.uint64))
        assert cuda_alloc.live_count() == 2

    def test_batch_free_accepts_tagged_pointers(self, heap):
        inner = CudaHeapAllocator(heap)
        alloc = TypePointerAllocator(inner, lambda t: 64)
        ptrs = [alloc.alloc_object("A", 32) for _ in range(8)]
        assert all(decode_tag(p) == 64 for p in ptrs)
        alloc.free_objects_many(np.array(ptrs, dtype=np.uint64))
        assert alloc.live_count() == 0
        assert alloc.stats.frees == 8

    def test_empty_batch_is_noop(self, cuda_alloc):
        cuda_alloc.alloc_object("T", 16)
        cuda_alloc.free_objects_many(np.array([], dtype=np.uint64))
        assert cuda_alloc.live_count() == 1
        assert cuda_alloc.stats.frees == 0

    @given(
        n=st.integers(10, 60),
        pick=st.randoms(use_true_random=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharedoa_batch_serial_equivalence_property(self, n, pick):
        from repro.memory.shared_oa import SharedOAAllocator

        a = SharedOAAllocator(Heap(capacity=1 << 20), initial_chunk_objects=8)
        b = SharedOAAllocator(Heap(capacity=1 << 20), initial_chunk_objects=8)
        pa = [a.alloc_object(f"T{i % 3}", 16) for i in range(n)]
        pb = [b.alloc_object(f"T{i % 3}", 16) for i in range(n)]
        idx = pick.sample(range(n), k=n // 2)
        a.free_objects_many(np.array([pa[i] for i in idx], dtype=np.uint64))
        for i in idx:
            b.free_object(pb[i])
        assert a.live_count() == b.live_count()
        assert [a.alloc_object("T0", 16) for _ in range(n // 2)] == \
            [b.alloc_object("T0", 16) for _ in range(n // 2)]


class TestTypePointerAllocator:
    def _make(self, heap, inner_cls=CudaHeapAllocator, tags=None):
        tags = tags or {"A": 64, "B": 128}
        inner = inner_cls(heap)
        return TypePointerAllocator(inner, lambda t: tags[t])

    def test_pointer_carries_tag(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        assert decode_tag(p) == 64
        q = alloc.alloc_object("B", 32)
        assert decode_tag(q) == 128

    def test_free_accepts_tagged_pointer(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        alloc.free_object(p)
        assert alloc.live_count() == 0

    def test_owner_type_via_tagged_pointer(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        assert alloc.owner_type(p) == "A"

    def test_tag_overflow_raises(self, heap):
        alloc = self._make(heap, tags={"A": MAX_TAG + 1})
        with pytest.raises(TypeTagOverflow):
            alloc.alloc_object("A", 32)

    def test_canonical_address_is_inner_placement(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        canonical = strip_tag(p)
        assert alloc.inner.owner_type(canonical) == "A"

    def test_stats_shared_with_inner(self, heap):
        alloc = self._make(heap)
        alloc.alloc_object("A", 32)
        assert alloc.stats is alloc.inner.stats
        assert alloc.stats.allocations == 1

    def test_wraps_sharedoa_and_exposes_ranges(self, heap):
        from repro.memory.shared_oa import SharedOAAllocator

        inner = SharedOAAllocator(heap, initial_chunk_objects=8)
        alloc = TypePointerAllocator(inner, lambda t: 64)
        alloc.alloc_object("A", 32)
        assert len(alloc.ranges()) == 1
        assert alloc.range_table_version == inner.range_table_version
