"""Tests for the CUDA-like allocator and the TypePointer wrapper."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DoubleFree, TypeTagOverflow
from repro.memory.address_space import MAX_TAG, decode_tag, strip_tag
from repro.memory.cuda_allocator import HEADER_PAD, CudaHeapAllocator
from repro.memory.heap import Heap
from repro.memory.typepointer_alloc import TypePointerAllocator


@pytest.fixture
def cuda_alloc(heap):
    return CudaHeapAllocator(heap)


class TestCudaAllocator:
    def test_allocations_do_not_overlap(self, cuda_alloc):
        ptrs = [cuda_alloc.alloc_object("T", 24) for _ in range(200)]
        spans = sorted((p, p + 24) for p in ptrs)
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_padding_between_objects(self, cuda_alloc):
        # paper 8.2: the CUDA allocator pads between allocations
        assert cuda_alloc.size_class(24) >= 24 + HEADER_PAD

    def test_consecutive_allocations_scatter(self, cuda_alloc):
        # consecutive device-side allocations land in different arenas
        a = cuda_alloc.alloc_object("T", 24)
        b = cuda_alloc.alloc_object("T", 24)
        assert abs(b - a) > 1024

    def test_free_and_reuse(self, cuda_alloc):
        a = cuda_alloc.alloc_object("T", 24)
        cuda_alloc.free_object(a)
        # same size class reuses the freed slot
        ptrs = [cuda_alloc.alloc_object("T", 24) for _ in range(10)]
        assert a in ptrs

    def test_double_free_raises(self, cuda_alloc):
        a = cuda_alloc.alloc_object("T", 24)
        cuda_alloc.free_object(a)
        with pytest.raises(DoubleFree):
            cuda_alloc.free_object(a)

    def test_free_unknown_raises(self, cuda_alloc):
        with pytest.raises(DoubleFree):
            cuda_alloc.free_object(0x123456)

    def test_owner_type_tracking(self, cuda_alloc):
        a = cuda_alloc.alloc_object("A", 16)
        b = cuda_alloc.alloc_object("B", 16)
        assert cuda_alloc.owner_type(a) == "A"
        assert cuda_alloc.owner_type(b) == "B"
        cuda_alloc.free_object(a)
        assert cuda_alloc.owner_type(a) is None

    def test_live_count_and_stats(self, cuda_alloc):
        ptrs = [cuda_alloc.alloc_object("T", 32) for _ in range(5)]
        assert cuda_alloc.live_count() == 5
        assert cuda_alloc.stats.live_bytes == 160
        cuda_alloc.free_object(ptrs[0])
        assert cuda_alloc.live_count() == 4
        assert cuda_alloc.stats.frees == 1

    def test_rejects_nonpositive_size(self, cuda_alloc):
        with pytest.raises(ValueError):
            cuda_alloc.alloc_object("T", 0)

    def test_alloc_raw_disjoint_from_objects(self, cuda_alloc):
        obj = cuda_alloc.alloc_object("T", 64)
        raw = cuda_alloc.alloc_raw(256)
        assert raw >= obj + 64 or raw + 256 <= obj

    def test_modeled_alloc_cost_is_expensive(self, cuda_alloc):
        # the device-side new of section 8.2 pays a large per-call cost
        cuda_alloc.alloc_object("T", 16)
        assert cuda_alloc.stats.modeled_alloc_cycles >= 1000

    def test_internal_fragmentation_reported(self, cuda_alloc):
        from repro.memory.fragmentation import measure

        for _ in range(50):
            cuda_alloc.alloc_object("T", 20)
        report = measure(cuda_alloc)
        assert report.internal_fragmentation > 0

    @given(sizes=st.lists(st.integers(1, 200), min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_no_overlap_property(self, sizes):
        heap = Heap(capacity=1 << 20)
        alloc = CudaHeapAllocator(heap)
        spans = []
        for i, s in enumerate(sizes):
            p = alloc.alloc_object(f"T{i % 3}", s)
            spans.append((p, p + s))
        spans.sort()
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0


class TestTypePointerAllocator:
    def _make(self, heap, inner_cls=CudaHeapAllocator, tags=None):
        tags = tags or {"A": 64, "B": 128}
        inner = inner_cls(heap)
        return TypePointerAllocator(inner, lambda t: tags[t])

    def test_pointer_carries_tag(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        assert decode_tag(p) == 64
        q = alloc.alloc_object("B", 32)
        assert decode_tag(q) == 128

    def test_free_accepts_tagged_pointer(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        alloc.free_object(p)
        assert alloc.live_count() == 0

    def test_owner_type_via_tagged_pointer(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        assert alloc.owner_type(p) == "A"

    def test_tag_overflow_raises(self, heap):
        alloc = self._make(heap, tags={"A": MAX_TAG + 1})
        with pytest.raises(TypeTagOverflow):
            alloc.alloc_object("A", 32)

    def test_canonical_address_is_inner_placement(self, heap):
        alloc = self._make(heap)
        p = alloc.alloc_object("A", 32)
        canonical = strip_tag(p)
        assert alloc.inner.owner_type(canonical) == "A"

    def test_stats_shared_with_inner(self, heap):
        alloc = self._make(heap)
        alloc.alloc_object("A", 32)
        assert alloc.stats is alloc.inner.stats
        assert alloc.stats.allocations == 1

    def test_wraps_sharedoa_and_exposes_ranges(self, heap):
        from repro.memory.shared_oa import SharedOAAllocator

        inner = SharedOAAllocator(heap, initial_chunk_objects=8)
        alloc = TypePointerAllocator(inner, lambda t: 64)
        alloc.alloc_object("A", 32)
        assert len(alloc.ranges()) == 1
        assert alloc.range_table_version == inner.range_table_version
