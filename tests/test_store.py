"""The persistent replay store: durability, locking, versioning."""
from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
import time
import warnings

import numpy as np
import pytest

from repro import obs
from repro.gpu.config import small_config
from repro.gpu.machine import Machine
from repro.gpu.trace import MemoryTrace, TRACE_ENCODING_VERSION, role_id
from repro.harness.store import (
    STORE_VERSION,
    PersistentReplayMemo,
    ReplayMemoStore,
    TraceStore,
    _FileLock,
    _reset_bucket_warnings,
    bucket_name,
    default_store_dir,
    memo_for,
)


@pytest.fixture
def store(tmp_path):
    return ReplayMemoStore(tmp_path / "store")


def test_bucket_name_is_engine_and_config_scoped():
    cfg = small_config()
    name = bucket_name(cfg)
    assert cfg.name.replace(" ", "-") in name or cfg.name in name
    assert "__" in name
    scoped = bucket_name(cfg, scope="TRAF-coal")
    assert scoped.startswith(name)
    assert scoped.endswith("TRAF-coal")


def test_bucket_name_sanitizes_scope():
    cfg = small_config()
    assert "/" not in bucket_name(cfg, scope="a/b c")


def test_default_store_dir_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", "/tmp/elsewhere")
    assert default_store_dir() == "/tmp/elsewhere"
    monkeypatch.delenv("REPRO_STORE_DIR")
    assert default_store_dir().endswith("replay_store")


def test_cold_bucket_is_empty(store):
    assert store.load_bucket("b") == {}
    assert store.size("b") == 0
    assert not store.is_warm()
    assert store.buckets() == []


def test_merge_and_reload_roundtrip(store):
    entries = {b"k1": ("stats1", 3), b"k2": ("stats2", 4)}
    assert store.merge_bucket("b", entries) == 2
    assert store.load_bucket("b") == entries
    assert store.is_warm()
    assert store.buckets() == ["b"]
    # a second writer's fresh keys merge in; existing keys survive
    assert store.merge_bucket("b", {b"k2": ("other", 0), b"k3": ("s3", 5)}) == 3
    merged = store.load_bucket("b")
    assert merged[b"k2"] == ("stats2", 4)
    assert merged[b"k3"] == ("s3", 5)


def test_version_mismatch_invalidates(store):
    store.merge_bucket("b", {b"k": 1})
    path = store.bucket_path("b")
    payload = pickle.loads(path.read_bytes())
    payload["version"] = STORE_VERSION + 1
    path.write_bytes(pickle.dumps(payload))
    # a stale version is treated as cold, not trusted
    assert store.load_bucket("b") == {}
    # and writing through it rewrites the bucket at the current version
    assert store.merge_bucket("b", {b"k2": 2}) == 1
    assert store.load_bucket("b") == {b"k2": 2}


def test_wrong_schema_invalidates(store):
    path = store.bucket_path("b")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"schema": "someone-elses",
                                   "version": STORE_VERSION,
                                   "entries": {b"k": 1}}))
    assert store.load_bucket("b") == {}


def test_corrupt_file_treated_as_empty(store):
    path = store.bucket_path("b")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"\x80\x05 this is not a pickle")
    assert store.load_bucket("b") == {}
    assert store.merge_bucket("b", {b"k": 1}) == 1


@pytest.fixture
def fresh_obs():
    reg = obs.Registry(enabled=True)
    prev = obs.set_registry(reg)
    _reset_bucket_warnings()
    try:
        yield reg
    finally:
        obs.set_registry(prev)
        _reset_bucket_warnings()


def test_corrupt_bucket_warns_once_and_counts(store, fresh_obs):
    path = store.bucket_path("b")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"\x80\x05 this is not a pickle")
    with pytest.warns(RuntimeWarning, match="b.pkl"):
        assert store.load_bucket("b") == {}
    assert fresh_obs.counters["store.bucket_corrupt"] == 1
    # one-shot per bucket: the second read counts but stays quiet
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert store.load_bucket("b") == {}
    assert fresh_obs.counters["store.bucket_corrupt"] == 2


def test_version_mismatch_warns_and_counts(store, fresh_obs):
    store.merge_bucket("b", {b"k": 1})
    path = store.bucket_path("b")
    payload = pickle.loads(path.read_bytes())
    payload["version"] = STORE_VERSION + 1
    path.write_bytes(pickle.dumps(payload))
    with pytest.warns(RuntimeWarning, match="version"):
        assert store.load_bucket("b") == {}
    assert fresh_obs.counters["store.bucket_version_mismatch"] == 1


def test_cold_read_is_silent(store, fresh_obs):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert store.load_bucket("never-written") == {}
    assert "store.bucket_corrupt" not in fresh_obs.counters
    assert "store.bucket_version_mismatch" not in fresh_obs.counters


# ----------------------------------------------------------------------
# _FileLock: fcntl fallback and stale-lock handling
# ----------------------------------------------------------------------
def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def test_lock_file_fallback_without_fcntl(tmp_path, monkeypatch):
    """With fcntl unavailable the O_EXCL lock-file protocol engages."""
    monkeypatch.setitem(sys.modules, "fcntl", None)  # import -> ImportError
    path = tmp_path / "b.lock"
    with _FileLock(path) as lock:
        assert lock._exclusive_file
        assert path.exists()
        # a second contender cannot acquire while we hold it
        with pytest.raises(TimeoutError):
            with _FileLock(path, timeout_s=0.05):
                pass
    assert not path.exists()


def test_flock_oserror_falls_back_without_leaking_fds(tmp_path, monkeypatch):
    """An OSError from flock (e.g. NFS) must close the opened fd and
    fall back to the lock-file protocol, not propagate."""
    import fcntl as real_fcntl

    def broken_flock(fd, op):
        raise OSError("flock not supported on this filesystem")

    monkeypatch.setattr(real_fcntl, "flock", broken_flock)
    path = tmp_path / "b.lock"
    before = _open_fds()
    with _FileLock(path) as lock:
        assert lock._exclusive_file  # acquired via the fallback
        assert _open_fds() == before + 1  # exactly the fallback fd
    assert _open_fds() == before
    assert not path.exists()


def test_stale_lock_is_broken_and_acquired(tmp_path, monkeypatch):
    monkeypatch.setitem(sys.modules, "fcntl", None)
    path = tmp_path / "b.lock"
    path.write_bytes(b"")
    old = time.time() - 1000.0
    os.utime(path, (old, old))
    with _FileLock(path, timeout_s=5.0, stale_s=300.0) as lock:
        assert lock._exclusive_file
    assert not path.exists()


def test_stale_break_has_exactly_one_winner(tmp_path):
    """Many waiters judging the same lock stale: the rename-based break
    lets exactly one proceed (a raw unlink lets several 'win' and then
    hold the exclusive lock concurrently)."""
    path = tmp_path / "b.lock"
    n = 8
    winners = []
    barrier = threading.Barrier(n)

    def contend():
        lock = _FileLock(path, stale_s=300.0)
        barrier.wait()
        winners.append(lock._break_stale())

    for trial in range(5):
        path.write_bytes(b"")
        old = time.time() - 1000.0
        os.utime(path, (old, old))
        winners.clear()
        threads = [threading.Thread(target=contend) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sum(winners) == 1, f"trial {trial}: {winners}"
        assert not path.exists()


def _merge_worker_no_fcntl(root, wid, n):
    sys.modules["fcntl"] = None  # force the lock-file fallback
    s = ReplayMemoStore(root)
    for i in range(n):
        s.merge_bucket("shared", {f"w{wid}-{i}".encode(): (wid, i)})


def test_concurrent_fallback_writers_lose_nothing(store):
    """The lock-file protocol under real contention, stale file present
    at the start: every entry must survive."""
    lock_path = store._lock_path("shared")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    lock_path.write_bytes(b"")
    old = time.time() - 1000.0
    os.utime(lock_path, (old, old))
    n_workers, n_entries = 4, 10
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_merge_worker_no_fcntl,
                    args=(str(store.root), w, n_entries))
        for w in range(n_workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    merged = store.load_bucket("shared")
    assert len(merged) == n_workers * n_entries


def test_clear_removes_buckets(store):
    store.merge_bucket("a", {b"k": 1})
    store.merge_bucket("b", {b"k": 2})
    store.clear()
    assert not store.is_warm()
    assert store.buckets() == []


def _merge_worker(root, wid, n):
    s = ReplayMemoStore(root)
    for i in range(n):
        s.merge_bucket("shared", {f"w{wid}-{i}".encode(): (wid, i)})


def test_concurrent_writers_lose_nothing(store, tmp_path):
    """Many processes hammering one bucket: every entry must survive."""
    n_workers, n_entries = 4, 25
    ctx = multiprocessing.get_context()
    procs = [
        ctx.Process(target=_merge_worker,
                    args=(str(store.root), w, n_entries))
        for w in range(n_workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    merged = store.load_bucket("shared")
    assert len(merged) == n_workers * n_entries
    for w in range(n_workers):
        for i in range(n_entries):
            assert merged[f"w{w}-{i}".encode()] == (w, i)


class TestPersistentReplayMemo:
    def _run(self, memo):
        m = Machine("cuda", config=small_config())
        m.set_replay_memo(memo)
        arr = m.array_from(np.arange(128, dtype=np.uint64), "u64")

        def k(ctx):
            arr.st(ctx, ctx.tid, arr.ld(ctx, ctx.tid) + np.uint64(1))

        m.launch(k, 128)
        return m.run_stats

    def test_flush_then_preload_replays(self, store):
        memo1 = memo_for(store, small_config())
        base = self._run(memo1)
        assert memo1.misses > 0 and memo1.hits == 0
        memo1.flush()

        # a brand-new memo (fresh process, conceptually) preloads the
        # persisted entries and replays the identical run entirely
        memo2 = memo_for(store, small_config())
        assert memo2.preloaded == memo1.misses
        replayed = self._run(memo2)
        assert memo2.hits == memo1.misses
        assert memo2.misses == 0
        assert replayed == base

    def test_flush_is_incremental(self, store):
        memo = memo_for(store, small_config())
        self._run(memo)
        n = memo.flush()
        assert n > 0
        # nothing new learned since -> flush is a no-op read
        assert memo.flush() == n

    def test_scoped_buckets_are_disjoint_files(self, store):
        cfg = small_config()
        a = memo_for(store, cfg, scope="TRAF-coal")
        b = memo_for(store, cfg, scope="exp-fig12a")
        assert a.bucket != b.bucket
        self._run(a)
        a.flush()
        assert store.size(a.bucket) > 0
        assert store.size(b.bucket) == 0

    def test_isinstance_of_replay_memo(self, store):
        from repro.harness.runner import ReplayMemo

        assert isinstance(memo_for(store, small_config()), ReplayMemo)
        assert isinstance(
            PersistentReplayMemo(store, "b"), ReplayMemo
        )


# ----------------------------------------------------------------------
# TraceStore: the mapped, append-only wave store
# ----------------------------------------------------------------------
@pytest.fixture
def tstore(tmp_path):
    with TraceStore(tmp_path / "traces") as s:
        yield s


def _wave(*addr_lists, sm=0):
    t = MemoryTrace(sm=sm)
    for addrs in addr_lists:
        t.append_access(np.asarray(addrs, dtype=np.uint64), 1, False,
                        role_id("vtable"))
    return [t.finalize()]


def _assert_wave_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.sm == w.sm
        for col in ("line", "mask", "txn_count", "txn_start", "store",
                    "role"):
            assert np.array_equal(getattr(g, col), getattr(w, col)), col


class TestTraceStore:
    def test_cold_bucket(self, tstore):
        assert tstore.size("b") == 0
        assert not tstore.has_wave("b", b"k")
        assert tstore.get_wave("b", b"k") is None

    def test_put_get_round_trip(self, tstore):
        wave = _wave([0, 128, 4096], [256], sm=2)
        assert tstore.put_wave("b", b"k1", wave)
        assert tstore.has_wave("b", b"k1")
        assert tstore.size("b") == 1
        _assert_wave_equal(tstore.get_wave("b", b"k1"), wave)

    def test_duplicate_key_appends_nothing(self, tstore):
        wave = _wave([0, 128])
        assert tstore.put_wave("b", b"k", wave)
        nbytes = os.path.getsize(tstore.data_path("b"))
        assert not tstore.put_wave("b", b"k", _wave([512, 640]))
        assert os.path.getsize(tstore.data_path("b")) == nbytes
        # first write wins, mirroring the memo store's merge semantics
        _assert_wave_equal(tstore.get_wave("b", b"k"), wave)

    def test_mapping_refreshes_after_append(self, tstore):
        w1, w2 = _wave([0]), _wave([128, 256], sm=1)
        tstore.put_wave("b", b"k1", w1)
        _assert_wave_equal(tstore.get_wave("b", b"k1"), w1)  # maps now
        tstore.put_wave("b", b"k2", w2)  # grows past the mapped view
        _assert_wave_equal(tstore.get_wave("b", b"k2"), w2)
        _assert_wave_equal(tstore.get_wave("b", b"k1"), w1)

    def test_second_reader_sees_appends(self, tstore, tmp_path):
        with TraceStore(tmp_path / "traces") as reader:
            tstore.put_wave("b", b"k1", _wave([0]))
            # the reader's cached (empty) index refreshes on miss
            assert reader.has_wave("b", b"k1")
            w2 = _wave([128], sm=3)
            tstore.put_wave("b", b"k2", w2)
            _assert_wave_equal(reader.get_wave("b", b"k2"), w2)

    def test_buckets_are_disjoint(self, tstore):
        tstore.put_wave("a", b"k", _wave([0]))
        assert not tstore.has_wave("b", b"k")
        assert tstore.size("b") == 0

    def test_corrupt_index_treated_as_empty(self, tstore, fresh_obs):
        tstore.put_wave("b", b"k", _wave([0]))
        tstore.index_path("b").write_bytes(b"\x80\x05 not a pickle")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert tstore.size("b") == 0
        assert fresh_obs.counters["store.bucket_corrupt"] >= 1
        # writing through the corrupt index rebuilds it
        with pytest.warns(RuntimeWarning):
            assert tstore.put_wave("b", b"k2", _wave([128]))
        assert tstore.has_wave("b", b"k2")

    def test_version_mismatch_treated_as_empty(self, tstore):
        tstore.put_wave("b", b"k", _wave([0]))
        payload = pickle.loads(tstore.index_path("b").read_bytes())
        payload["version"] = TRACE_ENCODING_VERSION + 1
        tstore.index_path("b").write_bytes(pickle.dumps(payload))
        tstore._indexes.clear()
        assert tstore.size("b") == 0
        assert tstore.get_wave("b", b"k") is None


# ----------------------------------------------------------------------
# Machine wiring: memo hits spill waves to the store; the next miss
# drains them back through the engine from the mapped bucket
# ----------------------------------------------------------------------
class TestMachineTraceStore:
    def _run(self, memo=None, tstore=None):
        m = Machine("cuda", config=small_config())
        if memo is not None:
            m.set_replay_memo(memo)
        if tstore is not None:
            m.set_trace_store(tstore, "waves")
        arr = m.array_from(np.arange(128, dtype=np.uint64), "u64")

        def bump(ctx):
            arr.st(ctx, ctx.tid, arr.ld(ctx, ctx.tid) + np.uint64(1))

        def reverse_read(ctx):
            arr.ld(ctx, 127 - ctx.tid)

        # two memoizable launches, then a diverging one: with a warm
        # memo the first two hit and the third misses, forcing the
        # pending-wave drain
        m.launch(bump, 128)
        m.launch(bump, 128)
        m.launch(reverse_read, 128)
        return m.run_stats

    def test_drain_from_store_is_bit_identical(self, store, tmp_path):
        base = self._run()  # no memo at all: ground truth

        warm = memo_for(store, small_config())
        # warm only the first two launches so the third misses
        m = Machine("cuda", config=small_config())
        m.set_replay_memo(warm)
        arr = m.array_from(np.arange(128, dtype=np.uint64), "u64")

        def bump(ctx):
            arr.st(ctx, ctx.tid, arr.ld(ctx, ctx.tid) + np.uint64(1))

        m.launch(bump, 128)
        m.launch(bump, 128)
        warm.flush()

        with TraceStore(tmp_path / "traces") as ts:
            memo = memo_for(store, small_config())
            stats = self._run(memo, ts)
            assert memo.hits > 0 and memo.misses > 0
            assert ts.size("waves") == memo.hits
        assert stats == base

        # without a store the drain replays pinned raw traces; both
        # paths must land on the same counters
        memo2 = memo_for(store, small_config())
        assert self._run(memo2) == base

    def test_store_must_attach_before_first_launch(self, store, tmp_path):
        m = Machine("cuda", config=small_config())
        arr = m.array_from(np.arange(32, dtype=np.uint64), "u64")
        m.launch(lambda ctx: arr.ld(ctx, ctx.tid), 32)
        with TraceStore(tmp_path / "traces") as ts:
            from repro.errors import LaunchError

            with pytest.raises(LaunchError):
                m.set_trace_store(ts, "waves")
