"""User kernel *programs*: load, run across techniques, report.

A program is a self-contained Python module -- a source string or a
file -- written against only the public front-end API.  Its contract
is one entry point::

    def run(machine) -> float:
        ...build device classes / allocate / launch kernels...
        return checksum

``run_program`` executes the entry under each requested technique on a
fresh :class:`Machine` and reports per-technique checksums plus the
headline counters, flagging any functional divergence -- the same
cross-technique agreement check the built-in workloads get from the
figure harnesses.  This is what the ``kernel`` registry experiment and
``python -m repro kernel FILE`` run, and because it is reached through
the ordinary experiment registry, a user kernel submitted to
``repro.serve`` deduplicates and caches under the standard ``job_key``
(the program source travels in the job's ``params``).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..errors import FrontendError
from ..gpu.config import GPUConfig, small_config
from ..gpu.machine import Machine
from ..gpu.stats import KernelStats
from ..techniques import figure_techniques, resolve as resolve_technique

#: the quickstart program: what ``python -m repro kernel`` runs when
#: no file is given, and the serve demo submission.
DEMO_SOURCE = '''\
import numpy as np
from repro import device_class, kernel, virtual, abstract


@device_class
class Counter:
    count: "u32"

    @abstract
    def bump(self, ctx): ...


@device_class
class Slow(Counter):
    @virtual
    def bump(self, ctx):
        c = self.count
        ctx.alu(1)
        self.count = c + np.uint32(1)


@device_class
class Fast(Counter):
    @virtual
    def bump(self, ctx):
        c = self.count
        ctx.alu(1)
        self.count = c + np.uint32(3)


@kernel
def bump_all(ctx, objects):
    ptrs = objects.ld(ctx, ctx.tid)
    Counter.view(ctx, ptrs).bump()


def run(machine):
    n = 512
    ptrs = np.empty(n, dtype=np.uint64)
    ptrs[0::2] = Slow.alloc(machine, n // 2)
    ptrs[1::2] = Fast.alloc(machine, n - n // 2)
    objects = machine.array_from(ptrs, "u64")
    for _ in range(4):
        bump_all[n](machine, objects)
    counts = Counter.read_field(machine, ptrs, "count")
    return float(counts.sum())
'''


def load_program(source: Optional[str] = None,
                 path: Optional[str] = None) -> Callable[[Machine], Any]:
    """Load a program from source text or a file; returns its entry.

    Exactly one of ``source``/``path`` must be given.  The module must
    define ``run(machine)``; anything else is a :class:`FrontendError`
    (including syntax/runtime errors at import time, so a bad program
    fails before any machine is built).
    """
    if (source is None) == (path is None):
        raise FrontendError(
            "load_program needs exactly one of source= or path=")
    where = path or "<kernel program>"
    if path is not None:
        try:
            with open(path, "r", encoding="utf-8") as f:
                source = f.read()
        except OSError as exc:
            raise FrontendError(f"cannot read program {path!r}: {exc}")
    namespace: Dict[str, Any] = {"__name__": "repro_kernel_program",
                                 "__file__": where}
    try:
        # dont_inherit: the program's __future__ flags are its own, not
        # this module's (inherited PEP 563 would stringify annotations)
        exec(compile(source, where, "exec", dont_inherit=True), namespace)
    except Exception as exc:
        raise FrontendError(
            f"program {where} failed to load: {type(exc).__name__}: {exc}"
        ) from exc
    entry = namespace.get("run")
    if not callable(entry):
        raise FrontendError(
            f"program {where} must define run(machine); got "
            f"{entry!r}"
        )
    return entry


@dataclass
class ProgramResult:
    """One program executed across techniques."""

    techniques: Tuple[str, ...]
    checksums: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, KernelStats] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """All techniques produced the same checksum (bit-identical)."""
        vals = list(self.checksums.values())
        return all(v == vals[0] for v in vals) if vals else False

    @property
    def table(self) -> str:
        from ..harness.report import format_table

        rows = []
        for tech in self.techniques:
            s = self.stats[tech]
            rows.append([
                tech, self.checksums[tech], float(s.cycles),
                int(s.vfunc_calls), int(s.global_load_transactions),
            ])
        verdict = ("all techniques agree" if self.ok
                   else "CHECKSUM DIVERGENCE")
        return format_table(
            ["technique", "checksum", "cycles", "vcalls", "ld_txn"],
            rows, title=f"user kernel program ({verdict})",
        )


def run_program(
    entry: Callable[[Machine], Any],
    techniques: Optional[Sequence[str]] = None,
    config: Optional[GPUConfig] = None,
) -> ProgramResult:
    """Run a loaded program under each technique on a fresh machine."""
    if techniques is None:
        techniques = figure_techniques()
    # fail on unknown names (with hints) before any machine is built
    techniques = tuple(resolve_technique(t).name for t in techniques)
    result = ProgramResult(techniques=techniques)
    for tech in result.techniques:
        machine = Machine(tech, config=config)
        checksum = entry(machine)
        result.checksums[tech] = float(checksum)
        result.stats[tech] = machine.run_stats
    return result


# ----------------------------------------------------------------------
# registry glue (registered by repro.harness.registry as "kernel")
# ----------------------------------------------------------------------
def kernel_experiment_run(options) -> ProgramResult:
    """The ``kernel`` experiment: params carry the program itself.

    ``options.params["kernel"]`` keys:

    ``source`` / ``path``
        the program text or a file path (default: the demo program)
    ``techniques``
        sequence of technique names (default: the registry's figure
        set -- the paper's five plus ``soa``)
    ``config``
        ``"small"`` to force the CI-sized GPU (default: options.config)
    """
    params = options.params_for("kernel")
    source = params.get("source")
    path = params.get("path")
    if source is None and path is None:
        source = DEMO_SOURCE
    entry = load_program(source=source, path=path)
    config = options.config
    if params.get("config") == "small":
        config = small_config()
    techniques = params.get("techniques")
    if techniques is not None:
        techniques = tuple(techniques)
    return run_program(entry, techniques=techniques, config=config)
