"""``device_class``: Python class hierarchies lowered onto the machine.

A device class is an ordinary Python class whose *annotations* declare
simulated object fields and whose ``@virtual`` / ``@abstract`` methods
declare virtual-function slots::

    @device_class
    class Shape:
        area: "f32"

        @abstract
        def compute(self, ctx): ...

    @device_class
    class Circle(Shape):
        radius: "f32"

        @virtual
        def compute(self, ctx):
            r = self.radius            # charged global load
            ctx.alu(2)
            self.area = np.float32(3.14159265) * r * r   # charged store

The decorator lowers the class onto the existing machinery: it builds a
:class:`~repro.runtime.typesystem.TypeDescriptor` (single inheritance,
C++-style layout) whose method implementations wrap the Python bodies
in a warp-wide :class:`InstanceView`.  Inside a kernel, ``cls.view(ctx,
ptrs)`` is the device-side view of a batch of object pointers: field
reads/writes become charged ``load_field``/``store_field`` operations
through the execution context, and calling a virtual method routes the
pointers through the machine's active dispatch strategy (``ctx.vcall``)
exactly like the hand-written workloads do.

Host-side (uncharged) accessors -- ``alloc``, ``read_field``,
``write_field`` -- cover object-graph construction and validation,
mirroring the paper's methodology of excluding initialisation from
kernel measurements.
"""
from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import FrontendError
from ..memory.heap import SCALAR_TYPES
from ..runtime.typesystem import TypeDescriptor

#: attribute holding the lowered TypeDescriptor on a device class
_DESCRIPTOR_ATTR = "__device_descriptor__"


class _VirtualMethod:
    """Marker a ``@virtual`` / ``@abstract`` decorator leaves on a body."""

    __slots__ = ("fn", "is_abstract")

    def __init__(self, fn: Callable, is_abstract: bool):
        self.fn = fn
        self.is_abstract = is_abstract


def virtual(fn: Callable) -> _VirtualMethod:
    """Mark ``fn(self, ctx)`` as a virtual-method implementation."""
    return _VirtualMethod(fn, is_abstract=False)


def abstract(fn: Callable) -> _VirtualMethod:
    """Declare a pure-virtual slot (the body is never executed)."""
    return _VirtualMethod(fn, is_abstract=True)


class InstanceView:
    """A warp-wide device-side view of object pointers.

    Attribute access is the lowering seam: reading a declared field
    charges a global load, assigning one charges a global store, and
    calling a virtual method dispatches through the machine's strategy.
    Anything else is a :class:`FrontendError` -- there is no silent
    fallback onto host Python attributes inside a kernel.
    """

    __slots__ = ("_ctx", "_ptrs", "_cls")

    def __init__(self, ctx, ptrs, cls):
        object.__setattr__(self, "_ctx", ctx)
        object.__setattr__(self, "_ptrs",
                           np.asarray(ptrs, dtype=np.uint64))
        object.__setattr__(self, "_cls", cls)

    # ------------------------------------------------------------------
    @property
    def pointers(self) -> np.ndarray:
        """The (possibly tagged) object pointers this view covers."""
        return self._ptrs

    def __len__(self) -> int:
        return len(self._ptrs)

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        cls = self._cls
        if name in cls.__device_fields__:
            return self._ctx.load_field(
                self._ptrs, getattr(cls, _DESCRIPTOR_ATTR), name)
        if name in cls.__device_methods__:
            ctx, ptrs = self._ctx, self._ptrs
            td = getattr(cls, _DESCRIPTOR_ATTR)

            def dispatch(uniform: bool = False):
                return ctx.vcall(ptrs, td, name, uniform=uniform)

            dispatch.__name__ = name
            return dispatch
        raise FrontendError(
            f"{cls.__name__} has no device field or virtual method "
            f"{name!r}; fields: {sorted(cls.__device_fields__)}, "
            f"methods: {sorted(cls.__device_methods__)}"
        )

    def __setattr__(self, name: str, value) -> None:
        cls = self._cls
        if name in cls.__device_fields__:
            self._ctx.store_field(
                self._ptrs, getattr(cls, _DESCRIPTOR_ATTR), name, value)
            return
        raise FrontendError(
            f"cannot assign {name!r} on {cls.__name__}: not a declared "
            f"device field (fields: {sorted(cls.__device_fields__)})"
        )


# ----------------------------------------------------------------------
# the decorator
# ----------------------------------------------------------------------
def device_class(cls=None, *, name: Optional[str] = None):
    """Class decorator lowering a Python class onto the type system.

    Usable bare (``@device_class``), with a name override
    (``@device_class(name="Cell#gol0")``), or programmatically on a
    ``type(...)``-built class (parameterised hierarchies).
    """
    if cls is None:
        return lambda c: _lower_class(c, name)
    return _lower_class(cls, name)


def is_device_class(obj) -> bool:
    return isinstance(obj, type) and _DESCRIPTOR_ATTR in obj.__dict__


def _lower_class(cls, name: Optional[str]):
    if not isinstance(cls, type):
        raise FrontendError(
            f"@device_class expects a class, got {type(cls).__name__}")

    device_bases = [b for b in cls.__bases__ if is_device_class(b)]
    plain_bases = [b for b in cls.__bases__
                   if b is not object and b not in device_bases]
    if plain_bases:
        raise FrontendError(
            f"{cls.__name__}: every base must itself be a device class; "
            f"{plain_bases[0].__name__} is not"
        )
    if len(device_bases) > 1:
        raise FrontendError(
            f"{cls.__name__}: multiple inheritance between device "
            f"classes is not supported (the type system is single-"
            f"inheritance, like the paper's workloads)"
        )
    base_cls = device_bases[0] if device_bases else None
    base_td = getattr(base_cls, _DESCRIPTOR_ATTR) if base_cls else None

    # --- fields: the class's own annotations, in declaration order ---
    fields = []
    for fname, dtype in (cls.__dict__.get("__annotations__") or {}).items():
        if isinstance(dtype, str):
            # under `from __future__ import annotations` the literal
            # "u32" arrives as its source text, quotes included
            dtype = dtype.strip("'\"")
        if not isinstance(dtype, str) or dtype not in SCALAR_TYPES:
            raise FrontendError(
                f"{cls.__name__}.{fname}: field dtype must be one of "
                f"{sorted(SCALAR_TYPES)}, got {dtype!r}"
            )
        fields.append((fname, dtype))

    # --- methods: @virtual/@abstract markers; overriding a virtual
    # slot with a plain function is the classic silent C++ bug
    # (non-virtual override), so it is an error here ---
    inherited_slots = set(base_td.vtable_slots()) if base_td else set()
    methods = {}
    bodies = {}
    for mname, mval in list(cls.__dict__.items()):
        if isinstance(mval, _VirtualMethod):
            bodies[mname] = mval
            methods[mname] = None  # patched below once the class is wired
            delattr_safe(cls, mname)
        elif callable(mval) and mname in inherited_slots:
            raise FrontendError(
                f"{cls.__name__}.{mname} overrides virtual method "
                f"{mname!r} without @virtual (a non-virtual override "
                f"would silently bypass dynamic dispatch)"
            )

    overlap = {f for f, _ in fields} & (set(methods) | inherited_slots)
    if overlap:
        raise FrontendError(
            f"{cls.__name__}: {sorted(overlap)} declared both as field "
            f"and as virtual method"
        )

    td = TypeDescriptor(name or cls.__name__, fields=fields,
                        methods=methods, base=base_td)
    # wire the concrete bodies now that the class identity exists: each
    # impl runs the Python body over a warp-wide view of its lanes
    for mname, marker in bodies.items():
        if not marker.is_abstract:
            td.own_methods[mname] = _make_impl(cls, marker.fn)

    setattr(cls, _DESCRIPTOR_ATTR, td)
    cls.__device_fields__ = frozenset(f.name for f in td.all_fields())
    cls.__device_methods__ = frozenset(td.vtable_slots())

    for helper in (_descriptor, _view, _alloc, _read_field, _write_field):
        setattr(cls, helper.__name__.lstrip("_"), classmethod(helper))
    return cls


def delattr_safe(cls, name: str) -> None:
    try:
        delattr(cls, name)
    except AttributeError:  # pragma: no cover - slotted/odd classes
        pass


def _make_impl(cls, fn: Callable):
    """Wrap ``fn(self, ctx)`` as a ``impl(ctx, objs)`` vtable entry."""

    def impl(ctx, objs):
        return fn(InstanceView(ctx, objs, cls), ctx)

    impl.__name__ = fn.__name__
    impl.__qualname__ = getattr(fn, "__qualname__", fn.__name__)
    return impl


# ----------------------------------------------------------------------
# classmethod helpers attached to every device class
# ----------------------------------------------------------------------
def _descriptor(cls) -> TypeDescriptor:
    """The lowered :class:`TypeDescriptor` of this device class."""
    return getattr(cls, _DESCRIPTOR_ATTR)


def _view(cls, ctx, ptrs) -> InstanceView:
    """Device-side view of ``ptrs`` inside a kernel (charged access)."""
    return InstanceView(ctx, ptrs, cls)


def _alloc(cls, machine, count: int) -> np.ndarray:
    """Allocate ``count`` objects on ``machine``; returns pointers."""
    td = getattr(cls, _DESCRIPTOR_ATTR)
    if td.is_abstract():
        raise FrontendError(
            f"cannot allocate abstract device class {cls.__name__} "
            f"(pure-virtual slots: "
            f"{[m for m, i in zip(td.vtable_slots(), td.vtable_impls()) if i is None]})"
        )
    return machine.new_objects(td, count)


def _read_field(cls, machine, ptrs, field: str) -> np.ndarray:
    """Host-side (uncharged) gather of a field over object pointers."""
    td = getattr(cls, _DESCRIPTOR_ATTR)
    arr = np.atleast_1d(np.asarray(ptrs, dtype=np.uint64))
    return machine.read_field(arr, td, field)


def _write_field(cls, machine, ptrs, field: str, values) -> None:
    """Host-side (uncharged) scatter into a field (initialisation)."""
    td = getattr(cls, _DESCRIPTOR_ATTR)
    lay = machine.registry.layout(td)
    arr = np.atleast_1d(np.asarray(ptrs, dtype=np.uint64))
    np_dtype = SCALAR_TYPES[lay.dtype(field)][0]
    machine.write_field(arr, lay, field,
                        np.asarray(values, dtype=np_dtype))
