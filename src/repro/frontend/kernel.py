"""``@repro.kernel``: launchable kernels in the cudasim style.

A kernel is a Python function whose first parameter is the warp's
:class:`~repro.gpu.executor.ExecutionContext`; extra parameters are
ordinary launch arguments (device arrays, pointer batches, scalars)::

    @kernel
    def step(ctx, cells, grid):
        ptrs = grid.ld(ctx, ctx.tid)
        Cell.view(ctx, ptrs).update()

    step[n_cells](machine, cells, grid)          # numba-style geometry
    step.launch(machine, n_cells, cells, grid)   # explicit thread count

Geometry can be fixed at decoration time (``@kernel(grid=64,
block=128)``) or supplied per launch via ``k[n]`` / ``k[grid, block]``.
Both spellings validate the configuration *before* anything executes,
raising :class:`~repro.errors.LaunchConfigError` on zero, negative, or
non-integer counts; the total thread count is ``grid * block`` exactly
as ``kernel<<<grid, block>>>`` would give.  The launch itself is
``Machine.launch`` -- one simulated kernel, labelled with the
function's name, returning its :class:`KernelStats`.
"""
from __future__ import annotations

from typing import Callable, Optional

from ..errors import LaunchConfigError
from ..gpu.executor import validate_num_threads


def _validate_dim(value, what: str) -> int:
    try:
        return validate_num_threads(value)
    except LaunchConfigError as exc:
        raise LaunchConfigError(str(exc).replace("num_threads", what)) from None


class KernelFn:
    """A decorated kernel function, optionally with fixed geometry."""

    def __init__(self, fn: Callable, grid: Optional[int] = None,
                 block: Optional[int] = None):
        self.fn = fn
        self.__name__ = getattr(fn, "__name__", "kernel")
        self.__doc__ = getattr(fn, "__doc__", None)
        self.grid = _validate_dim(grid, "grid") if grid is not None else None
        self.block = (_validate_dim(block, "block")
                      if block is not None else None)

    # ------------------------------------------------------------------
    def __getitem__(self, config) -> "_BoundKernel":
        """``k[n]`` -> n threads; ``k[grid, block]`` -> grid*block."""
        if isinstance(config, tuple):
            if len(config) != 2:
                raise LaunchConfigError(
                    f"kernel geometry must be [threads] or [grid, block], "
                    f"got {len(config)} dimensions"
                )
            grid = _validate_dim(config[0], "grid")
            block = _validate_dim(config[1], "block")
            return _BoundKernel(self, grid * block)
        return _BoundKernel(self, _validate_dim(config, "num_threads"))

    def launch(self, machine, num_threads, *args, **kwargs):
        """Run on ``machine`` over exactly ``num_threads`` threads."""
        return self[num_threads](machine, *args, **kwargs)

    def __call__(self, machine, *args, **kwargs):
        """Launch with the geometry fixed at decoration time."""
        if self.grid is None:
            raise LaunchConfigError(
                f"kernel {self.__name__!r} has no geometry: decorate with "
                f"@kernel(grid=..., block=...) or launch via "
                f"{self.__name__}[num_threads](machine, ...)"
            )
        return _BoundKernel(
            self, self.grid * (self.block or 1))(machine, *args, **kwargs)

    def __repr__(self) -> str:
        geom = (f" grid={self.grid} block={self.block}"
                if self.grid is not None else "")
        return f"<kernel {self.__name__}{geom}>"


class _BoundKernel:
    """A kernel with launch geometry resolved; calling it launches."""

    __slots__ = ("kfn", "num_threads")

    def __init__(self, kfn: KernelFn, num_threads: int):
        self.kfn = kfn
        self.num_threads = num_threads

    def __call__(self, machine, *args, **kwargs):
        fn = self.kfn.fn

        def body(ctx):
            return fn(ctx, *args, **kwargs)

        return machine.launch(body, self.num_threads,
                              label=self.kfn.__name__)


def kernel(fn=None, *, grid: Optional[int] = None,
           block: Optional[int] = None):
    """Decorator turning ``fn(ctx, *args)`` into a launchable kernel.

    Bare (``@kernel``) leaves geometry to the call site; keyword form
    (``@kernel(grid=64, block=128)``) fixes it so the kernel launches
    as ``k(machine, *args)``.
    """
    if fn is not None:
        if not callable(fn):
            raise LaunchConfigError(
                "@kernel takes no positional arguments; use "
                "@kernel(grid=..., block=...)"
            )
        return KernelFn(fn)
    return lambda f: KernelFn(f, grid=grid, block=block)
