"""The user-facing kernel front-end.

``device_class`` + ``@kernel`` let arbitrary user code define class
hierarchies with virtual methods and launch kernels against them,
lowered onto the same machinery (TypeDescriptor registration, charged
field access, strategy-routed vcalls, ``Machine.launch``) the built-in
workloads use -- there is no separate "internal" path.  See
DESIGN.md's "Kernel front-end" section and ``examples/user_kernel.py``.
"""
from .kernel import KernelFn, kernel
from .program import (
    DEMO_SOURCE,
    ProgramResult,
    kernel_experiment_run,
    load_program,
    run_program,
)
from .types import InstanceView, abstract, device_class, is_device_class, virtual

__all__ = [
    "KernelFn",
    "kernel",
    "DEMO_SOURCE",
    "ProgramResult",
    "kernel_experiment_run",
    "load_program",
    "run_program",
    "InstanceView",
    "abstract",
    "device_class",
    "is_device_class",
    "virtual",
]
