"""The technique registry: one pluggable seam for allocator + dispatch.

A *technique* is the paper's unit of comparison: an object allocator
paired with a virtual-call dispatch strategy (plus the MMU mode the
pair needs).  They used to be hardcoded as if-chains inside
``Machine.__init__`` and as scattered name tuples across the harness,
front-end and CLI; this module replaces all of that with one registry:

* :func:`register` declares a technique (factories, header size, MMU
  mode, aliases, query tags),
* :func:`resolve` maps any name or alias to its :class:`TechniqueSpec`
  (raising :class:`~repro.errors.UnknownTechniqueError` with
  did-you-mean hints),
* :func:`available` / :func:`figure_techniques` /
  :func:`fuzz_techniques` / :func:`microbench_techniques` are the
  queries the harnesses enumerate instead of keeping their own copies.

Adding a technique is one ``register`` call -- which is exactly how
``soa`` (the DynaSOAr-family structure-of-arrays allocator) lands as
the sixth column next to the paper's five.
"""
from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Tuple

from .errors import UnknownTechniqueError
from .memory.allocators import Allocator
from .memory.cuda_allocator import CudaHeapAllocator
from .memory.mmu import MMUMode
from .memory.shared_oa import SharedOAAllocator
from .memory.soa_allocator import SoaAllocator
from .memory.typepointer_alloc import TypePointerAllocator

if TYPE_CHECKING:  # pragma: no cover
    from .core.dispatch import DispatchStrategy
    from .gpu.machine import Machine

#: Tags a technique can carry; each tag feeds one registry query.
#: ``paper``      -- evaluated in the source paper itself
#: ``figure``     -- swept by the Figure 6-9 / Table experiments
#: ``fuzz``       -- cross-checked by the differential fuzzer
#: ``microbench`` -- swept by the Figure 12 scalability microbenchmarks
KNOWN_TAGS = frozenset({"paper", "figure", "fuzz", "microbench"})


@dataclass(frozen=True)
class TechniqueSpec:
    """Everything :class:`~repro.gpu.machine.Machine` needs for one name."""

    name: str
    #: builds the object allocator; receives the (partially constructed)
    #: machine, which already exposes ``heap``, ``arena``, ``registry``
    #: and the allocator tuning knobs
    allocator_factory: Callable[["Machine"], Allocator]
    #: builds a fresh dispatch strategy instance
    dispatch_factory: Callable[[], "DispatchStrategy"]
    #: bytes of per-object header (must match the strategy's)
    header_size: int
    mmu_mode: MMUMode = MMUMode.BASELINE
    aliases: Tuple[str, ...] = ()
    description: str = ""
    tags: frozenset = field(default_factory=frozenset)


#: canonical name -> spec, in registration (= presentation) order
_REGISTRY: Dict[str, TechniqueSpec] = {}
#: alias -> canonical name
_ALIASES: Dict[str, str] = {}
#: builtins register lazily on first registry access: their dispatch
#: classes live in repro.core, which transitively imports repro.gpu --
#: importing them here at module level would be a cycle
_builtins_registered = False


def register(
    name: str,
    allocator_factory: Callable[["Machine"], Allocator],
    dispatch_factory: Callable[[], "DispatchStrategy"],
    *,
    header_size: int,
    mmu_mode: MMUMode = MMUMode.BASELINE,
    aliases: Tuple[str, ...] = (),
    description: str = "",
    tags=(),
) -> TechniqueSpec:
    """Register a technique; returns its spec.

    Duplicate names (or aliases colliding with existing names/aliases)
    raise ``ValueError`` -- re-registration must go through
    :func:`unregister` first, so tests can't silently shadow builtins.
    """
    _ensure_builtins()
    if name in _REGISTRY or name in _ALIASES:
        raise ValueError(f"duplicate technique {name!r}")
    tagset = frozenset(tags)
    unknown = tagset - KNOWN_TAGS
    if unknown:
        raise ValueError(
            f"unknown technique tags {sorted(unknown)}; "
            f"known: {sorted(KNOWN_TAGS)}"
        )
    for alias in aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise ValueError(f"duplicate technique alias {alias!r}")
    spec = TechniqueSpec(
        name=name,
        allocator_factory=allocator_factory,
        dispatch_factory=dispatch_factory,
        header_size=header_size,
        mmu_mode=mmu_mode,
        aliases=tuple(aliases),
        description=description,
        tags=tagset,
    )
    _REGISTRY[name] = spec
    for alias in aliases:
        _ALIASES[alias] = name
    return spec


def unregister(name: str) -> None:
    """Remove a technique (test isolation for user registrations)."""
    _ensure_builtins()
    spec = _REGISTRY.pop(name, None)
    if spec is None:
        raise KeyError(f"technique {name!r} is not registered")
    for alias in spec.aliases:
        _ALIASES.pop(alias, None)


def resolve(name: str) -> TechniqueSpec:
    """Name or alias -> spec; unknown names get did-you-mean hints."""
    _ensure_builtins()
    if name in _REGISTRY:
        return _REGISTRY[name]
    canonical = _ALIASES.get(name)
    if canonical is not None:
        return _REGISTRY[canonical]
    candidates = list(_REGISTRY) + list(_ALIASES)
    hints = difflib.get_close_matches(str(name), candidates, n=3, cutoff=0.5)
    raise UnknownTechniqueError(name, known=tuple(_REGISTRY), hints=hints)


def available() -> Tuple[str, ...]:
    """Every canonical technique name, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def get(name: str) -> TechniqueSpec:
    """Alias-free exact lookup (KeyError on miss)."""
    _ensure_builtins()
    return _REGISTRY[name]


def _tagged(tag: str) -> Tuple[str, ...]:
    _ensure_builtins()
    return tuple(n for n, s in _REGISTRY.items() if tag in s.tags)


def paper_techniques() -> Tuple[str, ...]:
    """The paper's original five (Figure 6), in plotting order."""
    return _tagged("paper")


def figure_techniques() -> Tuple[str, ...]:
    """Techniques the figure/table sweeps compare (paper five + soa)."""
    return _tagged("figure")


def fuzz_techniques() -> Tuple[str, ...]:
    """Techniques the differential fuzzer cross-checks by default."""
    return _tagged("fuzz")


def microbench_techniques() -> Tuple[str, ...]:
    """Techniques the Figure 12 scalability microbenchmarks sweep."""
    return _tagged("microbench")


# ----------------------------------------------------------------------
# built-in registrations (the paper's techniques + our variants + soa)
# ----------------------------------------------------------------------
def _cuda_allocator(m: "Machine") -> Allocator:
    return CudaHeapAllocator(m.heap)


def _sharedoa_allocator(m: "Machine") -> Allocator:
    return SharedOAAllocator(
        m.heap,
        initial_chunk_objects=m.initial_chunk_objects,
        merge_adjacent=m.merge_adjacent,
    )


def _tp_allocator(m: "Machine") -> Allocator:
    return TypePointerAllocator(_sharedoa_allocator(m), m.arena.tag_for_type)


def _tp_indexed_allocator(m: "Machine") -> Allocator:
    return TypePointerAllocator(_sharedoa_allocator(m), m.arena.index_for_type)


def _tp_on_cuda_allocator(m: "Machine") -> Allocator:
    return TypePointerAllocator(_cuda_allocator(m), m.arena.tag_for_type)


def _soa_allocator(m: "Machine") -> Allocator:
    return SoaAllocator(m.heap, header_size=16, layout_for=m.registry.layout)


def _ensure_builtins() -> None:
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    # deferred: repro.core transitively imports repro.gpu.machine, which
    # imports this module
    from .core.dispatch import (
        COALDispatch,
        ConcordDispatch,
        SharedVTableDispatch,
        TypePointerDispatch,
        VTableDispatch,
    )

    register(
        "cuda", _cuda_allocator, VTableDispatch, header_size=8,
        description="default CUDA allocator + embedded-vTable dispatch",
        tags=("paper", "figure", "fuzz", "microbench"),
    )
    register(
        "concord", _cuda_allocator, ConcordDispatch, header_size=4,
        description="default CUDA allocator + type-tag/switch dispatch "
                    "(Concord)",
        tags=("paper", "figure", "fuzz"),
    )
    register(
        "sharedoa", _sharedoa_allocator, SharedVTableDispatch,
        header_size=16,
        description="SharedOA allocator + embedded-vTable dispatch",
        tags=("paper", "figure", "fuzz"),
    )
    register(
        "coal", _sharedoa_allocator, COALDispatch, header_size=16,
        description="SharedOA allocator + COAL range-lookup dispatch",
        tags=("paper", "figure", "fuzz", "microbench"),
    )
    register(
        "typepointer", _tp_allocator,
        lambda: TypePointerDispatch(software_mask=False),
        header_size=16, mmu_mode=MMUMode.TYPEPOINTER,
        aliases=("tp",),
        description="SharedOA allocator + tag-bit dispatch, modified MMU",
        tags=("paper", "figure", "fuzz", "microbench"),
    )
    register(
        "typepointer_proto", _tp_allocator,
        lambda: TypePointerDispatch(software_mask=True),
        header_size=16, mmu_mode=MMUMode.PROTOTYPE,
        description="TypePointer software prototype: stock MMU, "
                    "compiler-inserted masking (section 6.3)",
        tags=("fuzz",),
    )
    register(
        "typepointer_indexed", _tp_indexed_allocator,
        lambda: TypePointerDispatch(index_mode=True),
        header_size=16, mmu_mode=MMUMode.TYPEPOINTER,
        description="section-6.1 fallback: index tags + padded tables",
        tags=("fuzz",),
    )
    register(
        "tp_on_cuda", _tp_on_cuda_allocator,
        lambda: TypePointerDispatch(software_mask=False, header_size=8),
        header_size=8, mmu_mode=MMUMode.TYPEPOINTER,
        description="default CUDA allocator + tag-bit dispatch (Figure 11)",
    )
    register(
        "soa", _soa_allocator, SharedVTableDispatch, header_size=16,
        aliases=("dynasoar", "soaalloc"),
        description="DynaSOAr-family SoA allocator (field-major blocks, "
                    "bitmap free lists) + embedded-vTable dispatch",
        tags=("figure", "fuzz", "microbench"),
    )
