"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list                       # available experiments
    python -m repro fig6 [--scale 0.25]        # one experiment
    python -m repro all  [--workers 4]         # everything, in parallel
    python -m repro all --serial --no-store    # old single-process path
    python -m repro disasm typepointer         # show a lowering
    python -m repro profile TRAF --technique coal   # nvprof-style counters
    python -m repro profile fig6               # telemetry span/counter tree
    python -m repro all --telemetry out.json   # dump merged obs registry
    python -m repro fuzz 100                   # differential dispatch fuzzing
    python -m repro fuzz 100 --frontend        # ...through the DSL front-end
    python -m repro kernel my_kernels.py       # run a user kernel program
    python -m repro selfbench                  # time the replay engines
    python -m repro selfbench service          # serial vs parallel vs warm
    python -m repro serve --port 7453          # experiment-serving daemon
    python -m repro submit fig6 --quick        # submit to a running daemon
    python -m repro status                     # daemon queue/cache status
    python -m repro drain                      # graceful daemon shutdown
    python -m repro cluster --workers 3        # consistent-hash cluster
    python -m repro loadtest --users 100000    # seeded traffic + BENCH_serve
    python -m repro chaos --seeds 25           # fault-injection soak run
    python -m repro chaos --cluster            # ...against a live cluster
    python -m repro sweep run spec.json        # characterization sweep
    python -m repro sweep query --where model_tlb=true   # query the DB
    python -m repro fig6 --config l1.size_bytes=8192     # knob override

Every experiment is an entry in :mod:`repro.harness.registry`; the CLI
is a registry lookup.  ``all`` goes through the parallel
:class:`~repro.harness.service.ExperimentService`: sweep shards run on
a worker pool backed by the disk-persistent replay store, and the run
manifest (shard outcomes, memo hit rates) lands next to
``benchmarks/results/``.
"""
from __future__ import annotations

import argparse
import sys
import time

from .core.instrumentation import disassemble
from .errors import UnknownEngineError, UnknownTechniqueError
from .gpu.config import scaled_config
from .gpu.machine import Machine
from .techniques import available as technique_names
from .techniques import resolve as resolve_technique
from .harness.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentOptions,
    SMOKE_PARAMS,
    experiment_names,
    get_experiment,
    run_experiment,
)

#: Backwards-compatible view of the registry: experiment id -> runner
#: taking a scale (kept for callers of the pre-registry CLI module).
EXPERIMENTS = {
    name: (lambda scale, _n=name: run_experiment(
        _n, ExperimentOptions(scale=scale)))
    for name in experiment_names()
}

#: leading commands routed to the serving layer's own CLI parsers
SERVE_COMMANDS = ("serve", "submit", "status", "drain", "cluster",
                  "loadtest")


def _positive_int(text: str) -> int:
    """argparse type: an int strictly greater than zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}")
    return value


def _unknown_experiment_message(name: str) -> str:
    """An actionable error for a bad experiment id, with close matches."""
    import difflib

    known = list(experiment_names()) + [
        "all", "list", "disasm", "profile", "fuzz", "selfbench", "chaos",
        "sweep", *SERVE_COMMANDS,
    ]
    msg = f"unknown experiment {name!r}"
    close = difflib.get_close_matches(name, known, n=3)
    if close:
        msg += f"; did you mean: {', '.join(close)}?"
    return msg + " (see 'python -m repro list')"


def _config_from(args, parser) -> object:
    """Build a knob-overridden GPUConfig from repeated ``--config K=V``.

    Shares the sweep engine's override path (``config_with_knobs``), so
    dotted cache-geometry knobs, did-you-mean hints, and geometry
    re-validation behave identically in both.
    """
    if not getattr(args, "config", None):
        return None
    import json as _json

    from .gpu.config import config_with_knobs

    knobs = {}
    for item in args.config:
        key, sep, value = item.partition("=")
        if not sep or not key:
            parser.error(f"--config expects KNOB=VALUE, got {item!r}")
        try:
            knobs[key] = _json.loads(value)
        except _json.JSONDecodeError:
            knobs[key] = value
    try:
        return config_with_knobs(scaled_config(), knobs)
    except ValueError as exc:
        parser.error(str(exc))


def _options_from(args) -> ExperimentOptions:
    workloads = (tuple(w for w in args.workloads.split(",") if w)
                 if args.workloads else None)
    return ExperimentOptions(
        scale=args.scale,
        workloads=workloads,
        config=getattr(args, "config_obj", None),
        params=SMOKE_PARAMS if args.quick else {},
    )


def _run_all(args) -> int:
    from .harness.service import (
        DEFAULT_MANIFEST_PATH,
        ExperimentService,
    )

    num_workers = 1 if args.serial else args.workers
    service = ExperimentService(
        num_workers=num_workers,
        timeout_s=args.timeout,
        store_dir=args.store_dir,
        use_store=not args.no_store,
    )
    options = _options_from(args)
    t0 = time.time()
    run = service.run(options=options,
                      manifest_path=args.manifest or DEFAULT_MANIFEST_PATH)
    for name in experiment_names():
        print(run.render(name))
        print()
    totals = run.manifest["totals"]
    store = run.manifest["store"]
    print(f"[all: {totals['shards']} shards on "
          f"{run.manifest['num_workers']} worker(s), mode="
          f"{run.manifest['mode']}, outcomes={totals['outcomes']}, "
          f"memo hit rate {totals['memo_hit_rate']:.0%}"
          f"{' (warm store)' if store['warm_start'] else ''}, "
          f"{time.time() - t0:.1f}s]")
    print(f"[manifest: {args.manifest or DEFAULT_MANIFEST_PATH}]")
    if args.telemetry:
        import json

        with open(args.telemetry, "w") as f:
            json.dump(run.manifest["telemetry"], f, indent=2)
            f.write("\n")
        print(f"[telemetry: {args.telemetry}]")
    return 0


def _chaos_main(argv) -> int:
    """``python -m repro chaos``: the fault-injection soak runner."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run seeded fault-injection schedules against the "
                    "full store/service/serve stack and assert the "
                    "recovery invariants (see DESIGN.md §5.5).",
    )
    parser.add_argument("--seeds", type=_positive_int, default=5,
                        help="number of seeded schedules to run "
                             "(default 5)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first seed of the range (default 0)")
    parser.add_argument("--scale", type=_positive_float, default=0.05,
                        help="workload scale per scenario (default 0.05)")
    parser.add_argument("--experiments", default=None,
                        help="comma-separated experiment ids each "
                             "scenario submits (default: init)")
    parser.add_argument("--cluster", action="store_true",
                        help="soak a consistent-hash cluster instead of "
                             "a single daemon: router-side faults plus a "
                             "worker SIGKILL per scenario")
    parser.add_argument("--cluster-workers", type=_positive_int, default=2,
                        help="worker daemons per cluster scenario "
                             "(default 2; with --cluster)")
    args = parser.parse_args(argv)

    from .faults.chaos import (
        DEFAULT_EXPERIMENTS,
        format_report,
        run_chaos,
        run_cluster_chaos,
    )

    experiments = (tuple(e for e in args.experiments.split(",") if e)
                   if args.experiments else DEFAULT_EXPERIMENTS)
    for name in experiments:
        if name not in EXPERIMENT_REGISTRY:
            parser.error(_unknown_experiment_message(name))
    if args.cluster:
        report = run_cluster_chaos(args.seeds, args.start_seed,
                                   experiments, scale=args.scale,
                                   num_workers=args.cluster_workers)
    else:
        report = run_chaos(args.seeds, args.start_seed, experiments,
                           scale=args.scale)
    print(format_report(report))
    return 0 if report.ok else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SERVE_COMMANDS:
        from .serve.cli import serve_cli_main

        return serve_cli_main(argv)
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "sweep":
        from .sweep.cli import sweep_cli_main

        return sweep_cli_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of 'Judging a Type "
                    "by Its Pointer' (ASPLOS 2021) in simulation.",
    )
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'all', 'list', "
                             "'disasm' or 'profile'")
    parser.add_argument("target", nargs="?", default=None,
                        help="technique for 'disasm'; workload for 'profile' "
                             f"(techniques: {', '.join(technique_names())}); "
                             "'service' or 'serve' for 'selfbench'")
    parser.add_argument("--technique", default="typepointer",
                        help="technique for 'profile' (default typepointer)")
    parser.add_argument("--techniques", default=None,
                        help="comma-separated technique subset for 'kernel' "
                             "and 'fuzz' (default: the registry's figure "
                             "set / fuzz set)")
    parser.add_argument("--frontend", action="store_true",
                        help="for 'fuzz': lower the generated programs "
                             "through the device_class/@kernel front-end")
    parser.add_argument("--config", action="append", metavar="KNOB=V",
                        help="GPU config knob override (repeatable; "
                             "dotted keys reach cache geometry, e.g. "
                             "--config l1.size_bytes=8192 "
                             "--config model_tlb=false)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (default 0.25)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload subset for sweep-"
                             "based experiments (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the self-sized experiments to smoke "
                             "size (CI; pair with a small --scale)")
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="worker processes for 'all' / 'selfbench "
                             "service' (default: min(8, cpu count))")
    parser.add_argument("--serial", action="store_true",
                        help="run 'all' in-process (no worker pool)")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the persistent replay store")
    parser.add_argument("--store-dir", default=None,
                        help="replay store directory (default "
                             "benchmarks/replay_store, or $REPRO_STORE_DIR)")
    parser.add_argument("--manifest", default=None,
                        help="run-manifest path for 'all' (default "
                             "benchmarks/results/run_manifest.json)")
    parser.add_argument("--telemetry", default=None,
                        help="dump the merged span/counter registry of "
                             "'all' (machine + service + store layers) "
                             "to this JSON path")
    parser.add_argument("--timeout", type=_positive_float, default=900.0,
                        help="per-shard timeout in seconds (default 900)")
    parser.add_argument("--output", default=None,
                        help="output path for 'selfbench' "
                             "(default BENCH_pipeline.json / "
                             "BENCH_service.json)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per cell for 'selfbench' "
                             "(fastest kept; default 1)")
    args = parser.parse_args(argv)
    args.config_obj = _config_from(args, parser)

    # fail fast (exit 2 + hints) on a bad replay engine, whether it came
    # from --config replay_engine=... or the REPRO_REPLAY_ENGINE env var
    from .gpu.replay import resolve_engine_name

    try:
        resolve_engine_name(args.config_obj or scaled_config())
    except UnknownEngineError as exc:
        parser.error(str(exc))

    def _validated_techniques(csv: str) -> tuple:
        """Resolve a comma-separated technique list or exit 2 with hints."""
        names = tuple(t for t in csv.split(",") if t)
        try:
            return tuple(resolve_technique(t).name for t in names)
        except UnknownTechniqueError as exc:
            parser.error(str(exc))

    if args.experiment == "list":
        for name in experiment_names():
            print(f"{name:8s} {get_experiment(name).description}")
        print("plus: all | disasm | profile | fuzz | selfbench [service|"
              "serve] | serve | submit | status | drain | cluster | "
              "loadtest | chaos [--cluster] | sweep "
              "[run|ls|show|query|report|import]")
        return 0

    if args.experiment == "selfbench":
        if args.target == "service":
            from .harness.selfbench import (
                DEFAULT_SERVICE_OUTPUT,
                format_service_report,
                run_service_bench,
            )

            out = args.output or DEFAULT_SERVICE_OUTPUT
            workloads = (tuple(w for w in args.workloads.split(",") if w)
                         if args.workloads else None)
            report = run_service_bench(
                scale=args.scale, workers=args.workers,
                workloads=workloads, output=out,
                store_dir=args.store_dir, timeout_s=args.timeout,
            )
            print(format_service_report(report))
            print(f"wrote {out}")
            return 0 if report["ok"] else 1

        if args.target == "serve":
            from .harness.selfbench import DEFAULT_SERVE_OUTPUT, run_serve_bench
            from .serve.loadtest import format_report as _format_loadtest

            out = args.output or DEFAULT_SERVE_OUTPUT
            report = run_serve_bench(
                workers=args.workers or 3, output=out)
            print(_format_loadtest(report))
            print(f"wrote {out}")
            return 0 if report["ok"] else 1

        from .harness.resultdb import default_db_path
        from .harness.selfbench import DEFAULT_OUTPUT, format_report, run_selfbench

        out = args.output or DEFAULT_OUTPUT
        workloads = (tuple(w for w in args.workloads.split(",") if w)
                     if args.workloads else None)
        t0 = time.time()
        report = run_selfbench(workloads=workloads, scale=args.scale,
                               output=out, repeats=args.repeats,
                               db_path=default_db_path())
        print(format_report(report))
        print(f"wrote {out} [{time.time() - t0:.1f}s]")
        if "resultdb" in report:
            print(f"recorded {report['resultdb']['points']} points into "
                  f"{default_db_path()}")
        ok = (report["counters_match"]
              and report["telemetry_overhead"]["ok"]
              and report["failpoint_overhead"]["ok"])
        return 0 if ok else 1

    if args.experiment == "disasm":
        target = args.target or "typepointer"
        technique = target
        if target != "tp_on_cuda_baseline":   # disasm-only pseudo-target
            try:
                technique = resolve_technique(target).name
            except UnknownTechniqueError as exc:
                parser.error(str(exc))
        print(f"; virtual call lowering under {technique!r}")
        for line in disassemble(technique):
            print("  " + line)
        return 0

    if args.experiment == "fuzz":
        from .harness.fuzz import fuzz

        techniques = (_validated_techniques(args.techniques)
                      if args.techniques else None)
        n = int(args.target) if args.target and args.target.isdigit() else 50
        report = fuzz(num_programs=n, techniques=techniques,
                      frontend=args.frontend)
        mode = " through the front-end" if args.frontend else ""
        print(f"fuzzed {report.programs} programs{mode}: "
              f"{'all techniques agree with the oracle' if report.ok else 'DIVERGENCES'}")
        for d in report.divergences:
            print("  " + d)
        return 0 if report.ok else 1

    if args.experiment == "kernel":
        # user-programmable kernels: run a program file (or the built-in
        # demo) under several techniques and cross-check the checksums
        params = {}
        if args.target:
            params["path"] = args.target
        if args.techniques:
            params["techniques"] = _validated_techniques(args.techniques)
        options = ExperimentOptions(
            scale=args.scale,
            params={"kernel": {**SMOKE_PARAMS["kernel"], **params}}
            if args.quick else {"kernel": params},
        )
        exp = get_experiment("kernel")
        result = exp.run(options)
        print(exp.render(result))
        return 0 if result.ok else 1

    if args.experiment == "profile":
        if args.target in EXPERIMENT_REGISTRY:
            # experiment mode: run it under a fresh obs registry and
            # render the span tree + counters it recorded
            from . import obs

            reg = obs.Registry(enabled=True)
            prev = obs.set_registry(reg)
            try:
                exp = get_experiment(args.target)
                result = exp.run(_options_from(args))
            finally:
                obs.set_registry(prev)
            print(exp.render(result))
            print()
            print(obs.render_payload(reg.to_dict(),
                                     title=f"telemetry: {exp.name}"))
            return 0

        from .harness.profile_report import profile_report
        from .workloads import make_workload

        try:
            technique = resolve_technique(args.technique).name
        except UnknownTechniqueError as exc:
            parser.error(str(exc))
        m = Machine(technique, config=args.config_obj or scaled_config())
        wl = make_workload(args.target or "TRAF", m, scale=args.scale)
        wl.run()
        print(profile_report(
            m, title=f"profile: {args.target} under {technique}"
        ))
        return 0

    if args.experiment == "all":
        return _run_all(args)

    if args.experiment not in EXPERIMENT_REGISTRY:
        parser.error(_unknown_experiment_message(args.experiment))

    exp = get_experiment(args.experiment)
    t0 = time.time()
    result = exp.run(_options_from(args))
    print(exp.render(result))
    print(f"[{exp.name} took {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
