"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list                       # available experiments
    python -m repro fig6 [--scale 0.25]        # one experiment
    python -m repro all  [--scale 0.1]         # everything
    python -m repro disasm typepointer         # show a lowering
    python -m repro profile TRAF --technique coal   # nvprof-style counters
    python -m repro fuzz 100                   # differential dispatch fuzzing
    python -m repro selfbench                  # time the replay engines

Each experiment prints the same text table the benchmark suite writes
to ``benchmarks/results/`` and EXPERIMENTS.md quotes.
"""
from __future__ import annotations

import argparse
import sys
import time

from .core.instrumentation import disassemble
from .gpu.config import scaled_config
from .gpu.machine import Machine, TECHNIQUES
from .harness import (
    fig1_breakdown,
    fig6_performance,
    fig7_instruction_mix,
    fig8_load_transactions,
    fig9_l1_hit_rate,
    fig10_chunk_sweep,
    fig11_tp_on_cuda,
    fig12a_object_scaling,
    fig12b_type_scaling,
    init_performance,
    table1_access_model,
    table2_workloads,
)

EXPERIMENTS = {
    "fig1": lambda scale: fig1_breakdown(scale=scale),
    "table1": lambda scale: table1_access_model(),
    "table2": lambda scale: table2_workloads(scale=scale),
    "fig6": lambda scale: fig6_performance(scale=scale),
    "fig7": lambda scale: fig7_instruction_mix(scale=scale),
    "fig8": lambda scale: fig8_load_transactions(scale=scale),
    "fig9": lambda scale: fig9_l1_hit_rate(scale=scale),
    "fig10": lambda scale: fig10_chunk_sweep(scale=scale),
    "fig11": lambda scale: fig11_tp_on_cuda(scale=scale),
    "fig12a": lambda scale: fig12a_object_scaling(),
    "fig12b": lambda scale: fig12b_type_scaling(),
    "init": lambda scale: init_performance(),
}


def _print_result(name: str, result) -> None:
    if name == "fig10":
        print(result[0].table)
        print()
        print(result[1].table)
    elif name == "init":
        print(f"Init-phase speedup over {result.objects} objects: "
              f"{result.speedup:.1f}x (paper: ~80x)")
    else:
        print(result.table)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the tables and figures of 'Judging a Type "
                    "by Its Pointer' (ASPLOS 2021) in simulation.",
    )
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'all', 'list', "
                             "'disasm' or 'profile'")
    parser.add_argument("target", nargs="?", default="typepointer",
                        help="technique for 'disasm'; workload for "
                             f"'profile' (techniques: {', '.join(TECHNIQUES)})")
    parser.add_argument("--technique", default="typepointer",
                        help="technique for 'profile' (default typepointer)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor (default 0.25)")
    parser.add_argument("--output", default=None,
                        help="output path for 'selfbench' "
                             "(default BENCH_pipeline.json)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per cell for 'selfbench' "
                             "(fastest kept; default 1)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("experiments:", ", ".join(EXPERIMENTS),
              "| all | disasm | profile | fuzz | selfbench")
        return 0

    if args.experiment == "selfbench":
        from .harness.selfbench import DEFAULT_OUTPUT, format_report, run_selfbench

        out = args.output or DEFAULT_OUTPUT
        t0 = time.time()
        report = run_selfbench(scale=args.scale, output=out,
                               repeats=args.repeats)
        print(format_report(report))
        print(f"wrote {out} [{time.time() - t0:.1f}s]")
        return 0 if report["counters_match"] else 1

    if args.experiment == "disasm":
        print(f"; virtual call lowering under {args.target!r}")
        for line in disassemble(args.target):
            print("  " + line)
        return 0

    if args.experiment == "fuzz":
        from .harness.fuzz import fuzz

        n = int(args.target) if args.target.isdigit() else 50
        report = fuzz(num_programs=n)
        print(f"fuzzed {report.programs} programs: "
              f"{'all techniques agree with the oracle' if report.ok else 'DIVERGENCES'}")
        for d in report.divergences:
            print("  " + d)
        return 0 if report.ok else 1

    if args.experiment == "profile":
        from .harness.profile_report import profile_report
        from .workloads import make_workload

        m = Machine(args.technique, config=scaled_config())
        wl = make_workload(args.target, m, scale=args.scale)
        wl.run()
        print(profile_report(
            m, title=f"profile: {args.target} under {args.technique}"
        ))
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s) {unknown}; try 'list'")

    for name in names:
        t0 = time.time()
        result = EXPERIMENTS[name](args.scale)
        _print_result(name, result)
        print(f"[{name} took {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
