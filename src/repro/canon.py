"""Canonical JSON encoding shared by every content-addressed identity.

The serving layer's dedup/cache key (:func:`repro.serve.jobs.job_key`)
and the sweep engine's point IDs (:mod:`repro.sweep.spec`) both need
the same property: two specs that describe the same computation must
encode to the same bytes, regardless of dict insertion order or
``2``-vs-``2.0`` re-encodings.  This module is that one definition --
``job_key`` and ``point_id`` are both thin wrappers over
:func:`canonical_json`.
"""
from __future__ import annotations

import hashlib
import json
from typing import Any


def canon(value: Any) -> Any:
    """Canonical form of one spec value for keying.

    JSON distinguishes ``2`` from ``2.0``, but the computations keyed
    here do not (a scale of 2 and 2.0 run identically), so integral
    floats within the exactly-representable range collapse to ints;
    containers canonicalize recursively with string keys (what JSON
    round-tripping would produce anyway).
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer() and abs(value) <= 2 ** 53:
            return int(value)
        return value
    if isinstance(value, dict):
        return {str(k): canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canon(v) for v in value]
    return value


def canonical_json(value: Any) -> str:
    """Sorted-key, separator-free JSON dump of ``canon(value)``."""
    return json.dumps(canon(value), sort_keys=True, separators=(",", ":"))


def content_id(value: Any, *, digest_size: int = 8) -> str:
    """Short stable hex digest of a spec value (blake2b over the
    canonical JSON); the same resolved spec always gets the same id."""
    return hashlib.blake2b(canonical_json(value).encode("utf-8"),
                           digest_size=digest_size).hexdigest()
