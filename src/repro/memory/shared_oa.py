"""SharedOA: the paper's type-based shared object allocator (section 4).

Two jobs:

1. dedicate contiguous chunks of memory to each object type, and
2. maintain the *virtual range table*: the (base, end) address range of
   every chunk, tagged with its type, which COAL's lookup walks.

Region sizing follows the paper exactly: the first region for a type
holds ``initial_chunk_objects`` objects (default 4K, swept 4K..4M in
Figure 10); when a region fills, the next one **doubles** the object
count; when a new region happens to land contiguously after the
previous region of the same type, the two are **merged** into one
larger region, keeping the range table small.

Chunks are sized in *objects*, not bytes ("larger objects are given
larger chunk sizes", section 5).  Objects are packed at their natural
stride, so -- like other small-object allocators -- SharedOA has no
internal fragmentation; Figure 10b's external fragmentation is the
reserved-but-unused tail of each region.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

import numpy as np

from ..errors import AllocatorError
from .address_space import align_up
from .allocators import Allocator
from .heap import Heap

#: Object alignment inside a region.
OBJ_ALIGN = 8

#: Default number of objects in a type's first region (paper: "4K objects").
DEFAULT_INITIAL_CHUNK_OBJECTS = 4096


@dataclass
class Region:
    """One contiguous chunk dedicated to a single type."""

    type_key: Hashable
    base: int
    stride: int
    capacity: int           # object slots
    used: int = 0           # bump cursor (slots handed out, incl. freed)
    free_slots: List[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.capacity * self.stride

    @property
    def live(self) -> int:
        return self.used - len(self.free_slots)

    def full(self) -> bool:
        return self.used >= self.capacity and not self.free_slots

    def take_slot(self) -> int:
        if self.free_slots:
            slot = self.free_slots.pop()
        else:
            if self.used >= self.capacity:
                raise AllocatorError("take_slot on a full region")
            slot = self.used
            self.used += 1
        return self.base + slot * self.stride

    def release(self, addr: int) -> None:
        slot, rem = divmod(addr - self.base, self.stride)
        if rem or not 0 <= slot < self.used:
            raise AllocatorError(f"address {addr:#x} is not a slot of this region")
        self.free_slots.append(slot)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class SharedOAAllocator(Allocator):
    """Type-based shared object allocator (SharedOA, paper section 4)."""

    name = "SharedOA"
    #: Host-side bump allocation: no device heap lock, no sync.
    ALLOC_CYCLE_COST = 25

    def __init__(
        self,
        heap: Heap,
        initial_chunk_objects: int = DEFAULT_INITIAL_CHUNK_OBJECTS,
        growth_factor: int = 2,
        merge_adjacent: bool = True,
    ):
        super().__init__(heap)
        if initial_chunk_objects < 1:
            raise ValueError("initial_chunk_objects must be >= 1")
        if growth_factor < 1:
            raise ValueError("growth_factor must be >= 1")
        self.initial_chunk_objects = initial_chunk_objects
        self.growth_factor = growth_factor
        self.merge_adjacent = merge_adjacent
        self._regions_by_type: Dict[Hashable, List[Region]] = {}
        self._all_regions: List[Region] = []
        #: bumped every time the set of ranges changes, so COAL knows to
        #: rebuild its segment tree before the next kernel launch.
        self.range_table_version = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _stride_for(self, size: int) -> int:
        return align_up(size, OBJ_ALIGN)

    def _place_object(self, type_key: Hashable, size: int) -> int:
        stride = self._stride_for(size)
        regions = self._regions_by_type.setdefault(type_key, [])
        for region in regions:
            if region.stride != stride:
                raise AllocatorError(
                    f"type {type_key!r} allocated with inconsistent sizes "
                    f"({region.stride} vs {stride})"
                )
            if not region.full():
                return region.take_slot()
        region = self._grow_type(type_key, stride, regions)
        return region.take_slot()

    def _grow_type(
        self, type_key: Hashable, stride: int, regions: List[Region]
    ) -> Region:
        if regions:
            capacity = regions[-1].capacity * self.growth_factor
        else:
            capacity = self.initial_chunk_objects
        base = self.heap.sbrk(capacity * stride, OBJ_ALIGN)
        self.stats.reserved_bytes += capacity * stride

        last = regions[-1] if regions else None
        if (
            self.merge_adjacent
            and last is not None
            and last.end == base
        ):
            # adjacent same-type regions merge into one larger region
            last.capacity += capacity
            self.range_table_version += 1
            return last

        region = Region(type_key=type_key, base=base, stride=stride, capacity=capacity)
        regions.append(region)
        self._all_regions.append(region)
        self.range_table_version += 1
        return region

    def _unplace_object(self, addr: int, type_key: Hashable, size: int) -> None:
        for region in self._regions_by_type.get(type_key, ()):
            if region.contains(addr):
                region.release(addr)
                return
        raise AllocatorError(f"freed address {addr:#x} not in any region")

    def _unplace_many(self, addrs: List[int], type_keys: List[Hashable],
                      sizes: List[int]) -> None:
        """Vectorised batch release: slot arithmetic per region.

        Groups the batch by type, then resolves each group against the
        type's regions with array containment/divmod instead of a
        per-pointer scan.  Input order is preserved within each region,
        so the resulting ``free_slots`` state matches a serial free
        loop exactly.
        """
        by_type: Dict[Hashable, List[int]] = {}
        for a, t in zip(addrs, type_keys):
            by_type.setdefault(t, []).append(a)
        for type_key, alist in by_type.items():
            remaining = np.asarray(alist, dtype=np.int64)
            for region in self._regions_by_type.get(type_key, ()):
                in_region = (
                    (remaining >= region.base) & (remaining < region.end)
                )
                if not in_region.any():
                    continue
                offsets = remaining[in_region] - region.base
                slots, rems = np.divmod(offsets, region.stride)
                if rems.any() or (slots >= region.used).any():
                    bad = int(remaining[in_region][0])
                    raise AllocatorError(
                        f"address {bad:#x} is not a live slot of its region"
                    )
                region.free_slots.extend(int(s) for s in slots.tolist())
                remaining = remaining[~in_region]
                if remaining.size == 0:
                    break
            if remaining.size:
                raise AllocatorError(
                    f"freed address {int(remaining[0]):#x} not in any region"
                )

    # ------------------------------------------------------------------
    # virtual range table
    # ------------------------------------------------------------------
    def ranges(self) -> List[Tuple[int, int, Hashable]]:
        """(base, end, type_key) for every region, sorted by base.

        This is the data the virtual range table / COAL segment tree is
        built from (Figure 3).
        """
        return sorted(
            (r.base, r.end, r.type_key) for r in self._all_regions
        )

    def region_count(self) -> int:
        return len(self._all_regions)

    def regions_of(self, type_key: Hashable) -> List[Region]:
        return list(self._regions_by_type.get(type_key, ()))

    def type_of_address(self, addr: int):
        """Reference linear-scan lookup (ground truth for the segment tree)."""
        for region in self._all_regions:
            if region.contains(addr):
                return region.type_key
        return None
