"""The GPU Memory Management Unit model.

The real proposal (paper section 6.3) is a small change to the MMU so
that the unused upper 15 bits of a virtual address are ignored during
translation instead of raising a non-canonical-address exception.  We
model three operating modes:

* ``BASELINE``      -- tagged pointers fault (stock hardware),
* ``TYPEPOINTER``   -- the MMU strips the tag bits in hardware
  (the proposed modification; zero overhead),
* ``PROTOTYPE``     -- tagged pointers fault, so the *compiler* must
  insert mask instructions before every dereference.  This mirrors the
  software prototype the authors ran on the silicon V100 and lets us
  measure the (insignificant) masking overhead they report.

The MMU also keeps a demand-mapped page table over the heap so page
counts and translations are observable, and counts every translation
and fault for the stats layer.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import MMUFault
from .address_space import (
    ADDR_MASK,
    PAGE_SIZE,
    decode_tag_array,
    has_tag_array,
    strip_tag_array,
)
from .heap import Heap


class MMUMode(enum.Enum):
    """Hardware behaviour when the upper 15 VA bits are non-zero."""

    BASELINE = "baseline"
    TYPEPOINTER = "typepointer"
    PROTOTYPE = "prototype"


@dataclass
class MMUStats:
    """Counters exposed by the MMU model."""

    translations: int = 0
    tag_strips: int = 0
    faults: int = 0
    pages_mapped: int = 0

    def reset(self) -> None:
        self.translations = 0
        self.tag_strips = 0
        self.faults = 0


@dataclass
class MMU:
    """Translates warp-wide virtual addresses into heap addresses.

    The simulator uses an identity virtual->physical mapping (the heap
    *is* the physical memory), so translation is: validate tag bits per
    the operating mode, strip them if allowed, and demand-map the pages
    touched.
    """

    heap: Heap
    mode: MMUMode = MMUMode.BASELINE
    stats: MMUStats = field(default_factory=MMUStats)

    def __post_init__(self):
        self._mapped_pages: set = set()

    # ------------------------------------------------------------------
    def translate(self, addrs: np.ndarray) -> np.ndarray:
        """Translate a warp's worth of virtual addresses.

        Returns canonical heap addresses.  Raises :class:`MMUFault` when
        tag bits are present and the mode does not permit them.
        """
        addrs = addrs.astype(np.uint64, copy=False)
        self.stats.translations += 1
        # any tag bit set <=> some address exceeds the 49-bit space, so
        # one max-reduction replaces the per-lane decode in the hot path
        if addrs.size and int(addrs.max()) > ADDR_MASK:
            if self.mode is MMUMode.TYPEPOINTER:
                self.stats.tag_strips += 1
                addrs = strip_tag_array(addrs)
            else:
                self.stats.faults += 1
                tagged = has_tag_array(addrs)
                bad = addrs[tagged][0]
                tag = int(decode_tag_array(addrs[tagged][:1])[0])
                raise MMUFault(
                    f"non-canonical address {int(bad):#x} (tag {tag:#x}); "
                    f"MMU mode {self.mode.value!r} does not ignore tag bits"
                )
        self._map_pages(addrs)
        return addrs

    def translate_scalar(self, addr: int) -> int:
        """Scalar convenience wrapper over :meth:`translate`."""
        return int(self.translate(np.array([addr], dtype=np.uint64))[0])

    # ------------------------------------------------------------------
    def _map_pages(self, addrs: np.ndarray) -> None:
        new = set((addrs // np.uint64(PAGE_SIZE)).tolist())
        new -= self._mapped_pages
        if new:
            self._mapped_pages |= new
            self.stats.pages_mapped += len(new)

    @property
    def mapped_page_count(self) -> int:
        """Number of distinct pages touched since construction."""
        return len(self._mapped_pages)

    def set_mode(self, mode: MMUMode) -> None:
        """Switch operating mode (the paper's 'enable flag', section 6.3)."""
        self.mode = mode
