"""TypePointer allocator wrapper (paper section 6.1).

Wraps any :class:`~repro.memory.allocators.Allocator` and encodes the
object's type in the 15 unused pointer bits of every pointer returned
from allocation.  The tag is the byte offset of the type's vTable
inside the contiguous vTable arena, so the dispatch sequence of
Figure 5b (SHR / ADD / LDG / CALL) can recover the vTable with zero
memory accesses.

Because it only post-processes the returned pointer, TypePointer is
**allocator-independent**: the paper evaluates it over SharedOA
(Figure 6) and over the default CUDA allocator (Figure 11); this
wrapper accepts either.
"""
from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import TypeTagOverflow
from .address_space import (
    MAX_TAG,
    decode_tag,
    encode_tag,
    strip_tag,
    strip_tag_array,
)
from .allocators import Allocator


class TypePointerAllocator(Allocator):
    """Tag-encoding wrapper over an inner allocator."""

    ALLOC_CYCLE_COST = 0  # charged by the inner allocator

    def __init__(self, inner: Allocator, tag_for_type: Callable[[Hashable], int]):
        # Deliberately NOT calling super().__init__: this wrapper owns no
        # placement state; it delegates everything to ``inner``.
        self.inner = inner
        self.heap = inner.heap
        self.stats = inner.stats
        self._tag_for_type = tag_for_type
        self.name = f"TypePointer({inner.name})"

    # ------------------------------------------------------------------
    def alloc_object(self, type_key: Hashable, size: int) -> int:
        addr = self.inner.alloc_object(type_key, size)
        tag = self._tag_for_type(type_key)
        if not 0 <= tag <= MAX_TAG:
            raise TypeTagOverflow(
                f"vTable offset {tag} for {type_key!r} exceeds the 15-bit "
                f"tag space ({MAX_TAG}); see paper section 6.1 for the "
                f"index-based fallback"
            )
        return encode_tag(addr, tag)

    def free_object(self, ptr: int) -> None:
        self.inner.free_object(strip_tag(ptr))

    def free_objects_many(self, ptrs: np.ndarray) -> None:
        self.inner.free_objects_many(
            strip_tag_array(np.asarray(ptrs, dtype=np.uint64))
        )

    def alloc_raw(self, size: int, align: int = 16) -> int:
        return self.inner.alloc_raw(size, align)

    # ------------------------------------------------------------------
    def _canonical(self, ptr: int) -> int:
        return strip_tag(ptr)

    def _canonical_array(self, ptrs: np.ndarray) -> np.ndarray:
        return strip_tag_array(ptrs)

    def owner_type(self, ptr: int) -> Optional[Hashable]:
        return self.inner.owner_type(strip_tag(ptr))

    def live_objects(self) -> List[Tuple[int, Hashable, int]]:
        return self.inner.live_objects()

    def live_count(self) -> int:
        return self.inner.live_count()

    def external_fragmentation(self) -> float:
        return self.inner.external_fragmentation()

    def tag_of(self, ptr: int) -> int:
        """The tag carried by ``ptr`` (testing/introspection helper)."""
        return decode_tag(ptr)

    # delegate range-table access when wrapping SharedOA
    def ranges(self):
        return self.inner.ranges()  # type: ignore[attr-defined]

    @property
    def range_table_version(self):
        return getattr(self.inner, "range_table_version", 0)

    def _place_object(self, type_key, size):  # pragma: no cover - unused
        raise NotImplementedError("wrapper delegates placement to inner")

    def _unplace_object(self, addr, type_key, size):  # pragma: no cover
        raise NotImplementedError("wrapper delegates placement to inner")
