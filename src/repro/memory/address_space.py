"""The GPU virtual address space and TypePointer bit manipulation.

GPU unified memory uses a 49-bit virtual address space inside 64-bit
pointers (paper section 3/6).  The upper 15 bits are architecturally
unused; TypePointer stores the object's vTable byte-offset there
(Figure 5a):

    63              49 48                               0
    +----------------+----------------------------------+
    |  15-bit type   |        49-bit GPU address        |
    +----------------+----------------------------------+

All helpers here are pure functions on Python ints or numpy uint64
arrays so both the allocator (scalar) and the SIMT executor (warp-wide)
can share them.
"""
from __future__ import annotations

import numpy as np

#: Number of architecturally meaningful virtual-address bits.
VA_BITS = 49

#: Number of unused upper bits available to TypePointer.
TAG_BITS = 64 - VA_BITS  # 15

#: Mask selecting the 49 address bits of a pointer.
ADDR_MASK = (1 << VA_BITS) - 1

#: Mask selecting the 15 tag bits (after shifting right by VA_BITS).
TAG_MASK = (1 << TAG_BITS) - 1

#: Maximum tag value: 32K - 1.  15 bits encode 32KiB of vTable space,
#: "enough for 4k virtual function pointers" (paper section 6.1).
MAX_TAG = TAG_MASK

#: Size of a simulated page.  Used by the MMU's demand-mapped page table.
PAGE_SIZE = 1 << 16  # 64 KiB, typical for GPU unified memory

# numpy scalar constants (uint64 arithmetic must not silently upcast)
_U64_ADDR_MASK = np.uint64(ADDR_MASK)
_U64_VA_BITS = np.uint64(VA_BITS)
_U64_TAG_MASK = np.uint64(TAG_MASK)


def is_canonical(ptr: int) -> bool:
    """True if the pointer has no tag bits set (a plain GPU address)."""
    return 0 <= ptr <= ADDR_MASK


def encode_tag(addr: int, tag: int) -> int:
    """Embed ``tag`` in the upper 15 bits of ``addr`` (Figure 5a).

    ``addr`` must be canonical and ``tag`` must fit in 15 bits.
    """
    if not is_canonical(addr):
        raise ValueError(f"address {addr:#x} already has tag bits set")
    if not 0 <= tag <= MAX_TAG:
        raise ValueError(f"tag {tag} does not fit in {TAG_BITS} bits")
    return (tag << VA_BITS) | addr


def decode_tag(ptr: int) -> int:
    """Extract the 15-bit tag from a pointer (SHR in Figure 5b)."""
    return (ptr >> VA_BITS) & TAG_MASK


def strip_tag(ptr: int) -> int:
    """Return the canonical 49-bit address, discarding any tag."""
    return ptr & ADDR_MASK


def strip_tag_array(ptrs: np.ndarray) -> np.ndarray:
    """Vectorised :func:`strip_tag` for a warp's worth of pointers."""
    return np.bitwise_and(ptrs.astype(np.uint64, copy=False), _U64_ADDR_MASK)


def decode_tag_array(ptrs: np.ndarray) -> np.ndarray:
    """Vectorised :func:`decode_tag` (the SHR of Figure 5b)."""
    shifted = np.right_shift(ptrs.astype(np.uint64, copy=False), _U64_VA_BITS)
    return np.bitwise_and(shifted, _U64_TAG_MASK)


def has_tag_array(ptrs: np.ndarray) -> np.ndarray:
    """Boolean mask of which pointers carry a non-zero tag."""
    return decode_tag_array(ptrs) != 0


def page_of(addr: int) -> int:
    """Page number containing ``addr``."""
    return addr // PAGE_SIZE


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)
