"""Heap and allocator debugging tools.

Library-grade introspection for the simulated memory: an allocation
map (who owns which bytes), leak accounting between two checkpoints,
and integrity checks (no overlaps, every live object inside its
allocator's jurisdiction).  Used by tests and handy when developing
new workloads against the simulator.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..errors import MemoryError_
from .allocators import Allocator
from .shared_oa import SharedOAAllocator


@dataclass(frozen=True)
class AllocationRecord:
    addr: int
    size: int
    type_key: Hashable


class HeapChecker:
    """Integrity and leak checks over one allocator."""

    def __init__(self, allocator: Allocator):
        self.allocator = allocator
        self._baseline: Optional[Dict[int, AllocationRecord]] = None

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[int, AllocationRecord]:
        """Current live allocations, keyed by canonical address."""
        return {
            addr: AllocationRecord(addr, size, type_key)
            for addr, type_key, size in self.allocator.live_objects()
        }

    def checkpoint(self) -> None:
        """Remember the current live set for later leak accounting."""
        self._baseline = self.snapshot()

    def leaks_since_checkpoint(self) -> List[AllocationRecord]:
        """Objects alive now that were not alive at the checkpoint."""
        if self._baseline is None:
            raise MemoryError_("no checkpoint taken")
        now = self.snapshot()
        return [rec for addr, rec in sorted(now.items())
                if addr not in self._baseline]

    def freed_since_checkpoint(self) -> List[AllocationRecord]:
        """Objects alive at the checkpoint that are gone now."""
        if self._baseline is None:
            raise MemoryError_("no checkpoint taken")
        now = self.snapshot()
        return [rec for addr, rec in sorted(self._baseline.items())
                if addr not in now]

    # ------------------------------------------------------------------
    def check_no_overlaps(self) -> None:
        """Raise if any two live objects overlap."""
        spans = sorted(
            (addr, addr + size, t)
            for addr, t, size in self.allocator.live_objects()
        )
        for (a0, a1, ta), (b0, _, tb) in zip(spans, spans[1:]):
            if a1 > b0:
                raise MemoryError_(
                    f"live objects overlap: [{a0:#x},{a1:#x}) ({ta!r}) and "
                    f"{b0:#x} ({tb!r})"
                )

    def check_objects_in_ranges(self) -> None:
        """SharedOA only: every live object inside a same-type region."""
        inner = getattr(self.allocator, "inner", self.allocator)
        if not isinstance(inner, SharedOAAllocator):
            return
        ranges = inner.ranges()
        for addr, t, size in self.allocator.live_objects():
            hits = [(b, e, rt) for (b, e, rt) in ranges
                    if b <= addr and addr + size <= e]
            if len(hits) != 1 or hits[0][2] != t:
                raise MemoryError_(
                    f"object at {addr:#x} ({t!r}) not inside exactly one "
                    f"region of its type"
                )

    def check_all(self) -> None:
        self.check_no_overlaps()
        self.check_objects_in_ranges()


def allocation_map(allocator: Allocator, max_rows: int = 40) -> str:
    """Human-readable map of live allocations (address order)."""
    live = allocator.live_objects()
    lines = [f"{len(live)} live objects, "
             f"{allocator.stats.live_bytes} bytes live, "
             f"{allocator.stats.reserved_bytes} bytes reserved "
             f"({allocator.external_fragmentation():.1%} external frag)"]
    by_type: Dict[Hashable, int] = {}
    for _, t, size in live:
        by_type[t] = by_type.get(t, 0) + 1
    for t, n in sorted(by_type.items(), key=lambda kv: str(kv[0])):
        lines.append(f"  {t!s:30s} x{n}")
    for addr, t, size in live[:max_rows]:
        lines.append(f"  {addr:#012x} +{size:<6d} {t!s}")
    if len(live) > max_rows:
        lines.append(f"  ... {len(live) - max_rows} more")
    return "\n".join(lines)
