"""A flat, byte-addressable simulated device memory.

All objects, vTables, the COAL virtual range table and workload arrays
live at concrete addresses inside this heap, so the SIMT executor sees
real address streams (the whole point of the paper is address-dependent
behaviour).  Backed by a numpy byte array that grows on demand.

Addresses handed to the heap must be canonical (no TypePointer tag
bits); the MMU is responsible for stripping/faulting before access.
"""
from __future__ import annotations

import numpy as np

from ..errors import InvalidAddress
from .address_space import ADDR_MASK

#: dtype name -> (numpy dtype, size in bytes)
SCALAR_TYPES = {
    "u8": (np.uint8, 1),
    "u16": (np.uint16, 2),
    "u32": (np.uint32, 4),
    "i32": (np.int32, 4),
    "u64": (np.uint64, 8),
    "i64": (np.int64, 8),
    "f32": (np.float32, 4),
    "f64": (np.float64, 8),
}

#: scalar size -> log2(size), for aligned byte-address -> element index
_SHIFT = {1: 0, 2: 1, 4: 2, 8: 3}


class Heap:
    """Byte-addressable backing store for the simulated GPU memory.

    The heap reserves address 0 as a null guard: the first
    ``null_guard`` bytes are unmapped so null-pointer dereferences fault
    just as they would on hardware.
    """

    def __init__(self, capacity: int = 1 << 22, null_guard: int = 256):
        if capacity <= null_guard:
            raise ValueError("heap capacity must exceed the null guard region")
        self._data = np.zeros(capacity, dtype=np.uint8)
        self._limit = capacity          # current backing-array size
        self._brk = null_guard          # first never-handed-out address
        self.null_guard = null_guard
        self._views = {}                # dtype -> typed view (see _typed_view)

    # ------------------------------------------------------------------
    # address-space management
    # ------------------------------------------------------------------
    @property
    def brk(self) -> int:
        """One past the highest address ever reserved via :meth:`sbrk`."""
        return self._brk

    def sbrk(self, size: int, alignment: int = 16) -> int:
        """Reserve ``size`` bytes of fresh address space and return its base.

        This is the primitive all allocators build on.  The returned
        region is zero-initialised.
        """
        if size < 0:
            raise ValueError(f"negative sbrk size {size}")
        base = (self._brk + alignment - 1) & ~(alignment - 1)
        end = base + size
        if end > ADDR_MASK:
            raise InvalidAddress(f"address space exhausted at {end:#x}")
        while end > self._limit:
            self._grow()
        self._brk = end
        return base

    def _grow(self) -> None:
        new_limit = self._limit * 2
        grown = np.zeros(new_limit, dtype=np.uint8)
        grown[: self._limit] = self._data
        self._data = grown
        self._limit = new_limit
        self._views = {}

    def _check_range(self, addr: int, size: int) -> None:
        if addr < self.null_guard:
            raise InvalidAddress(f"access at {addr:#x} inside the null guard page")
        if addr + size > self._brk:
            raise InvalidAddress(
                f"access at {addr:#x}+{size} beyond heap break {self._brk:#x}"
            )

    # ------------------------------------------------------------------
    # scalar access (host-side / construction-time)
    # ------------------------------------------------------------------
    def load(self, addr: int, dtype: str):
        """Load one scalar of ``dtype`` ('u32', 'f64', ...) from ``addr``."""
        np_dtype, size = SCALAR_TYPES[dtype]
        self._check_range(addr, size)
        return self._data[addr : addr + size].view(np_dtype)[0]

    def store(self, addr: int, dtype: str, value) -> None:
        """Store one scalar of ``dtype`` at ``addr``."""
        np_dtype, size = SCALAR_TYPES[dtype]
        self._check_range(addr, size)
        self._data[addr : addr + size].view(np_dtype)[0] = value

    # ------------------------------------------------------------------
    # vectorised access (warp-wide, used by the SIMT executor)
    # ------------------------------------------------------------------
    def gather(self, addrs: np.ndarray, dtype: str) -> np.ndarray:
        """Load one scalar per lane from per-lane addresses.

        ``addrs`` is a uint64 array of canonical addresses.  Misaligned
        addresses are allowed (GPUs allow them for <=8B scalars); out of
        range addresses raise :class:`InvalidAddress`.
        """
        np_dtype, size = SCALAR_TYPES[dtype]
        if addrs.size == 0:
            return np.empty(0, dtype=np_dtype)
        a = addrs.astype(np.int64, copy=False)
        if int(a.min()) < self.null_guard or int(a.max()) + size > self._brk:
            bad = a[(a < self.null_guard) | (a + size > self._brk)][0]
            raise InvalidAddress(f"warp gather touches invalid address {int(bad):#x}")
        if size == 1:
            return self._data[a].view(np_dtype)
        if not (a & (size - 1)).any():
            # aligned fast path: one typed fancy index over a heap view
            return self._typed_view(size, np_dtype)[a >> _SHIFT[size]]
        offsets = np.arange(size, dtype=np.int64)
        flat = self._data[(a[:, None] + offsets[None, :]).ravel()]
        return flat.reshape(len(a), size).copy().view(np_dtype).ravel()

    def scatter(self, addrs: np.ndarray, dtype: str, values: np.ndarray) -> None:
        """Store one scalar per lane to per-lane addresses.

        Duplicate addresses follow last-writer-wins in lane order, which
        matches the (undefined but deterministic-in-practice) behaviour
        our deterministic executor needs.
        """
        np_dtype, size = SCALAR_TYPES[dtype]
        if addrs.size == 0:
            return
        a = addrs.astype(np.int64, copy=False)
        if int(a.min()) < self.null_guard or int(a.max()) + size > self._brk:
            bad = a[(a < self.null_guard) | (a + size > self._brk)][0]
            raise InvalidAddress(f"warp scatter touches invalid address {int(bad):#x}")
        vals = np.ascontiguousarray(values, dtype=np_dtype)
        if size == 1 or not (a & (size - 1)).any():
            self._typed_view(size, np_dtype)[a >> _SHIFT[size]] = vals
            return
        byte_view = vals.view(np.uint8).reshape(len(a), size)
        offsets = np.arange(size, dtype=np.int64)
        self._data[(a[:, None] + offsets[None, :]).ravel()] = byte_view.ravel()

    def _typed_view(self, size: int, np_dtype) -> np.ndarray:
        """A cached ``np_dtype`` view over the backing array (element
        index = byte address / size; only valid for aligned accesses).
        Views are invalidated when the heap grows."""
        views = self._views
        view = views.get(np_dtype)
        if view is None:
            n = self._limit - (self._limit % size)
            view = views[np_dtype] = self._data[:n].view(np_dtype)
        return view

    # ------------------------------------------------------------------
    # bulk array access (host-side convenience for device arrays)
    # ------------------------------------------------------------------
    def read_array(self, addr: int, dtype: str, count: int) -> np.ndarray:
        """Read ``count`` contiguous scalars starting at ``addr``."""
        np_dtype, size = SCALAR_TYPES[dtype]
        self._check_range(addr, size * count)
        return self._data[addr : addr + size * count].copy().view(np_dtype)

    def write_array(self, addr: int, dtype: str, values: np.ndarray) -> None:
        """Write contiguous scalars starting at ``addr``."""
        np_dtype, size = SCALAR_TYPES[dtype]
        vals = np.ascontiguousarray(values, dtype=np_dtype)
        self._check_range(addr, vals.nbytes)
        self._data[addr : addr + vals.nbytes] = vals.view(np.uint8)

    def fill(self, addr: int, size: int, byte: int = 0) -> None:
        """memset ``size`` bytes at ``addr``."""
        self._check_range(addr, size)
        self._data[addr : addr + size] = byte
