"""SoaAllocator: DynaSOAr-style structure-of-arrays object allocator.

The strongest related work to the paper's SharedOA is the SoaAlloc /
DynaSOAr allocator family (Springer & Masuhara, arXiv:1809.07444 and
arXiv:1810.11765): objects of one type live in fixed-capacity *blocks*
whose storage is laid out field-major, so when a warp touches the same
field of neighbouring objects the accesses are unit-stride and
coalesce -- while allocate/free stay cheap via a per-block occupancy
bitmap (one 64-bit word per block, like DynaSOAr's block bitmaps).

Layout of one block (capacity ``C`` objects, AoS object size ``S``,
header size ``H``), reserved as one ``C * S``-byte heap region at
``B``::

    [B,            B + C*H)      header column: object i's H header
                                  bytes live contiguously at B + i*H
    [B + C*o_f,    B + C*o_f + C*s_f)   one column per field f with
                                  AoS offset o_f and size s_f; object
                                  i's element is at B + C*o_f + i*s_f

The *object pointer* of slot ``i`` is ``B + i*H``: the technique's
16-byte shared-object header (GPU vTable* at +0, CPU vTable* at +8) is
contiguous at that address, so the embedded-vTable dispatch lowering
is reused unchanged -- only member accesses transpose, which is what
:meth:`field_addrs` implements (and what produces the field-major
address streams the trace pipeline replays).

Because AoS field intervals are disjoint within ``[0, S)`` and every
field is naturally aligned, the scaled columns are disjoint within the
reserved region and keep natural alignment; padding bytes simply
become unused gaps between columns.
"""
from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import AllocatorError, InvalidAddress
from .address_space import align_up
from .allocators import Allocator
from .heap import SCALAR_TYPES, Heap

#: Objects per block: one 64-bit occupancy bitmap word (DynaSOAr).
BLOCK_CAPACITY = 64

#: All-slots-occupied bitmap value.
_FULL = (1 << BLOCK_CAPACITY) - 1

#: Alignment of block bases (covers every scalar field dtype).
BLOCK_ALIGN = 64


class SoaBlock:
    """One fixed-capacity, single-type, field-major block."""

    __slots__ = ("type_key", "base", "stride", "occupied")

    def __init__(self, type_key: Hashable, base: int, stride: int):
        self.type_key = type_key
        self.base = base
        self.stride = stride          # AoS object size (bytes of state)
        self.occupied = 0             # 64-slot bitmap

    @property
    def live(self) -> int:
        return bin(self.occupied).count("1")

    def full(self) -> bool:
        return self.occupied == _FULL

    def take_slot(self) -> int:
        free = ~self.occupied & _FULL
        if not free:
            raise AllocatorError("take_slot on a full SoA block")
        slot = (free & -free).bit_length() - 1   # lowest free slot
        self.occupied |= 1 << slot
        return slot

    def release_slot(self, slot: int) -> None:
        bit = 1 << slot
        if not self.occupied & bit:
            raise AllocatorError(f"slot {slot} of block {self.base:#x} "
                                 f"is not occupied")
        self.occupied &= ~bit


class SoaAllocator(Allocator):
    """Structure-of-arrays allocator (SoaAlloc / DynaSOAr family)."""

    name = "SoA"
    #: Host-side bitmap allocation: as cheap as SharedOA's bump.
    ALLOC_CYCLE_COST = 25

    def __init__(
        self,
        heap: Heap,
        header_size: int = 16,
        layout_for: Optional[Callable] = None,
    ):
        super().__init__(heap)
        if header_size < 8 or header_size % 8:
            raise ValueError("header_size must be a positive multiple of 8")
        self.header_size = header_size
        #: resolves a type key to its ObjectLayout (the machine passes
        #: ``registry.layout``); used to derive per-field column plans.
        self._layout_for = layout_for
        self._blocks_by_type: Dict[Hashable, List[SoaBlock]] = {}
        #: per-type stack of blocks with at least one free slot
        self._avail: Dict[Hashable, List[SoaBlock]] = {}
        #: all blocks in base order (sbrk is monotonic, so append-only)
        self._blocks: List[SoaBlock] = []
        self._bases_list: List[int] = []
        self._bases_np: Optional[np.ndarray] = None
        #: type_key -> tuple of (aos_offset, cell_size) columns to zero
        self._plans: Dict[Hashable, Tuple[Tuple[int, int], ...]] = {}

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _stride_for(self, size: int) -> int:
        return align_up(size, 8)

    def _place_object(self, type_key: Hashable, size: int) -> int:
        stride = self._stride_for(size)
        if stride < self.header_size:
            raise AllocatorError(
                f"SoA object of {size} bytes is smaller than its "
                f"{self.header_size}-byte header"
            )
        blocks = self._blocks_by_type.setdefault(type_key, [])
        if blocks and blocks[0].stride != stride:
            raise AllocatorError(
                f"type {type_key!r} allocated with inconsistent sizes "
                f"({blocks[0].stride} vs {stride})"
            )
        avail = self._avail.setdefault(type_key, [])
        if not avail:
            avail.append(self._grow_type(type_key, stride, blocks))
        block = avail[-1]
        slot = block.take_slot()
        if block.full():
            avail.pop()
        return block.base + slot * self.header_size

    def _grow_type(self, type_key: Hashable, stride: int,
                   blocks: List[SoaBlock]) -> SoaBlock:
        nbytes = BLOCK_CAPACITY * stride
        base = self.heap.sbrk(nbytes, BLOCK_ALIGN)
        self.stats.reserved_bytes += nbytes
        block = SoaBlock(type_key, base, stride)
        blocks.append(block)
        self._blocks.append(block)
        self._bases_list.append(base)
        self._bases_np = None
        return block

    def _unplace_object(self, addr: int, type_key: Hashable, size: int) -> None:
        block, slot = self._locate(addr)
        if block.type_key != type_key:
            raise AllocatorError(
                f"freed address {addr:#x} belongs to a "
                f"{block.type_key!r} block, not {type_key!r}"
            )
        was_full = block.full()
        block.release_slot(slot)
        if was_full:
            self._avail.setdefault(type_key, []).append(block)

    def _unplace_many(self, addrs: List[int], type_keys: List[Hashable],
                      sizes: List[int]) -> None:
        """Vectorised batch release: one searchsorted, per-block bit ops."""
        a = np.asarray(addrs, dtype=np.uint64)
        bases = self._bases()
        idx = np.searchsorted(bases, a, side="right") - 1
        if (idx < 0).any():
            bad = int(a[idx < 0][0])
            raise AllocatorError(f"freed address {bad:#x} not in any block")
        rel = a - bases[idx]
        slots, rems = np.divmod(rel, np.uint64(self.header_size))
        if rems.any() or (slots >= BLOCK_CAPACITY).any():
            bad = int(a[(rems != 0) | (slots >= BLOCK_CAPACITY)][0])
            raise AllocatorError(
                f"address {bad:#x} is not an object slot of its block"
            )
        for block_i in np.unique(idx):
            block = self._blocks[int(block_i)]
            sel = idx == block_i
            mask = 0
            for s in slots[sel].tolist():
                mask |= 1 << int(s)
            if block.occupied & mask != mask:
                raise AllocatorError(
                    f"batch free hit unoccupied slots of block "
                    f"{block.base:#x}"
                )
            was_full = block.full()
            block.occupied &= ~mask
            if was_full:
                self._avail.setdefault(block.type_key, []).append(block)

    # ------------------------------------------------------------------
    # the field-major transposition
    # ------------------------------------------------------------------
    def _bases(self) -> np.ndarray:
        if self._bases_np is None:
            self._bases_np = np.asarray(self._bases_list, dtype=np.uint64)
        return self._bases_np

    def _locate(self, addr: int) -> Tuple[SoaBlock, int]:
        bases = self._bases()
        i = int(np.searchsorted(bases, np.uint64(addr), side="right")) - 1
        if i < 0:
            raise InvalidAddress(f"address {addr:#x} precedes every SoA block")
        block = self._blocks[i]
        slot, rem = divmod(addr - block.base, self.header_size)
        if rem or slot >= BLOCK_CAPACITY:
            raise InvalidAddress(
                f"address {addr:#x} is not an object slot of block "
                f"{block.base:#x}"
            )
        return block, slot

    def field_addr(self, addr: int, layout, field: str) -> int:
        block, slot = self._locate(addr)
        off = layout.offset(field)
        fsize = SCALAR_TYPES[layout.dtype(field)][1]
        return block.base + BLOCK_CAPACITY * off + slot * fsize

    def field_addrs(self, addrs: np.ndarray, layout, field: str) -> np.ndarray:
        a = np.asarray(addrs, dtype=np.uint64)
        if a.size == 0:
            return a
        bases = self._bases()
        idx = np.searchsorted(bases, a, side="right") - 1
        if (idx < 0).any():
            bad = int(a[idx < 0][0])
            raise InvalidAddress(
                f"address {bad:#x} precedes every SoA block"
            )
        block_bases = bases[idx]
        slots, rems = np.divmod(a - block_bases, np.uint64(self.header_size))
        if rems.any() or (slots >= BLOCK_CAPACITY).any():
            bad = int(a[(rems != 0) | (slots >= BLOCK_CAPACITY)][0])
            raise InvalidAddress(
                f"address {bad:#x} is not an object slot of its block"
            )
        off = layout.offset(field)
        fsize = SCALAR_TYPES[layout.dtype(field)][1]
        return (block_bases + np.uint64(BLOCK_CAPACITY * off)
                + slots * np.uint64(fsize))

    # ------------------------------------------------------------------
    # zeroing (the AoS fill would stomp neighbouring slots' columns)
    # ------------------------------------------------------------------
    def _plan(self, type_key: Hashable,
              stride: int) -> Tuple[Tuple[int, int], ...]:
        plan = self._plans.get(type_key)
        if plan is not None:
            return plan
        cells: List[Tuple[int, int]] = [(0, self.header_size)]
        layout = None
        if self._layout_for is not None:
            try:
                layout = self._layout_for(type_key)
            except Exception:
                layout = None  # raw (non-TypeDescriptor) type key
        if layout is not None:
            cells.extend(
                (off, SCALAR_TYPES[dt][1])
                for _, dt, off in layout.field_offsets
            )
        elif stride > self.header_size:
            # unknown layout: treat everything past the header as one
            # payload column (consistent as long as the caller never
            # asks for per-field addresses, which requires a layout)
            cells.append((self.header_size, stride - self.header_size))
        plan = tuple(cells)
        self._plans[type_key] = plan
        return plan

    def _zero_object(self, addr: int, type_key: Hashable, size: int) -> None:
        block, slot = self._locate(addr)
        for off, cell in self._plan(type_key, block.stride):
            self.heap.fill(block.base + BLOCK_CAPACITY * off + slot * cell,
                           cell, 0)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def block_count(self) -> int:
        return len(self._blocks)

    def blocks_of(self, type_key: Hashable) -> List[SoaBlock]:
        return list(self._blocks_by_type.get(type_key, ()))
