"""Memory subsystem: address space, heap, MMU, and object allocators."""

from .address_space import (
    ADDR_MASK,
    MAX_TAG,
    PAGE_SIZE,
    TAG_BITS,
    VA_BITS,
    align_up,
    decode_tag,
    decode_tag_array,
    encode_tag,
    has_tag_array,
    is_canonical,
    strip_tag,
    strip_tag_array,
)
from .allocators import AllocationStats, Allocator
from .cuda_allocator import CudaHeapAllocator
from .debug import AllocationRecord, HeapChecker, allocation_map
from .fragmentation import FragmentationReport, measure, per_type_usage
from .heap import Heap
from .mmu import MMU, MMUMode, MMUStats
from .shared_oa import Region, SharedOAAllocator
from .soa_allocator import BLOCK_CAPACITY, SoaAllocator, SoaBlock
from .typepointer_alloc import TypePointerAllocator

__all__ = [
    "ADDR_MASK",
    "MAX_TAG",
    "PAGE_SIZE",
    "TAG_BITS",
    "VA_BITS",
    "align_up",
    "decode_tag",
    "decode_tag_array",
    "encode_tag",
    "has_tag_array",
    "is_canonical",
    "strip_tag",
    "strip_tag_array",
    "AllocationStats",
    "Allocator",
    "CudaHeapAllocator",
    "AllocationRecord",
    "HeapChecker",
    "allocation_map",
    "FragmentationReport",
    "measure",
    "per_type_usage",
    "Heap",
    "MMU",
    "MMUMode",
    "MMUStats",
    "Region",
    "SharedOAAllocator",
    "BLOCK_CAPACITY",
    "SoaAllocator",
    "SoaBlock",
    "TypePointerAllocator",
]
