"""Allocator protocol shared by all object allocators in the model.

Three allocators implement this protocol:

* :class:`~repro.memory.cuda_allocator.CudaHeapAllocator` -- models the
  default CUDA device-side ``new``: padded allocations, type-interleaved
  and scattered placement (paper section 8.2).
* :class:`~repro.memory.shared_oa.SharedOAAllocator` -- the paper's
  type-based Shared Object Allocator (section 4).
* :class:`~repro.memory.typepointer_alloc.TypePointerAllocator` -- a
  wrapper that additionally encodes the type's vTable offset into the
  upper 15 pointer bits (section 6.1).  It wraps either of the above,
  which is how the paper evaluates TypePointer both on SharedOA
  (Figure 6) and on the CUDA allocator (Figure 11).

An allocation's "type key" is any hashable object; the runtime layer
passes :class:`~repro.runtime.typesystem.TypeDescriptor` instances.
"""
from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..errors import DoubleFree
from .heap import Heap


@dataclass
class AllocationStats:
    """Counters every allocator maintains."""

    allocations: int = 0
    frees: int = 0
    live_bytes: int = 0
    reserved_bytes: int = 0
    #: Modeled cycles spent performing allocations (for the init-phase
    #: comparison in section 8.2: device-side CUDA allocation pays a
    #: serialisation/synchronisation penalty per call; host-side
    #: SharedOA is a near-free bump).
    modeled_alloc_cycles: int = 0

    @property
    def live_allocations(self) -> int:
        return self.allocations - self.frees


class Allocator(abc.ABC):
    """Object allocator over the simulated heap."""

    #: short name used in reports ("CUDA", "SharedOA", ...)
    name: str = "abstract"
    #: modeled cycles charged per allocation call (init-phase model)
    ALLOC_CYCLE_COST = 0

    def __init__(self, heap: Heap):
        self.heap = heap
        self.stats = AllocationStats()
        # ground truth: canonical object base address -> (type_key, size)
        self._live: Dict[int, Tuple[Hashable, int]] = {}

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _place_object(self, type_key: Hashable, size: int) -> int:
        """Pick an address for a new ``size``-byte object of ``type_key``."""

    @abc.abstractmethod
    def _unplace_object(self, addr: int, type_key: Hashable, size: int) -> None:
        """Return the object's slot to the allocator."""

    # ------------------------------------------------------------------
    # shared implementation
    # ------------------------------------------------------------------
    def alloc_object(self, type_key: Hashable, size: int) -> int:
        """Allocate one object; returns its (possibly tagged) pointer."""
        if size <= 0:
            raise ValueError(f"object size must be positive, got {size}")
        addr = self._place_object(type_key, size)
        self._live[addr] = (type_key, size)
        self.stats.allocations += 1
        self.stats.live_bytes += size
        self.stats.modeled_alloc_cycles += self.ALLOC_CYCLE_COST
        obs.count("memory.alloc_objects")
        self._zero_object(addr, type_key, size)
        return addr

    def _zero_object(self, addr: int, type_key: Hashable, size: int) -> None:
        """Zero a fresh object's storage.

        The default assumes the object's bytes are contiguous at
        ``addr``; allocators with a non-contiguous (e.g. field-major)
        layout override this to zero exactly the cells the object owns.
        """
        self.heap.fill(addr, size, 0)

    def free_object(self, ptr: int) -> None:
        """Free a pointer previously returned by :meth:`alloc_object`."""
        addr = self._canonical(ptr)
        if addr not in self._live:
            raise DoubleFree(f"free of unknown or already-freed pointer {addr:#x}")
        type_key, size = self._live.pop(addr)
        self._unplace_object(addr, type_key, size)
        self.stats.frees += 1
        self.stats.live_bytes -= size
        obs.count("memory.free_objects")

    def free_objects_many(self, ptrs: np.ndarray) -> None:
        """Free a batch of pointers (vectorised mirror of the alloc side).

        The whole batch is validated up front -- an unknown, already-
        freed or duplicated pointer raises :class:`DoubleFree` before
        any slot is released, so a failed batch leaves the allocator
        untouched.  Slot release goes through :meth:`_unplace_many`,
        which the concrete allocators vectorise.
        """
        addrs = self._canonical_array(np.asarray(ptrs, dtype=np.uint64))
        addr_list = [int(a) for a in addrs.tolist()]
        live = self._live
        seen = set()
        for a in addr_list:
            if a not in live or a in seen:
                raise DoubleFree(
                    f"free of unknown, duplicated or already-freed "
                    f"pointer {a:#x}"
                )
            seen.add(a)
        type_keys: List[Hashable] = []
        sizes: List[int] = []
        freed_bytes = 0
        for a in addr_list:
            type_key, size = live.pop(a)
            type_keys.append(type_key)
            sizes.append(size)
            freed_bytes += size
        self._unplace_many(addr_list, type_keys, sizes)
        self.stats.frees += len(addr_list)
        self.stats.live_bytes -= freed_bytes
        obs.count("memory.free_objects", len(addr_list))

    def _unplace_many(self, addrs: List[int], type_keys: List[Hashable],
                      sizes: List[int]) -> None:
        """Return a batch of slots; default is the per-object loop."""
        for a, t, s in zip(addrs, type_keys, sizes):
            self._unplace_object(a, t, s)

    def alloc_raw(self, size: int, align: int = 16) -> int:
        """Allocate an untyped device buffer (workload arrays, tables).

        Raw buffers are not object storage, so they do not count toward
        ``reserved_bytes`` (which feeds the Figure 10b fragmentation
        metric over *object regions*).
        """
        return self.heap.sbrk(size, align)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _canonical(self, ptr: int) -> int:
        """Hook for tag-encoding wrappers; identity by default."""
        return ptr

    def _canonical_array(self, ptrs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_canonical`; identity by default."""
        return ptrs

    # ------------------------------------------------------------------
    # field addressing
    # ------------------------------------------------------------------
    def field_addr(self, addr: int, layout, field: str) -> int:
        """Address of one object's field, given its canonical ``addr``.

        Every member access -- device-side (charged) and host-side --
        routes through this hook, so an allocator that places fields
        away from the object base (field-major SoA blocks) changes the
        whole address stream in one place.  The default is the
        array-of-structures rule: base plus the layout offset.
        """
        return addr + layout.offset(field)

    def field_addrs(self, addrs: np.ndarray, layout, field: str) -> np.ndarray:
        """Vectorised :meth:`field_addr` over same-typed object pointers.

        ``addrs`` may still carry TypePointer tag bits (device-side
        accesses pass through the MMU, which strips them); the default
        AoS rule is tag-transparent because the offset only touches the
        low bits.
        """
        return addrs + np.uint64(layout.offset(field))

    def owner_type(self, ptr: int) -> Optional[Hashable]:
        """Ground-truth type of a live object, or None (validation only)."""
        entry = self._live.get(self._canonical(ptr))
        return entry[0] if entry else None

    def live_objects(self) -> List[Tuple[int, Hashable, int]]:
        """(addr, type_key, size) for every live object, address order."""
        return sorted((a, t, s) for a, (t, s) in self._live.items())

    def live_count(self) -> int:
        return len(self._live)

    def external_fragmentation(self) -> float:
        """Fraction of reserved object space not occupied by live objects.

        Matches the metric plotted in Figure 10b.  Allocators that do not
        reserve space ahead of demand report 0.
        """
        if self.stats.reserved_bytes == 0:
            return 0.0
        frag = 1.0 - self.stats.live_bytes / self.stats.reserved_bytes
        return max(0.0, frag)
