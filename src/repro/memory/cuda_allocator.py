"""Model of the default CUDA device-side object allocator.

The paper reverse-engineers two relevant behaviours (section 8.2):

* it "does not allocate objects of the same type consecutively and adds
  additional padding between allocated objects", and
* device-side allocation of objects with virtual functions imposes a
  "huge synchronization overhead" (SharedOA's host-side allocation is a
  geometric-mean 80x faster at initialisation).

We model this with:

* **size-class rounding plus a fixed pad** between allocations
  (internal fragmentation / loose packing), and
* **round-robin sub-arenas**: device-side ``new`` is serviced
  concurrently by thousands of threads, so consecutively-constructed
  objects land in different heap sub-regions rather than adjacent
  addresses.  Striping allocations across ``num_arenas`` bump arenas is
  the deterministic stand-in for that scatter; it reproduces the poor
  coalescing and cache behaviour SharedOA beats in Figure 6.
* a large :data:`ALLOC_CYCLE_COST` per call for the init-phase model.

Frees push the slot on a per-size-class free list, which is reused
before fresh space is carved -- enough realism for workloads that churn
objects.
"""
from __future__ import annotations

from typing import Dict, Hashable, List

import numpy as np

from .address_space import align_up
from .allocators import Allocator
from .heap import Heap

#: Bytes of padding the CUDA allocator inserts between allocations.
HEADER_PAD = 16

#: Arena granularity: fresh space is carved from the heap in slabs.
_SLAB_BYTES = 1 << 16

#: Successive slabs start at a staggered offset (multiples of 3 cache
#: lines) so slab bases do not all alias into the same L1 sets -- real
#: device-heap placements are scattered, not set-aligned.
_SLAB_COLOR_STRIDE = 384
_SLAB_COLOR_SPAN = 1536


class CudaHeapAllocator(Allocator):
    """Default-CUDA-like allocator: padded, scattered, type-oblivious."""

    name = "CUDA"
    #: Device-side new with heap lock + implicit sync (section 8.2 model).
    ALLOC_CYCLE_COST = 2000

    def __init__(self, heap: Heap, num_arenas: int = 8):
        super().__init__(heap)
        if num_arenas < 1:
            raise ValueError("num_arenas must be >= 1")
        self.num_arenas = num_arenas
        self._next_arena = 0
        # per-arena bump state: [cursor, end)
        self._arena_cursor: List[int] = [0] * num_arenas
        self._arena_end: List[int] = [0] * num_arenas
        self._slab_seq = 0
        # size class -> free slot addresses
        self._free_lists: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def size_class(size: int) -> int:
        """Size class for an allocation: padded and rounded to 16 bytes."""
        return align_up(size + HEADER_PAD, 16)

    def _place_object(self, type_key: Hashable, size: int) -> int:
        cls = self.size_class(size)
        free = self._free_lists.get(cls)
        if free:
            return free.pop()
        arena = self._next_arena
        self._next_arena = (arena + 1) % self.num_arenas
        if self._arena_cursor[arena] + cls > self._arena_end[arena]:
            color = (self._slab_seq * _SLAB_COLOR_STRIDE) % _SLAB_COLOR_SPAN
            self._slab_seq += 1
            slab = max(_SLAB_BYTES, align_up(cls, 16)) + color
            base = self.heap.sbrk(slab, 256)
            self._arena_cursor[arena] = base + color
            self._arena_end[arena] = base + slab
            self.stats.reserved_bytes += slab
        addr = self._arena_cursor[arena]
        self._arena_cursor[arena] += cls
        return addr

    def _unplace_object(self, addr: int, type_key: Hashable, size: int) -> None:
        self._free_lists.setdefault(self.size_class(size), []).append(addr)

    def _unplace_many(self, addrs: List[int], type_keys: List[Hashable],
                      sizes: List[int]) -> None:
        """Batch release: one size-class computation over the whole batch."""
        classes = [
            int(c) for c in (
                (np.asarray(sizes, dtype=np.int64) + (HEADER_PAD + 15))
                // 16 * 16
            ).tolist()
        ]
        free_lists = self._free_lists
        for addr, cls in zip(addrs, classes):
            lst = free_lists.get(cls)
            if lst is None:
                lst = free_lists[cls] = []
            lst.append(addr)

    # ------------------------------------------------------------------
    def object_stride(self, size: int) -> int:
        """Distance between consecutive same-arena objects of ``size``."""
        return self.size_class(size)
