"""Fragmentation metrics for the allocator study (Figure 10b).

External fragmentation is reserved-but-unoccupied object space:
regions are reserved in object-count chunks ahead of demand, so large
initial chunks waste more of the final region's tail.  SharedOA has no
internal fragmentation (objects are packed at natural stride); the
CUDA allocator's padding shows up as internal fragmentation instead.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

from .allocators import Allocator
from .cuda_allocator import CudaHeapAllocator
from .shared_oa import SharedOAAllocator


@dataclass
class FragmentationReport:
    """Breakdown of an allocator's space usage."""

    live_bytes: int
    reserved_bytes: int
    external_fragmentation: float
    internal_fragmentation: float
    region_count: int

    def __str__(self) -> str:
        return (
            f"live={self.live_bytes}B reserved={self.reserved_bytes}B "
            f"external={self.external_fragmentation:.1%} "
            f"internal={self.internal_fragmentation:.1%} "
            f"regions={self.region_count}"
        )


def measure(allocator: Allocator) -> FragmentationReport:
    """Compute a :class:`FragmentationReport` for any allocator."""
    inner = getattr(allocator, "inner", allocator)
    live = inner.stats.live_bytes
    reserved = inner.stats.reserved_bytes

    internal = 0.0
    region_count = 0
    if isinstance(inner, SharedOAAllocator):
        region_count = inner.region_count()
        # natural stride == requested size rounded to 8: no internal waste
        internal = 0.0
    elif isinstance(inner, CudaHeapAllocator):
        # padding + size-class rounding is internal waste
        padded = sum(inner.size_class(s) for _, _, s in inner.live_objects())
        internal = 1.0 - live / padded if padded else 0.0

    return FragmentationReport(
        live_bytes=live,
        reserved_bytes=reserved,
        external_fragmentation=allocator.external_fragmentation(),
        internal_fragmentation=internal,
        region_count=region_count,
    )


def per_type_usage(allocator: SharedOAAllocator) -> Dict[Hashable, Dict[str, int]]:
    """Per-type region statistics for a SharedOA allocator."""
    usage: Dict[Hashable, Dict[str, int]] = {}
    for base, end, type_key in allocator.ranges():
        entry = usage.setdefault(
            type_key, {"regions": 0, "reserved_bytes": 0, "live_objects": 0}
        )
        entry["regions"] += 1
        entry["reserved_bytes"] += end - base
    for region in allocator._all_regions:
        usage[region.type_key]["live_objects"] += region.live
    return usage
