"""Virtual-function dispatch strategies (the paper's core contribution).

Each strategy lowers ``obj->vfunc()`` into the instruction/memory
sequence of one technique (Table 1), charging the execution context as
it resolves each lane's target function *functionally* -- through its
own data structure, so a bug in (say) the segment tree produces wrong
workload output, not just wrong cycle counts:

======================  ====================================================
``VTableDispatch``      contemporary CUDA (and SharedOA, which only changes
                        the allocator): LDG vTable* (A, diverged per
                        object), LDG vFunc* (B, per type), indirect CALL (C)
``ConcordDispatch``     Concord (Barik et al.): LDG embedded type tag
                        (diverged), compiler-generated switch (compute +
                        direct branches), no vFunc* load, no indirect call
``COALDispatch``        COAL: segment-tree walk of the virtual range table
                        (Algorithm 1) replaces A; B and C unchanged.
                        Statically-uniform call sites are not instrumented
                        (section 5 heuristic) and use the CUDA lowering.
``TypePointerDispatch`` TypePointer: SHR + ADD recover the vTable from the
                        pointer's tag bits (Figure 5b); zero accesses for A
======================  ====================================================

Every strategy also owns the object *header* its technique needs and
writes it at construction time.
"""
from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..errors import DispatchError
from ..gpu.isa import (
    ROLE_DISPATCH_OVERHEAD,
    ROLE_LOAD_VFUNC,
    ROLE_LOAD_VTABLE,
    Opcode,
)
from ..memory.address_space import decode_tag_array, strip_tag_array
from ..runtime.typesystem import TypeDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from ..gpu.machine import Machine


class DispatchStrategy(abc.ABC):
    """Base class for the per-technique virtual-call lowering."""

    #: short name used in reports
    name: str = "abstract"
    #: bytes of per-object header this technique requires
    header_size: int = 8
    #: True when calls resolve to direct branches the compiler can see
    #: (Concord); False for true indirect dispatch
    direct_call: bool = False
    #: True when member dereferences must mask tag bits in software
    #: (TypePointer software prototype, section 6.3)
    software_mask: bool = False

    def __init__(self):
        self.machine: Optional["Machine"] = None

    def bind(self, machine: "Machine") -> None:
        self.machine = machine

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_construct(self, addr: int, type_desc: TypeDescriptor) -> None:
        """Write the technique's object header at canonical ``addr``."""

    def on_construct_many(self, addrs: np.ndarray,
                          type_desc: TypeDescriptor) -> None:
        """Write headers for a batch of same-type objects at canonical
        ``addrs`` (vectorised by the concrete strategies)."""
        for a in addrs.tolist():
            self.on_construct(int(a), type_desc)

    def prepare_launch(self) -> None:
        """Hook run before each kernel launch (COAL rebuilds its tree)."""

    @abc.abstractmethod
    def resolve(
        self, ctx, objptrs: np.ndarray, slot: int, uniform: bool = False
    ) -> np.ndarray:
        """Charge the lowering and return per-lane target code addresses.

        ``uniform`` is the compiler's static knowledge that every lane
        calls through the same object (section 5); only COAL changes
        behaviour on it, but all strategies receive it.
        """

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _write_vtable_header(self, addr: int, type_desc: TypeDescriptor) -> None:
        """Store the GPU vTable pointer at offset 0 (all vTable headers)."""
        arena = self.machine.arena
        self.machine.heap.store(addr, "u64", arena.vtable_addr(type_desc))

    def _write_vtable_headers(self, addrs: np.ndarray,
                              type_desc: TypeDescriptor,
                              cpu_slot: bool) -> None:
        """Batched header writes: GPU vTable pointer at offset 0, and for
        16-byte shared-object headers the CPU-side pointer at offset 8."""
        heap = self.machine.heap
        vt = self.machine.arena.vtable_addr(type_desc)
        n = len(addrs)
        heap.scatter(addrs, "u64", np.full(n, vt, dtype=np.uint64))
        if cpu_slot:
            heap.scatter(addrs + np.uint64(8), "u64",
                         np.full(n, vt ^ 0x1, dtype=np.uint64))

    def _vtable_resolve(self, ctx, objptrs: np.ndarray, slot: int) -> np.ndarray:
        """The contemporary-CUDA lowering of Figure 1a (ops A and B)."""
        # A: diverged load of each object's embedded vTable pointer
        vtables = ctx.load(objptrs, "u64", role=ROLE_LOAD_VTABLE)
        # B: per-type load of the virtual function pointer
        entry_addrs = vtables + np.uint64(8 * slot)
        return ctx.load(entry_addrs, "u64", role=ROLE_LOAD_VFUNC)


class VTableDispatch(DispatchStrategy):
    """Contemporary CUDA dispatch: embedded vTable pointer per object."""

    name = "vtable"
    header_size = 8

    def on_construct(self, addr: int, type_desc: TypeDescriptor) -> None:
        self._write_vtable_header(addr, type_desc)

    def on_construct_many(self, addrs, type_desc):
        self._write_vtable_headers(addrs, type_desc, cpu_slot=False)

    def resolve(self, ctx, objptrs, slot, uniform=False):
        return self._vtable_resolve(ctx, objptrs, slot)


class SharedVTableDispatch(VTableDispatch):
    """CUDA dispatch over SharedOA's shared-object header.

    SharedOA objects carry *two* vTable pointers -- one for the CPU and
    one for the GPU (section 4) -- so the header is 16 bytes.  The GPU
    pointer sits at offset 0 and the lowering is unchanged; only the
    layout (and therefore the address stream) differs.
    """

    name = "vtable-shared"
    header_size = 16

    def on_construct(self, addr: int, type_desc: TypeDescriptor) -> None:
        self._write_vtable_header(addr, type_desc)
        # CPU-side vTable pointer: modelled as a distinct (host) address;
        # we store the arena address with the top bit of the low word set
        # to keep it recognisably different from the GPU pointer.
        cpu_vt = self.machine.arena.vtable_addr(type_desc) ^ 0x1
        self.machine.heap.store(addr + 8, "u64", cpu_vt)

    def on_construct_many(self, addrs, type_desc):
        self._write_vtable_headers(addrs, type_desc, cpu_slot=True)


class ConcordDispatch(DispatchStrategy):
    """Type tags + switch statements, after Intel Concord (CGO'14).

    The 4-byte embedded tag replaces the 8-byte vTable pointer, so
    Concord objects are denser than CUDA's -- part of why it outruns
    CUDA despite still dereferencing every object for its type.
    """

    name = "concord"
    header_size = 4
    direct_call = True

    def on_construct(self, addr: int, type_desc: TypeDescriptor) -> None:
        tag = self.machine.registry.type_id(type_desc)
        self.machine.heap.store(addr, "u32", tag)

    def on_construct_many(self, addrs, type_desc):
        tag = self.machine.registry.type_id(type_desc)
        self.machine.heap.scatter(
            addrs, "u32", np.full(len(addrs), tag, dtype=np.uint32)
        )

    def resolve(self, ctx, objptrs, slot, uniform=False):
        registry = self.machine.registry
        arena = self.machine.arena
        # diverged load of the embedded tag (same cost shape as op A)
        tags = ctx.load(objptrs, "u32", role=ROLE_LOAD_VTABLE)

        # compiler-generated switch: a balanced compare/branch tree over
        # the statically-known call targets
        num_types = max(len(registry.concrete_types()), 1)
        levels = max(1, math.ceil(math.log2(num_types)) if num_types > 1 else 1)
        for _ in range(levels):
            ctx.alu(1, op=Opcode.SETP, role=ROLE_DISPATCH_OVERHEAD)
            ctx.ctrl(1, op=Opcode.BRA, role=ROLE_DISPATCH_OVERHEAD)

        # resolve each lane's implementation from its tag (direct target)
        targets = np.zeros(len(tags), dtype=np.uint64)
        for tag in np.unique(tags):
            tdesc = registry.by_id(int(tag))
            impls = tdesc.vtable_impls()
            if slot >= len(impls) or impls[slot] is None:
                raise DispatchError(
                    f"Concord switch hit abstract slot {slot} of {tdesc.name!r}"
                )
            code = arena._code_addr_for(impls[slot])
            targets[tags == tag] = code
        return targets


class COALDispatch(DispatchStrategy):
    """Coordinated Object Allocation and function Lookup (section 5)."""

    name = "coal"
    header_size = 16  # SharedOA shared-object header

    def __init__(self):
        super().__init__()
        self._table = None
        self._built_version = -1

    def on_construct(self, addr: int, type_desc: TypeDescriptor) -> None:
        SharedVTableDispatch.on_construct(self, addr, type_desc)  # same header

    def on_construct_many(self, addrs, type_desc):
        self._write_vtable_headers(addrs, type_desc, cpu_slot=True)

    def prepare_launch(self) -> None:
        """(Re)build the segment tree when the range set changed."""
        from .range_table import VirtualRangeTable

        allocator = self.machine.allocator
        version = getattr(allocator, "range_table_version", None)
        if version is None:
            raise DispatchError(
                "COAL requires a SharedOA-style allocator exposing ranges()"
            )
        if self._table is None or version != self._built_version:
            self._table = VirtualRangeTable(
                self.machine.heap,
                allocator.ranges(),
                self.machine.arena.vtable_addr,
            )
            self._built_version = version

    @property
    def range_table(self):
        return self._table

    def resolve(self, ctx, objptrs, slot, uniform=False):
        if uniform:
            # section 5: do not instrument statically-uniform call sites;
            # the plain vTable access coalesces to one transaction anyway
            return self._vtable_resolve(ctx, objptrs, slot)
        if self._table is None:
            raise DispatchError("COAL dispatch used before prepare_launch()")
        addrs = strip_tag_array(objptrs)
        vtables = self._table.lookup_warp(
            ctx, addrs, role=ROLE_DISPATCH_OVERHEAD
        )
        entry_addrs = vtables + np.uint64(8 * slot)
        return ctx.load(entry_addrs, "u64", role=ROLE_LOAD_VFUNC)


class TypePointerDispatch(DispatchStrategy):
    """TypePointer (section 6): the tag bits *are* the type.

    The Figure 5b sequence: SHR extracts the tag, ADD rebases it onto
    the contiguous vTable arena, one per-type LDG fetches the vFunc*,
    and the indirect CALL is unchanged.  Zero memory accesses for
    operation A.

    ``software_mask=True`` selects the silicon-prototype variant that
    must AND away the tag bits before every member dereference because
    the MMU would fault (section 6.3).

    ``index_mode=True`` selects the section-6.1 fallback encoding: the
    tag is a type *index* instead of a byte offset, multiplied by the
    (padded) vTable stride with a fused multiply-add.  This reaches 32K
    types instead of 32KiB of tables, at the cost of padding every
    vTable to the maximum size.  It requires an index-issuing allocator
    (see :meth:`VTableArena.index_for_type`).
    """

    name = "typepointer"
    header_size = 16  # built over SharedOA's shared-object header

    def __init__(self, software_mask: bool = False, header_size: int = 16,
                 index_mode: bool = False):
        super().__init__()
        self.software_mask = software_mask
        self.header_size = header_size
        self.index_mode = index_mode
        if software_mask:
            self.name = "typepointer-proto"
        if index_mode:
            self.name += "-indexed"

    def on_construct(self, addr: int, type_desc: TypeDescriptor) -> None:
        if self.header_size >= 16:
            SharedVTableDispatch.on_construct(self, addr, type_desc)
        else:
            self._write_vtable_header(addr, type_desc)

    def on_construct_many(self, addrs, type_desc):
        self._write_vtable_headers(
            addrs, type_desc, cpu_slot=self.header_size >= 16
        )

    def resolve(self, ctx, objptrs, slot, uniform=False):
        arena = self.machine.arena
        # Figure 5b line 1: SHR extracts the tag -- pure compute
        ctx.alu(1, op=Opcode.SHR, role=ROLE_DISPATCH_OVERHEAD)
        tags = decode_tag_array(objptrs)
        if (tags == 0).any():
            bad = int(objptrs[tags == 0][0])
            raise DispatchError(
                f"TypePointer dispatch on untagged pointer {bad:#x}; mixing "
                f"allocators breaks TypePointer (section 6.4 limitation 3)"
            )
        if self.index_mode:
            # fallback encoding: FFMA replaces the ADD (section 6.2);
            # tags are 1-based type indices into padded tables
            ctx.alu(1, op=Opcode.FFMA, role=ROLE_DISPATCH_OVERHEAD)
            stride = np.uint64(arena.padded_table_stride())
            offsets = tags * stride
        else:
            # Figure 5b line 2: ADD rebases the byte offset
            ctx.alu(1, op=Opcode.IADD, role=ROLE_DISPATCH_OVERHEAD)
            offsets = tags
        # Figure 5b line 3: LDG vFunc* at vTablesStartAddr + tag + offset
        entry_addrs = (
            np.uint64(arena.base if not self.index_mode
                      else arena.indexed_base) + offsets + np.uint64(8 * slot)
        ).astype(np.uint64)
        return ctx.load(entry_addrs, "u64", role=ROLE_LOAD_VFUNC)
