"""COAL's virtual range table and its segment-tree lookup (Algorithm 1).

The SharedOA allocator dedicates contiguous address ranges to each
type.  COAL augments the virtual function tables with these (base,
range) pairs -- the *virtual range table* (Figure 3) -- and organises
them into a balanced segment tree so the compiler-inserted lookup runs
in O(log2 K) for K ranges (Algorithm 1).

The tree is materialised **in simulated device memory**: each lookup
step issues real loads against the heap, which is exactly why COAL's
extra loads all hit in L1 (every thread walks the same small structure,
Figure 9).  Node layout (32 bytes, implicit children at 2i+1 / 2i+2):

    +0   min   u64   lowest address covered by this subtree
    +8   max   u64   one past the highest address covered
    +16  payload u64 leaf: vTable address; internal: 0
    +24  pad   u64

Empty padding leaves use (min=EMPTY_MIN > any address, max=0) so they
never match.
"""
from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import DispatchError
from ..memory.address_space import ADDR_MASK
from ..memory.heap import Heap

NODE_BYTES = 32
#: sentinel bounds for padding leaves: matches no address
EMPTY_MIN = ADDR_MASK + 1
EMPTY_MAX = 0


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


class VirtualRangeTable:
    """Range table + segment tree over one allocator snapshot."""

    def __init__(
        self,
        heap: Heap,
        ranges: List[Tuple[int, int, Hashable]],
        vtable_addr_for: Callable[[Hashable], int],
    ):
        """``ranges`` are (base, end, type_key) with end exclusive."""
        self.heap = heap
        self.entries = sorted(ranges)
        for (b1, e1, _), (b2, _, _) in zip(self.entries, self.entries[1:]):
            if b2 < e1:
                raise ValueError(
                    f"overlapping ranges [{b1:#x},{e1:#x}) and starting {b2:#x}"
                )
        self.num_ranges = len(self.entries)
        self.num_leaves = _next_pow2(max(self.num_ranges, 1))
        self.tree_size = 2 * self.num_leaves - 1
        #: levels of internal-node descent before reaching a leaf
        self.depth = self.num_leaves.bit_length() - 1

        self._payloads = [vtable_addr_for(t) for _, _, t in self.entries]
        self.tree_base = heap.sbrk(self.tree_size * NODE_BYTES, 256)
        self._build()

    # ------------------------------------------------------------------
    def _node_addr(self, i: int) -> int:
        return self.tree_base + i * NODE_BYTES

    def _write_node(self, i: int, lo: int, hi: int, payload: int) -> None:
        addr = self._node_addr(i)
        self.heap.store(addr, "u64", lo)
        self.heap.store(addr + 8, "u64", hi)
        self.heap.store(addr + 16, "u64", payload)

    def _read_node(self, i: int) -> Tuple[int, int, int]:
        addr = self._node_addr(i)
        return (
            int(self.heap.load(addr, "u64")),
            int(self.heap.load(addr + 8, "u64")),
            int(self.heap.load(addr + 16, "u64")),
        )

    def _build(self) -> None:
        first_leaf = self.num_leaves - 1
        for j in range(self.num_leaves):
            if j < self.num_ranges:
                base, end, _ = self.entries[j]
                self._write_node(first_leaf + j, base, end, self._payloads[j])
            else:
                self._write_node(first_leaf + j, EMPTY_MIN, EMPTY_MAX, 0)
        for i in range(first_leaf - 1, -1, -1):
            llo, lhi, _ = self._read_node(2 * i + 1)
            rlo, rhi, _ = self._read_node(2 * i + 2)
            lo = min(llo, rlo)
            hi = max(lhi, rhi)
            self._write_node(i, lo, hi, 0)

    # ------------------------------------------------------------------
    # reference lookups (host-side, uncharged; used for validation)
    # ------------------------------------------------------------------
    def linear_lookup(self, addr: int) -> Optional[int]:
        """Reference linear scan: vTable address for ``addr`` or None."""
        for (base, end, _), payload in zip(self.entries, self._payloads):
            if base <= addr < end:
                return payload
        return None

    def scalar_lookup(self, addr: int) -> Optional[int]:
        """Scalar Algorithm 1 walk over the in-heap tree."""
        node = 0
        while True:
            left = 2 * node + 1
            if left >= self.tree_size:
                lo, hi, payload = self._read_node(node)
                return payload if lo <= addr < hi else None
            llo, lhi, _ = self._read_node(left)
            if llo <= addr < lhi:
                node = left
                continue
            rlo, rhi, _ = self._read_node(left + 1)
            if rlo <= addr < rhi:
                node = left + 1
                continue
            return None

    # ------------------------------------------------------------------
    # warp-wide charged lookup (used by the COAL dispatch lowering)
    # ------------------------------------------------------------------
    def lookup_warp(self, ctx, addrs: np.ndarray, role: str) -> np.ndarray:
        """Algorithm 1 for a whole warp; returns per-lane vTable addresses.

        ``ctx`` is the execution context the dispatch strategy runs
        under: each tree level charges one coalesced LDG over both
        children's bounds (64 contiguous bytes), two SETP compares and
        one BRA, exactly the loop body of Algorithm 1.  Raises
        :class:`DispatchError` when any lane's address is in no range
        (the algorithm's NULL return).
        """
        from ..gpu.isa import Opcode  # local import avoids a cycle

        n = len(addrs)
        a = addrs.astype(np.uint64, copy=False)
        node = np.zeros(n, dtype=np.int64)
        dead = np.zeros(n, dtype=bool)

        for _ in range(self.depth):
            left = 2 * node + 1
            child_addrs = (self.tree_base + left * NODE_BYTES).astype(np.uint64)
            # one 64B load covers (left.min, left.max, right.min, right.max)
            ctx.charged_load(child_addrs, width=64, role=role)
            llo = ctx.peek(child_addrs, "u64")
            lhi = ctx.peek(child_addrs + np.uint64(8), "u64")
            rlo = ctx.peek(child_addrs + np.uint64(NODE_BYTES), "u64")
            rhi = ctx.peek(child_addrs + np.uint64(NODE_BYTES + 8), "u64")
            # per-level SASS: node-index arithmetic (IMAD), two range
            # compares, a select and the loop branch (Algorithm 1 body)
            ctx.alu(2, op=Opcode.SETP, role=role)
            ctx.alu(2, op=Opcode.IADD, role=role)
            ctx.alu(1, op=Opcode.SEL, role=role)
            ctx.ctrl(1, role=role)
            in_left = (llo <= a) & (a < lhi)
            in_right = (rlo <= a) & (a < rhi) & ~in_left
            node = np.where(in_left, left, np.where(in_right, left + 1, node))
            dead |= ~(in_left | in_right)

        # read the leaf payload (the vTable pointer for the matched range)
        leaf_addrs = (self.tree_base + node * NODE_BYTES).astype(np.uint64)
        if self.depth == 0:
            # single-node tree: the loop never ran, so bounds-check here
            ctx.charged_load(leaf_addrs, width=32, role=role)
            lo = ctx.peek(leaf_addrs, "u64")
            hi = ctx.peek(leaf_addrs + np.uint64(8), "u64")
            ctx.alu(1, op=Opcode.SETP, role=role)
            dead |= ~((lo <= a) & (a < hi))
        payload_addrs = leaf_addrs + np.uint64(16)
        ctx.charged_load(payload_addrs, width=8, role=role)
        payloads = ctx.peek(payload_addrs, "u64")

        if dead.any():
            bad = int(a[dead][0])
            raise DispatchError(
                f"COAL range lookup found no range for address {bad:#x} "
                f"(object not allocated by SharedOA?)"
            )
        return payloads
