"""Core contribution: dispatch strategies and COAL's range table."""

from .dispatch import (
    COALDispatch,
    ConcordDispatch,
    DispatchStrategy,
    SharedVTableDispatch,
    TypePointerDispatch,
    VTableDispatch,
)
from .instrumentation import (
    CallSite,
    disassemble,
    mnemonics,
    should_instrument_coal,
)
from .range_table import NODE_BYTES, VirtualRangeTable

__all__ = [
    "CallSite",
    "disassemble",
    "mnemonics",
    "should_instrument_coal",
    "COALDispatch",
    "ConcordDispatch",
    "DispatchStrategy",
    "SharedVTableDispatch",
    "TypePointerDispatch",
    "VTableDispatch",
    "NODE_BYTES",
    "VirtualRangeTable",
]
