"""The compiler's view: call-site analysis and lowering disassembly.

Two jobs the paper assigns to the compiler (section 5/6.2):

1. decide per call site whether to instrument it -- COAL skips sites
   where "every thread in a warp will be accessing the same object
   instance" because the lookup overhead would outweigh removing a
   coalesced load, and
2. emit the per-technique instruction sequence for ``obj->vfunc()``.

:func:`disassemble` renders those sequences as SASS-like text, both as
living documentation and so tests can assert the published lowering
(Figure 5b) literally.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CallSite:
    """Static facts the compiler knows about one virtual call site."""

    method: str
    #: statically provable that all lanes call through the same object
    uniform: bool = False
    #: the call's receiver expression, for diagnostics
    receiver: str = "obj"


def should_instrument_coal(site: CallSite) -> bool:
    """The section-5 heuristic: instrument unless provably uniform.

    "We have observed that removing coalesced loads to the same object
    does not outweigh COAL's overhead."
    """
    return not site.uniform


# ----------------------------------------------------------------------
# lowering disassembly
# ----------------------------------------------------------------------
def _cuda_sequence(slot: int) -> List[str]:
    return [
        f"LDG   Rvt, [Robj]            ; A: load embedded vTable*",
        f"LDG   Rfo, [Rvt+{8 * slot:#x}]         ; B: load vFunc entry",
        f"LDC   Rfn, c0[Rfo]           ; per-kernel translation (sec. 2)",
        f"CALL  Rfn                    ; C: indirect call",
    ]


def _concord_sequence(slot: int, num_types: int) -> List[str]:
    levels = max(1, math.ceil(math.log2(num_types)) if num_types > 1 else 1)
    seq = [f"LDG   Rtag, [Robj]           ; load embedded type tag"]
    for i in range(levels):
        seq.append(f"ISETP Rtag, #t{i}             ; switch compare")
        seq.append(f"BRA   @P, L{i}                ; switch branch")
    seq.append("BRA   Lbody                  ; direct jump to known body")
    return seq


def _coal_sequence(slot: int, depth: int) -> List[str]:
    seq = []
    for level in range(depth):
        seq.extend([
            f"LDG.64 Rb, [Rtree+Rnode*32+32] ; children bounds (lvl {level})",
            "ISETP Raddr, Rb.lo           ; in left range?",
            "IMAD  Rnode, Rnode, 2, 1     ; next node index",
            "IADD  Rnode, Rnode, Rsel     ;",
            "SEL   Rnode, Rnode, Rright   ;",
            "BRA   Lloop                  ; Algorithm 1 loop",
        ])
    seq.extend([
        "LDG   Rvt, [Rtree+Rnode*32+16] ; leaf payload: vTable*",
        f"LDG   Rfo, [Rvt+{8 * slot:#x}]         ; B: load vFunc entry",
        "LDC   Rfn, c0[Rfo]           ; per-kernel translation",
        "CALL  Rfn                    ; C: indirect call",
    ])
    return seq


def _typepointer_sequence(slot: int, index_mode: bool = False) -> List[str]:
    # exactly Figure 5b
    seq = [f"SHR   Ra, Robj, #49          ; extract 15-bit tag"]
    if index_mode:
        seq.append("FFMA  Ra, Ra, Rstride, RvTablesStartAddr ; index * stride")
    else:
        seq.append("ADD   Ra, Ra, RvTablesStartAddr ; rebase onto arena")
    seq.extend([
        f"LDG   Rfo, [Ra+{8 * slot:#x}]          ; B: load vFunc entry",
        "LDC   Rfn, c0[Rfo]           ; per-kernel translation",
        "CALL  Rfn                    ; C: indirect call",
    ])
    return seq


def disassemble(technique: str, slot: int = 0, num_types: int = 4,
                tree_depth: int = 2, index_mode: bool = False,
                site: CallSite = None) -> List[str]:
    """SASS-like lowering of a virtual call under ``technique``.

    ``site`` lets COAL apply its heuristic: a uniform site lowers to
    the plain CUDA sequence.
    """
    # soa reuses the embedded-vTable lowering: the header stays
    # contiguous at the object pointer, only member accesses transpose
    if technique in ("cuda", "sharedoa", "soa", "tp_on_cuda_baseline"):
        return _cuda_sequence(slot)
    if technique == "concord":
        return _concord_sequence(slot, num_types)
    if technique == "coal":
        if site is not None and not should_instrument_coal(site):
            return _cuda_sequence(slot)
        return _coal_sequence(slot, tree_depth)
    if technique in ("typepointer", "typepointer_proto", "tp_on_cuda"):
        return _typepointer_sequence(slot, index_mode=False)
    if technique == "typepointer_indexed":
        return _typepointer_sequence(slot, index_mode=True)
    raise ValueError(f"unknown technique {technique!r}")


def mnemonics(sequence: List[str]) -> List[str]:
    """Just the opcodes of a disassembled sequence."""
    return [line.split()[0].split(".")[0] for line in sequence]
