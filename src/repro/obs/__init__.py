"""repro.obs: lightweight telemetry -- scoped spans and named counters.

The harness layers (``gpu.machine``/``gpu.executor``, ``harness.runner``,
``harness.service``, ``harness.store``, ``memory``) report into one
process-local :class:`Registry`:

* **spans** are monotonic timers with parent/child nesting.  They are
  *aggregated*, not traced: entering ``store.bucket_merge`` twice under
  the same parent accumulates one node with ``count == 2`` and the
  summed ``total_s``, so the registry stays a few KB no matter how long
  the run is, and merging registries across worker processes is a
  recursive add.
* **counters** are named monotonic integers (``machine.memo_hits``,
  ``store.bucket_corrupt``, ...).

The whole layer is built to be cheap enough to leave on: counter bumps
are one dict update, spans two ``perf_counter`` calls; ``python -m
repro selfbench`` asserts the warm-path overhead stays under 2%
(``telemetry_overhead`` in ``BENCH_pipeline.json``).  Set ``REPRO_OBS=0``
to hard-disable every probe anyway.

Serialisation: :meth:`Registry.to_dict` emits a JSON-safe payload
(:data:`SCHEMA`), :meth:`Registry.merge_dict` folds another process's
payload in (the parallel service merges every worker's dump into the
run manifest), and :func:`validate_payload` schema-checks a payload --
spans must nest consistently, counters must be non-negative ints (CI
runs it against the ``--telemetry`` dump of the smoke run).

Span/counter naming scheme (see DESIGN.md section 5.3): dotted
``<layer>.<event>``, where layer is one of ``machine``, ``runner``,
``service``, ``store``, ``memory``, ``serve``.  The serving daemon
(:mod:`repro.serve`) records admission/queue/cache counters
(``serve.submits``, ``serve.cache_hits``, ``serve.dedup_joined``,
``serve.rejected_queue_full``, ...) and per-experiment latency under
``serve.job.<experiment>``; its ``stats`` protocol verb returns this
registry's live :meth:`Registry.to_dict` snapshot.
"""
from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional

#: payload schema tag, bumped when the layout changes
SCHEMA = "repro-obs/1"

#: environment kill-switch: set to 0/false/off to disable all probes
OBS_ENV_VAR = "REPRO_OBS"


def _env_enabled() -> bool:
    return os.environ.get(OBS_ENV_VAR, "1").lower() not in (
        "0", "false", "off", "no",
    )


class SpanNode:
    """One aggregated span: total time and entry count, with children."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def merge(self, other: "SpanNode") -> None:
        self.count += other.count
        self.total_s += other.total_s
        for name, theirs in other.children.items():
            self.child(name).merge(theirs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SpanNode":
        node = cls(str(payload["name"]))
        node.count = int(payload.get("count", 0))
        node.total_s = float(payload.get("total_s", 0.0))
        for child in payload.get("children", ()):  # preserves order
            node.children[str(child["name"])] = cls.from_dict(child)
        return node


class _SpanContext:
    """Context-manager handle for one live span entry (cheap, reusable
    per call site via :meth:`Registry.span`)."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_SpanContext":
        reg = self._registry
        reg._stack.append(reg._stack[-1].child(self._name))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dt = time.perf_counter() - self._t0
        node = self._registry._stack.pop()
        node.count += 1
        node.total_s += dt
        return False


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class Registry:
    """Process-local span tree + counter map."""

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = _env_enabled() if enabled is None else enabled
        self.counters: Dict[str, int] = {}
        self.root = SpanNode("<root>")
        self._stack: List[SpanNode] = [self.root]

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            c = self.counters
            c[name] = c.get(name, 0) + n

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold an externally measured duration in as a child of the
        current span (the no-context-manager fast path for hot loops)."""
        if self.enabled:
            node = self._stack[-1].child(name)
            node.count += count
            node.total_s += seconds

    def add_root_time(self, name: str, seconds: float,
                      count: int = 1) -> None:
        """Fold a duration in at the root of the tree. For reporters on
        other threads (the serve daemon's job callbacks): their wall
        time overlaps whatever span the owning thread currently has
        open, so nesting there would break the children-<=-parent
        invariant -- same reason worker merges land at the root."""
        if self.enabled:
            node = self.root.child(name)
            node.count += count
            node.total_s += seconds

    def span(self, name: str):
        """``with registry.span("store.bucket_merge"): ...``"""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name)

    def reset(self) -> None:
        self.counters = {}
        self.root = SpanNode("<root>")
        self._stack = [self.root]

    # ------------------------------------------------------------------
    # serialisation and merging
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA,
            "pid": os.getpid(),
            "counters": dict(self.counters),
            "spans": [c.to_dict() for c in self.root.children.values()],
        }

    def merge_dict(self, payload: Optional[Dict]) -> None:
        """Fold another registry's :meth:`to_dict` payload into this one
        (at the root -- worker trees sit beside the parent's)."""
        if not payload:
            return
        for name, value in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(value)
        for span in payload.get("spans", ()):
            self.root.child(str(span["name"])).merge(SpanNode.from_dict(span))

    # ------------------------------------------------------------------
    def render(self, title: str = "telemetry") -> str:
        return render_payload(self.to_dict(), title=title)


# ----------------------------------------------------------------------
# the process-wide registry and the module-level fast paths
# ----------------------------------------------------------------------
_REGISTRY = Registry()


def registry() -> Registry:
    return _REGISTRY


def set_registry(reg: Registry) -> Registry:
    """Swap the process-wide registry (worker shards run under a fresh
    one so their dump is the shard's own delta); returns the old one."""
    global _REGISTRY
    old, _REGISTRY = _REGISTRY, reg
    return old


def count(name: str, n: int = 1) -> None:
    reg = _REGISTRY
    if reg.enabled:
        c = reg.counters
        c[name] = c.get(name, 0) + n


def add_time(name: str, seconds: float, count: int = 1) -> None:
    _REGISTRY.add_time(name, seconds, count)


def add_root_time(name: str, seconds: float, count: int = 1) -> None:
    _REGISTRY.add_root_time(name, seconds, count)


def span(name: str):
    return _REGISTRY.span(name)


def enabled() -> bool:
    return _REGISTRY.enabled


def set_enabled(flag: bool) -> bool:
    """Toggle the process-wide registry's probes; returns the old flag."""
    reg = _REGISTRY
    old, reg.enabled = reg.enabled, flag
    return old


def snapshot() -> Dict:
    return _REGISTRY.to_dict()


def merge_payloads(payloads: Iterable[Optional[Dict]]) -> Dict:
    """Merge several registry dumps into one fresh payload."""
    merged = Registry(enabled=True)
    for p in payloads:
        merged.merge_dict(p)
    return merged.to_dict()


# ----------------------------------------------------------------------
# validation (shared by tests and the CI schema check)
# ----------------------------------------------------------------------
def validate_payload(payload: Dict, tolerance_frac: float = 0.02) -> None:
    """Schema-check a registry dump; raises ``ValueError`` on violation.

    Checks: the schema tag, every counter a non-negative int, and span
    nesting consistency -- every node's children sum to at most the
    node's own total time (plus a small tolerance for timer jitter).
    """
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(f"not a {SCHEMA} payload: {payload!r:.80}")
    for name, value in payload.get("counters", {}).items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"counter {name!r} is not a non-negative int: "
                             f"{value!r}")

    def check(node: Dict, path: str) -> None:
        here = f"{path}/{node['name']}"
        if node["count"] < 0 or node["total_s"] < 0:
            raise ValueError(f"span {here} has negative count/time")
        children = node.get("children", ())
        child_total = sum(c["total_s"] for c in children)
        budget = node["total_s"] * (1.0 + tolerance_frac) + 1e-6
        if child_total > budget:
            raise ValueError(
                f"span {here}: children total {child_total:.6f}s exceeds "
                f"own total {node['total_s']:.6f}s"
            )
        for c in children:
            check(c, here)

    for span_ in payload.get("spans", ()):
        check(span_, "")


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}us"


def render_payload(payload: Dict, title: str = "telemetry") -> str:
    """Tree-rendered span report plus the counter block."""
    lines = [title, f"{'span':44s} {'count':>8s} {'total':>9s} {'mean':>9s}"]

    def walk(node: Dict, depth: int) -> None:
        mean = node["total_s"] / node["count"] if node["count"] else 0.0
        lines.append(
            f"{'  ' * depth + node['name']:44s} {node['count']:8d} "
            f"{_fmt_s(node['total_s'])} {_fmt_s(mean)}"
        )
        for c in node.get("children", ()):
            walk(c, depth + 1)

    spans = payload.get("spans", ())
    if not spans:
        lines.append("  (no spans recorded)")
    for span_ in spans:
        walk(span_, 0)
    counters = payload.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':44s} {'value':>8s}")
        for name in sorted(counters):
            lines.append(f"{name:44s} {counters[name]:8d}")
    return "\n".join(lines)
