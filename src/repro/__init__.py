"""repro: a simulation-level reproduction of
"Judging a Type by Its Pointer: Optimizing GPU Virtual Functions"
(Zhang, Alawneh, Rogers; ASPLOS 2021).

Quick start::

    from repro import Machine, TypeDescriptor

    def speak(ctx, objs):
        ctx.alu(1)

    Dog = TypeDescriptor("Dog", fields=[("age", "u32")],
                         methods={"speak": speak})
    m = Machine("typepointer")
    dogs = m.new_objects(Dog, 1024)

    def kernel(ctx):
        ctx.vcall(dogs[ctx.tid], Dog, "speak")

    stats = m.launch(kernel, len(dogs))
    print(stats.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .errors import (
    AllocatorError,
    DispatchError,
    DoubleFree,
    FrontendError,
    InvalidAddress,
    LaunchConfigError,
    LaunchError,
    MMUFault,
    OutOfMemory,
    ReproError,
    TypeSystemError,
    TypeTagOverflow,
    UnknownTechniqueError,
)
from . import techniques
from .frontend import abstract, device_class, kernel, virtual
from .gpu import (
    FIGURE6_TECHNIQUES,
    TECHNIQUES,
    GPUConfig,
    InstrClass,
    KernelStats,
    Machine,
    small_config,
)
from .memory import (
    CudaHeapAllocator,
    Heap,
    MMU,
    MMUMode,
    SharedOAAllocator,
    SoaAllocator,
    TypePointerAllocator,
)
from .runtime import DeviceArray, ObjectProxy, SharedObjectSpace, TypeDescriptor, proxies

__version__ = "1.0.0"

__all__ = [
    "AllocatorError",
    "DispatchError",
    "DoubleFree",
    "FrontendError",
    "InvalidAddress",
    "LaunchConfigError",
    "LaunchError",
    "abstract",
    "device_class",
    "kernel",
    "virtual",
    "MMUFault",
    "OutOfMemory",
    "ReproError",
    "TypeSystemError",
    "TypeTagOverflow",
    "UnknownTechniqueError",
    "techniques",
    "FIGURE6_TECHNIQUES",
    "TECHNIQUES",
    "GPUConfig",
    "InstrClass",
    "KernelStats",
    "Machine",
    "small_config",
    "CudaHeapAllocator",
    "Heap",
    "MMU",
    "MMUMode",
    "SharedOAAllocator",
    "SoaAllocator",
    "TypePointerAllocator",
    "DeviceArray",
    "ObjectProxy",
    "proxies",
    "SharedObjectSpace",
    "TypeDescriptor",
    "__version__",
]
