"""Synchronous client for the ``repro serve`` daemon.

One request per connection (the daemon is long-lived, connections are
cheap); every reply is schema-checked with
:func:`repro.serve.protocol.validate_envelope` before it is returned.

Example::

    from repro.serve import ServeClient

    client = ServeClient(socket_path="/tmp/repro-serve.sock")
    client.wait_until_ready(10.0)
    reply = client.submit("fig6", scale=0.05, quick=True)
    if reply["ok"]:
        print(reply["rendered"])
    elif reply["error"] == "queue_full":
        time.sleep(reply["retry_after"])   # explicit backpressure
"""
from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from . import protocol

#: connect-phase timeout used when the instance has no configured
#: timeout (an unconfigured client should still not hang on connect)
DEFAULT_CONNECT_TIMEOUT_S = 10.0


class ServeError(RuntimeError):
    """Transport-level failure talking to the daemon."""


class ServeClient:
    """Blocking ``repro-serve/1`` client (TCP or Unix socket)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        socket_path: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        #: per-reply receive timeout (None: wait for the job to finish)
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _connect(self, wait_s: float = 0.0,
                 timeout: Optional[float] = None) -> socket.socket:
        """Connect, optionally retrying a not-yet-listening daemon.

        ``timeout`` overrides the instance receive timeout for this one
        connection (callers with their own deadline, e.g.
        :meth:`wait_until_ready`, bound the receive with it).  The
        connect phase respects the same value -- falling back to
        :data:`DEFAULT_CONNECT_TIMEOUT_S` when neither is set, so an
        unconfigured client never hangs inside ``connect``.
        """
        deadline = time.monotonic() + wait_s
        recv_timeout = self.timeout if timeout is None else timeout
        connect_timeout = (recv_timeout if recv_timeout is not None
                           else DEFAULT_CONNECT_TIMEOUT_S)
        while True:
            try:
                if self.socket_path:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(connect_timeout)
                    try:
                        sock.connect(self.socket_path)
                    except OSError:
                        sock.close()
                        raise
                else:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=connect_timeout)
                sock.settimeout(recv_timeout)
                return sock
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ServeError(
                        f"cannot connect to {self._endpoint()}: {exc}"
                    ) from exc
                time.sleep(0.05)

    def _endpoint(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    def request(self, verb: str, *, wait_s: float = 0.0,
                timeout: Optional[float] = None,
                **fields: Any) -> Dict[str, Any]:
        """Send one request, return the validated reply envelope.

        ``timeout`` (when given) bounds this request's receive instead
        of the instance default -- a socket timeout surfaces as
        :class:`ServeError` like any other transport failure.
        """
        sock = self._connect(wait_s, timeout=timeout)
        try:
            protocol.send_frame(sock, protocol.request(verb, **fields))
            reply = protocol.recv_frame(sock)
        except OSError as exc:
            raise ServeError(
                f"lost connection to {self._endpoint()}: {exc}") from exc
        finally:
            sock.close()
        if reply is None:
            raise ServeError(
                f"daemon at {self._endpoint()} closed the connection "
                f"without replying")
        protocol.validate_envelope(reply)
        return reply

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def submit(self, experiment: str, *, params: Optional[Dict] = None,
               scale: Optional[float] = None, seed: int = 7,
               quick: bool = False, wait_s: float = 0.0) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "experiment": experiment, "seed": seed, "quick": quick,
            "params": params or {},
        }
        if scale is not None:
            fields["scale"] = scale
        return self.request("submit", wait_s=wait_s, **fields)

    def status(self, wait_s: float = 0.0) -> Dict[str, Any]:
        return self.request("status", wait_s=wait_s)

    def health(self, wait_s: float = 0.0) -> Dict[str, Any]:
        return self.request("health", wait_s=wait_s)

    def stats(self, wait_s: float = 0.0) -> Dict[str, Any]:
        return self.request("stats", wait_s=wait_s)

    def drain(self, wait_s: float = 0.0) -> Dict[str, Any]:
        return self.request("drain", wait_s=wait_s)

    def experiments(self, wait_s: float = 0.0) -> Dict[str, Any]:
        return self.request("experiments", wait_s=wait_s)

    def wait_until_ready(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Block until the daemon answers ``health`` (or raise).

        The whole call is bounded by ``timeout``: connect retries
        consume the deadline *and* each receive is capped at the
        remaining budget, so a daemon that accepts connections but
        never replies cannot hang a client whose ``self.timeout`` is
        None (it used to: only the connect phase was bounded).
        """
        deadline = time.monotonic() + timeout
        last_exc: Optional[Exception] = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"daemon at {self._endpoint()} not ready within "
                    f"{timeout:.1f}s") from last_exc
            try:
                return self.request("health", wait_s=remaining,
                                    timeout=max(0.05, remaining))
            except ServeError as exc:
                last_exc = exc
                time.sleep(0.05)
