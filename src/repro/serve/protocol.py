"""The ``repro-serve/1`` wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object.  Requests carry
``{"schema": "repro-serve/1", "verb": ...}`` plus verb-specific fields;
responses add ``"ok"`` and, on failure, a machine-readable ``"error"``
code (``queue_full`` failures also carry ``retry_after`` seconds, the
HTTP-429 analogue).

:func:`validate_envelope` schema-checks a response the same way
:func:`repro.obs.validate_payload` checks a telemetry dump and
:func:`repro.harness.service.validate_manifest` checks a run manifest:
the client runs it on every reply, the server asserts it on every
response it writes, and the tests feed both good and corrupted
envelopes through it.
"""
from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from .. import faults

#: wire schema tag, bumped when the framing or envelope layout changes
SCHEMA = "repro-serve/1"

# Failpoints on the daemon-side framing (the async entry points only;
# the blocking client-side helpers stay clean).  ``disconnect`` raises a
# ConnectionResetError subclass, so an injected drop flows through the
# server's ordinary connection-teardown path.
faults.declare("serve.frame.read", "disconnect", "delay")
faults.declare("serve.frame.write", "disconnect", "delay")

#: default TCP port of ``python -m repro serve``
DEFAULT_PORT = 7453

#: hard per-frame size bound (a submit reply is a rendered table, KBs)
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: every verb a request may name (``error`` is reserved for replies to
#: requests too malformed to echo a verb back)
VERBS = ("submit", "status", "health", "stats", "drain", "experiments",
         "error")

#: machine-readable error codes a reply may carry (``no_workers`` is
#: cluster-router-only: the hash ring is empty or failover retries ran
#: out, so there is no daemon to route the submit to)
ERROR_CODES = (
    "bad_request",
    "unknown_verb",
    "unknown_experiment",
    "draining",
    "queue_full",
    "job_failed",
    "internal_error",
    "no_workers",
)


class ProtocolError(ValueError):
    """A malformed frame or envelope."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one message to its on-wire bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame body is not an object: {payload!r:.60}")
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME:
        raise ProtocolError(f"incoming frame of {length} bytes exceeds "
                            f"MAX_FRAME ({MAX_FRAME})")


async def read_frame(reader) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; None on clean EOF."""
    import asyncio

    faults.failpoint("serve.frame.read")
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_body(body)


async def write_frame(writer, payload: Dict[str, Any]) -> None:
    faults.failpoint("serve.frame.write")
    writer.write(encode_frame(payload))
    await writer.drain()


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Blocking read of one frame from a socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(payload))


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def request(verb: str, **fields: Any) -> Dict[str, Any]:
    return {"schema": SCHEMA, "verb": verb, **fields}


def response(verb: str, **fields: Any) -> Dict[str, Any]:
    return {"schema": SCHEMA, "verb": verb, "ok": True, **fields}


def error_reply(verb: str, error: str, **fields: Any) -> Dict[str, Any]:
    return {"schema": SCHEMA, "verb": verb, "ok": False, "error": error,
            **fields}


def validate_envelope(payload: Any) -> None:
    """Schema-check one response envelope; raises :class:`ProtocolError`.

    Checks the schema tag, a known verb, a boolean ``ok``, an error
    code on failure replies, and that a ``retry_after`` backpressure
    hint (when present) is a non-negative number.
    """
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ProtocolError(f"not a {SCHEMA} envelope: {payload!r:.80}")
    verb = payload.get("verb")
    if verb not in VERBS:
        raise ProtocolError(f"unknown verb {verb!r} in envelope")
    ok = payload.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError(f"envelope 'ok' is not a bool: {ok!r}")
    if not ok:
        error = payload.get("error")
        if not isinstance(error, str) or not error:
            raise ProtocolError(
                f"failure envelope lacks an error code: {payload!r:.80}")
        if error not in ERROR_CODES:
            raise ProtocolError(f"unknown error code {error!r}")
    retry_after = payload.get("retry_after")
    if retry_after is not None:
        if (not isinstance(retry_after, (int, float))
                or isinstance(retry_after, bool) or retry_after < 0):
            raise ProtocolError(
                f"retry_after is not a non-negative number: {retry_after!r}")
