"""LRU result cache for the serving daemon.

Keyed by the same ``(experiment, params, scale, seed, quick)`` job key
the admission controller dedups on, it sits *above* the persistent
replay store: the store makes recomputation cheap (waves replay from
disk), the cache makes it free (the rendered result is returned without
touching the worker pool at all).
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables caching (every lookup misses); hit/miss
    totals are kept on the instance so the ``status``/``stats`` verbs
    can surface them without a separate ledger.

    Thread-safe: jobs complete on executor threads (``server.py``
    dispatch) and the cluster router shares one instance across
    connections, so every entry/counter mutation holds an internal
    lock -- an ``OrderedDict`` mid-``move_to_end`` is not safe to
    mutate from a second thread.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            if self.capacity <= 0:
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
