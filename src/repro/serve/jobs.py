"""Job table and admission control for the serving daemon.

Admission is decided entirely on the event loop (single-threaded), in
strict priority order for every ``submit``:

1. **cache** -- the key's result is in the LRU cache: answer
   immediately, no work admitted;
2. **dedup** -- an identical job is already queued or running: the new
   request *joins* it (awaits the same future), so any number of
   concurrent identical submissions collapse into one computation;
3. **backpressure** -- the bounded job table is full: reject with a
   ``retry_after`` estimate instead of buffering without bound;
4. **admit** -- enqueue a fresh job.

``retry_after`` is derived from an EWMA of recent job wall times: the
expected time until a queue slot frees, given the current depth and the
number of executor threads.
"""
from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..canon import canonical_json
from .cache import LRUCache

#: default bound on distinct queued+running jobs
DEFAULT_QUEUE_LIMIT = 16

#: ``retry_after`` fallback before any job has completed
_COLD_RETRY_AFTER_S = 5.0


def job_key(spec: Dict[str, Any]) -> str:
    """Canonical dedup/cache key for one submit spec.

    The spec fields (experiment, params, scale, seed, quick) fully
    determine the computation -- the daemon runs one registry under one
    GPU config -- so a canonicalized, sorted-key JSON dump
    (:func:`repro.canon.canonical_json`, shared with the sweep engine's
    point IDs) is a stable identity: param insertion order and
    equal-value re-encodings (``2`` vs ``2.0``) cannot split the
    dedup/cache key.
    """
    return canonical_json({
        "experiment": spec["experiment"],
        "scale": spec.get("scale"),
        "seed": spec.get("seed"),
        "quick": bool(spec.get("quick", False)),
        "params": spec.get("params") or {},
    })


@dataclass
class Job:
    """One admitted computation; duplicate submissions share it."""

    key: str
    spec: Dict[str, Any]
    future: "asyncio.Future" = field(repr=False)
    waiters: int = 1


@dataclass
class Decision:
    """What the admission controller decided for one submit."""

    kind: str                       # cached | joined | rejected | admitted
    job: Optional[Job] = None
    result: Optional[Dict[str, Any]] = None
    retry_after: Optional[float] = None


class Admission:
    """Bounded job table + LRU result cache + latency bookkeeping."""

    def __init__(self, queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 cache_size: int = 64, job_threads: int = 1):
        self.queue_limit = queue_limit
        self.job_threads = max(1, job_threads)
        self.cache = LRUCache(cache_size)
        self.jobs: Dict[str, Job] = {}
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.dedup_joined = 0
        self.rejected = 0
        self.ewma_wall_s: Optional[float] = None
        #: per-experiment latency totals: name -> [count, total_s]
        self.latency: Dict[str, list] = {}

    # ------------------------------------------------------------------
    def decide(self, key: str, spec: Dict[str, Any]) -> Decision:
        cached = self.cache.get(key)
        if cached is not None:
            return Decision(kind="cached", result=cached)
        job = self.jobs.get(key)
        if job is not None:
            job.waiters += 1
            self.dedup_joined += 1
            return Decision(kind="joined", job=job)
        if len(self.jobs) >= self.queue_limit:
            self.rejected += 1
            return Decision(kind="rejected", retry_after=self.retry_after())
        job = Job(key=key, spec=spec,
                  future=asyncio.get_running_loop().create_future())
        self.jobs[key] = job
        self.admitted += 1
        return Decision(kind="admitted", job=job)

    def retry_after(self) -> float:
        """Seconds a rejected client should wait before resubmitting."""
        if self.ewma_wall_s is None:
            return _COLD_RETRY_AFTER_S
        depth = max(1, len(self.jobs))
        estimate = self.ewma_wall_s * depth / self.job_threads
        return round(max(0.5, min(estimate, 600.0)), 2)

    # ------------------------------------------------------------------
    def complete(self, job: Job, result: Dict[str, Any],
                 wall_s: float) -> None:
        """A job finished: publish its result, then free its queue slot.

        Cache **before** popping the job table: a duplicate submit
        racing with completion must land in one of the two lookups
        (dedup-join while the job is still tabled, cache hit once it is
        not).  Popping first opens a window where the key is in neither
        and the duplicate is admitted and recomputed.
        """
        self.cache.put(job.key, result)
        self.jobs.pop(job.key, None)
        self.completed += 1
        self.ewma_wall_s = (wall_s if self.ewma_wall_s is None
                            else 0.7 * self.ewma_wall_s + 0.3 * wall_s)
        bucket = self.latency.setdefault(job.spec["experiment"], [0, 0.0])
        bucket[0] += 1
        bucket[1] += wall_s

    def fail(self, job: Job) -> None:
        """A job raised: free its slot without caching anything."""
        self.jobs.pop(job.key, None)
        self.failed += 1

    # ------------------------------------------------------------------
    def latency_stats(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"count": count, "mean_s": total / count if count else 0.0}
            for name, (count, total) in sorted(self.latency.items())
        }

    def counters(self) -> Dict[str, int]:
        return {
            "jobs_admitted": self.admitted,
            "jobs_completed": self.completed,
            "jobs_failed": self.failed,
            "dedup_joined": self.dedup_joined,
            "rejected_queue_full": self.rejected,
        }
