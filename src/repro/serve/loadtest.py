"""Loadtest harness: seeded traffic against a serving cluster.

``python -m repro loadtest`` answers the ROADMAP's scale question --
"what does this system do under a million users?" -- with a measured
report instead of a guess.  A deterministic generator (one
``random.Random(seed)``; same seed, same schedule, byte for byte)
produces a stream of experiment submissions whose popularity follows a
zipf law (a few hot experiment configs, a long tail), with occasional
duplicate *bursts* -- the same user story that motivates the daemon's
dedup-join.  A thread-pool driver replays the stream against a cluster
endpoint in one of two modes:

* **closed loop** -- N concurrent users, each issuing its next request
  when the previous one answers (throughput-bound, the classic
  benchmark shape);
* **open loop** -- requests arrive at a fixed Poisson rate regardless
  of completions, and latency is measured from the *scheduled* arrival
  time, so queueing delay is charged to the system rather than hidden
  by a stalled generator (the coordinated-omission correction).

The report (schema ``repro-loadtest/1``, default ``BENCH_serve.json``)
carries p50/p95/p99 latency, throughput, dedup/cache hit rates and the
shed fraction, and :func:`validate_loadtest_report` schema-checks it
the same way the other BENCH writers do.
"""
from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from .client import ServeClient, ServeError

#: report schema tag
SCHEMA = "repro-loadtest/1"

#: default report path (sibling of BENCH_pipeline/BENCH_service)
DEFAULT_OUTPUT = "BENCH_serve.json"

#: default synthetic per-job cost when the loadtest boots its own
#: cluster -- large enough to exercise dedup windows, small enough that
#: 100k requests finish in CI time
DEFAULT_SYNTHETIC_S = 0.002


@dataclass
class LoadtestSpec:
    """Everything that determines a loadtest run (and its schedule)."""

    users: int = 10_000                 #: total requests to issue
    concurrency: int = 32               #: driver threads (closed loop)
    rate: Optional[float] = None        #: req/s; set -> open loop
    zipf_alpha: float = 1.1             #: popularity skew exponent
    key_space: int = 32                 #: distinct (experiment, seed) keys
    burst_prob: float = 0.05            #: chance a request bursts
    burst_size: int = 4                 #: duplicates per burst
    experiments: Tuple[str, ...] = ("init",)
    scale: float = 0.05
    quick: bool = True
    seed: int = 7                       #: schedule seed

    def mode(self) -> str:
        return "open" if self.rate else "closed"


@dataclass
class RequestSpec:
    """One scheduled submission."""

    offset_s: float                     #: scheduled arrival (open loop)
    experiment: str
    seed: int                           #: experiment seed (keys the job)
    burst: bool = False                 #: part of a duplicate burst


def generate_schedule(spec: LoadtestSpec) -> List[RequestSpec]:
    """The deterministic request stream for ``spec``.

    Popularity is zipf over ``key_space`` ranks (weight of rank r is
    ``1/(r+1)**alpha``); rank picks both the experiment (round-robin
    over ``spec.experiments``) and the experiment seed (``1000+rank``),
    so rank identity *is* job-key identity.  A burst replicates the
    drawn request ``burst_size``-fold at the same arrival offset --
    synthetic "everyone clicked the hot link at once" traffic that the
    daemon's dedup-join should collapse.  Open-loop arrivals are
    Poisson (exponential inter-arrival at ``spec.rate``).
    """
    import random

    rng = random.Random(spec.seed)
    ranks = list(range(max(1, spec.key_space)))
    weights = [1.0 / (r + 1) ** spec.zipf_alpha for r in ranks]
    schedule: List[RequestSpec] = []
    clock = 0.0
    while len(schedule) < spec.users:
        rank = rng.choices(ranks, weights=weights, k=1)[0]
        experiment = spec.experiments[rank % len(spec.experiments)]
        if spec.rate:
            clock += rng.expovariate(spec.rate)
        burst = rng.random() < spec.burst_prob
        count = min(spec.burst_size if burst else 1,
                    spec.users - len(schedule))
        for _ in range(count):
            schedule.append(RequestSpec(
                offset_s=round(clock, 6), experiment=experiment,
                seed=1000 + rank, burst=burst and count > 1))
    return schedule


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The q-quantile (0..1) of an already-sorted sample (nearest-rank,
    linear interpolation between neighbours)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass
class _Tally:
    """Shared driver-side accounting (lock-guarded)."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    latencies: List[float] = field(default_factory=list)
    outcomes: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    errors: List[str] = field(default_factory=list)

    def record(self, outcome: str, latency_s: float,
               error: Optional[str] = None) -> None:
        with self.lock:
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            self.latencies.append(latency_s)
            if error is None:
                self.completed += 1
            else:
                self.failed += 1
                if len(self.errors) < 10:
                    self.errors.append(error)


def _drive(schedule: List[RequestSpec], spec: LoadtestSpec,
           endpoint: Dict[str, Any], tally: _Tally,
           on_completion=None) -> float:
    """Replay ``schedule`` with ``spec.concurrency`` threads; returns
    the wall-clock seconds the replay took."""
    work: "queue.Queue[Optional[Tuple[int, RequestSpec]]]" = queue.Queue()
    for item in enumerate(schedule):
        work.put(item)
    threads = max(1, spec.concurrency)
    for _ in range(threads):
        work.put(None)
    t0 = time.monotonic()
    done_count = [0]
    done_lock = threading.Lock()

    def worker() -> None:
        client = ServeClient(timeout=120.0, **endpoint)
        while True:
            item = work.get()
            if item is None:
                return
            _, req = item
            scheduled = t0 + req.offset_s
            if spec.rate:
                delay = scheduled - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            sent = time.monotonic()
            # open loop charges latency from the *scheduled* arrival;
            # a driver running behind still bills the backlog to the
            # system under test
            start = scheduled if spec.rate else sent
            try:
                reply = client.submit(
                    req.experiment, scale=spec.scale, seed=req.seed,
                    quick=spec.quick)
            except ServeError as exc:
                tally.record("transport_error",
                             time.monotonic() - start, error=repr(exc))
            else:
                if reply.get("ok"):
                    tally.record(reply.get("outcome", "computed"),
                                 time.monotonic() - start)
                elif reply.get("error") == "queue_full":
                    tally.record("shed", time.monotonic() - start)
                else:
                    tally.record(reply.get("error", "failed"),
                                 time.monotonic() - start,
                                 error=reply.get("detail", "")[:200])
            if on_completion is not None:
                with done_lock:
                    done_count[0] += 1
                    n = done_count[0]
                on_completion(n)

    pool = [threading.Thread(target=worker, daemon=True)
            for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return time.monotonic() - t0


def build_report(spec: LoadtestSpec, tally: _Tally, wall_s: float,
                 cluster: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
    lat = sorted(tally.latencies)
    requests = tally.completed + tally.failed
    out = tally.outcomes
    shed = out.get("shed", 0)
    dedup = out.get("dedup", 0)
    cached = out.get("cached", 0)
    answered = max(1, tally.completed)
    return {
        "schema": SCHEMA,
        "mode": spec.mode(),
        "spec": {
            "users": spec.users,
            "concurrency": spec.concurrency,
            "rate": spec.rate,
            "zipf_alpha": spec.zipf_alpha,
            "key_space": spec.key_space,
            "burst_prob": spec.burst_prob,
            "burst_size": spec.burst_size,
            "experiments": list(spec.experiments),
            "scale": spec.scale,
            "quick": spec.quick,
            "seed": spec.seed,
        },
        "requests": requests,
        "completed": tally.completed,
        "failed": tally.failed,
        "errors": list(tally.errors),
        "outcomes": dict(sorted(out.items())),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(requests / wall_s, 2) if wall_s else 0.0,
        "latency_s": {
            "p50": round(percentile(lat, 0.50), 6),
            "p95": round(percentile(lat, 0.95), 6),
            "p99": round(percentile(lat, 0.99), 6),
            "mean": round(sum(lat) / len(lat), 6) if lat else 0.0,
            "max": round(lat[-1], 6) if lat else 0.0,
        },
        "dedup_rate": round(dedup / answered, 4),
        "cache_hit_rate": round(cached / answered, 4),
        "shed_fraction": round(shed / requests, 4) if requests else 0.0,
        "cluster": cluster or {},
        "ok": tally.failed == 0,
    }


def validate_loadtest_report(report: Any) -> None:
    """Schema-check one loadtest report; raises :class:`ValueError`."""
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        raise ValueError(f"not a {SCHEMA} report: {report!r:.80}")
    for key in ("mode", "spec", "requests", "completed", "failed",
                "outcomes", "wall_s", "throughput_rps", "latency_s",
                "dedup_rate", "cache_hit_rate", "shed_fraction",
                "cluster", "ok"):
        if key not in report:
            raise ValueError(f"loadtest report lacks {key!r}")
    lat = report["latency_s"]
    for q in ("p50", "p95", "p99", "mean", "max"):
        value = lat.get(q)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            raise ValueError(f"latency_s.{q} is not a non-negative "
                             f"number: {value!r}")
    if not (lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
            or not report["requests"]):
        raise ValueError(f"latency percentiles are not monotonic: {lat}")
    total = sum(report["outcomes"].values())
    if total != report["requests"]:
        raise ValueError(
            f"outcomes sum to {total}, expected {report['requests']}")
    if report["completed"] + report["failed"] != report["requests"]:
        raise ValueError("completed + failed != requests")


def run_loadtest(
    spec: LoadtestSpec,
    *,
    num_workers: int = 3,
    synthetic_s: Optional[float] = DEFAULT_SYNTHETIC_S,
    endpoint: Optional[Dict[str, Any]] = None,
    kill_after_requests: Optional[int] = None,
    router=None,
) -> Dict[str, Any]:
    """Run one loadtest and return its report.

    Without ``endpoint``, boots a private ``ClusterRouter`` with
    ``num_workers`` synthetic-compute workers on a Unix socket, drives
    it, and drains it afterwards.  With ``endpoint`` (kwargs for
    :class:`ServeClient`), attaches to an already-running daemon or
    cluster and leaves it up.  ``kill_after_requests=K`` SIGKILLs one
    worker when the K-th request completes -- progress-based, so the
    kill always lands mid-run -- to measure failover under load
    (requires the booted cluster or an explicit ``router``).
    """
    import tempfile

    from .cluster import ClusterRouter, WorkerConfig

    schedule = generate_schedule(spec)
    tally = _Tally()
    own_router = None
    router_thread = None
    tmpdir = None
    try:
        if endpoint is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
            sock = f"{tmpdir.name}/router.sock"
            own_router = ClusterRouter(
                num_workers=num_workers,
                socket_path=sock,
                worker_dir=f"{tmpdir.name}/workers",
                worker_config=WorkerConfig(
                    synthetic_s=synthetic_s, use_store=False,
                    queue_limit=max(64, spec.concurrency * 2),
                    cache_size=max(128, spec.key_space * 4),
                    job_threads=4,
                ),
            )
            router = own_router
            rc = {}
            router_thread = threading.Thread(
                target=lambda: rc.update(code=own_router.run()),
                daemon=True)
            router_thread.start()
            if not own_router.ready.wait(timeout=120.0):
                raise RuntimeError("cluster router did not become ready")
            endpoint = {"socket_path": sock}

        on_completion = None
        if kill_after_requests is not None:
            if router is None:
                raise ValueError("kill_after_requests needs the booted "
                                 "cluster (no --attach endpoint)")
            fired = threading.Event()

            def on_completion(n, _router=router):
                if n >= kill_after_requests and not fired.is_set():
                    fired.set()
                    killed = _router.kill_worker()
                    obs.count("loadtest.worker_kills")
                    print(f"[loadtest] killed worker {killed} after "
                          f"{n} completions", flush=True)

        wall_s = _drive(schedule, spec, endpoint, tally, on_completion)
        cluster_info: Dict[str, Any] = {}
        if router is not None:
            cluster_info = {
                "workers": len(router.ring),
                "worker_deaths": router.worker_deaths,
                "worker_restarts": router.worker_restarts,
                "resubmits": router.resubmits,
                "router_shed": router.shed,
                "killed": list(router.killed),
            }
        report = build_report(spec, tally, wall_s, cluster_info)
        validate_loadtest_report(report)
        return report
    finally:
        if own_router is not None:
            own_router.request_shutdown("loadtest done")
            if router_thread is not None:
                router_thread.join(timeout=90.0)
        if tmpdir is not None:
            tmpdir.cleanup()


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of one loadtest report."""
    lat = report["latency_s"]
    cluster = report.get("cluster") or {}
    lines = [
        f"repro loadtest ({report['mode']} loop): "
        f"{report['requests']} requests in {report['wall_s']:.1f}s "
        f"= {report['throughput_rps']:.0f} req/s",
        f"  latency: p50 {lat['p50'] * 1000:.1f}ms  "
        f"p95 {lat['p95'] * 1000:.1f}ms  "
        f"p99 {lat['p99'] * 1000:.1f}ms  "
        f"max {lat['max'] * 1000:.1f}ms",
        f"  outcomes: " + ", ".join(
            f"{k}={v}" for k, v in report["outcomes"].items()),
        f"  dedup rate {report['dedup_rate']:.1%}, "
        f"cache hit rate {report['cache_hit_rate']:.1%}, "
        f"shed {report['shed_fraction']:.1%}, "
        f"failed {report['failed']}",
    ]
    if cluster:
        lines.append(
            f"  cluster: {cluster.get('workers', 0)} worker(s), "
            f"{cluster.get('worker_deaths', 0)} death(s), "
            f"{cluster.get('worker_restarts', 0)} restart(s), "
            f"{cluster.get('resubmits', 0)} resubmit(s), "
            f"{cluster.get('router_shed', 0)} router-shed")
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    from ..harness.export import write_json_atomic

    write_json_atomic(report, path, sort_keys=True)
