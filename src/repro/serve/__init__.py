"""repro.serve: a long-lived experiment-serving daemon and cluster.

Every other entry point in this repository (``python -m repro all``,
the test suite, the benchmarks) pays full process start-up -- imports,
registry construction, replay-store preload -- per invocation.  This
package adds the resident surface the ROADMAP's north star asks for:

* :mod:`repro.serve.server` -- an asyncio TCP/Unix-socket daemon
  (``python -m repro serve``) that owns a bounded job queue with
  admission control, request deduplication, an LRU result cache layered
  over the persistent replay store, and graceful SIGTERM/SIGINT drain;
* :mod:`repro.serve.protocol` -- the length-prefixed JSON wire format
  (schema ``repro-serve/1``) both sides speak;
* :mod:`repro.serve.client` -- a small synchronous client library, used
  by the CLI verbs (``repro submit/status/drain``), the tests and the
  CI smoke job;
* :mod:`repro.serve.jobs` / :mod:`repro.serve.cache` -- the admission
  controller (job table, queue bound, backpressure estimate) and the
  LRU result cache;
* :mod:`repro.serve.cluster` -- scale-out: a front router
  (``python -m repro cluster``) that consistent-hashes job keys across
  N supervised worker daemons, with failover, restart supervision and
  router-level load shedding;
* :mod:`repro.serve.loadtest` -- a seeded zipf traffic generator
  (``python -m repro loadtest``) reporting latency percentiles,
  throughput and dedup/shed rates to ``BENCH_serve.json``.

Computations dispatch into the existing
:class:`~repro.harness.service.ExperimentService` worker pool via a
thread offload, so the event loop keeps answering ``health``/``stats``
while shards run.
"""
from .cache import LRUCache
from .client import ServeClient, ServeError
from .cluster import ClusterRouter, HashRing, WorkerConfig
from .jobs import Admission, Job, job_key
from .loadtest import (
    LoadtestSpec,
    generate_schedule,
    run_loadtest,
    validate_loadtest_report,
)
from .protocol import DEFAULT_PORT, SCHEMA, validate_envelope
from .server import ReproServer

__all__ = [
    "Admission",
    "ClusterRouter",
    "DEFAULT_PORT",
    "HashRing",
    "Job",
    "LRUCache",
    "LoadtestSpec",
    "ReproServer",
    "SCHEMA",
    "ServeClient",
    "ServeError",
    "WorkerConfig",
    "generate_schedule",
    "job_key",
    "run_loadtest",
    "validate_loadtest_report",
]
