"""repro.serve: a long-lived experiment-serving daemon.

Every other entry point in this repository (``python -m repro all``,
the test suite, the benchmarks) pays full process start-up -- imports,
registry construction, replay-store preload -- per invocation.  This
package adds the resident surface the ROADMAP's north star asks for:

* :mod:`repro.serve.server` -- an asyncio TCP/Unix-socket daemon
  (``python -m repro serve``) that owns a bounded job queue with
  admission control, request deduplication, an LRU result cache layered
  over the persistent replay store, and graceful SIGTERM/SIGINT drain;
* :mod:`repro.serve.protocol` -- the length-prefixed JSON wire format
  (schema ``repro-serve/1``) both sides speak;
* :mod:`repro.serve.client` -- a small synchronous client library, used
  by the CLI verbs (``repro submit/status/drain``), the tests and the
  CI smoke job;
* :mod:`repro.serve.jobs` / :mod:`repro.serve.cache` -- the admission
  controller (job table, queue bound, backpressure estimate) and the
  LRU result cache.

Computations dispatch into the existing
:class:`~repro.harness.service.ExperimentService` worker pool via a
thread offload, so the event loop keeps answering ``health``/``stats``
while shards run.
"""
from .cache import LRUCache
from .client import ServeClient, ServeError
from .jobs import Admission, Job, job_key
from .protocol import DEFAULT_PORT, SCHEMA, validate_envelope
from .server import ReproServer

__all__ = [
    "Admission",
    "DEFAULT_PORT",
    "Job",
    "LRUCache",
    "ReproServer",
    "SCHEMA",
    "ServeClient",
    "ServeError",
    "job_key",
    "validate_envelope",
]
