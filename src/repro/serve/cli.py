"""CLI verbs for the serving layer: serve / submit / status / drain /
cluster / loadtest.

``python -m repro`` routes these leading commands here; each gets its
own ``argparse`` parser so daemon knobs and client connection options
do not pollute the experiment CLI.
"""
from __future__ import annotations

import argparse
import ast
import difflib
import json
import sys
from typing import Dict, List, Optional

from ..harness.runner import DEFAULT_SCALE
from . import cluster, protocol
from .client import ServeClient, ServeError
from .jobs import DEFAULT_QUEUE_LIMIT
from .server import DEFAULT_DRAIN_GRACE_S, DEFAULT_JOB_THREADS, ReproServer

#: exit code for "resource temporarily unavailable" (sysexits.h
#: EX_TEMPFAIL) -- what ``repro submit`` returns on a queue_full reply
EXIT_TEMPFAIL = 75


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text!r}")
    return value


def _nonneg_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {text!r}")
    return value


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="daemon host (default 127.0.0.1)")
    parser.add_argument("--port", type=_positive_int,
                        default=protocol.DEFAULT_PORT,
                        help=f"daemon TCP port (default "
                             f"{protocol.DEFAULT_PORT})")
    parser.add_argument("--socket", default=None,
                        help="Unix socket path (overrides host/port)")
    parser.add_argument("--wait", type=_positive_float, default=None,
                        help="seconds to keep retrying while the daemon "
                             "is not accepting yet (default: fail fast)")


def _client_from(args) -> ServeClient:
    return ServeClient(host=args.host, port=args.port,
                       socket_path=args.socket)


def _parse_params(pairs: Optional[List[str]],
                  parser: argparse.ArgumentParser) -> Dict:
    out: Dict = {}
    for pair in pairs or ():
        if "=" not in pair:
            parser.error(f"--param expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            out[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            out[key] = raw
    return out


def _check_experiment(name: str, parser: argparse.ArgumentParser) -> None:
    from ..harness.registry import experiment_names

    names = experiment_names()
    if name in names:
        return
    msg = f"unknown experiment {name!r}"
    close = difflib.get_close_matches(name, names, n=3)
    if close:
        msg += f"; did you mean: {', '.join(close)}?"
    parser.error(msg + " (see 'python -m repro list')")


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _cmd_serve(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the experiment-serving daemon (repro-serve/1).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_positive_int,
                        default=protocol.DEFAULT_PORT)
    parser.add_argument("--socket", default=None,
                        help="serve on a Unix socket instead of TCP")
    parser.add_argument("--workers", type=_positive_int, default=None,
                        help="service worker processes per job "
                             "(default: min(8, cpu count))")
    parser.add_argument("--job-threads", type=_positive_int,
                        default=DEFAULT_JOB_THREADS,
                        help="concurrent job slots (default "
                             f"{DEFAULT_JOB_THREADS})")
    parser.add_argument("--queue-limit", type=_positive_int,
                        default=DEFAULT_QUEUE_LIMIT,
                        help="max distinct queued+running jobs before "
                             "submissions get a backpressure reply "
                             f"(default {DEFAULT_QUEUE_LIMIT})")
    parser.add_argument("--cache-size", type=_nonneg_int, default=64,
                        help="LRU result-cache capacity; 0 disables "
                             "(default 64)")
    parser.add_argument("--drain-grace", type=_positive_float,
                        default=DEFAULT_DRAIN_GRACE_S,
                        help="seconds to wait for in-flight jobs on "
                             f"drain (default {DEFAULT_DRAIN_GRACE_S:.0f})")
    parser.add_argument("--timeout", type=_positive_float, default=None,
                        help="per-shard timeout inside the service "
                             "(default 900)")
    parser.add_argument("--store-dir", default=None,
                        help="replay store directory (default "
                             "benchmarks/replay_store, or $REPRO_STORE_DIR)")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the persistent replay store")
    parser.add_argument("--synthetic", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="replace the simulator with a deterministic "
                             "synthetic sleep of ~SECONDS per job "
                             "(loadtest/cluster harness mode)")
    args = parser.parse_args(argv)

    server = ReproServer(
        host=args.host, port=args.port, socket_path=args.socket,
        workers=args.workers, queue_limit=args.queue_limit,
        cache_size=args.cache_size, job_threads=args.job_threads,
        drain_grace_s=args.drain_grace, shard_timeout_s=args.timeout,
        store_dir=args.store_dir, use_store=not args.no_store,
        synthetic_s=args.synthetic,
    )
    return server.run()


def _cmd_submit(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit one experiment to a running repro daemon.",
    )
    parser.add_argument("experiment", help="experiment id (see 'list')")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="experiment-specific parameter override "
                             "(repeatable; values parsed as Python "
                             "literals)")
    parser.add_argument("--program", default=None, metavar="FILE",
                        help="for the 'kernel' experiment: a user "
                             "@repro.kernel program file whose source is "
                             "shipped with the job (the daemon never "
                             "reads the file, so the job key is stable)")
    parser.add_argument("--scale", type=_positive_float,
                        default=DEFAULT_SCALE,
                        help=f"workload scale (default {DEFAULT_SCALE})")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="apply the smoke-size parameter set")
    parser.add_argument("--json", action="store_true",
                        help="print the raw reply envelope as JSON")
    _add_endpoint_args(parser)
    args = parser.parse_args(argv)
    _check_experiment(args.experiment, parser)
    params = _parse_params(args.param, parser)
    if args.program is not None:
        if args.experiment != "kernel":
            parser.error("--program only applies to the 'kernel' "
                         "experiment")
        try:
            with open(args.program, "r") as f:
                params["source"] = f.read()
        except OSError as exc:
            parser.error(f"cannot read --program file: {exc}")

    client = _client_from(args)
    try:
        reply = client.submit(
            args.experiment, params=params, scale=args.scale,
            seed=args.seed, quick=args.quick, wait_s=args.wait or 0.0)
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply, indent=2))
        return 0 if reply["ok"] else 1
    if not reply["ok"]:
        detail = reply.get("detail", "")
        print(f"submit refused: {reply['error']}"
              f"{' -- ' + detail if detail else ''}", file=sys.stderr)
        if reply["error"] == "queue_full":
            print(f"retry after {reply.get('retry_after')}s",
                  file=sys.stderr)
            return EXIT_TEMPFAIL
        return 2 if reply["error"] == "unknown_experiment" else 1
    print(reply["rendered"])
    print(f"[serve: {args.experiment} outcome={reply['outcome']} "
          f"wall={reply.get('wall_s', 0):.2f}s "
          f"waiters={reply.get('waiters', 1)}]")
    return 0


def _cmd_status(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro status",
        description="Queue/cache status of a running repro daemon.",
    )
    parser.add_argument("--json", action="store_true",
                        help="print the raw reply envelope as JSON")
    parser.add_argument("--stats", action="store_true",
                        help="also fetch the live telemetry snapshot")
    _add_endpoint_args(parser)
    args = parser.parse_args(argv)
    client = _client_from(args)
    try:
        reply = client.status(wait_s=args.wait or 0.0)
    except ServeError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(reply, indent=2))
    else:
        cache = reply["cache"]
        print(f"repro serve @ {reply['endpoint']} (pid {reply['pid']}, "
              f"up {reply['uptime_s']:.0f}s"
              f"{', DRAINING' if reply['draining'] else ''})")
        print(f"  queue: {reply['inflight']}/{reply['queue_limit']} "
              f"in flight, {reply['job_threads']} job thread(s), "
              f"{reply['service_workers']} service worker(s)")
        print(f"  jobs: {reply['jobs_completed']} completed, "
              f"{reply['jobs_failed']} failed, "
              f"{reply['dedup_joined']} dedup-joined, "
              f"{reply['rejected_queue_full']} rejected (queue full)")
        print(f"  cache: {cache['hits']} hits / {cache['misses']} misses, "
              f"{cache['size']}/{cache['capacity']} entries, "
              f"{cache['evictions']} evictions")
    if args.stats:
        from .. import obs

        stats = client.stats(wait_s=args.wait or 0.0)
        print(obs.render_payload(stats["telemetry"],
                                 title="live daemon telemetry"))
        for name, lat in stats["latency"].items():
            print(f"  latency {name}: {lat['count']} jobs, "
                  f"mean {lat['mean_s']:.2f}s")
    return 0


def _cmd_drain(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro drain",
        description="Gracefully drain a running repro daemon.",
    )
    _add_endpoint_args(parser)
    args = parser.parse_args(argv)
    client = _client_from(args)
    try:
        reply = client.drain(wait_s=args.wait or 0.0)
    except ServeError as exc:
        print(f"drain failed: {exc}", file=sys.stderr)
        return 1
    print(f"draining ({reply['inflight']} job(s) in flight)")
    return 0


def _cmd_cluster(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Run a consistent-hash cluster: a front router over "
                    "N supervised serving daemons.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_positive_int,
                        default=protocol.DEFAULT_PORT)
    parser.add_argument("--socket", default=None,
                        help="route on a Unix socket instead of TCP")
    parser.add_argument("--workers", type=_positive_int, default=3,
                        help="daemon worker processes (default 3)")
    parser.add_argument("--worker-dir", default=None,
                        help="directory for worker sockets and logs "
                             "(default: a private temp dir)")
    parser.add_argument("--replicas", type=_positive_int,
                        default=cluster.DEFAULT_RING_REPLICAS,
                        help="virtual ring points per worker (default "
                             f"{cluster.DEFAULT_RING_REPLICAS})")
    parser.add_argument("--restart-limit", type=_nonneg_int,
                        default=cluster.DEFAULT_RESTART_LIMIT,
                        help="restarts per worker before it stays dead "
                             f"(default {cluster.DEFAULT_RESTART_LIMIT})")
    parser.add_argument("--queue-limit", type=_positive_int,
                        default=DEFAULT_QUEUE_LIMIT,
                        help="per-worker job queue bound (default "
                             f"{DEFAULT_QUEUE_LIMIT})")
    parser.add_argument("--cache-size", type=_nonneg_int, default=64,
                        help="per-worker LRU result-cache capacity "
                             "(default 64)")
    parser.add_argument("--job-threads", type=_positive_int,
                        default=DEFAULT_JOB_THREADS,
                        help="concurrent job slots per worker (default "
                             f"{DEFAULT_JOB_THREADS})")
    parser.add_argument("--service-workers", type=_positive_int, default=1,
                        help="service worker processes per worker daemon "
                             "(default 1; the cluster itself is the "
                             "parallelism)")
    parser.add_argument("--drain-grace", type=_positive_float,
                        default=cluster.DEFAULT_CLUSTER_DRAIN_GRACE_S,
                        help="seconds to wait for workers on drain")
    parser.add_argument("--timeout", type=_positive_float, default=None,
                        help="per-shard timeout inside each worker")
    parser.add_argument("--store-dir", default=None,
                        help="shared replay store directory (file-locked; "
                             "all workers merge into it)")
    parser.add_argument("--no-store", action="store_true",
                        help="disable the persistent replay store")
    parser.add_argument("--synthetic", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="workers fake the simulator with a "
                             "deterministic synthetic sleep (loadtest "
                             "harness mode)")
    args = parser.parse_args(argv)

    router = cluster.ClusterRouter(
        num_workers=args.workers,
        host=args.host, port=args.port, socket_path=args.socket,
        worker_dir=args.worker_dir,
        ring_replicas=args.replicas,
        restart_limit=args.restart_limit,
        drain_grace_s=args.drain_grace,
        worker_config=cluster.WorkerConfig(
            queue_limit=args.queue_limit,
            cache_size=args.cache_size,
            job_threads=args.job_threads,
            service_workers=args.service_workers,
            shard_timeout_s=args.timeout,
            store_dir=args.store_dir,
            use_store=not args.no_store,
            synthetic_s=args.synthetic,
            drain_grace_s=args.drain_grace,
        ),
    )
    try:
        return router.run()
    except RuntimeError as exc:
        print(f"cluster failed to start: {exc}", file=sys.stderr)
        return 1


def _cmd_loadtest(argv: List[str]) -> int:
    from . import loadtest

    parser = argparse.ArgumentParser(
        prog="python -m repro loadtest",
        description="Generate seeded zipf traffic against a serving "
                    "cluster and report latency percentiles, throughput "
                    "and dedup/shed rates.",
    )
    parser.add_argument("--users", type=_positive_int, default=10_000,
                        help="total requests to issue (default 10000)")
    parser.add_argument("--concurrency", type=_positive_int, default=32,
                        help="driver threads / closed-loop users "
                             "(default 32)")
    parser.add_argument("--rate", type=_positive_float, default=None,
                        metavar="REQ_PER_S",
                        help="open-loop Poisson arrival rate; latency is "
                             "then measured from the scheduled arrival "
                             "(default: closed loop)")
    parser.add_argument("--workers", type=_positive_int, default=3,
                        help="cluster workers to boot (default 3; "
                             "ignored with --attach)")
    parser.add_argument("--synthetic", type=_positive_float,
                        default=loadtest.DEFAULT_SYNTHETIC_S,
                        metavar="SECONDS",
                        help="synthetic per-job cost in the booted "
                             "cluster (default "
                             f"{loadtest.DEFAULT_SYNTHETIC_S})")
    parser.add_argument("--attach", default=None, metavar="ENDPOINT",
                        help="drive an already-running daemon/cluster: "
                             "a Unix socket path, or HOST:PORT")
    parser.add_argument("--experiments", default="init",
                        help="comma-separated experiment ids the traffic "
                             "draws from (default: init)")
    parser.add_argument("--key-space", type=_positive_int, default=32,
                        help="distinct job keys in the zipf universe "
                             "(default 32)")
    parser.add_argument("--zipf-alpha", type=_positive_float, default=1.1,
                        help="popularity skew exponent (default 1.1)")
    parser.add_argument("--burst-prob", type=float, default=0.05,
                        help="chance a request is a duplicate burst "
                             "(default 0.05)")
    parser.add_argument("--burst-size", type=_positive_int, default=4,
                        help="duplicates per burst (default 4)")
    parser.add_argument("--scale", type=_positive_float, default=0.05,
                        help="experiment scale (default 0.05)")
    parser.add_argument("--seed", type=int, default=7,
                        help="schedule seed (default 7)")
    parser.add_argument("--kill-after-requests", type=_positive_int,
                        default=None, metavar="K",
                        help="SIGKILL one worker once K requests have "
                             "completed (failover-under-load drill; "
                             "booted cluster only)")
    parser.add_argument("--output", default=loadtest.DEFAULT_OUTPUT,
                        help="report path (default "
                             f"{loadtest.DEFAULT_OUTPUT})")
    parser.add_argument("--json", action="store_true",
                        help="print the raw report as JSON")
    args = parser.parse_args(argv)

    experiments = tuple(e.strip() for e in args.experiments.split(",")
                        if e.strip())
    if not experiments:
        parser.error("--experiments names no experiment")
    for name in experiments:
        _check_experiment(name, parser)
    if not 0.0 <= args.burst_prob <= 1.0:
        parser.error("--burst-prob must be within [0, 1]")
    endpoint = None
    if args.attach:
        if ":" in args.attach and "/" not in args.attach:
            host, _, port = args.attach.rpartition(":")
            endpoint = {"host": host, "port": int(port)}
        else:
            endpoint = {"socket_path": args.attach}
        if args.kill_after_requests is not None:
            parser.error("--kill-after-requests needs the booted "
                         "cluster, not --attach")

    spec = loadtest.LoadtestSpec(
        users=args.users, concurrency=args.concurrency, rate=args.rate,
        zipf_alpha=args.zipf_alpha, key_space=args.key_space,
        burst_prob=args.burst_prob, burst_size=args.burst_size,
        experiments=experiments, scale=args.scale, seed=args.seed,
    )
    try:
        report = loadtest.run_loadtest(
            spec, num_workers=args.workers, synthetic_s=args.synthetic,
            endpoint=endpoint,
            kill_after_requests=args.kill_after_requests)
    except (RuntimeError, ServeError, ValueError) as exc:
        print(f"loadtest failed: {exc}", file=sys.stderr)
        return 1
    loadtest.write_report(report, args.output)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(loadtest.format_report(report))
    print(f"[loadtest report -> {args.output}]")
    return 0 if report["ok"] else 1


_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "drain": _cmd_drain,
    "cluster": _cmd_cluster,
    "loadtest": _cmd_loadtest,
}


def serve_cli_main(argv: List[str]) -> int:
    """Entry point for the serve-family commands (argv[0] names one)."""
    return _COMMANDS[argv[0]](argv[1:])
