"""The ``repro serve`` daemon: an asyncio experiment-serving loop.

One process owns one :class:`~repro.harness.service.ExperimentService`
(worker pool + persistent replay store) and serves it over the
``repro-serve/1`` protocol on a TCP port or Unix socket.  The event
loop only ever does admission, bookkeeping and IO; computations are
offloaded to a small thread pool that calls into the service (which in
turn shards onto worker *processes*), so ``health``/``stats``/``status``
answer instantly while jobs run.

Lifecycle: SIGTERM/SIGINT (or the ``drain`` verb) switch the daemon to
*draining* -- new submissions are refused with an explicit error, jobs
already admitted run to completion under a grace deadline, the replay
store is flushed, and the process exits 0 on a clean drain (1 when the
deadline expired with jobs still running).

Telemetry: the daemon counts into the process-local :mod:`repro.obs`
registry (``serve.*`` counters, per-experiment ``serve.job.<name>``
latency spans) alongside whatever the machine/service/store layers
record, and the ``stats`` verb returns the live ``repro-obs/1``
snapshot; the authoritative queue/cache counters additionally live on
the admission controller, so ``status`` stays exact even mid-run while
the service swaps run-scoped registries.
"""
from __future__ import annotations

import asyncio
import difflib
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

from .. import faults, obs
from ..harness.registry import (
    SMOKE_PARAMS,
    ExperimentOptions,
    experiment_names,
    get_experiment,
)
from ..harness.runner import DEFAULT_SCALE
from . import protocol
from .jobs import DEFAULT_QUEUE_LIMIT, Admission, Job, job_key

#: default grace period for in-flight jobs once a drain begins
DEFAULT_DRAIN_GRACE_S = 60.0

#: default width of the job-offload thread pool (each thread drives one
#: service run, which itself shards onto worker processes)
DEFAULT_JOB_THREADS = 2

# Failpoints on the daemon's recovery seams (DESIGN.md §5.5); frame I/O
# failpoints live in :mod:`repro.serve.protocol`.  ``serve.drain`` is
# delay-only: a drain must finish, just possibly late.
faults.declare("serve.admit", "raise", "delay")
faults.declare("serve.drain", "delay")


class ReproServer:
    """The serving daemon (one instance per process).

    ``compute`` is injectable for tests: it receives one submit spec
    dict and returns the result payload dict.  The default dispatches
    into :class:`~repro.harness.service.ExperimentService`.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        socket_path: Optional[str] = None,
        workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache_size: int = 64,
        job_threads: int = DEFAULT_JOB_THREADS,
        drain_grace_s: float = DEFAULT_DRAIN_GRACE_S,
        shard_timeout_s: Optional[float] = None,
        store_dir: Optional[str] = None,
        use_store: bool = True,
        synthetic_s: Optional[float] = None,
        compute: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ):
        from ..harness.service import DEFAULT_TIMEOUT_S, ExperimentService

        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.drain_grace_s = drain_grace_s
        self.service = ExperimentService(
            workers,
            timeout_s=(DEFAULT_TIMEOUT_S if shard_timeout_s is None
                       else shard_timeout_s),
            store_dir=store_dir,
            use_store=use_store,
        )
        self.admission = Admission(queue_limit=queue_limit,
                                   cache_size=cache_size,
                                   job_threads=job_threads)
        self.synthetic_s = synthetic_s
        if compute is not None:
            self._compute = compute
        elif synthetic_s is not None:
            self._compute = self._synthetic_compute
        else:
            self._compute = self._service_compute
        self._own_compute = compute is None and synthetic_s is None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, job_threads),
            thread_name_prefix="repro-serve-job",
        )
        #: set once the daemon is listening (safe to connect)
        self.ready = threading.Event()
        self.draining = False
        self.drain_reason: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._done: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        self._restore_memo: Optional[Callable[[], None]] = None
        self._exit_code = 0
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until drained; returns the process exit code."""
        return asyncio.run(self._amain())

    def endpoint_desc(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    async def _amain(self) -> int:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._done = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self.begin_drain, signal.Signals(sig).name)
            except (NotImplementedError, RuntimeError, ValueError):
                # non-main thread (tests) or unsupported platform: the
                # drain verb / request_shutdown() still work
                break
        if self.socket_path:
            server = await asyncio.start_unix_server(
                self._on_connect, path=self.socket_path)
        else:
            server = await asyncio.start_server(
                self._on_connect, host=self.host, port=self.port)
            self.port = server.sockets[0].getsockname()[1]
        if self._own_compute:
            # store handoff: in-process (serial-fallback) runs persist
            # into the service's replay store; restoring at drain time
            # flushes anything they learned
            self._restore_memo = self.service.install_store_memo()
        self.ready.set()
        print(f"[serve] listening on {self.endpoint_desc()} "
              f"(pid {os.getpid()}, workers {self.service.num_workers}, "
              f"queue limit {self.admission.queue_limit})", flush=True)
        try:
            await self._done.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._conn_tasks:
                # let handlers finish writing replies for drained jobs
                await asyncio.wait(self._conn_tasks, timeout=10.0)
            if self._restore_memo is not None:
                self._restore_memo()
                self._restore_memo = None
            self._executor.shutdown(wait=False)
            if self.socket_path:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
        print(f"[serve] drained ({self.drain_reason}): "
              f"{self.admission.completed} completed, "
              f"{self.admission.failed} failed, exit {self._exit_code}",
              flush=True)
        return self._exit_code

    def begin_drain(self, reason: str = "drain") -> None:
        """Stop admitting, finish in-flight jobs, flush, exit.

        Called from the event loop (signal handler or ``drain`` verb);
        idempotent.
        """
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        obs.count("serve.drains")
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        faults.failpoint("serve.drain")
        pending = [job.future for job in self.admission.jobs.values()]
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=self.drain_grace_s)
            if not_done:
                obs.count("serve.drain_abandoned_jobs", len(not_done))
                self._exit_code = 1
        assert self._done is not None
        self._done.set()

    def request_shutdown(self, reason: str = "shutdown") -> None:
        """Thread-safe drain trigger (the in-process test harness)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.begin_drain, reason)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connect(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    msg = await protocol.read_frame(reader)
                except protocol.ProtocolError as exc:
                    await protocol.write_frame(writer, protocol.error_reply(
                        "error", "bad_request", detail=str(exc)))
                    break
                if msg is None:
                    break
                reply = await self._dispatch(msg)
                protocol.validate_envelope(reply)
                await protocol.write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError, TimeoutError) as exc:
            # injected disconnects land here too; the client retries
            faults.note_surfaced(exc)
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        if msg.get("schema") != protocol.SCHEMA:
            return protocol.error_reply(
                "error", "bad_request",
                detail=f"expected schema {protocol.SCHEMA}")
        verb = msg.get("verb")
        handler = {
            "submit": self._submit,
            "status": self._status,
            "health": self._health,
            "stats": self._stats,
            "drain": self._drain_verb,
            "experiments": self._experiments,
        }.get(verb)
        if handler is None:
            return protocol.error_reply(
                "error", "unknown_verb", detail=f"unknown verb {verb!r}")
        try:
            return await handler(msg)
        except Exception as exc:
            obs.count("serve.internal_errors")
            faults.note_surfaced(exc)
            return protocol.error_reply(verb, "internal_error",
                                        detail=traceback.format_exc())

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    async def _submit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        obs.count("serve.submits")
        name = msg.get("experiment")
        names = experiment_names()
        if not isinstance(name, str) or name not in names:
            hints = difflib.get_close_matches(str(name), names, n=3)
            return protocol.error_reply(
                "submit", "unknown_experiment",
                detail=f"unknown experiment {name!r}", hint=hints)
        if self.draining:
            return protocol.error_reply(
                "submit", "draining",
                detail="daemon is draining; not admitting new jobs")
        # a raise here surfaces as an internal_error reply (and is
        # counted surfaced by _dispatch); the submitter may retry
        faults.failpoint("serve.admit")
        params = msg.get("params") or {}
        if not isinstance(params, dict):
            return protocol.error_reply(
                "submit", "bad_request",
                detail=f"params must be an object, got {params!r:.40}")
        spec = {
            "experiment": name,
            "scale": float(msg.get("scale", DEFAULT_SCALE)),
            "seed": int(msg.get("seed", 7)),
            "quick": bool(msg.get("quick", False)),
            "params": params,
        }
        key = job_key(spec)
        decision = self.admission.decide(key, spec)
        if decision.kind == "cached":
            obs.count("serve.cache_hits")
            assert decision.result is not None
            return protocol.response("submit", outcome="cached", key=key,
                                     **decision.result)
        if decision.kind == "rejected":
            obs.count("serve.rejected_queue_full")
            return protocol.error_reply(
                "submit", "queue_full",
                retry_after=decision.retry_after,
                queued=len(self.admission.jobs),
                queue_limit=self.admission.queue_limit,
                detail="job queue is full; retry after the given delay")
        assert decision.job is not None
        job = decision.job
        if decision.kind == "admitted":
            obs.count("serve.jobs_admitted")
            self._start_job(job)
        else:
            obs.count("serve.dedup_joined")
        ok, payload = await job.future
        if not ok:
            return protocol.error_reply("submit", "job_failed",
                                        detail=payload, key=key)
        outcome = "computed" if decision.kind == "admitted" else "dedup"
        return protocol.response("submit", outcome=outcome, key=key,
                                 **payload)

    async def _status(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        adm = self.admission
        return protocol.response(
            "status",
            draining=self.draining,
            uptime_s=round(time.monotonic() - self._t0, 3),
            pid=os.getpid(),
            endpoint=self.endpoint_desc(),
            inflight=len(adm.jobs),
            queue_limit=adm.queue_limit,
            job_threads=adm.job_threads,
            service_workers=self.service.num_workers,
            store_dir=self.service.store_dir,
            cache=adm.cache.stats(),
            **adm.counters(),
        )

    async def _health(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.response(
            "health",
            status="draining" if self.draining else "ok",
            inflight=len(self.admission.jobs),
        )

    async def _stats(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        adm = self.admission
        return protocol.response(
            "stats",
            telemetry=obs.snapshot(),
            latency=adm.latency_stats(),
            cache=adm.cache.stats(),
            counters=adm.counters(),
            inflight=len(adm.jobs),
        )

    async def _drain_verb(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        inflight = len(self.admission.jobs)
        self.begin_drain("drain verb")
        return protocol.response("drain", draining=True, inflight=inflight)

    async def _experiments(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.response(
            "experiments",
            experiments={name: get_experiment(name).description
                         for name in experiment_names()},
        )

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _start_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()

        def work():
            try:
                return True, self._compute(job.spec)
            except Exception as exc:
                # the failure reaches every waiter as a job_failed
                # reply; injected faults behind it count as surfaced
                faults.note_surfaced(exc)
                return False, traceback.format_exc()

        fut = loop.run_in_executor(self._executor, work)

        def finish(f) -> None:
            wall = time.perf_counter() - t0
            ok, payload = f.result()
            if ok:
                payload = dict(payload)
                payload.setdefault("wall_s", round(wall, 4))
                payload["waiters"] = job.waiters
                self.admission.complete(job, payload, wall)
                obs.count("serve.jobs_completed")
                # root-level: this callback runs on an executor thread,
                # concurrent with whatever span another job has open
                obs.add_root_time("serve.job", wall)
                obs.add_root_time(f"serve.job.{job.spec['experiment']}",
                                  wall)
            else:
                self.admission.fail(job)
                obs.count("serve.jobs_failed")
            job.future.set_result((ok, payload))

        fut.add_done_callback(finish)

    def _synthetic_compute(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Loadtest stand-in for the simulator: deterministic cost.

        Sleeps ``synthetic_s`` scaled by a stable per-key factor in
        [0.5, 1.5) -- distinct job keys get distinct but reproducible
        costs -- and echoes the spec.  The whole admission path (dedup,
        cache, backpressure, EWMA ``retry_after``) is exercised for
        real; only the experiment computation is faked, so the cluster
        loadtest measures the *serving* layer, not the simulator.
        """
        import zlib

        key = job_key(spec)
        factor = 0.5 + (zlib.crc32(key.encode("utf-8")) % 1000) / 1000.0
        time.sleep(self.synthetic_s * factor)
        return {
            "rendered": (f"synthetic:{spec['experiment']}"
                         f":{spec['seed']}:{spec['scale']}"),
            "synthetic": True,
        }

    def _service_compute(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Default compute: one experiment through the service pool."""
        from ..harness.service import validate_manifest

        name = spec["experiment"]
        params: Dict[str, Dict[str, Any]] = (
            {k: dict(v) for k, v in SMOKE_PARAMS.items()}
            if spec.get("quick") else {}
        )
        if spec.get("params"):
            merged = params.setdefault(name, {})
            merged.update(spec["params"])
        options = ExperimentOptions(scale=spec["scale"], seed=spec["seed"],
                                    params=params)
        run = self.service.run([name], options, manifest_path=None)
        validate_manifest(run.manifest)
        return {
            "rendered": run.render(name),
            "wall_s": round(run.wall_s, 4),
            "shards": run.manifest["totals"]["shards"],
            "outcomes": run.manifest["totals"]["outcomes"],
            "memo_hit_rate": run.manifest["totals"]["memo_hit_rate"],
        }
