"""Consistent-hash cluster: a front router over N serving daemons.

``python -m repro cluster --workers N`` grows the single ``repro
serve`` daemon into production shape: one asyncio front router listens
on the public endpoint and consistent-hashes every submit's canonical
``job_key`` onto a ring of supervised daemon *workers* (each its own
``python -m repro serve`` process on a private Unix socket, all
sharing the persistent replay store -- the store is file-locked, so
concurrent workers merge safely).  Because identical submissions hash
to the same worker, the per-worker dedup-join and LRU result cache
keep collapsing duplicates exactly as in the single-daemon case; the
ring just shards the key space.

Failover: a supervisor task polls worker processes and health.  A dead
worker is removed from the ring (only *its* arc rehashes -- the other
workers keep their keys, preserving their warm caches), restarted, and
re-added once it answers ``health`` again.  A submit that loses its
worker mid-flight is transparently resubmitted to the rehashed ring.

Load shedding: when a worker answers ``queue_full``, the router
remembers its EWMA-derived ``retry_after`` and refuses further submits
hashing to that arc at the router (reply carries ``shed_by:
"router"``) until the window expires, so an overloaded worker is not
hammered with admission traffic it would only reject.

The router speaks the same ``repro-serve/1`` protocol as a single
daemon -- ``repro submit/status/drain`` and :class:`ServeClient` work
unchanged against a cluster endpoint; ``status`` aggregates worker
counters and adds a ``cluster`` block.
"""
from __future__ import annotations

import asyncio
import bisect
import hashlib
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .. import faults, obs
from ..harness.runner import DEFAULT_SCALE
from . import protocol
from .jobs import DEFAULT_QUEUE_LIMIT, job_key

#: virtual nodes per worker on the hash ring; enough that removing one
#: worker spreads its arc roughly evenly over the survivors
DEFAULT_RING_REPLICAS = 64

#: how often the supervisor polls worker liveness/health
SUPERVISE_INTERVAL_S = 0.25

#: per-probe timeout for supervisor health checks and control verbs
PROBE_TIMEOUT_S = 5.0

#: transparent resubmit budget when a submit loses its worker
RESUBMIT_ATTEMPTS = 8

#: default restarts a single worker may consume before it is left dead
DEFAULT_RESTART_LIMIT = 8

#: default grace for the whole-cluster drain (workers + router)
DEFAULT_CLUSTER_DRAIN_GRACE_S = 60.0


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class HashRing:
    """Consistent hashing of string keys onto named workers.

    Each worker owns ``replicas`` virtual points; a key maps to the
    first point clockwise from its own hash.  Hashing is blake2b --
    stable across processes and Python versions (``hash()`` is seeded
    per process), so the same key always lands on the same worker and
    a worker-set change only remaps the arcs the change touches.
    """

    def __init__(self, workers: Tuple[str, ...] = (),
                 replicas: int = DEFAULT_RING_REPLICAS):
        self.replicas = max(1, replicas)
        self._points: List[Tuple[int, str]] = []     # sorted (point, id)
        self._workers: set = set()
        for worker_id in workers:
            self.add(worker_id)

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.blake2b(label.encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def add(self, worker_id: str) -> None:
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        for replica in range(self.replicas):
            entry = (self._point(f"{worker_id}#{replica}"), worker_id)
            bisect.insort(self._points, entry)

    def remove(self, worker_id: str) -> None:
        self._workers.discard(worker_id)
        self._points = [(p, w) for (p, w) in self._points
                        if w != worker_id]

    def lookup(self, key: str) -> Optional[str]:
        """The worker owning ``key``; None when the ring is empty."""
        if not self._points:
            return None
        point = self._point(key)
        # "" sorts before every worker id, so this lands on the first
        # ring point with point >= key-point (successor-or-equal)
        i = bisect.bisect_left(self._points, (point, ""))
        if i == len(self._points):
            i = 0
        return self._points[i][1]

    def workers(self) -> List[str]:
        return sorted(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def __len__(self) -> int:
        return len(self._workers)


# ----------------------------------------------------------------------
# supervised worker process
# ----------------------------------------------------------------------
@dataclass
class WorkerConfig:
    """Knobs forwarded to every spawned ``repro serve`` worker."""

    queue_limit: int = DEFAULT_QUEUE_LIMIT
    cache_size: int = 64
    job_threads: int = 2
    service_workers: int = 1
    shard_timeout_s: Optional[float] = None
    store_dir: Optional[str] = None
    use_store: bool = True
    synthetic_s: Optional[float] = None
    drain_grace_s: float = DEFAULT_CLUSTER_DRAIN_GRACE_S


class WorkerHandle:
    """One supervised daemon worker: spawn / liveness / kill / respawn.

    The worker is a real ``python -m repro serve`` subprocess on its
    own Unix socket; its stdout/stderr append to ``<socket>.log`` so a
    crash is debuggable across restarts.
    """

    def __init__(self, worker_id: str, socket_path: str,
                 config: WorkerConfig):
        self.worker_id = worker_id
        self.socket_path = socket_path
        self.config = config
        self.proc: Optional[subprocess.Popen] = None
        self.restarts = 0
        self._log = None

    def _argv(self) -> List[str]:
        cfg = self.config
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--socket", self.socket_path,
            "--queue-limit", str(cfg.queue_limit),
            "--cache-size", str(cfg.cache_size),
            "--job-threads", str(cfg.job_threads),
            "--workers", str(cfg.service_workers),
            "--drain-grace", str(cfg.drain_grace_s),
        ]
        if cfg.shard_timeout_s is not None:
            argv += ["--timeout", str(cfg.shard_timeout_s)]
        if cfg.synthetic_s is not None:
            argv += ["--synthetic", str(cfg.synthetic_s)]
        if cfg.store_dir:
            argv += ["--store-dir", cfg.store_dir]
        if not cfg.use_store:
            argv += ["--no-store"]
        return argv

    @staticmethod
    def _env() -> Dict[str, str]:
        """Child env with this repro package importable."""
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        prev = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not prev
                             else src_dir + os.pathsep + prev)
        return env

    def spawn(self) -> None:
        if self._log is None:
            self._log = open(self.socket_path + ".log", "ab")
        try:
            os.unlink(self.socket_path)     # a stale socket blocks bind
        except OSError:
            pass
        self.proc = subprocess.Popen(
            self._argv(), env=self._env(),
            stdout=self._log, stderr=subprocess.STDOUT,
        )

    def respawn(self) -> None:
        self.restarts += 1
        self.spawn()

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def returncode(self) -> Optional[int]:
        return self.proc.poll() if self.proc is not None else None

    def kill(self) -> None:
        """SIGKILL the current incarnation (chaos / loadtest hook)."""
        if self.alive():
            self.proc.kill()

    def terminate(self) -> None:
        if self.alive():
            self.proc.terminate()

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None


# ----------------------------------------------------------------------
# the front router
# ----------------------------------------------------------------------
class ClusterRouter:
    """Front router: one public endpoint over N daemon workers.

    Two modes:

    * **spawn** (default) -- the router spawns, supervises and restarts
      ``num_workers`` subprocess daemons on private Unix sockets under
      ``worker_dir``;
    * **attach** -- ``attach`` maps worker ids to existing daemon
      socket paths (the test harness runs in-process daemons); the
      router routes and health-checks but never spawns or restarts.
    """

    def __init__(
        self,
        *,
        num_workers: int = 3,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        socket_path: Optional[str] = None,
        worker_dir: Optional[str] = None,
        worker_config: Optional[WorkerConfig] = None,
        attach: Optional[Dict[str, str]] = None,
        ring_replicas: int = DEFAULT_RING_REPLICAS,
        restart_limit: int = DEFAULT_RESTART_LIMIT,
        drain_grace_s: float = DEFAULT_CLUSTER_DRAIN_GRACE_S,
        worker_boot_timeout_s: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.drain_grace_s = drain_grace_s
        self.worker_boot_timeout_s = worker_boot_timeout_s
        self.restart_limit = restart_limit
        self.ring = HashRing(replicas=ring_replicas)
        self._handles: Dict[str, WorkerHandle] = {}
        self._sockets: Dict[str, str] = {}
        self._own_worker_dir: Optional[str] = None
        if attach:
            self._sockets = dict(attach)
        else:
            if worker_dir is None:
                worker_dir = tempfile.mkdtemp(prefix="repro-cluster-")
                self._own_worker_dir = worker_dir
            os.makedirs(worker_dir, exist_ok=True)
            config = worker_config or WorkerConfig()
            for i in range(max(1, num_workers)):
                worker_id = f"w{i}"
                sock = os.path.join(worker_dir, f"{worker_id}.sock")
                self._handles[worker_id] = WorkerHandle(worker_id, sock,
                                                        config)
                self._sockets[worker_id] = sock
        #: router-level counters (authoritative for ``status``)
        self.routed = 0
        self.resubmits = 0
        self.shed = 0
        self.worker_deaths = 0
        self.worker_restarts = 0
        #: worker_id -> (monotonic shed deadline, original retry_after)
        self._shed_until: Dict[str, Tuple[float, float]] = {}
        self.killed: List[str] = []
        self.ready = threading.Event()
        self.draining = False
        self.drain_reason: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._done: Optional[asyncio.Event] = None
        self._conn_tasks: set = set()
        self._supervisor_task: Optional[asyncio.Task] = None
        self._exit_code = 0
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until drained; returns the process exit code."""
        return asyncio.run(self._amain())

    def endpoint_desc(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    async def _amain(self) -> int:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._done = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self.begin_drain, signal.Signals(sig).name)
            except (NotImplementedError, RuntimeError, ValueError):
                break
        await self._boot_workers()
        if self.socket_path:
            server = await asyncio.start_unix_server(
                self._on_connect, path=self.socket_path)
        else:
            server = await asyncio.start_server(
                self._on_connect, host=self.host, port=self.port)
            self.port = server.sockets[0].getsockname()[1]
        self._supervisor_task = asyncio.ensure_future(self._supervise())
        self.ready.set()
        print(f"[cluster] routing on {self.endpoint_desc()} "
              f"(pid {os.getpid()}, {len(self.ring)} worker(s) "
              f"on the ring)", flush=True)
        try:
            await self._done.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._supervisor_task is not None:
                self._supervisor_task.cancel()
                try:
                    await self._supervisor_task
                except asyncio.CancelledError:
                    pass
            if self._conn_tasks:
                await asyncio.wait(self._conn_tasks, timeout=10.0)
            for handle in self._handles.values():
                handle.close()
            if self.socket_path:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
        print(f"[cluster] drained ({self.drain_reason}): "
              f"{self.routed} routed, {self.resubmits} resubmitted, "
              f"{self.shed} shed, {self.worker_deaths} worker death(s), "
              f"exit {self._exit_code}", flush=True)
        return self._exit_code

    async def _boot_workers(self) -> None:
        """Spawn every worker and wait for health (spawn mode), or
        probe the attached endpoints once (attach mode)."""
        for handle in self._handles.values():
            handle.spawn()
        deadline = time.monotonic() + self.worker_boot_timeout_s
        pending = set(self._sockets)
        while pending and time.monotonic() < deadline:
            for worker_id in sorted(pending):
                if await self._probe_health(worker_id):
                    self.ring.add(worker_id)
                    pending.discard(worker_id)
            if pending:
                await asyncio.sleep(0.1)
        if not len(self.ring):
            raise RuntimeError(
                f"no cluster worker became healthy within "
                f"{self.worker_boot_timeout_s:.0f}s "
                f"(sockets: {sorted(self._sockets.values())})")
        if pending:
            print(f"[cluster] WARNING: worker(s) {sorted(pending)} not "
                  f"healthy at boot; continuing with {len(self.ring)}",
                  flush=True)

    def begin_drain(self, reason: str = "drain") -> None:
        """Drain the whole cluster: workers first, then the router."""
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        obs.count("cluster.drains")
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        faults.failpoint("serve.drain")
        deadline = time.monotonic() + self.drain_grace_s
        # ask every spawned worker to drain (attach-mode workers are
        # externally owned and left running); a worker that cannot be
        # reached -- e.g. a just-restarted one still booting -- gets a
        # SIGTERM, which lands on the daemon's own drain path anyway
        clean_codes: Dict[str, Tuple[int, ...]] = {}
        for worker_id, handle in self._handles.items():
            if not handle.alive():
                continue        # already dead and accounted for
            acked = False
            for _ in range(3):
                try:
                    await self._worker_request(
                        worker_id, protocol.request("drain"),
                        timeout=PROBE_TIMEOUT_S)
                    acked = True
                    break
                except Exception:
                    await asyncio.sleep(0.2)
            if acked:
                clean_codes[worker_id] = (0,)
            else:
                handle.terminate()
                # a pre-signal-handler exit shows as -SIGTERM; the
                # worker still stopped on request, so that is clean
                clean_codes[worker_id] = (0, -signal.SIGTERM)
        for worker_id, handle in self._handles.items():
            if worker_id not in clean_codes:
                continue
            while handle.alive() and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            if handle.alive():
                handle.kill()
                obs.count("cluster.drain_killed_workers")
                self._exit_code = 1
            elif handle.returncode not in clean_codes[worker_id]:
                self._exit_code = 1
        assert self._done is not None
        self._done.set()

    def request_shutdown(self, reason: str = "shutdown") -> None:
        """Thread-safe drain trigger (harness/tests)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.begin_drain, reason)

    def kill_worker(self, index: Optional[int] = None,
                    worker_id: Optional[str] = None) -> Optional[str]:
        """SIGKILL one live worker (chaos / loadtest hook); returns its
        id, or None when nothing was killable.  Thread-safe: only the
        process is signalled here -- ring bookkeeping stays on the
        event loop (the supervisor notices the death)."""
        candidates = [w for w in self.ring.workers()
                      if w in self._handles and self._handles[w].alive()]
        if not candidates:
            return None
        if worker_id is None:
            worker_id = candidates[(index or 0) % len(candidates)]
        if worker_id not in self._handles:
            return None
        self._handles[worker_id].kill()
        self.killed.append(worker_id)
        return worker_id

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        try:
            while not self.draining:
                for worker_id in list(self._sockets):
                    await self._check_worker(worker_id)
                    if self.draining:
                        break
                await asyncio.sleep(SUPERVISE_INTERVAL_S)
        except asyncio.CancelledError:
            raise

    async def _check_worker(self, worker_id: str) -> None:
        handle = self._handles.get(worker_id)
        if handle is not None and not handle.alive():
            self._evict(worker_id,
                        f"process died (exit {handle.returncode})")
            if self.draining:
                return
            if handle.restarts >= self.restart_limit:
                return                  # stays dead; arc stays rehashed
            handle.respawn()
            self.worker_restarts += 1
            obs.count("cluster.worker_restarts")
            print(f"[cluster] restarted worker {worker_id} "
                  f"(restart #{handle.restarts})", flush=True)
            return                      # re-added once health answers
        healthy = await self._probe_health(worker_id)
        if healthy and worker_id not in self.ring:
            self.ring.add(worker_id)
            obs.count("cluster.worker_rejoins")
            print(f"[cluster] worker {worker_id} healthy; "
                  f"re-added to the ring", flush=True)
        elif not healthy and worker_id in self.ring and handle is None:
            # attach mode: the endpoint went away (externally drained)
            self._evict(worker_id, "health probe failed")

    def _evict(self, worker_id: str, why: str) -> None:
        """Take a worker off the ring (idempotent); its arc rehashes to
        the survivors and in-flight submits resubmit there."""
        if worker_id not in self.ring:
            return
        self.ring.remove(worker_id)
        self._shed_until.pop(worker_id, None)
        self.worker_deaths += 1
        obs.count("cluster.worker_deaths")
        print(f"[cluster] worker {worker_id} evicted: {why}; "
              f"arc rehashed over {self.ring.workers()}", flush=True)

    async def _probe_health(self, worker_id: str) -> bool:
        try:
            reply = await self._worker_request(
                worker_id, protocol.request("health"),
                timeout=PROBE_TIMEOUT_S)
            # a draining worker still answers ok=True; it must not be
            # (re-)added to the ring -- it is on its way out
            return bool(reply.get("ok")) and reply.get("status") == "ok"
        except Exception:
            return False

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    async def _worker_request(self, worker_id: str,
                              payload: Dict[str, Any],
                              timeout: Optional[float] = None,
                              ) -> Dict[str, Any]:
        """One request/reply round trip to a worker's socket."""

        async def round_trip() -> Dict[str, Any]:
            reader, writer = await asyncio.open_unix_connection(
                self._sockets[worker_id])
            try:
                await protocol.write_frame(writer, payload)
                reply = await protocol.read_frame(reader)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
            if reply is None:
                raise ConnectionResetError(
                    f"worker {worker_id} closed without replying")
            return reply

        if timeout is None:
            return await round_trip()
        return await asyncio.wait_for(round_trip(), timeout)

    # ------------------------------------------------------------------
    # connection handling (mirrors ReproServer)
    # ------------------------------------------------------------------
    async def _on_connect(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    msg = await protocol.read_frame(reader)
                except protocol.ProtocolError as exc:
                    await protocol.write_frame(writer, protocol.error_reply(
                        "error", "bad_request", detail=str(exc)))
                    break
                if msg is None:
                    break
                reply = await self._dispatch(msg)
                protocol.validate_envelope(reply)
                await protocol.write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError, TimeoutError) as exc:
            faults.note_surfaced(exc)
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        if msg.get("schema") != protocol.SCHEMA:
            return protocol.error_reply(
                "error", "bad_request",
                detail=f"expected schema {protocol.SCHEMA}")
        verb = msg.get("verb")
        handler = {
            "submit": self._submit,
            "status": self._status,
            "health": self._health,
            "stats": self._stats,
            "drain": self._drain_verb,
            "experiments": self._experiments,
        }.get(verb)
        if handler is None:
            return protocol.error_reply(
                "error", "unknown_verb", detail=f"unknown verb {verb!r}")
        try:
            return await handler(msg)
        except Exception as exc:
            obs.count("cluster.internal_errors")
            faults.note_surfaced(exc)
            return protocol.error_reply(verb, "internal_error",
                                        detail=traceback.format_exc())

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def _routing_key(self, msg: Dict[str, Any]) -> str:
        """The same canonical key the worker's admission will use, so
        duplicates land on one worker and keep collapsing there."""
        return job_key({
            "experiment": msg.get("experiment"),
            "scale": float(msg.get("scale", DEFAULT_SCALE)),
            "seed": int(msg.get("seed", 7)),
            "quick": bool(msg.get("quick", False)),
            "params": msg.get("params") or {},
        })

    def _shed_remaining(self, worker_id: str) -> Optional[float]:
        entry = self._shed_until.get(worker_id)
        if entry is None:
            return None
        remaining = entry[0] - time.monotonic()
        if remaining <= 0:
            del self._shed_until[worker_id]
            return None
        return round(remaining, 2)

    async def _submit(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        obs.count("cluster.submits")
        if self.draining:
            return protocol.error_reply(
                "submit", "draining",
                detail="cluster is draining; not admitting new jobs")
        try:
            key = self._routing_key(msg)
        except (TypeError, ValueError) as exc:
            return protocol.error_reply(
                "submit", "bad_request",
                detail=f"unroutable submit: {exc}")
        attempts = 0
        while True:
            worker_id = self.ring.lookup(key)
            if worker_id is None:
                # the ring is empty: give the supervisor a moment to
                # revive someone before giving up
                attempts += 1
                if attempts >= RESUBMIT_ATTEMPTS:
                    obs.count("cluster.no_workers")
                    return protocol.error_reply(
                        "submit", "no_workers",
                        detail="no healthy worker on the ring")
                await asyncio.sleep(min(0.1 * attempts, 1.0))
                continue
            shed_after = self._shed_remaining(worker_id)
            if shed_after is not None:
                self.shed += 1
                obs.count("cluster.shed")
                return protocol.error_reply(
                    "submit", "queue_full",
                    retry_after=shed_after, shed_by="router",
                    worker=worker_id,
                    detail="worker arc is in backpressure; retry after "
                           "the given delay")
            try:
                reply = await self._worker_request(worker_id, msg)
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, protocol.ProtocolError) as exc:
                # the worker died (or its socket did) with our submit in
                # flight: evict it and resubmit to the rehashed ring
                faults.note_retried(exc)
                self._evict(worker_id, f"lost mid-submit ({exc!r:.60})")
                attempts += 1
                if attempts >= RESUBMIT_ATTEMPTS:
                    obs.count("cluster.no_workers")
                    return protocol.error_reply(
                        "submit", "no_workers",
                        detail=f"submit failed on {attempts} workers; "
                               f"last: {exc!r:.120}")
                self.resubmits += 1
                obs.count("cluster.resubmits")
                await asyncio.sleep(min(0.05 * attempts, 0.5))
                continue
            if not reply.get("ok") and reply.get("error") == "draining" \
                    and not self.draining:
                # an attach-mode worker is being drained out from under
                # us: treat it like a death and fail over
                self._evict(worker_id, "worker is draining")
                attempts += 1
                if attempts >= RESUBMIT_ATTEMPTS:
                    obs.count("cluster.no_workers")
                    return protocol.error_reply(
                        "submit", "no_workers",
                        detail="every worker is draining")
                self.resubmits += 1
                obs.count("cluster.resubmits")
                continue
            self.routed += 1
            if not reply.get("ok") and reply.get("error") == "queue_full":
                retry_after = reply.get("retry_after")
                if isinstance(retry_after, (int, float)) \
                        and not isinstance(retry_after, bool) \
                        and retry_after > 0:
                    self._shed_until[worker_id] = (
                        time.monotonic() + float(retry_after),
                        float(retry_after))
                obs.count("cluster.backpressure")
            elif reply.get("ok"):
                self._shed_until.pop(worker_id, None)
            reply.setdefault("worker", worker_id)
            return reply

    async def _health(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.response(
            "health",
            status="draining" if self.draining else "ok",
            inflight=0,
            cluster=True,
            workers_on_ring=len(self.ring),
        )

    async def _status(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        per_worker: Dict[str, Dict[str, Any]] = {}
        for worker_id in sorted(self._sockets):
            if worker_id not in self.ring:
                handle = self._handles.get(worker_id)
                per_worker[worker_id] = {
                    "alive": False,
                    "restarts": handle.restarts if handle else 0,
                }
                continue
            try:
                reply = await self._worker_request(
                    worker_id, protocol.request("status"),
                    timeout=PROBE_TIMEOUT_S)
            except Exception as exc:
                per_worker[worker_id] = {"alive": False,
                                         "error": repr(exc)}
                continue
            handle = self._handles.get(worker_id)
            per_worker[worker_id] = {
                "alive": True,
                "restarts": handle.restarts if handle else 0,
                "inflight": reply.get("inflight", 0),
                "queue_limit": reply.get("queue_limit", 0),
                "jobs_admitted": reply.get("jobs_admitted", 0),
                "jobs_completed": reply.get("jobs_completed", 0),
                "jobs_failed": reply.get("jobs_failed", 0),
                "dedup_joined": reply.get("dedup_joined", 0),
                "rejected_queue_full": reply.get("rejected_queue_full", 0),
                "cache": reply.get("cache", {}),
                "pid": reply.get("pid"),
            }
        live = [w for w in per_worker.values() if w.get("alive")]

        def agg(field_name: str) -> int:
            return sum(w.get(field_name, 0) for w in live)

        cache = {k: sum(w.get("cache", {}).get(k, 0) for w in live)
                 for k in ("hits", "misses", "evictions", "size",
                           "capacity")}
        return protocol.response(
            "status",
            draining=self.draining,
            uptime_s=round(time.monotonic() - self._t0, 3),
            pid=os.getpid(),
            endpoint=self.endpoint_desc(),
            # single-daemon-compatible aggregate fields (the plain
            # ``repro status`` renderer works against a cluster)
            inflight=agg("inflight"),
            queue_limit=agg("queue_limit"),
            job_threads=sum(1 for _ in live),
            service_workers=len(self._sockets),
            store_dir=None,
            jobs_admitted=agg("jobs_admitted"),
            jobs_completed=agg("jobs_completed"),
            jobs_failed=agg("jobs_failed"),
            dedup_joined=agg("dedup_joined"),
            rejected_queue_full=agg("rejected_queue_full"),
            cache=cache,
            cluster={
                "ring": self.ring.workers(),
                "replicas": self.ring.replicas,
                "routed": self.routed,
                "resubmits": self.resubmits,
                "shed": self.shed,
                "worker_deaths": self.worker_deaths,
                "worker_restarts": self.worker_restarts,
                "shedding": sorted(self._shed_until),
                "killed": list(self.killed),
            },
            workers=per_worker,
        )

    async def _stats(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        latency: Dict[str, List[float]] = {}
        inflight = 0
        cache = {"hits": 0, "misses": 0, "evictions": 0, "size": 0,
                 "capacity": 0}
        counters = {"jobs_admitted": 0, "jobs_completed": 0,
                    "jobs_failed": 0, "dedup_joined": 0,
                    "rejected_queue_full": 0}
        for worker_id in self.ring.workers():
            try:
                reply = await self._worker_request(
                    worker_id, protocol.request("stats"),
                    timeout=PROBE_TIMEOUT_S)
            except Exception:
                continue
            inflight += reply.get("inflight", 0)
            for k in cache:
                cache[k] += reply.get("cache", {}).get(k, 0)
            for k in counters:
                counters[k] += reply.get("counters", {}).get(k, 0)
            for name, entry in (reply.get("latency") or {}).items():
                bucket = latency.setdefault(name, [0, 0.0])
                bucket[0] += entry.get("count", 0)
                bucket[1] += entry.get("count", 0) * entry.get("mean_s", 0.0)
        return protocol.response(
            "stats",
            telemetry=obs.snapshot(),
            latency={
                name: {"count": count,
                       "mean_s": total / count if count else 0.0}
                for name, (count, total) in sorted(latency.items())
            },
            cache=cache,
            counters=counters,
            inflight=inflight,
        )

    async def _drain_verb(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        self.begin_drain("drain verb")
        return protocol.response("drain", draining=True,
                                 inflight=0, cluster=True)

    async def _experiments(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        for worker_id in self.ring.workers():
            try:
                return await self._worker_request(
                    worker_id, msg, timeout=PROBE_TIMEOUT_S)
            except Exception:
                continue
        return protocol.error_reply(
            "experiments", "no_workers",
            detail="no healthy worker on the ring")
