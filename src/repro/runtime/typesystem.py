"""The C++-like type system the workloads are written against.

A :class:`TypeDescriptor` models one C++ class: named, typed fields,
single inheritance, and virtual methods.  Virtual methods are Python
callables with signature ``impl(ctx, objptrs)`` executed warp-wide by
the SIMT executor; ``None`` marks a pure-virtual slot.

Field *offsets* are not stored on the descriptor: the object header
differs per technique (CUDA embeds one vTable pointer, SharedOA embeds
a CPU and a GPU vTable pointer, Concord embeds a type tag), so the
:class:`ObjectLayout` for a given header size is computed per machine
and cached in the :class:`TypeRegistry`.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import TypeSystemError
from ..memory.address_space import align_up
from ..memory.heap import SCALAR_TYPES

#: A virtual method implementation: ``impl(ctx, objptrs)``.
MethodImpl = Callable[..., None]


@dataclass(frozen=True)
class FieldDecl:
    """One declared member variable."""

    name: str
    dtype: str  # key into repro.memory.heap.SCALAR_TYPES

    def __post_init__(self):
        if self.dtype not in SCALAR_TYPES:
            raise TypeSystemError(f"unknown field dtype {self.dtype!r}")

    @property
    def size(self) -> int:
        return SCALAR_TYPES[self.dtype][1]


class TypeDescriptor:
    """One class in the workload's hierarchy."""

    def __init__(
        self,
        name: str,
        fields: Sequence[Tuple[str, str]] = (),
        methods: Optional[Dict[str, Optional[MethodImpl]]] = None,
        base: Optional["TypeDescriptor"] = None,
    ):
        self.name = name
        self.base = base
        self.own_fields: List[FieldDecl] = [FieldDecl(n, d) for n, d in fields]
        self.own_methods: Dict[str, Optional[MethodImpl]] = dict(methods or {})

        seen = set()
        for f in self.all_fields():
            if f.name in seen:
                raise TypeSystemError(
                    f"duplicate field {f.name!r} in hierarchy of {name!r}"
                )
            seen.add(f.name)

        self._slots: Optional[Dict[str, int]] = None
        self._vtable_impls: Optional[List[Optional[MethodImpl]]] = None

    # ------------------------------------------------------------------
    # hierarchy walks
    # ------------------------------------------------------------------
    def mro(self) -> List["TypeDescriptor"]:
        """Base-to-derived chain (single inheritance)."""
        chain: List[TypeDescriptor] = []
        t: Optional[TypeDescriptor] = self
        while t is not None:
            chain.append(t)
            t = t.base
        chain.reverse()
        return chain

    def all_fields(self) -> List[FieldDecl]:
        """Fields in layout order: base fields first, as in C++."""
        out: List[FieldDecl] = []
        for t in self.mro():
            out.extend(t.own_fields)
        return out

    def is_subtype_of(self, other: "TypeDescriptor") -> bool:
        return other in self.mro()

    # ------------------------------------------------------------------
    # virtual dispatch tables
    # ------------------------------------------------------------------
    def vtable_slots(self) -> Dict[str, int]:
        """Method name -> slot index; overrides keep the base's slot."""
        if self._slots is None:
            slots: Dict[str, int] = {}
            for t in self.mro():
                for m in t.own_methods:
                    if m not in slots:
                        slots[m] = len(slots)
            self._slots = slots
        return self._slots

    def vtable_impls(self) -> List[Optional[MethodImpl]]:
        """Resolved implementation per slot (None = pure virtual)."""
        if self._vtable_impls is None:
            slots = self.vtable_slots()
            impls: List[Optional[MethodImpl]] = [None] * len(slots)
            for t in self.mro():  # derived overrides land last
                for m, impl in t.own_methods.items():
                    if impl is not None:
                        impls[slots[m]] = impl
            self._vtable_impls = impls
        return self._vtable_impls

    def is_abstract(self) -> bool:
        return any(impl is None for impl in self.vtable_impls())

    def num_virtual_methods(self) -> int:
        return len(self.vtable_slots())

    def slot_of(self, method: str) -> int:
        slots = self.vtable_slots()
        if method not in slots:
            raise TypeSystemError(f"{self.name!r} has no virtual method {method!r}")
        return slots[method]

    def __repr__(self) -> str:
        return f"<Type {self.name}>"


@dataclass(frozen=True)
class ObjectLayout:
    """Concrete byte layout of a type under a given header size."""

    type_desc: TypeDescriptor
    header_size: int
    field_offsets: Tuple[Tuple[str, str, int], ...]  # (name, dtype, offset)
    size: int

    def offset(self, field: str) -> int:
        for name, _, off in self.field_offsets:
            if name == field:
                return off
        raise TypeSystemError(
            f"{self.type_desc.name!r} has no field {field!r}"
        )

    def dtype(self, field: str) -> str:
        for name, dt, _ in self.field_offsets:
            if name == field:
                return dt
        raise TypeSystemError(
            f"{self.type_desc.name!r} has no field {field!r}"
        )


def compute_layout(type_desc: TypeDescriptor, header_size: int) -> ObjectLayout:
    """Lay out fields after the header with natural alignment, C++-style."""
    offsets: List[Tuple[str, str, int]] = []
    cursor = header_size
    for f in type_desc.all_fields():
        cursor = align_up(cursor, f.size)
        offsets.append((f.name, f.dtype, cursor))
        cursor += f.size
    size = align_up(max(cursor, header_size + 1), 8)
    return ObjectLayout(
        type_desc=type_desc,
        header_size=header_size,
        field_offsets=tuple(offsets),
        size=size,
    )


class TypeRegistry:
    """All types known to one machine, plus their layout cache."""

    def __init__(self, header_size: int):
        self.header_size = header_size
        self._types: Dict[str, TypeDescriptor] = {}
        self._layouts: Dict[str, ObjectLayout] = {}
        #: stable small integer per registered type (Concord's type tag)
        self._type_ids: Dict[str, int] = {}

    def register(self, type_desc: TypeDescriptor) -> TypeDescriptor:
        """Register a type (and, implicitly, its bases)."""
        for t in type_desc.mro():
            if t.name in self._types:
                if self._types[t.name] is not t:
                    raise TypeSystemError(
                        f"two distinct types named {t.name!r} registered"
                    )
                continue
            self._types[t.name] = t
            self._type_ids[t.name] = len(self._type_ids)
            self._layouts[t.name] = compute_layout(t, self.header_size)
        return type_desc

    def layout(self, type_desc: TypeDescriptor) -> ObjectLayout:
        if type_desc.name not in self._layouts:
            self.register(type_desc)
        return self._layouts[type_desc.name]

    def type_id(self, type_desc: TypeDescriptor) -> int:
        if type_desc.name not in self._type_ids:
            self.register(type_desc)
        return self._type_ids[type_desc.name]

    def by_id(self, type_id: int) -> TypeDescriptor:
        for name, tid in self._type_ids.items():
            if tid == type_id:
                return self._types[name]
        raise TypeSystemError(f"unknown type id {type_id}")

    def all_types(self) -> List[TypeDescriptor]:
        return list(self._types.values())

    def concrete_types(self) -> List[TypeDescriptor]:
        return [t for t in self._types.values() if not t.is_abstract()]

    def __len__(self) -> int:
        return len(self._types)
