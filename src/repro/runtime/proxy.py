"""Host-side object proxies: ergonomic CPU access to simulated objects.

Workload and test code frequently reads simulated objects' fields from
the host (initialisation, validation).  Raw heap arithmetic
(``heap.load(canonical + layout.offset(f), dtype)``) is noisy;
:class:`ObjectProxy` wraps one object pointer with attribute access::

    dog = ObjectProxy(machine, ptr, Dog)
    dog.age            # reads the simulated heap
    dog.age = 3        # writes it
    dog.type_of()      # ground-truth dynamic type
    dog.call("speak")  # CPU-side virtual dispatch (SharedOA's promise)

Host access is uncharged by design -- it models CPU-side work, which
the paper's kernel measurements exclude.
"""
from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from ..errors import TypeSystemError
from .typesystem import TypeDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from ..gpu.machine import Machine


class ObjectProxy:
    """Attribute-style host access to one simulated object."""

    __slots__ = ("_machine", "_ptr", "_type", "_layout", "_canonical")

    def __init__(self, machine: "Machine", ptr: int,
                 static_type: TypeDescriptor):
        object.__setattr__(self, "_machine", machine)
        object.__setattr__(self, "_ptr", int(ptr))
        object.__setattr__(self, "_type", static_type)
        object.__setattr__(self, "_layout", machine.registry.layout(static_type))
        object.__setattr__(
            self, "_canonical", machine.allocator._canonical(int(ptr))
        )

    # ------------------------------------------------------------------
    @property
    def ptr(self) -> int:
        """The (possibly tagged) pointer value."""
        return self._ptr

    @property
    def address(self) -> int:
        """The canonical heap address."""
        return self._canonical

    def type_of(self) -> TypeDescriptor:
        """Ground-truth dynamic type from the allocator."""
        t = self._machine.allocator.owner_type(self._ptr)
        if t is None:
            raise TypeSystemError(f"pointer {self._ptr:#x} is not a live object")
        return t

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        try:
            addr = self._machine.allocator.field_addr(
                self._canonical, self._layout, name
            )
        except TypeSystemError:
            raise AttributeError(
                f"{self._type.name} has no field {name!r}"
            ) from None
        return self._machine.heap.load(addr, self._layout.dtype(name))

    def __setattr__(self, name: str, value) -> None:
        try:
            addr = self._machine.allocator.field_addr(
                self._canonical, self._layout, name
            )
        except TypeSystemError:
            raise AttributeError(
                f"{self._type.name} has no field {name!r}"
            ) from None
        self._machine.heap.store(addr, self._layout.dtype(name), value)

    # ------------------------------------------------------------------
    def call(self, method: str):
        """Resolve a virtual method CPU-side; returns the implementation.

        Mirrors SharedOA's CPU/GPU shared dispatch (section 4): the
        implementation is resolved through the object's *dynamic* type,
        not the proxy's static one.
        """
        dynamic = self.type_of()
        impl = dynamic.vtable_impls()[self._type.slot_of(method)]
        if impl is None:
            raise TypeSystemError(
                f"{dynamic.name}.{method} is pure virtual"
            )
        return impl

    def fields(self) -> dict:
        """All field values as a plain dict (debugging aid)."""
        return {
            name: getattr(self, name)
            for name, _, _ in self._layout.field_offsets
        }

    def __repr__(self) -> str:
        return (f"<ObjectProxy {self.type_of().name} @ {self._canonical:#x}"
                f"{' tagged' if self._ptr != self._canonical else ''}>")


def proxies(machine: "Machine", ptrs: Iterable[int],
            static_type: TypeDescriptor) -> List[ObjectProxy]:
    """Proxies for a batch of pointers."""
    return [ObjectProxy(machine, int(p), static_type) for p in ptrs]
