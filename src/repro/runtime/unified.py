"""SharedOA's unified-memory shared-object facade (paper section 4).

No industrial framework lets the CPU and a discrete GPU share objects
with virtual functions; SharedOA's ``sharedNew()`` fills the gap by
allocating in managed (unified) memory and storing *both* a CPU and a
GPU vTable pointer in each object.  Because the authors could not
modify the closed CUDA backend, a tiny one-shot *init kernel* patches
every object's GPU vTable pointer before the first compute kernel
(~0.15% of initialisation time, section 7).

In the simulation the GPU vTable pointer is written eagerly at
construction, so the init kernel is a cost model rather than a
correctness requirement -- but we keep it observable: the space tracks
whether it has "run" and charges its modeled cost, letting the
init-phase experiment (section 8.2's 80x claim) account for it.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..runtime.typesystem import TypeDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from ..gpu.machine import Machine


@dataclass
class InitPhaseReport:
    """Modeled cost of the object-initialisation phase."""

    objects: int
    alloc_cycles: int
    init_kernel_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.alloc_cycles + self.init_kernel_cycles


class SharedObjectSpace:
    """CPU/GPU shared objects through unified virtual memory."""

    #: modeled per-object cost of the vTable-patching init kernel
    INIT_KERNEL_CYCLES_PER_OBJECT = 0.05
    #: fixed launch cost of the init kernel
    INIT_KERNEL_LAUNCH_CYCLES = 4000.0

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._objects_created = 0
        self._init_kernel_ran = False

    # ------------------------------------------------------------------
    def shared_new(self, type_desc: TypeDescriptor, count: int = 1) -> np.ndarray:
        """Allocate shared objects usable from both CPU and GPU code."""
        ptrs = self.machine.new_objects(type_desc, count)
        self._objects_created += count
        self._init_kernel_ran = False
        return ptrs

    def run_init_kernel(self) -> float:
        """Patch GPU vTable pointers; returns modeled cycles consumed."""
        cycles = (
            self.INIT_KERNEL_LAUNCH_CYCLES
            + self.INIT_KERNEL_CYCLES_PER_OBJECT * self._objects_created
        )
        self._init_kernel_ran = True
        return cycles

    @property
    def ready_for_gpu(self) -> bool:
        return self._init_kernel_ran or self._objects_created == 0

    # ------------------------------------------------------------------
    def init_phase_report(self) -> InitPhaseReport:
        """Modeled initialisation cost for the section 8.2 comparison."""
        return InitPhaseReport(
            objects=self._objects_created,
            alloc_cycles=self.machine.allocator.stats.modeled_alloc_cycles,
            init_kernel_cycles=(
                self.INIT_KERNEL_LAUNCH_CYCLES
                + self.INIT_KERNEL_CYCLES_PER_OBJECT * self._objects_created
            ),
        )


def cpu_call(machine: "Machine", ptr: int, static_type: TypeDescriptor,
             method: str, *args):
    """Call a virtual method from 'CPU' code through the CPU vTable.

    Demonstrates that shared objects dispatch on both sides.  The CPU
    path is host-side Python: uncharged, scalar, resolved through the
    same arena tables.
    """
    canonical = machine.allocator._canonical(int(ptr))
    vt = int(machine.heap.load(canonical, "u64"))
    # SharedOA headers store the CPU vTable pointer at +8, with bit 0
    # set to distinguish it from the GPU pointer (see SharedVTableDispatch)
    if machine.strategy.header_size >= 16:
        vt = int(machine.heap.load(canonical + 8, "u64")) ^ 0x1
    tdesc = machine.arena.type_of_vtable_addr(vt)
    impl = tdesc.vtable_impls()[static_type.slot_of(method)]
    return impl, tdesc
