"""Deterministic per-run type-name minting.

Workloads and the kernel front-end create fresh :class:`TypeDescriptor`
hierarchies per instance (method closures, parameterised type counts),
and each hierarchy needs names that cannot collide inside one
:class:`~repro.runtime.typesystem.TypeRegistry`.  The old scheme
(``f"...{id(self):x}"``) was unique but *nondeterministic*: CPython
reuses addresses, so type names varied between processes and even
between runs, which breaks anything that keys on them -- persisted
artefacts, serving-job identities, golden dumps of registry contents.

``mint_tag`` replaces it with a per-prefix counter: the n-th hierarchy
minted under a prefix is always ``<prefix><n>``, so names are a pure
function of construction order -- stable across processes for any
deterministic run.
"""
from __future__ import annotations

from typing import Dict

_counters: Dict[str, int] = {}


def mint_tag(prefix: str) -> str:
    """Next deterministic tag under ``prefix``: ``gol0``, ``gol1``, ...

    Tags are unique within a process run and reproducible across runs
    that construct the same objects in the same order.
    """
    n = _counters.get(prefix, 0)
    _counters[prefix] = n + 1
    return f"{prefix}{n}"


def reset_naming() -> None:
    """Reset every prefix counter (test isolation)."""
    _counters.clear()
