"""Device-resident arrays and object-collection helpers.

Workloads keep their object graphs in device arrays (arrays of object
pointers, neighbour lists, grids...).  A :class:`DeviceArray` owns a
contiguous simulated allocation; host-side reads/writes are free
(initialisation, validation), while kernel-side accesses go through
the execution context and are fully charged.
"""
from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..memory.heap import SCALAR_TYPES

if TYPE_CHECKING:  # pragma: no cover
    from ..gpu.machine import Machine


class DeviceArray:
    """A typed, contiguous array in simulated device memory."""

    def __init__(self, machine: "Machine", dtype: str, count: int, align: int = 128):
        if dtype not in SCALAR_TYPES:
            raise ValueError(f"unknown dtype {dtype!r}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.machine = machine
        self.dtype = dtype
        self.count = count
        self.item_size = SCALAR_TYPES[dtype][1]
        self.base = machine.allocator.alloc_raw(count * self.item_size, align)

    # ------------------------------------------------------------------
    def addr(self, idx) -> np.ndarray:
        """Element addresses for (array of) indices."""
        i = np.asarray(idx, dtype=np.uint64)
        if i.size and int(i.max()) >= self.count:
            raise IndexError(f"index out of range for DeviceArray[{self.count}]")
        return np.uint64(self.base) + i * np.uint64(self.item_size)

    # host-side (uncharged) access -------------------------------------
    def read(self) -> np.ndarray:
        return self.machine.heap.read_array(self.base, self.dtype, self.count)

    def write(self, values) -> None:
        vals = np.asarray(values)
        if vals.size != self.count:
            raise ValueError(
                f"expected {self.count} values, got {vals.size}"
            )
        self.machine.heap.write_array(self.base, self.dtype, vals.ravel())

    def __getitem__(self, idx: int):
        return self.machine.heap.load(
            self.base + int(idx) * self.item_size, self.dtype
        )

    def __setitem__(self, idx: int, value) -> None:
        self.machine.heap.store(
            self.base + int(idx) * self.item_size, self.dtype, value
        )

    def __len__(self) -> int:
        return self.count

    # kernel-side (charged) access -------------------------------------
    def ld(self, ctx, idx, role: str = None) -> np.ndarray:
        """Charged gather of elements at ``idx`` from inside a kernel."""
        return ctx.load(self.addr(idx), self.dtype, role=role)

    def st(self, ctx, idx, values) -> None:
        """Charged scatter of ``values`` to ``idx`` from inside a kernel."""
        ctx.store(self.addr(idx), self.dtype, values)
