"""The vTable arena: contiguous virtual-function-table storage.

CUDA already appears to allocate vTables contiguously (paper section
6.1); TypePointer depends on it, because the 15 tag bits encode the
vTable's **byte offset** inside this arena (32KiB reachable -- "enough
for 4k virtual function pointers").

The arena lives at a fixed heap address, analogous to the
``vTablesStartAddr`` register of Figure 5b.  Each concrete type's
vTable is an array of 8-byte simulated function pointers; the function
pointers point into a fake code segment, and the arena keeps the
reverse maps (vtable address -> type, code address -> Python callable)
that make dispatch *functionally* real: a wrong table walk produces a
wrong function, not just a wrong cycle count.
"""
from __future__ import annotations

from typing import Dict

from ..errors import DispatchError, TypeTagOverflow
from ..memory.heap import Heap
from .typesystem import MethodImpl, TypeDescriptor

#: Total arena size reachable through 15 tag bits (paper section 6.1).
ARENA_BYTES = 1 << 15  # 32 KiB

#: Spacing of simulated function entry points in the fake code segment.
_CODE_STRIDE = 64

#: First bytes of the arena are reserved so that a TypePointer tag of 0
#: never names a real vTable: an untagged pointer (tag 0) fed to the
#: TypePointer lowering is then detectable as the allocator-mixing bug
#: of section 6.4 instead of silently dispatching through type 0.
_RESERVED_PREFIX = 64


class VTableArena:
    """Contiguous storage for every type's virtual function table."""

    def __init__(self, heap: Heap):
        self.heap = heap
        self.base = heap.sbrk(ARENA_BYTES, 256)
        self._cursor = _RESERVED_PREFIX
        # code segment for simulated function pointers
        self._code_base = heap.sbrk(1 << 16, 256)
        self._code_cursor = 0
        self._impl_addr: Dict[int, int] = {}              # id(impl) -> code addr
        self._addr_impl: Dict[int, MethodImpl] = {}       # code addr -> impl
        self._type_offset: Dict[str, int] = {}            # type name -> arena offset
        self._offset_type: Dict[int, TypeDescriptor] = {}
        self._addr_type: Dict[int, TypeDescriptor] = {}   # vtable addr -> type

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _code_addr_for(self, impl: MethodImpl) -> int:
        key = id(impl)
        addr = self._impl_addr.get(key)
        if addr is None:
            addr = self._code_base + self._code_cursor
            self._code_cursor += _CODE_STRIDE
            self._impl_addr[key] = addr
            self._addr_impl[addr] = impl
        return addr

    def ensure_type(self, type_desc: TypeDescriptor) -> int:
        """Create (once) the vTable for ``type_desc``; returns its offset."""
        existing = self._type_offset.get(type_desc.name)
        if existing is not None:
            return existing

        impls = type_desc.vtable_impls()
        table_bytes = max(len(impls), 1) * 8
        if self._cursor + table_bytes > ARENA_BYTES:
            raise TypeTagOverflow(
                f"vTable arena exhausted adding {type_desc.name!r}; the paper's "
                f"fallback is index-encoded tags with padded tables (section 6.1)"
            )
        offset = self._cursor
        self._cursor += table_bytes

        addr = self.base + offset
        for slot, impl in enumerate(impls):
            fn_addr = 0 if impl is None else self._code_addr_for(impl)
            self.heap.store(addr + slot * 8, "u64", fn_addr)

        self._type_offset[type_desc.name] = offset
        self._offset_type[offset] = type_desc
        self._addr_type[addr] = type_desc
        return offset

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def vtable_addr(self, type_desc: TypeDescriptor) -> int:
        """Address of the type's vTable (what object headers store)."""
        return self.base + self.ensure_type(type_desc)

    def tag_for_type(self, type_desc: TypeDescriptor) -> int:
        """TypePointer tag for the type: its byte offset in the arena."""
        return self.ensure_type(type_desc)

    def type_of_vtable_addr(self, addr: int) -> TypeDescriptor:
        t = self._addr_type.get(addr)
        if t is None:
            raise DispatchError(f"no vTable at address {addr:#x}")
        return t

    def type_of_tag(self, tag: int) -> TypeDescriptor:
        t = self._offset_type.get(tag)
        if t is None:
            raise DispatchError(f"no vTable at arena offset {tag:#x}")
        return t

    def impl_of_code_addr(self, addr: int) -> MethodImpl:
        if addr == 0:
            raise DispatchError("indirect call through null function pointer "
                                "(pure-virtual call)")
        impl = self._addr_impl.get(addr)
        if impl is None:
            raise DispatchError(f"indirect call to non-function address {addr:#x}")
        return impl

    def vfunc_entry_addr(self, type_desc: TypeDescriptor, slot: int) -> int:
        """Address of the slot-th entry of the type's vTable."""
        return self.vtable_addr(type_desc) + slot * 8

    @property
    def bytes_used(self) -> int:
        return self._cursor

    def num_tables(self) -> int:
        return len(self._type_offset)

    # ------------------------------------------------------------------
    # index-encoded fallback (section 6.1/6.2)
    # ------------------------------------------------------------------
    #: slots every padded table reserves in index mode.  "The system
    #: must ensure that the vTables for all object types are padded to
    #: the maximum vTable size" -- 16 slots covers every workload here;
    #: the paper measures the waste at <1KiB total.
    INDEXED_SLOTS = 16
    #: type indices reachable through the 15 tag bits in index mode
    INDEXED_CAPACITY = 1024  # enough for our studies; paper: up to 32K

    def padded_table_stride(self) -> int:
        """Bytes between consecutive padded tables in index mode."""
        return self.INDEXED_SLOTS * 8

    @property
    def indexed_base(self) -> int:
        """Base of the padded-table region (allocated on first use)."""
        if not hasattr(self, "_indexed_base"):
            self._indexed_base = self.heap.sbrk(
                self.INDEXED_CAPACITY * self.padded_table_stride(), 256
            )
            self._type_index: Dict[str, int] = {}
            self._index_type: Dict[int, TypeDescriptor] = {}
            self._index_cursor = 1  # index 0 reserved (untagged pointers)
        return self._indexed_base

    def index_for_type(self, type_desc: TypeDescriptor) -> int:
        """1-based type index; writes the padded table on first call."""
        base = self.indexed_base  # ensures the region exists
        existing = self._type_index.get(type_desc.name)
        if existing is not None:
            return existing
        impls = type_desc.vtable_impls()
        if len(impls) > self.INDEXED_SLOTS:
            raise TypeTagOverflow(
                f"{type_desc.name!r} has {len(impls)} virtual methods; the "
                f"index-encoded arena pads tables to {self.INDEXED_SLOTS}"
            )
        idx = self._index_cursor
        if idx >= self.INDEXED_CAPACITY:
            raise TypeTagOverflow("index-encoded vTable arena exhausted")
        self._index_cursor += 1
        addr = base + idx * self.padded_table_stride()
        for slot, impl in enumerate(impls):
            fn_addr = 0 if impl is None else self._code_addr_for(impl)
            self.heap.store(addr + slot * 8, "u64", fn_addr)
        self._type_index[type_desc.name] = idx
        self._index_type[idx] = type_desc
        return idx

    def type_of_index(self, idx: int) -> TypeDescriptor:
        self.indexed_base  # ensure maps exist
        t = self._index_type.get(idx)
        if t is None:
            raise DispatchError(f"no padded vTable at index {idx}")
        return t
