"""Runtime layer: type system, vTables, device arrays, unified memory."""

from .objects import DeviceArray
from .proxy import ObjectProxy, proxies
from .typesystem import (
    FieldDecl,
    ObjectLayout,
    TypeDescriptor,
    TypeRegistry,
    compute_layout,
)
from .unified import InitPhaseReport, SharedObjectSpace, cpu_call
from .vtable import ARENA_BYTES, VTableArena

__all__ = [
    "DeviceArray",
    "ObjectProxy",
    "proxies",
    "FieldDecl",
    "ObjectLayout",
    "TypeDescriptor",
    "TypeRegistry",
    "compute_layout",
    "InitPhaseReport",
    "SharedObjectSpace",
    "cpu_call",
    "ARENA_BYTES",
    "VTableArena",
]
