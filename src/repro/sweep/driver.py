"""Sweep driver: fan resolved points through the experiment service.

The driver takes a :class:`~repro.sweep.spec.SweepSpec`, resolves its
points, skips every point the result database already holds with
status ``ok`` (resumability), and fans the rest through the
:class:`~repro.harness.service.ExperimentService` process pool as
cell shards -- the same worker path ``python -m repro all`` uses, so
sweep points get the per-shard timeout / retry-once / serial-fallback
contract and per-shard telemetry for free.

Points run in batches of roughly ``2 x num_workers`` shards; each
point is committed to the database the moment its batch lands, so a
kill (SIGTERM, OOM, power) loses at most the in-flight batch and a
rerun recomputes only what never committed.

Per-point failure isolation: a worker exception (bad knob interaction,
workload assertion) must not kill the other 99 points, so the sweep
worker converts exceptions into an ``error`` result recorded with
status ``"error"`` -- except :class:`repro.faults.FaultError`, which is
re-raised so armed failpoints keep exercising the scheduler's
crash/retry paths.
"""
from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from .. import faults
from ..harness.runner import RunRecord
from ..harness.service import DEFAULT_TIMEOUT_S, ExperimentService, _service_worker
from ..harness.resultdb import ResultDB
from .spec import SweepPoint, SweepSpec

# fires before a sweep point's result is committed to the DB
faults.declare("sweep.point.record", "raise", "delay")

#: RunRecord scalar fields recorded as sweep metrics (plus wall_s and
#: total_warp_instrs, added by :func:`metrics_from_record`)
_RECORD_METRICS = (
    "cycles", "compute_cycles", "memory_cycles", "thread_instrs",
    "vfunc_calls", "vfunc_pki", "gld_transactions", "gst_transactions",
    "l1_hit_rate", "l2_hit_rate", "dram_accesses", "dram_row_misses",
    "const_accesses", "const_hits", "tlb_walks", "call_serializations",
    "checksum", "num_objects", "num_types", "num_vfuncs",
    "external_fragmentation",
)


def metrics_from_record(record: RunRecord) -> Dict[str, float]:
    """Flatten a RunRecord into the sweep's scalar metric namespace."""
    metrics: Dict[str, float] = {}
    for name in _RECORD_METRICS:
        value = getattr(record, name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metrics[name] = value
    metrics["total_warp_instrs"] = record.total_warp_instrs
    for cls, count in sorted(record.warp_instrs.items()):
        metrics[f"warp_instrs.{cls}"] = count
    return metrics


def _point_worker(payload: Dict) -> Dict:
    """Cell worker with per-point failure isolation.

    Exceptions become an error result (recorded as one failed point)
    instead of crashing the shard twice and poisoning the sweep;
    FaultError passes through so armed failpoints still exercise the
    scheduler's retry machinery.
    """
    try:
        return _service_worker(payload)
    except faults.FaultError:
        raise
    except Exception:
        return {"value": None, "memo_hits": 0, "memo_misses": 0,
                "telemetry": None, "error": traceback.format_exc(limit=8)}


@dataclass
class SweepRunReport:
    """What one ``sweep run`` invocation did."""

    sweep: str
    run_id: str
    db_path: str
    total: int
    skipped: int
    computed: int
    failed: int
    wall_s: float
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep, "run_id": self.run_id,
            "db_path": self.db_path, "total": self.total,
            "skipped": self.skipped, "computed": self.computed,
            "failed": self.failed, "wall_s": self.wall_s,
            "outcomes": dict(self.outcomes),
        }

    def render(self) -> str:
        outcomes = ", ".join(f"{k}={v}"
                             for k, v in sorted(self.outcomes.items()))
        return (f"sweep {self.sweep}: {self.total} points -- "
                f"{self.skipped} already done, {self.computed} computed, "
                f"{self.failed} failed ({outcomes or 'nothing ran'}) "
                f"in {self.wall_s:.1f}s -> {self.db_path}")


def run_sweep(
    spec: SweepSpec,
    db: Union[ResultDB, str, Path, None] = None,
    *,
    num_workers: Optional[int] = None,
    timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
    store_dir: Optional[str] = None,
    use_store: bool = True,
    batch_size: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> SweepRunReport:
    """Run every not-yet-recorded point of ``spec`` and persist results.

    Resumable by construction: points whose ``point_id`` is already in
    the database with status ``ok`` are skipped, and completed batches
    are committed as the sweep progresses, so rerunning after a crash
    recomputes only unfinished work.
    """
    own_db = not isinstance(db, ResultDB)
    rdb = db if isinstance(db, ResultDB) else ResultDB(db)
    try:
        return _run_sweep(spec, rdb, num_workers=num_workers,
                          timeout_s=timeout_s, store_dir=store_dir,
                          use_store=use_store, batch_size=batch_size,
                          echo=echo)
    finally:
        if own_db:
            rdb.close()


def _run_sweep(spec, rdb, *, num_workers, timeout_s, store_dir,
               use_store, batch_size, echo) -> SweepRunReport:
    t0 = time.perf_counter()
    say = echo or (lambda _msg: None)
    points = spec.resolve_points()
    done = rdb.ok_point_ids({p.point_id for p in points})
    todo = [p for p in points if p.point_id not in done]
    say(f"sweep {spec.name}: {len(points)} points "
        f"({len(done)} already recorded, {len(todo)} to run)")

    report = SweepRunReport(
        sweep=spec.name, run_id="", db_path=str(rdb.path),
        total=len(points), skipped=len(done), computed=0, failed=0,
        wall_s=0.0,
    )
    if not todo:
        report.wall_s = time.perf_counter() - t0
        return report

    report.run_id = rdb.begin_run("sweep", spec.name, spec.to_dict())
    service = ExperimentService(num_workers=num_workers,
                                timeout_s=timeout_s, store_dir=store_dir,
                                use_store=use_store)
    if batch_size is None:
        batch_size = max(1, service.num_workers * 2)

    for start in range(0, len(todo), batch_size):
        batch = todo[start:start + batch_size]
        payloads = [_payload_for(p, service) for p in batch]
        labels = [f"{p.workload}x{p.technique}@{p.point_id[:8]}"
                  for p in batch]
        values, shard_reports = service.run_point_shards(
            payloads, labels, worker=_point_worker)
        for point, value, shard in zip(batch, values, shard_reports):
            faults.failpoint("sweep.point.record")
            _record_point(rdb, report, point, value, shard)
        say(f"  [{min(start + len(batch), len(todo))}/{len(todo)}] "
            f"{report.computed} ok, {report.failed} failed")

    report.wall_s = time.perf_counter() - t0
    return report


def _payload_for(point: SweepPoint, service: ExperimentService) -> Dict:
    cfg = point.build_config()
    return {
        "kind": "cell",
        "workload": point.workload,
        "technique": point.technique,
        "scale": point.scale,
        "iterations": point.iterations,
        "config": cfg,
        "seed": point.seed,
        "store_dir": service.store_dir,
        "scope": f"sweep-{point.workload}-{point.technique}",
    }


def _record_point(rdb: ResultDB, report: SweepRunReport,
                  point: SweepPoint, value: Optional[Dict],
                  shard) -> None:
    error = None
    metrics: Dict[str, float] = {}
    telemetry = None
    if value is None:
        error = shard.error or "shard produced no value"
    elif value.get("error"):
        error = value["error"]
        telemetry = value.get("telemetry")
    else:
        metrics = metrics_from_record(value["value"])
        metrics["wall_s"] = shard.wall_s
        telemetry = value.get("telemetry")
    status = "ok" if error is None else "error"
    rdb.record_point(
        report.run_id, point.point_id,
        sweep=point.sweep, workload=point.workload,
        technique=point.technique, scale=point.scale, seed=point.seed,
        iterations=point.iterations, base_config=point.base_config,
        spec=point.identity(), status=status, outcome=shard.outcome,
        attempts=shard.attempts, wall_s=shard.wall_s, error=error,
        knobs=point.knobs, metrics=metrics, telemetry=telemetry,
        commit=True,
    )
    report.outcomes[shard.outcome] = report.outcomes.get(shard.outcome, 0) + 1
    if status == "ok":
        report.computed += 1
    else:
        report.failed += 1
