"""Sensitivity and Pareto reports over the sweep result database.

Both reports work from the database alone -- no rerun, no source
JSON -- which is the point of recording sweeps in SQLite: the paper's
§8-style sensitivity tables ("how does cycles move as L1 size
doubles?") become queries.

* :func:`sensitivity_report` pivots one metric against one knob (or
  identity column), grouped by (workload, technique): one row per
  group, one column per knob value, cells are the mean metric over
  matching ``ok`` points, plus a max/min ratio column quantifying the
  sensitivity.
* :func:`pareto_report` keeps the non-dominated points under two or
  more metrics (minimized by default; ``maximize`` flips individual
  axes) -- the knob settings worth looking at when trading, say,
  cycles against DRAM traffic.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..harness.resultdb import ResultDB

_IDENTITY_COLS = ("workload", "technique", "scale", "seed", "base_config")


def _point_value(row: Mapping[str, Any], name: str) -> Any:
    """A knob, metric, or identity column of one fetched point row."""
    if name in row["knobs"]:
        return row["knobs"][name]
    if name in row["metrics"]:
        return row["metrics"][name]
    if name in _IDENTITY_COLS:
        return row[name]
    return None


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _render_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


# ----------------------------------------------------------------------
# sensitivity
# ----------------------------------------------------------------------
@dataclass
class SensitivityReport:
    """metric-vs-knob pivot, grouped by (workload, technique)."""

    knob: str
    metric: str
    values: List[Any]                       # knob values, sorted
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        header = (["workload", "technique"]
                  + [f"{self.knob}={_fmt(v)}" for v in self.values]
                  + ["max/min"])
        body = []
        for row in self.rows:
            cells = [row["workload"], row["technique"]]
            for value in self.values:
                mean = row["cells"].get(_key(value))
                cells.append(_fmt(mean) if mean is not None else "-")
            cells.append(_fmt(row["ratio"]) if row["ratio"] else "-")
            body.append(cells)
        title = f"sensitivity: {self.metric} vs {self.knob}"
        return title + "\n" + _render_table(header, body)

    def to_dict(self) -> Dict[str, Any]:
        return {"knob": self.knob, "metric": self.metric,
                "values": list(self.values), "rows": list(self.rows)}


def _key(value: Any) -> str:
    return _fmt(value)


def sensitivity_report(
    db: ResultDB,
    knob: str,
    metric: str,
    *,
    sweep: Optional[str] = None,
    where: Optional[Mapping[str, Any]] = None,
) -> SensitivityReport:
    """Pivot ``metric`` against ``knob`` over the ``ok`` points."""
    points = db.fetch_points(sweep=sweep, where=where, status="ok")
    groups: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    values: List[Any] = []
    for row in points:
        kv = _point_value(row, knob)
        mv = row["metrics"].get(metric)
        if kv is None or mv is None:
            continue
        if _key(kv) not in {_key(v) for v in values}:
            values.append(kv)
        cell = groups.setdefault((row["workload"], row["technique"]), {})
        cell.setdefault(_key(kv), []).append(float(mv))
    try:
        values.sort(key=lambda v: (0, float(v)) if isinstance(
            v, (int, float, bool)) else (1, str(v)))
    except TypeError:
        values.sort(key=str)
    report = SensitivityReport(knob=knob, metric=metric, values=values)
    for (wl, tech) in sorted(groups):
        cells = {k: sum(vs) / len(vs) for k, vs in groups[(wl, tech)].items()}
        present = list(cells.values())
        ratio = (max(present) / min(present)
                 if present and min(present) > 0 else None)
        report.rows.append({"workload": wl, "technique": tech,
                            "cells": cells, "ratio": ratio})
    return report


# ----------------------------------------------------------------------
# Pareto
# ----------------------------------------------------------------------
@dataclass
class ParetoReport:
    """Non-dominated points under the chosen metric objectives."""

    metrics: List[str]
    maximize: List[str]
    frontier: List[Dict[str, Any]] = field(default_factory=list)
    dominated: int = 0

    def render(self) -> str:
        header = (["point_id", "workload", "technique", "knobs"]
                  + list(self.metrics))
        body = []
        for row in self.frontier:
            knobs = ",".join(f"{k}={_fmt(v)}"
                             for k, v in sorted(row["knobs"].items()))
            body.append([row["point_id"][:12], row["workload"],
                         row["technique"], knobs or "-"]
                        + [_fmt(row["values"][m]) for m in self.metrics])
        objectives = ", ".join(
            m + (" (max)" if m in self.maximize else " (min)")
            for m in self.metrics)
        title = (f"pareto frontier over {objectives}: "
                 f"{len(self.frontier)} points "
                 f"({self.dominated} dominated eliminated)")
        return title + "\n" + _render_table(header, body)

    def to_dict(self) -> Dict[str, Any]:
        return {"metrics": list(self.metrics),
                "maximize": list(self.maximize),
                "dominated": self.dominated,
                "frontier": list(self.frontier)}


def pareto_report(
    db: ResultDB,
    metrics: Sequence[str],
    *,
    maximize: Sequence[str] = (),
    sweep: Optional[str] = None,
    where: Optional[Mapping[str, Any]] = None,
) -> ParetoReport:
    """Non-dominated ``ok`` points under two or more metric objectives."""
    metrics = list(metrics)
    if len(metrics) < 2:
        raise ValueError("pareto needs at least two metrics")
    maximize = [m for m in maximize]
    unknown = sorted(set(maximize) - set(metrics))
    if unknown:
        raise ValueError(f"maximize names metrics not in the objective "
                         f"set: {', '.join(unknown)}")
    points = db.fetch_points(sweep=sweep, where=where, status="ok")
    candidates = []
    for row in points:
        values = {m: row["metrics"].get(m) for m in metrics}
        if any(v is None for v in values.values()):
            continue
        # canonical minimization vector (flip maximized axes)
        vector = tuple(-values[m] if m in maximize else values[m]
                       for m in metrics)
        candidates.append((vector, row, values))

    def dominates(a, b) -> bool:
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b))

    report = ParetoReport(metrics=metrics, maximize=maximize)
    for vec, row, values in candidates:
        if any(dominates(other, vec)
               for other, _r, _v in candidates if other != vec):
            report.dominated += 1
            continue
        report.frontier.append({
            "point_id": row["point_id"], "workload": row["workload"],
            "technique": row["technique"], "knobs": dict(row["knobs"]),
            "values": values,
        })
    report.frontier.sort(key=lambda r: (r["workload"], r["technique"],
                                        r["point_id"]))
    return report
