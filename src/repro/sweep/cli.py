"""``python -m repro sweep``: run, inspect, and query sweeps.

Verbs::

    sweep run SPEC [--workers N] [--db PATH] [--dry-run]
    sweep ls                               # sweeps in the database
    sweep show SWEEP [--status error]      # per-point detail
    sweep query [--sweep S] [--where k=v]... [--metrics a,b]
                [--format table|csv|json] [--output PATH]
    sweep report sensitivity --knob K --metric M [--sweep S]
    sweep report pareto --metrics a,b [--maximize a] [--sweep S]
    sweep import BENCH_pipeline.json [...]

Everything but ``run`` works from the database alone.  ``--where``
values parse as JSON literals (``--where model_tlb=true``) and fall
back to strings; knob, metric, and identity-column names all work.
"""
from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..harness.export import export_rows, rows_to_payload
from ..harness.resultdb import (
    ResultDB,
    ResultDBError,
    default_db_path,
    import_bench_file,
)
from .driver import run_sweep
from .reports import pareto_report, sensitivity_report
from .spec import SweepSpecError, describe_points, load_spec


def _parse_where(pairs: Optional[Sequence[str]],
                 parser: argparse.ArgumentParser) -> Dict[str, Any]:
    where: Dict[str, Any] = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            parser.error(f"--where expects KEY=VALUE, got {pair!r}")
        try:
            where[key] = json.loads(value)
        except json.JSONDecodeError:
            where[key] = value
    return where


def _csv_list(text: Optional[str]) -> List[str]:
    return [t for t in (text or "").split(",") if t]


def _render_rows(rows: List[Dict[str, Any]]) -> str:
    if not rows:
        return "(no rows)"
    payload = rows_to_payload(rows)
    columns = payload["columns"]
    widths = {c: len(c) for c in columns}
    cells = []
    for row in rows:
        line = {c: _cell(row.get(c)) for c in columns}
        for c in columns:
            widths[c] = max(widths[c], len(line[c]))
        cells.append(line)
    out = ["  ".join(c.ljust(widths[c]) for c in columns).rstrip()]
    out.append("  ".join("-" * widths[c] for c in columns))
    for line in cells:
        out.append("  ".join(line[c].ljust(widths[c])
                             for c in columns).rstrip())
    return "\n".join(out)


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def sweep_cli_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Declarative characterization sweeps over GPU "
                    "config knobs, recorded in a queryable SQLite "
                    "database (see DESIGN.md §5.9).",
    )
    parser.add_argument("--db", default=None,
                        help=f"result database path (default "
                             f"{default_db_path()}, or $REPRO_RESULTDB)")
    sub = parser.add_subparsers(dest="verb", required=True)

    p_run = sub.add_parser("run", help="run a sweep spec")
    p_run.add_argument("spec", help="spec file (JSON or TOML-ish)")
    p_run.add_argument("--workers", type=int, default=None)
    p_run.add_argument("--timeout", type=float, default=None,
                       help="per-point timeout in seconds (default 900)")
    p_run.add_argument("--batch", type=int, default=None,
                       help="points per commit batch (default 2x workers)")
    p_run.add_argument("--store-dir", default=None)
    p_run.add_argument("--no-store", action="store_true")
    p_run.add_argument("--dry-run", action="store_true",
                       help="resolve and list points; run nothing")
    p_run.add_argument("--json", action="store_true",
                       help="print the run report as JSON")

    sub.add_parser("ls", help="list sweeps in the database")

    p_show = sub.add_parser("show", help="per-point detail of one sweep")
    p_show.add_argument("sweep")
    p_show.add_argument("--status", default=None,
                        choices=("ok", "error"))

    p_query = sub.add_parser("query", help="flat rows: knobs + metrics")
    p_query.add_argument("--sweep", default=None)
    p_query.add_argument("--where", action="append", metavar="K=V")
    p_query.add_argument("--metrics", default=None,
                         help="comma-separated metric columns "
                              "(default: all)")
    p_query.add_argument("--status", default="ok",
                         choices=("ok", "error", "any"))
    p_query.add_argument("--format", dest="fmt", default="table",
                         choices=("table", "csv", "json"))
    p_query.add_argument("--output", default=None,
                         help="write csv/json here instead of stdout")

    p_report = sub.add_parser("report", help="sensitivity / pareto")
    rsub = p_report.add_subparsers(dest="report", required=True)
    p_sens = rsub.add_parser("sensitivity",
                             help="metric-vs-knob pivot table")
    p_sens.add_argument("--knob", required=True)
    p_sens.add_argument("--metric", required=True)
    p_sens.add_argument("--sweep", default=None)
    p_sens.add_argument("--where", action="append", metavar="K=V")
    p_sens.add_argument("--json", action="store_true")
    p_pareto = rsub.add_parser("pareto", help="non-dominated points")
    p_pareto.add_argument("--metrics", required=True,
                          help="comma-separated objectives (minimized)")
    p_pareto.add_argument("--maximize", default=None,
                          help="comma-separated subset to maximize")
    p_pareto.add_argument("--sweep", default=None)
    p_pareto.add_argument("--where", action="append", metavar="K=V")
    p_pareto.add_argument("--json", action="store_true")

    p_import = sub.add_parser("import",
                              help="import BENCH_*.json into the db")
    p_import.add_argument("paths", nargs="+")

    args = parser.parse_args(argv)

    try:
        return _dispatch(args, parser)
    except (SweepSpecError, ResultDBError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args, parser) -> int:
    if args.verb == "run":
        spec = load_spec(args.spec)
        if args.dry_run:
            points = spec.resolve_points()
            print(describe_points(points))
            print(f"({len(points)} points)")
            return 0
        kwargs = {}
        if args.timeout is not None:
            kwargs["timeout_s"] = args.timeout
        echo = ((lambda m: print(m, file=sys.stderr)) if args.json
                else print)   # --json keeps stdout machine-parseable
        report = run_sweep(
            spec, args.db, num_workers=args.workers,
            store_dir=args.store_dir, use_store=not args.no_store,
            batch_size=args.batch, echo=echo, **kwargs)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1

    with ResultDB(args.db) as db:
        if args.verb == "ls":
            sweeps = db.sweeps()
            if not sweeps:
                print(f"(no sweeps in {db.path})")
                return 0
            for s in sweeps:
                print(f"{s['sweep']:24s} {s['points']:4d} points "
                      f"({s['ok']} ok, {s['errors']} error)")
            return 0

        if args.verb == "show":
            points = db.fetch_points(sweep=args.sweep,
                                     status=args.status)
            if not points:
                known = [s["sweep"] for s in db.sweeps()]
                print(f"no points for sweep {args.sweep!r}"
                      + (f"; known sweeps: {', '.join(known)}"
                         if known else f" in {db.path}"))
                return 1
            for row in sorted(points, key=lambda r: (
                    str(r["workload"]), str(r["technique"]),
                    r["point_id"])):
                knobs = ",".join(f"{k}={_cell(v)}"
                                 for k, v in sorted(row["knobs"].items()))
                wall = (f"{row['wall_s']:.2f}s"
                        if row["wall_s"] is not None else "-")
                line = (f"{row['point_id']}  {row['status']:5s} "
                        f"{row['outcome'] or '-':8s} {wall:>8s}  "
                        f"{row['workload']}/{row['technique']}"
                        + (f"  [{knobs}]" if knobs else ""))
                if row["status"] == "error" and row["error"]:
                    line += "\n    " + row["error"].strip().splitlines()[-1]
                print(line)
            return 0

        if args.verb == "query":
            status = None if args.status == "any" else args.status
            rows = db.query_rows(
                sweep=args.sweep,
                where=_parse_where(args.where, parser),
                metrics=_csv_list(args.metrics) or None,
                status=status,
            )
            if args.output:
                path = export_rows(rows, args.output, fmt=(
                    None if args.fmt == "table" else args.fmt))
                print(f"wrote {len(rows)} rows to {path}")
                return 0
            if args.fmt == "json":
                print(json.dumps(rows_to_payload(rows), indent=2))
            elif args.fmt == "csv":
                payload = rows_to_payload(rows)
                print(",".join(payload["columns"]))
                for row in rows:
                    print(",".join(_cell(row.get(c)) if row.get(c)
                                   is not None else ""
                                   for c in payload["columns"]))
            else:
                print(_render_rows(rows))
            return 0

        if args.verb == "report":
            where = _parse_where(args.where, parser)
            if args.report == "sensitivity":
                rep = sensitivity_report(db, args.knob, args.metric,
                                         sweep=args.sweep, where=where)
            else:
                rep = pareto_report(
                    db, _csv_list(args.metrics),
                    maximize=_csv_list(args.maximize),
                    sweep=args.sweep, where=where)
            if args.json:
                print(json.dumps(rep.to_dict(), indent=2))
            else:
                print(rep.render())
            return 0

        if args.verb == "import":
            total = 0
            for path in args.paths:
                info = import_bench_file(db, path)
                total += info["points"]
                print(f"imported {info['points']:3d} points from "
                      f"{path} as {info['kind']} ({info['run_id']})")
            print(f"{total} points -> {db.path}")
            return 0

    raise AssertionError(f"unhandled verb {args.verb!r}")
