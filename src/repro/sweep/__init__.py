"""repro.sweep -- declarative characterization sweeps.

Specs (:mod:`repro.sweep.spec`) enumerate points over GPU config
knobs, techniques, and workloads; the driver
(:mod:`repro.sweep.driver`) fans them through the experiment-service
process pool and records every point in the SQLite result database
(:mod:`repro.harness.resultdb`); reports (:mod:`repro.sweep.reports`)
answer sensitivity and Pareto questions from the database alone.
CLI: ``python -m repro sweep ...`` (:mod:`repro.sweep.cli`).
"""
from .spec import (  # noqa: F401
    SweepPoint,
    SweepSpec,
    SweepSpecError,
    load_spec,
)
from .driver import SweepRunReport, metrics_from_record, run_sweep  # noqa: F401
from .reports import pareto_report, sensitivity_report  # noqa: F401

__all__ = [
    "SweepPoint", "SweepSpec", "SweepSpecError", "load_spec",
    "SweepRunReport", "metrics_from_record", "run_sweep",
    "pareto_report", "sensitivity_report",
]
