"""Declarative sweep specs: axes over config knobs, resolved to points.

A sweep spec names a base GPU configuration and enumerates *points* --
resolved (workload, technique, config-knob, scale, seed, iterations)
combinations -- either as a cross-product of ``axes`` or as explicit
``points`` entries (or both)::

    {
      "name": "l1-tlb",
      "base_config": "scaled",
      "workloads": ["TRAF"],
      "techniques": ["cuda", "soa"],
      "scale": 0.05,
      "axes": {
        "l1.size_bytes": [4096, 8192, 16384],
        "model_tlb": [true, false]
      },
      "points": [{"technique": "typepointer", "num_sms": 8}]
    }

Specs load from a Python dict, a JSON file, or a TOML-ish file
(``key = <JSON value>`` lines with ``[axes]`` sections; see
:func:`load_spec`).  Axis keys are :class:`~repro.gpu.config.GPUConfig`
knobs -- dotted keys (``l1.size_bytes``) reach into the cache
geometries -- or the special per-experiment axes ``workload`` /
``technique`` / ``scale`` / ``seed`` / ``iterations``.  Every resolved
point is validated eagerly: unknown workloads/techniques/knobs and
invalid cache geometries fail at resolve time with did-you-mean hints,
before anything runs.

Every point gets a deterministic ``point_id``: the
:func:`repro.canon.content_id` of its resolved spec (the same
canonicalization the serving layer's ``job_key`` uses), so the same
point always lands under the same ID -- across reruns, across sweeps,
across machines -- which is what makes sweeps resumable and the result
database deduplicating.
"""
from __future__ import annotations

import difflib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..canon import content_id
from ..errors import UnknownTechniqueError
from ..gpu.config import GPUConfig, base_configs, config_with_knobs
from ..techniques import resolve as resolve_technique
from ..workloads import workload_names

#: axes that select the experiment rather than the GPU config
SPECIAL_AXES = ("workload", "technique", "scale", "seed", "iterations")

#: default scale for sweep points (matches the smoke options)
DEFAULT_SWEEP_SCALE = 0.05


class SweepSpecError(ValueError):
    """A sweep spec is malformed or names unknown entities."""


@dataclass
class SweepPoint:
    """One resolved point of a sweep (validated, content-addressed)."""

    point_id: str
    sweep: str
    workload: str
    technique: str
    scale: float
    seed: int
    iterations: Optional[int]
    base_config: str
    knobs: Dict[str, Any]

    def identity(self) -> Dict[str, Any]:
        """The resolved spec the point ID is the hash of."""
        return {
            "base_config": self.base_config,
            "workload": self.workload,
            "technique": self.technique,
            "scale": self.scale,
            "seed": self.seed,
            "iterations": self.iterations,
            "knobs": self.knobs,
        }

    def build_config(self) -> GPUConfig:
        """The point's GPU configuration (validated construction)."""
        base = base_configs()[self.base_config]()
        return config_with_knobs(base, self.knobs)


@dataclass
class SweepSpec:
    """A declarative sweep over config knobs and techniques."""

    name: str
    base_config: str = "scaled"
    workloads: Tuple[str, ...] = ("TRAF",)
    techniques: Tuple[str, ...] = ("cuda",)
    scale: float = DEFAULT_SWEEP_SCALE
    seed: int = 7
    iterations: Optional[int] = None
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    points: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base_config": self.base_config,
            "workloads": list(self.workloads),
            "techniques": list(self.techniques),
            "scale": self.scale,
            "seed": self.seed,
            "iterations": self.iterations,
            "axes": dict(self.axes),
            "points": list(self.points),
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        if not isinstance(data, Mapping):
            raise SweepSpecError(f"spec is not a mapping: {data!r:.60}")
        known = {"name", "base_config", "workloads", "techniques",
                 "scale", "seed", "iterations", "axes", "points"}
        extra = sorted(set(data) - known)
        if extra:
            hints = []
            for key in extra:
                close = difflib.get_close_matches(key, sorted(known), n=1)
                hints.append(f"{key!r}"
                             + (f" (did you mean {close[0]!r}?)"
                                if close else ""))
            raise SweepSpecError(
                f"unknown spec field(s): {', '.join(hints)}")
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise SweepSpecError("spec needs a non-empty 'name'")
        if name.startswith("bench:"):
            raise SweepSpecError(
                "sweep names starting with 'bench:' are reserved for "
                "BENCH_*.json imports")
        spec = cls(
            name=name,
            base_config=data.get("base_config", "scaled"),
            workloads=tuple(data.get("workloads", ("TRAF",))),
            techniques=tuple(data.get("techniques", ("cuda",))),
            scale=float(data.get("scale", DEFAULT_SWEEP_SCALE)),
            seed=int(data.get("seed", 7)),
            iterations=data.get("iterations"),
            axes={str(k): list(v)
                  for k, v in dict(data.get("axes", {})).items()},
            points=[dict(p) for p in data.get("points", [])],
        )
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Eager validation of every name the spec mentions."""
        if self.base_config not in base_configs():
            raise SweepSpecError(
                f"unknown base_config {self.base_config!r}; known: "
                f"{', '.join(sorted(base_configs()))}")
        known_wls = workload_names()
        for wl in self.workloads:
            if wl not in known_wls:
                msg = f"unknown workload {wl!r}"
                close = difflib.get_close_matches(wl, known_wls, n=3)
                if close:
                    msg += f"; did you mean: {', '.join(close)}?"
                raise SweepSpecError(msg)
        for tech in self.techniques:
            try:
                resolve_technique(tech)
            except UnknownTechniqueError as exc:
                raise SweepSpecError(str(exc)) from None
        base = base_configs()[self.base_config]
        for axis, values in self.axes.items():
            if not isinstance(values, list) or not values:
                raise SweepSpecError(
                    f"axis {axis!r} must map to a non-empty list")
            if axis in ("workload", "technique") and (
                    len(getattr(self, axis + "s")) > 1):
                raise SweepSpecError(
                    f"axis {axis!r} conflicts with the top-level "
                    f"{axis}s list; specify one or the other")
            if axis in SPECIAL_AXES:
                continue
            # probe every axis value against the base config so bad
            # knob names / geometries fail at load, not mid-sweep
            for value in values:
                try:
                    config_with_knobs(base(), {axis: value})
                except ValueError as exc:
                    raise SweepSpecError(
                        f"axis {axis!r}, value {value!r}: {exc}"
                    ) from None
        for i, point in enumerate(self.points):
            if not isinstance(point, Mapping):
                raise SweepSpecError(f"points[{i}] is not a mapping")

    # ------------------------------------------------------------------
    def resolve_points(self) -> List[SweepPoint]:
        """Every validated point, deduplicated, with deterministic IDs.

        The cross-product of ``axes`` runs under every
        (workload, technique) pair, then explicit ``points`` entries
        are appended; entries resolving to the same identity collapse
        to one point.
        """
        raw: List[Dict[str, Any]] = []
        axis_keys = list(self.axes)
        combos = (itertools.product(*(self.axes[k] for k in axis_keys))
                  if axis_keys else [()])
        for combo in combos:
            overrides = dict(zip(axis_keys, combo))
            for wl in self.workloads:
                for tech in self.techniques:
                    raw.append({"workload": wl, "technique": tech,
                                **overrides})
        for point in self.points:
            raw.append(dict(point))

        out: List[SweepPoint] = []
        seen: Dict[str, SweepPoint] = {}
        for i, entry in enumerate(raw):
            point = self._resolve_one(entry, i)
            if point.point_id not in seen:
                seen[point.point_id] = point
                out.append(point)
        return out

    def _resolve_one(self, entry: Dict[str, Any], index: int) -> SweepPoint:
        def take(key: str, default: Any) -> Any:
            return entry.pop(key) if key in entry else default

        workload = take("workload", None)
        technique = take("technique", None)
        if workload is None:
            if len(self.workloads) != 1:
                raise SweepSpecError(
                    f"point {index} omits 'workload' but the spec lists "
                    f"{len(self.workloads)} workloads -- ambiguous")
            workload = self.workloads[0]
        if technique is None:
            if len(self.techniques) != 1:
                raise SweepSpecError(
                    f"point {index} omits 'technique' but the spec "
                    f"lists {len(self.techniques)} techniques")
            technique = self.techniques[0]
        if workload not in workload_names():
            close = difflib.get_close_matches(workload, workload_names(),
                                              n=3)
            raise SweepSpecError(
                f"point {index}: unknown workload {workload!r}"
                + (f"; did you mean: {', '.join(close)}?" if close else ""))
        try:
            technique = resolve_technique(technique).name
        except UnknownTechniqueError as exc:
            raise SweepSpecError(f"point {index}: {exc}") from None
        scale = float(take("scale", self.scale))
        seed = int(take("seed", self.seed))
        iterations = take("iterations", self.iterations)
        knobs = {str(k): _plain(v) for k, v in sorted(entry.items())}
        point = SweepPoint(
            point_id="", sweep=self.name, workload=workload,
            technique=technique, scale=scale, seed=seed,
            iterations=iterations, base_config=self.base_config,
            knobs=knobs,
        )
        try:
            point.build_config()   # validates knob names + geometry
        except ValueError as exc:
            raise SweepSpecError(f"point {index} "
                                 f"({workload}/{technique}): {exc}") from None
        point.point_id = content_id(point.identity())
        return point


def _plain(value: Any) -> Any:
    """JSON-safe copy of one knob value (tuples become lists)."""
    return json.loads(json.dumps(value))


# ----------------------------------------------------------------------
# loading: dict / JSON / TOML-ish
# ----------------------------------------------------------------------
def load_spec(source: Union[str, Path, Mapping[str, Any]]) -> SweepSpec:
    """Load a sweep spec from a dict, a JSON file, or a TOML-ish file.

    A path ending in ``.json`` (or whose content starts with ``{``)
    parses as JSON; anything else parses as TOML-ish: ``key = value``
    lines where the value is a JSON literal (or a bare string), with
    ``[axes]`` starting the axes section and comments on ``#`` lines.
    """
    if isinstance(source, Mapping):
        return SweepSpec.from_dict(source)
    path = Path(source)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SweepSpecError(f"cannot read spec {path}: {exc}") from None
    stripped = text.lstrip()
    if path.suffix.lower() == ".json" or stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepSpecError(f"{path}: invalid JSON: {exc}") from None
    else:
        data = _parse_tomlish(text, str(path))
    return SweepSpec.from_dict(data)


def _parse_tomlish(text: str, origin: str) -> Dict[str, Any]:
    data: Dict[str, Any] = {}
    section: Dict[str, Any] = data
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name:
                raise SweepSpecError(f"{origin}:{lineno}: empty section")
            section = data.setdefault(name, {})
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise SweepSpecError(
                f"{origin}:{lineno}: expected 'key = value', got "
                f"{line!r}")
        key = key.strip().strip('"').strip("'")
        section[key] = _parse_value(value.strip(), origin, lineno)
    return data


def _parse_value(text: str, origin: str, lineno: int) -> Any:
    if not text:
        raise SweepSpecError(f"{origin}:{lineno}: empty value")
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        if text.startswith("'") and text.endswith("'") and len(text) >= 2:
            return text[1:-1]
        # bare string (TOML-ish convenience: scaled, TRAF, ...)
        return text


def describe_points(points: Sequence[SweepPoint]) -> str:
    """A dry-run listing of resolved points."""
    lines = []
    for p in points:
        knobs = ", ".join(f"{k}={v}" for k, v in sorted(p.knobs.items()))
        lines.append(
            f"{p.point_id}  {p.workload}/{p.technique} "
            f"scale={p.scale} seed={p.seed}"
            + (f"  [{knobs}]" if knobs else ""))
    return "\n".join(lines)
