"""Typed errors raised by injected faults.

Every error an armed failpoint raises derives from :class:`FaultError`
(itself a :class:`~repro.errors.ReproError`), and carries the name of
the failpoint that fired.  The chaos harness' accounting contract --
"every injected fault is either retried or surfaced as a typed error"
-- keys on exactly this: a recovery layer that retries calls
:func:`repro.faults.note_retried`, a boundary that reports the failure
to the caller calls :func:`repro.faults.note_surfaced`, and both walk
the ``__cause__`` chain looking for a :class:`FaultError`.
"""
from __future__ import annotations

from typing import Optional

from ..errors import ReproError


class FaultError(ReproError):
    """Base class for every error an armed failpoint injects."""

    def __init__(self, failpoint: str, detail: Optional[str] = None):
        self.failpoint = failpoint
        super().__init__(
            f"injected fault at failpoint {failpoint!r}"
            + (f": {detail}" if detail else "")
        )


class InjectedFault(FaultError):
    """The plain ``raise`` action: a generic injected failure."""


class InjectedCorruption(FaultError):
    """A ``corrupt`` action fired at a site that cannot mangle bytes."""


class InjectedDisconnect(FaultError, ConnectionResetError):
    """The ``disconnect`` action: a dropped connection.

    Subclasses :class:`ConnectionResetError` so the serving daemon's
    existing connection-teardown paths handle it exactly like a real
    peer reset -- the fault flows through the production error path,
    not a parallel test-only one.
    """
