"""Deterministic, seed-driven fault schedules.

A :class:`FaultSchedule` is a small list of :class:`ScheduleEntry`
records -- *arm failpoint N with action A at hit count H* -- generated
reproducibly from one integer seed over the declared failpoint catalog.
The same seed always yields the same schedule (``generate`` is a pure
function of ``(seed, catalog)``), and :meth:`FaultSchedule.dry_run`
replays the armed schedule against a deterministic single-threaded
driver, so two replays of the same seed produce bit-identical fired
sequences -- the chaos harness asserts both.

Schedules are armed with a context manager::

    with schedule.armed(scratch_dir=tmp) as armed:
        ...   # run the stack; failpoints fire per the schedule
    armed.consumed()   # ground truth of what fired, across processes

``to_dict``/``from_dict`` round-trip a schedule through JSON, so a
schedule can be recorded in a report or shipped to another process.
"""
from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from . import core
from .core import ACTIONS
from .errors import FaultError

#: schema tag of a serialised schedule
SCHEMA = "repro-faults/1"

#: default cap on entries per generated schedule
DEFAULT_MAX_ENTRIES = 4

#: mixing constant so seed 0 and seed 1 do not share RNG prefixes with
#: other seed-driven subsystems (workload seeding uses small ints too)
_SEED_SALT = 0x5EEDFA17


@dataclass(frozen=True)
class ScheduleEntry:
    """Arm ``name`` with ``action`` once its hit counter reaches ``hit``.

    ``arg`` parameterises the action (delay seconds, corruption seed).
    ``once`` (the default) fires the entry at most once globally --
    enforced across worker processes by a scratch-dir token -- so a
    retry of the failed operation can succeed; ``once=False`` fires on
    every hit from the ``hit``-th onward (used by recovery tests that
    need a persistently failing dependency).
    """

    name: str
    action: str
    hit: int = 1
    arg: float = 0.0
    once: bool = True

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")
        if self.hit < 1:
            raise ValueError(f"hit counts are 1-based, got {self.hit}")

    def to_dict(self) -> Dict:
        return {"name": self.name, "action": self.action, "hit": self.hit,
                "arg": self.arg, "once": self.once}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ScheduleEntry":
        return cls(name=str(payload["name"]), action=str(payload["action"]),
                   hit=int(payload.get("hit", 1)),
                   arg=float(payload.get("arg", 0.0)),
                   once=bool(payload.get("once", True)))


class FaultSchedule:
    """An ordered, immutable set of armed-failpoint entries."""

    def __init__(self, seed: int, entries: Sequence[ScheduleEntry]):
        self.seed = seed
        self.entries: Tuple[ScheduleEntry, ...] = tuple(entries)

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, seed: int,
                 catalog: Optional[Dict[str, Tuple[str, ...]]] = None,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> "FaultSchedule":
        """The canonical schedule for ``seed`` over ``catalog``.

        Deterministic: iteration is over the *sorted* catalog and every
        random draw comes from one ``random.Random(seed)`` stream, so
        the same (seed, catalog) pair always produces the same entries.
        """
        catalog = dict(catalog) if catalog is not None else core.declared()
        if not catalog:
            raise ValueError("no failpoints declared; import the "
                             "instrumented modules first")
        rng = random.Random(seed ^ _SEED_SALT)
        names = sorted(catalog)
        k = rng.randint(1, max(1, min(max_entries, len(names))))
        chosen = sorted(rng.sample(names, k))
        entries = []
        for name in chosen:
            action = rng.choice(sorted(catalog[name]))
            hit = rng.randint(1, 3)
            if action == "delay":
                arg = round(rng.uniform(0.001, 0.05), 4)
            else:
                arg = float(rng.randrange(1 << 16))
            entries.append(ScheduleEntry(name=name, action=action,
                                         hit=hit, arg=arg))
        return cls(seed, entries)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"schema": SCHEMA, "seed": self.seed,
                "entries": [e.to_dict() for e in self.entries]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSchedule":
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
            raise ValueError(f"not a {SCHEMA} payload: {payload!r:.60}")
        return cls(int(payload["seed"]),
                   [ScheduleEntry.from_dict(e)
                    for e in payload.get("entries", ())])

    def describe(self) -> str:
        parts = [f"{e.name}@{e.hit}:{e.action}" for e in self.entries]
        return f"seed={self.seed} [{', '.join(parts)}]"

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultSchedule)
                and self.seed == other.seed
                and self.entries == other.entries)

    def __hash__(self):
        return hash((self.seed, self.entries))

    # ------------------------------------------------------------------
    @contextmanager
    def armed(self, scratch_dir: Optional[str] = None):
        """Arm this schedule process-wide for the duration of the block."""
        armed = core.arm(self, scratch_dir=scratch_dir)
        try:
            yield armed
        finally:
            core.disarm()

    def dry_run(self, scratch_dir: Optional[str] = None,
                probe: bytes = b"\x00" * 16) -> Tuple[Tuple[str, int, str], ...]:
        """Replay the schedule against a deterministic driver.

        Hits every armed failpoint name, in sorted order, one past its
        highest armed hit count, swallowing the injected errors.  The
        returned fired log is a pure function of the schedule -- the
        chaos harness runs this twice per seed and asserts the logs are
        identical (the "same seed, same fault sequence" invariant).
        """
        with self.armed(scratch_dir=scratch_dir) as armed:
            top = max((e.hit for e in self.entries), default=0) + 1
            for name in sorted({e.name for e in self.entries}):
                for _ in range(top):
                    try:
                        core.mangle(name, probe)
                    except FaultError:
                        pass
            return tuple(armed.fired)
