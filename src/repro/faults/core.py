"""Failpoint registry and armed-schedule state.

A *failpoint* is a named checkpoint compiled into a recovery seam of
the production code::

    from .. import faults
    ...
    faults.failpoint("store.lock.acquire")          # control point
    raw = faults.mangle("store.bucket.read", raw)   # data point

Disabled (no schedule armed -- the normal state), both calls are a
module-global ``None`` check and return immediately; ``python -m repro
selfbench`` gates that tax at <1% of the warm path.  Armed, each call
bumps a per-name hit counter and fires whatever actions the active
:class:`~repro.faults.schedule.FaultSchedule` attached to that name and
hit count.

Actions
-------
``raise``       raise :class:`~repro.faults.errors.InjectedFault`
``delay``       sleep ``arg`` seconds (capped at :data:`MAX_DELAY_S`)
``corrupt``     deterministically flip bytes of the payload at a
                ``mangle`` site (seeded by ``arg``); at a plain
                ``failpoint`` site the entry is inert
``kill``        ``SIGKILL`` the current process -- downgraded to
                ``raise`` in the process that armed the schedule, so a
                kill aimed at a worker shard can never take down the
                coordinator
``disconnect``  raise :class:`~repro.faults.errors.InjectedDisconnect`
                (a :class:`ConnectionResetError`)

Cross-process semantics: the armed state is module-global, so worker
processes forked *after* arming inherit it.  Once-only entries claim a
token file in the schedule's scratch directory before firing
(``os.unlink`` is atomic -- exactly one process wins), which both
bounds the blast radius (the retry of a killed shard is not re-killed)
and gives the chaos harness ground truth for which entries actually
fired, even when the firing process died without reporting.

Accounting: every fire bumps ``faults.fired`` /
``faults.fired.<name>`` in :mod:`repro.obs`; recovery layers call
:func:`note_retried` / :func:`note_surfaced` which bump
``faults.retried.<name>`` / ``faults.surfaced.<name>``.
"""
from __future__ import annotations

import os
import signal
import random
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import obs
from .errors import FaultError, InjectedDisconnect, InjectedFault

#: every action an armed entry may carry
ACTIONS = ("raise", "delay", "corrupt", "kill", "disconnect")

#: actions that inject an *error* (and therefore must be retried or
#: surfaced); ``delay`` and ``corrupt`` are absorbed by design --
#: recovery from them is internal (backoff tolerance, the store's
#: corruption path) and produces no caller-visible failure
ERRORING_ACTIONS = ("raise", "kill", "disconnect")

#: hard cap on an injected delay (schedules stay fast and deadlock-free)
MAX_DELAY_S = 0.25

#: declared failpoints: name -> actions the site supports
_DECLARED: Dict[str, Tuple[str, ...]] = {}


def declare(name: str, *actions: str) -> str:
    """Register a failpoint name and the actions its site supports.

    Called at import time next to the instrumented code, so the chaos
    catalog is exactly the set of failpoints that exist.  Idempotent;
    returns the name for assignment convenience.
    """
    for action in actions:
        if action not in ACTIONS:
            raise ValueError(f"unknown failpoint action {action!r}")
    _DECLARED[name] = tuple(actions) or ("raise",)
    return name


def declared() -> Dict[str, Tuple[str, ...]]:
    """Every declared failpoint and its supported actions."""
    return dict(_DECLARED)


# ----------------------------------------------------------------------
# armed state
# ----------------------------------------------------------------------
class ArmedSchedule:
    """Live hit counters and fired log of one armed schedule."""

    def __init__(self, schedule, scratch_dir: Optional[str] = None):
        self.schedule = schedule
        self.armed_pid = os.getpid()
        self.scratch: Optional[Path] = (
            Path(scratch_dir) if scratch_dir is not None else None
        )
        self.counts: Dict[str, int] = {}
        #: (name, hit_index, action) triples fired in THIS process
        self.fired: List[Tuple[str, int, str]] = []
        self._lock = threading.Lock()
        self._local_spent: set = set()
        self._tokens: Dict[int, Path] = {}
        if self.scratch is not None:
            self.scratch.mkdir(parents=True, exist_ok=True)
            for idx, entry in enumerate(schedule.entries):
                if entry.once:
                    token = self.scratch / f"fp-{idx}.token"
                    token.write_text(f"{entry.name}:{entry.action}\n")
                    self._tokens[idx] = token

    # ------------------------------------------------------------------
    def _claim(self, idx: int, entry) -> bool:
        """Reserve the right to fire ``entry``; once-only entries are
        claimed globally via an atomic token unlink."""
        if not entry.once:
            return True
        token = self._tokens.get(idx)
        if token is None:                       # no scratch dir: local
            with self._lock:
                if idx in self._local_spent:
                    return False
                self._local_spent.add(idx)
            return True
        try:
            os.unlink(token)
        except OSError:
            return False
        return True

    def consumed(self) -> List[Tuple[str, str]]:
        """(name, action) of every once-entry whose token was claimed
        -- by any process -- plus every entry fired locally."""
        out = []
        for idx, entry in enumerate(self.schedule.entries):
            token = self._tokens.get(idx)
            if token is not None:
                if not token.exists():
                    out.append((entry.name, entry.action))
            elif entry.once and idx in self._local_spent:
                out.append((entry.name, entry.action))
        for name, _hit, action in self.fired:
            if (name, action) not in out:
                out.append((name, action))
        return out

    # ------------------------------------------------------------------
    def hit(self, name: str, data: Optional[bytes] = None) -> Optional[bytes]:
        with self._lock:
            n = self.counts.get(name, 0) + 1
            self.counts[name] = n
        for idx, entry in enumerate(self.schedule.entries):
            if entry.name != name or n < entry.hit:
                continue
            if entry.action == "corrupt" and data is None:
                continue                        # inert at control points
            if not self._claim(idx, entry):
                continue
            with self._lock:
                self.fired.append((name, n, entry.action))
            obs.count("faults.fired")
            obs.count(f"faults.fired.{name}")
            data = self._perform(entry, name, data)
        return data

    def _perform(self, entry, name: str,
                 data: Optional[bytes]) -> Optional[bytes]:
        if entry.action == "raise":
            raise InjectedFault(name)
        if entry.action == "delay":
            time.sleep(min(float(entry.arg or 0.01), MAX_DELAY_S))
            return data
        if entry.action == "corrupt":
            return corrupt_bytes(data or b"", int(entry.arg or 0))
        if entry.action == "disconnect":
            raise InjectedDisconnect(name)
        if entry.action == "kill":
            if os.getpid() == self.armed_pid:
                # never SIGKILL the coordinating process: the action is
                # aimed at worker shards (which fork after arming)
                raise InjectedFault(name, "kill downgraded in coordinator")
            os.kill(os.getpid(), signal.SIGKILL)
        return data


def corrupt_bytes(data: bytes, seed: int) -> bytes:
    """Deterministically flip a handful of bytes (same seed, same
    corruption -- schedules replay bit-identically).

    The first byte is always flipped: a pickle/frame header never
    survives, so a corrupted payload reliably *fails to parse* and
    exercises the recovery path -- it can never parse cleanly into
    silently different data.
    """
    if not data:
        return b"\xff"
    rng = random.Random(seed)
    buf = bytearray(data)
    buf[0] ^= 0xFF
    if len(buf) > 1:
        for _ in range(min(8, len(buf) - 1)):
            pos = 1 + rng.randrange(len(buf) - 1)
            buf[pos] ^= 0xFF
    return bytes(buf)


#: the active schedule; None (the fast path) when nothing is armed
_ARMED: Optional[ArmedSchedule] = None


def arm(schedule, scratch_dir: Optional[str] = None) -> ArmedSchedule:
    """Arm ``schedule`` process-wide; raises if one is already armed."""
    global _ARMED
    if _ARMED is not None:
        raise RuntimeError("a fault schedule is already armed")
    _ARMED = ArmedSchedule(schedule, scratch_dir)
    return _ARMED


def disarm() -> None:
    """Disarm whatever schedule is active (idempotent)."""
    global _ARMED
    _ARMED = None


def active() -> Optional[ArmedSchedule]:
    return _ARMED


# ----------------------------------------------------------------------
# the checkpoints themselves
# ----------------------------------------------------------------------
def failpoint(name: str) -> None:
    """Control checkpoint: no-op unless an armed schedule targets it."""
    if _ARMED is None:
        return
    _ARMED.hit(name)


def mangle(name: str, data: bytes) -> bytes:
    """Data checkpoint: returns ``data``, possibly corrupted/delayed."""
    if _ARMED is None:
        return data
    out = _ARMED.hit(name, data=data)
    return data if out is None else out


# ----------------------------------------------------------------------
# recovery accounting
# ----------------------------------------------------------------------
def fault_of(exc: Optional[BaseException]) -> Optional[FaultError]:
    """The :class:`FaultError` behind ``exc``, walking the cause chain."""
    seen = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, FaultError):
            return exc
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return None


def note_retried(exc: Optional[BaseException]) -> None:
    """A recovery layer is retrying after ``exc``; count it if injected."""
    fault = fault_of(exc)
    if fault is not None:
        obs.count(f"faults.retried.{fault.failpoint}")


def note_surfaced(exc: Optional[BaseException]) -> None:
    """``exc`` is being reported to the caller; count it if injected."""
    fault = fault_of(exc)
    if fault is not None:
        obs.count(f"faults.surfaced.{fault.failpoint}")
