"""Deterministic fault injection (failpoints + seeded schedules).

Production code instruments its recovery seams with named checkpoints::

    from .. import faults
    faults.failpoint("store.lock.acquire")
    raw = faults.mangle("store.bucket.read", raw)

and tests / the chaos harness arm a seed-generated
:class:`FaultSchedule` to make those checkpoints raise, delay, corrupt
bytes, kill the worker process, or drop the connection at chosen hit
counts.  See DESIGN.md §5.5 for the failpoint catalog and the chaos
invariants.

Call sites MUST go through the module attributes (``faults.failpoint``,
``faults.mangle``) rather than importing the functions directly:
:func:`set_bypass` swaps the attributes for bare no-op stubs, which is
how selfbench measures the overhead the disabled checkpoints add to the
warm path (gated <1%).
"""
from __future__ import annotations

from . import core as _core
from .core import (
    ACTIONS,
    ERRORING_ACTIONS,
    MAX_DELAY_S,
    active,
    arm,
    corrupt_bytes,
    declare,
    declared,
    disarm,
    fault_of,
    note_retried,
    note_surfaced,
)
from .errors import (
    FaultError,
    InjectedCorruption,
    InjectedDisconnect,
    InjectedFault,
)
from .retry import RetryPolicy
from .schedule import FaultSchedule, ScheduleEntry

__all__ = [
    "ACTIONS", "ERRORING_ACTIONS", "MAX_DELAY_S",
    "FaultError", "InjectedFault", "InjectedCorruption",
    "InjectedDisconnect",
    "FaultSchedule", "ScheduleEntry", "RetryPolicy",
    "failpoint", "mangle", "set_bypass",
    "declare", "declared", "arm", "disarm", "active",
    "corrupt_bytes", "fault_of", "note_retried", "note_surfaced",
]

#: live checkpoints -- module attributes on purpose (see set_bypass)
failpoint = _core.failpoint
mangle = _core.mangle


def _bypass_failpoint(name):  # pragma: no cover -- trivial
    return None


def _bypass_mangle(name, data):  # pragma: no cover -- trivial
    return data


def set_bypass(enabled: bool) -> None:
    """Swap the checkpoint entry points for bare no-op stubs.

    Benchmark-only: lets selfbench compare the warm path with the real
    (disabled) checkpoints against truly absent ones, to price the
    registry's fast path.  Call sites reference ``faults.failpoint`` at
    call time, so the swap takes effect everywhere immediately.
    """
    global failpoint, mangle
    if enabled:
        failpoint = _bypass_failpoint
        mangle = _bypass_mangle
    else:
        failpoint = _core.failpoint
        mangle = _core.mangle
