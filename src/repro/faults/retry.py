"""One retry policy for every recovery seam.

Prior to this module the stack had three ad-hoc recovery loops: the
store's lock-file poll (fixed 10ms spin), the service's retry-once
shard resubmit, and the serve client's connect loop.  ``RetryPolicy``
replaces the bespoke arithmetic with one bounded, jittered exponential
backoff whose jitter stream is seeded -- so a chaos run with a fixed
seed retries at identical offsets every replay.

Two shapes:

``policy.run(fn)``
    call ``fn`` up to ``max_attempts`` times, sleeping between
    attempts, retrying on ``retry_on`` errors and re-raising anything
    else (or the last error once attempts are exhausted).  Counts
    ``faults.retried.<name>`` / ``faults.surfaced.<name>`` when the
    error chain traces back to an injected fault.

``policy.backoff()``
    a generator of sleep durations for hand-rolled poll loops (the
    store's lock acquisition keeps its deadline logic but draws its
    waits from here).
"""
from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Optional, Tuple, Type

from .core import note_retried, note_surfaced
from .errors import FaultError


class RetryPolicy:
    """Bounded attempts with jittered exponential backoff."""

    def __init__(self,
                 max_attempts: int = 3,
                 base_delay_s: float = 0.01,
                 max_delay_s: float = 0.25,
                 multiplier: float = 2.0,
                 jitter_frac: float = 0.25,
                 retry_on: Tuple[Type[BaseException], ...] = (FaultError, OSError, TimeoutError),
                 seed: Optional[int] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self.jitter_frac = jitter_frac
        self.retry_on = retry_on
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        raw = self.base_delay_s * (self.multiplier ** (attempt - 1))
        capped = min(raw, self.max_delay_s)
        if self.jitter_frac <= 0:
            return capped
        spread = capped * self.jitter_frac
        return max(0.0, capped + self._rng.uniform(-spread, spread))

    def backoff(self) -> Iterator[float]:
        """Endless stream of sleep durations for external poll loops."""
        attempt = 1
        while True:
            yield self.delay(attempt)
            attempt += 1

    # ------------------------------------------------------------------
    def run(self, fn: Callable, *args,
            sleep: Callable[[float], None] = time.sleep, **kwargs):
        """Call ``fn`` with retries; re-raise the final failure."""
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    note_surfaced(exc)
                    raise
                note_retried(exc)
                sleep(self.delay(attempt))
        raise last  # pragma: no cover -- loop always returns or raises
