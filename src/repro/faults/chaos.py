"""Chaos soak harness: seeded fault schedules against the full stack.

``python -m repro chaos --seeds N`` runs N seeded scenarios.  Each
scenario boots a real :class:`~repro.serve.server.ReproServer` (Unix
socket, worker pool, persistent replay store -- all in a fresh temp
directory), arms the seed's :class:`~repro.faults.FaultSchedule`, and
drives experiment submissions through the blocking client while faults
fire in the event loop, the scheduler, the worker shards and the store.

Invariants asserted per seed (any violation fails the run):

* **determinism** -- regenerating the schedule from its seed yields the
  same schedule, and two dry-run replays produce identical fired
  sequences;
* **correctness** -- every submission eventually succeeds and its
  rendered result is bit-identical to the fault-free baseline run;
* **store integrity** -- after the run the store directory holds no
  orphaned ``.tmp`` file, every ``.lock`` is immediately acquirable,
  and every bucket loads without tripping the corruption counters;
* **clean drain** -- the daemon exits 0 after a drain, even when the
  drain itself was faulted;
* **accounting** -- every *erroring* fault that actually fired
  (ground truth: its consumed once-token) shows recovery evidence:
  a ``faults.retried.*`` / ``faults.surfaced.*`` counter, a shard
  retry/fallback, or a client-visible retry.

The scenario layer is importable (``run_chaos``) so the test suite can
soak a couple of seeds under the ``slow`` marker while CI runs more.

``python -m repro chaos --cluster`` runs the same soak against a
consistent-hash cluster (:mod:`repro.serve.cluster`): router-side
frame faults plus a deterministic SIGKILL of one worker mid-scenario,
asserting failover keeps every result bit-identical to the *serial*
fault-free baseline and the shared store intact.
"""
from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from . import core
from .core import ERRORING_ACTIONS
from .schedule import FaultSchedule

#: experiments each scenario submits (init is the cheapest registry
#: entry that still exercises machine + store + service + serve)
DEFAULT_EXPERIMENTS = ("init",)

#: client-side resubmit budget per request (faults are once-only, so
#: one retry usually suffices; the budget covers stacked schedules)
CLIENT_ATTEMPTS = 6


@dataclass
class SeedResult:
    """Everything one chaos scenario observed."""

    seed: int
    schedule: str
    consumed: List[Tuple[str, str]] = field(default_factory=list)
    client_retries: int = 0
    failed_replies: int = 0
    violations: List[str] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ChaosReport:
    """Aggregate of one ``repro chaos`` invocation."""

    seeds: List[SeedResult]
    baseline_experiments: Tuple[str, ...]
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.seeds)

    @property
    def total_violations(self) -> int:
        return sum(len(s.violations) for s in self.seeds)


def format_report(report: ChaosReport) -> str:
    lines = [
        f"chaos soak: {len(report.seeds)} seeds over "
        f"{', '.join(report.baseline_experiments)} "
        f"({report.wall_s:.1f}s)",
        f"{'seed':>6s}  {'faults fired':32s} {'retries':>7s} "
        f"{'verdict':8s}  schedule",
    ]
    for s in report.seeds:
        fired = ",".join(f"{n}:{a}" for n, a in s.consumed) or "-"
        lines.append(
            f"{s.seed:6d}  {fired:32.32s} {s.client_retries:7d} "
            f"{'ok' if s.ok else 'FAIL':8s}  {s.schedule}"
        )
        for v in s.violations:
            lines.append(f"        !! {v}")
    lines.append(
        f"verdict: {'PASS' if report.ok else 'FAIL'} "
        f"({report.total_violations} invariant violations)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# one scenario
# ----------------------------------------------------------------------
def _start_server(tmp: Path):
    """Boot an in-process daemon on a Unix socket; returns
    (server, thread, rc_box, client)."""
    from ..serve.client import ServeClient
    from ..serve.server import ReproServer

    sock = str(tmp / "serve.sock")
    server = ReproServer(
        socket_path=sock,
        workers=2,
        store_dir=str(tmp / "store"),
        drain_grace_s=60.0,
        shard_timeout_s=300.0,
    )
    rc: Dict[str, Optional[int]] = {"value": None}
    thread = threading.Thread(target=lambda: rc.update(value=server.run()),
                              name="chaos-serve", daemon=True)
    thread.start()
    if not server.ready.wait(30.0):
        raise RuntimeError("chaos daemon failed to start")
    client = ServeClient(socket_path=sock, timeout=300.0)
    client.wait_until_ready(10.0)
    return server, thread, rc, client


def _submit_with_retry(client, result: SeedResult, experiment: str,
                       scale: float) -> Optional[Dict]:
    """Submit one experiment, resubmitting on transport faults and
    retryable error replies; None when the budget is exhausted."""
    from ..serve.client import ServeError

    for attempt in range(1, CLIENT_ATTEMPTS + 1):
        try:
            reply = client.submit(experiment, scale=scale, quick=True,
                                  wait_s=5.0)
        except ServeError:
            reply = None
        if reply is not None and reply.get("ok"):
            return reply
        if reply is not None:
            result.failed_replies += 1
        if attempt == CLIENT_ATTEMPTS:
            return None
        result.client_retries += 1
        time.sleep(0.05)
    return None


def _check_store(tmp: Path, result: SeedResult) -> None:
    """Post-run store integrity: no torn writes, no held locks, every
    bucket loadable without corruption."""
    from ..harness.store import ReplayMemoStore, _FileLock

    store_dir = tmp / "store"
    if not store_dir.is_dir():
        return
    for leftover in store_dir.glob("*.tmp*"):
        result.violations.append(f"torn write left {leftover.name}")
    for lock in store_dir.glob("*.lock"):
        try:
            with _FileLock(lock, timeout_s=2.0):
                pass
        except TimeoutError:
            result.violations.append(f"store left locked: {lock.name}")
    probe = obs.Registry()
    prev = obs.set_registry(probe)
    try:
        store = ReplayMemoStore(store_dir)
        for bucket in store.buckets():
            store.load_bucket(bucket)
    finally:
        obs.set_registry(prev)
    for counter in ("store.bucket_corrupt", "store.bucket_version_mismatch"):
        if probe.counters.get(counter):
            result.violations.append(
                f"store corrupted after run ({counter} = "
                f"{probe.counters[counter]})")


def _check_accounting(result: SeedResult, counters: Dict[str, int]) -> None:
    """Every erroring fault that fired must have been retried or
    surfaced somewhere the stack can prove."""
    shard_evidence = any(counters.get(k) for k in (
        "service.shard_retries", "service.shards_retried",
        "service.shards_fallback", "service.shards_timeout",
    ))
    client_evidence = result.client_retries > 0 or result.failed_replies > 0
    for name, action in result.consumed:
        if action not in ERRORING_ACTIONS:
            continue
        if counters.get(f"faults.retried.{name}") \
                or counters.get(f"faults.surfaced.{name}"):
            continue
        if name.startswith("service.") and shard_evidence:
            continue
        if name.startswith("serve.") and client_evidence:
            continue
        result.violations.append(
            f"injected fault {name}:{action} fired but was neither "
            f"retried nor surfaced")


def run_scenario(seed: Optional[int],
                 experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
                 scale: float = 0.05,
                 baseline: Optional[Dict[str, str]] = None,
                 ) -> Tuple[SeedResult, Dict[str, str]]:
    """One full chaos scenario; ``seed=None`` runs fault-free (the
    baseline pass).  Returns (result, rendered-by-experiment)."""
    t0 = time.perf_counter()
    schedule = FaultSchedule.generate(seed) if seed is not None else None
    result = SeedResult(
        seed=seed if seed is not None else -1,
        schedule=schedule.describe() if schedule else "fault-free",
    )
    rendered: Dict[str, str] = {}

    if schedule is not None:
        if FaultSchedule.generate(seed) != schedule:
            result.violations.append("schedule generation is not "
                                     "deterministic for this seed")
        if schedule.dry_run() != schedule.dry_run():
            result.violations.append("dry-run replay diverged between "
                                     "two runs of the same schedule")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        tmp = Path(tmpdir)
        reg = obs.Registry()
        prev_reg = obs.set_registry(reg)
        armed = None
        try:
            server, thread, rc, client = _start_server(tmp)
            try:
                if schedule is not None:
                    armed = core.arm(schedule,
                                     scratch_dir=str(tmp / "scratch"))
                for name in experiments:
                    reply = _submit_with_retry(client, result, name, scale)
                    if reply is None:
                        result.violations.append(
                            f"submit of {name!r} never succeeded "
                            f"({CLIENT_ATTEMPTS} attempts)")
                        continue
                    rendered[name] = reply.get("rendered", "")
                    warm = _submit_with_retry(client, result, name, scale)
                    if warm is None:
                        result.violations.append(
                            f"warm resubmit of {name!r} never succeeded")
                    elif warm.get("rendered", "") != rendered[name]:
                        result.violations.append(
                            f"warm resubmit of {name!r} returned a "
                            f"different result")
            finally:
                # drain through the faulted protocol path first; fall
                # back to the thread-safe trigger if that cannot land
                try:
                    _submit_drain(client, result)
                except Exception:
                    pass
                server.request_shutdown("chaos cleanup")
                thread.join(90.0)
                if thread.is_alive():
                    result.violations.append("daemon failed to drain "
                                             "within 90s")
                elif rc["value"] != 0:
                    result.violations.append(
                        f"daemon exited {rc['value']} instead of 0")
                if armed is not None:
                    result.consumed = armed.consumed()
                    core.disarm()
                    armed = None
        finally:
            if armed is not None:
                core.disarm()
            obs.set_registry(prev_reg)
        _check_store(tmp, result)

    if schedule is not None:
        _check_accounting(result, reg.counters)
    if baseline is not None:
        for name in experiments:
            if name in rendered and rendered[name] != baseline.get(name):
                result.violations.append(
                    f"result of {name!r} differs from the fault-free "
                    f"baseline")
    result.wall_s = time.perf_counter() - t0
    return result, rendered


def _submit_drain(client, result: SeedResult) -> None:
    from ..serve.client import ServeError

    for attempt in range(3):
        try:
            client.drain(wait_s=2.0)
            return
        except ServeError:
            result.client_retries += 1
            time.sleep(0.05)


# ----------------------------------------------------------------------
# cluster scenarios
# ----------------------------------------------------------------------
def _start_cluster(tmp: Path, num_workers: int):
    """Boot an in-process cluster router over ``num_workers`` real
    subprocess daemons sharing one store; returns
    (router, thread, rc_box, client)."""
    from ..serve.client import ServeClient
    from ..serve.cluster import ClusterRouter, WorkerConfig

    sock = str(tmp / "router.sock")
    router = ClusterRouter(
        num_workers=num_workers,
        socket_path=sock,
        worker_dir=str(tmp / "workers"),
        drain_grace_s=60.0,
        worker_config=WorkerConfig(
            service_workers=2,
            shard_timeout_s=300.0,
            store_dir=str(tmp / "store"),
            drain_grace_s=60.0,
        ),
    )
    rc: Dict[str, Optional[int]] = {"value": None}
    thread = threading.Thread(target=lambda: rc.update(value=router.run()),
                              name="chaos-cluster", daemon=True)
    thread.start()
    if not router.ready.wait(120.0):
        raise RuntimeError("chaos cluster failed to start")
    client = ServeClient(socket_path=sock, timeout=300.0)
    client.wait_until_ready(10.0)
    return router, thread, rc, client


def run_cluster_scenario(seed: int,
                         experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
                         scale: float = 0.05,
                         baseline: Optional[Dict[str, str]] = None,
                         num_workers: int = 2,
                         ) -> Tuple[SeedResult, Dict[str, str]]:
    """One cluster chaos scenario: seeded faults fire in the *router*
    (frame disconnects/delays, drain), and one worker is SIGKILLed
    between the cold and warm submit passes.  The invariants are the
    single-daemon ones plus failover: every submission still succeeds,
    results stay bit-identical to the serial fault-free baseline, the
    shared store stays intact, and the cluster still drains cleanly
    (exit 0) after losing and restarting a worker."""
    t0 = time.perf_counter()
    schedule = FaultSchedule.generate(seed)
    result = SeedResult(
        seed=seed,
        schedule=f"cluster[{num_workers}w] " + schedule.describe(),
    )
    rendered: Dict[str, str] = {}

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        tmp = Path(tmpdir)
        reg = obs.Registry()
        prev_reg = obs.set_registry(reg)
        armed = None
        try:
            router, thread, rc, client = _start_cluster(tmp, num_workers)
            try:
                armed = core.arm(schedule,
                                 scratch_dir=str(tmp / "scratch"))
                for name in experiments:
                    reply = _submit_with_retry(client, result, name, scale)
                    if reply is None:
                        result.violations.append(
                            f"submit of {name!r} never succeeded "
                            f"({CLIENT_ATTEMPTS} attempts)")
                        continue
                    rendered[name] = reply.get("rendered", "")
                # deterministic mid-run worker kill: the supervisor must
                # evict + restart it and the warm pass must still answer
                killed = router.kill_worker(index=seed % num_workers)
                if killed is None:
                    result.violations.append("no live worker to kill")
                else:
                    # failover invariant: the supervisor restarts the
                    # kill and the full ring recovers
                    deadline = time.monotonic() + 60.0
                    while ((router.worker_restarts < 1
                            or len(router.ring) < num_workers)
                           and time.monotonic() < deadline):
                        time.sleep(0.1)
                    if router.worker_restarts < 1:
                        result.violations.append(
                            f"killed worker {killed} was not restarted "
                            f"within 60s")
                    elif len(router.ring) < num_workers:
                        result.violations.append(
                            f"ring did not recover to {num_workers} "
                            f"workers within 60s")
                for name in experiments:
                    warm = _submit_with_retry(client, result, name, scale)
                    if warm is None:
                        result.violations.append(
                            f"post-kill resubmit of {name!r} never "
                            f"succeeded")
                    elif name in rendered \
                            and warm.get("rendered", "") != rendered[name]:
                        result.violations.append(
                            f"post-kill resubmit of {name!r} returned a "
                            f"different result")
            finally:
                try:
                    _submit_drain(client, result)
                except Exception:
                    pass
                router.request_shutdown("chaos cleanup")
                thread.join(120.0)
                if thread.is_alive():
                    result.violations.append("cluster failed to drain "
                                             "within 120s")
                elif rc["value"] != 0:
                    result.violations.append(
                        f"cluster exited {rc['value']} instead of 0")
                if armed is not None:
                    result.consumed = armed.consumed()
                    core.disarm()
                    armed = None
        finally:
            if armed is not None:
                core.disarm()
            obs.set_registry(prev_reg)
        _check_store(tmp, result)

    _check_accounting(result, reg.counters)
    if baseline is not None:
        for name in experiments:
            if name in rendered and rendered[name] != baseline.get(name):
                result.violations.append(
                    f"cluster result of {name!r} differs from the "
                    f"serial fault-free baseline")
    result.wall_s = time.perf_counter() - t0
    return result, rendered


def run_cluster_chaos(num_seeds: int = 3, start_seed: int = 0,
                      experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
                      scale: float = 0.05, verbose: bool = True,
                      num_workers: int = 2) -> ChaosReport:
    """Serial fault-free baseline, then ``num_seeds`` cluster scenarios
    (router faults + a worker kill each)."""
    t0 = time.perf_counter()
    experiments = tuple(experiments)

    base_result, baseline = run_scenario(None, experiments, scale)
    if not base_result.ok or set(baseline) != set(experiments):
        missing = [f"baseline run failed: {v}"
                   for v in base_result.violations] or \
                  ["baseline run produced no results"]
        base_result.violations[:] = missing
        return ChaosReport(seeds=[base_result],
                           baseline_experiments=experiments,
                           wall_s=time.perf_counter() - t0)

    seeds: List[SeedResult] = []
    for seed in range(start_seed, start_seed + num_seeds):
        result, _ = run_cluster_scenario(seed, experiments, scale,
                                         baseline=baseline,
                                         num_workers=num_workers)
        seeds.append(result)
        if verbose:
            state = "ok" if result.ok else "FAIL"
            fired = ",".join(f"{n}:{a}" for n, a in result.consumed) or "-"
            print(f"[chaos] cluster seed {seed}: {state} "
                  f"({result.wall_s:.1f}s, fired {fired})", flush=True)
    return ChaosReport(seeds=seeds, baseline_experiments=experiments,
                       wall_s=time.perf_counter() - t0)


# ----------------------------------------------------------------------
# the soak loop
# ----------------------------------------------------------------------
def run_chaos(num_seeds: int = 5, start_seed: int = 0,
              experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
              scale: float = 0.05, verbose: bool = True) -> ChaosReport:
    """Run the baseline plus ``num_seeds`` seeded scenarios."""
    t0 = time.perf_counter()
    experiments = tuple(experiments)

    base_result, baseline = run_scenario(None, experiments, scale)
    if not base_result.ok or set(baseline) != set(experiments):
        missing = [f"baseline run failed: {v}"
                   for v in base_result.violations] or \
                  ["baseline run produced no results"]
        base_result.violations[:] = missing
        return ChaosReport(seeds=[base_result],
                           baseline_experiments=experiments,
                           wall_s=time.perf_counter() - t0)

    seeds: List[SeedResult] = []
    for seed in range(start_seed, start_seed + num_seeds):
        result, _ = run_scenario(seed, experiments, scale, baseline=baseline)
        seeds.append(result)
        if verbose:
            state = "ok" if result.ok else "FAIL"
            fired = ",".join(f"{n}:{a}" for n, a in result.consumed) or "-"
            print(f"[chaos] seed {seed}: {state} "
                  f"({result.wall_s:.1f}s, fired {fired})", flush=True)
    return ChaosReport(seeds=seeds, baseline_experiments=experiments,
                       wall_s=time.perf_counter() - t0)
