"""The Machine: one GPU + runtime configured for one technique.

A machine bundles everything one evaluated configuration needs --
heap, MMU (in the right mode), allocator, cache hierarchy, type
registry, vTable arena and dispatch strategy -- under a technique
name resolved through the :mod:`repro.techniques` registry (run
``python -m repro` help or ``techniques.available()`` for the list):

==================  =========================================================
``cuda``            default CUDA allocator + embedded-vTable dispatch
``concord``         default CUDA allocator + type-tag/switch dispatch
``sharedoa``        SharedOA allocator + embedded-vTable dispatch
``coal``            SharedOA allocator + COAL range-lookup dispatch
``typepointer``     SharedOA allocator + tag-bit dispatch, modified MMU
``typepointer_proto``  as above but the software prototype: stock MMU,
                    compiler-inserted masking at member accesses (6.3)
``tp_on_cuda``      default CUDA allocator + tag-bit dispatch (Figure 11)
``soa``             DynaSOAr-family SoA allocator + embedded-vTable dispatch
==================  =========================================================
"""
from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .. import obs
from ..errors import LaunchError
from ..memory.address_space import strip_tag_array
from ..memory.heap import Heap
from ..memory.mmu import MMU
from ..runtime.objects import DeviceArray
from ..runtime.typesystem import ObjectLayout, TypeDescriptor, TypeRegistry
from ..runtime.vtable import VTableArena
from ..techniques import available as _available_techniques
from ..techniques import resolve as _resolve_technique
from .cache import MemoryHierarchy
from .config import GPUConfig
from .constmem import ConstantMemory
from .replay import make_engine, resolve_engine_name
from .tlb import TLBHierarchy
from .executor import launch as _launch
from .stats import KernelStats

#: Deprecated alias: canonical technique names at import time.  New code
#: should query :func:`repro.techniques.available` instead, which also
#: reflects user registrations.
TECHNIQUES = _available_techniques()

#: Deprecated alias: the five configurations of the paper's Figure 6 in
#: plotting order, frozen so historical figure output is reproducible.
#: The sweeps now default to :func:`repro.techniques.figure_techniques`
#: (these five plus ``soa``).
FIGURE6_TECHNIQUES = ("cuda", "concord", "sharedoa", "coal", "typepointer")

#: Process-wide replay memo newly constructed machines attach by
#: default (None = no memo).  Worker processes of the parallel
#: experiment service point this at a store-backed memo so *every*
#: machine they build -- including the ones harness code constructs
#: directly, outside ``harness.runner`` -- replays out of the
#: persistent store.  ``Machine.set_replay_memo`` still overrides it
#: per machine.
_DEFAULT_REPLAY_MEMO = None


def set_default_replay_memo(memo):
    """Install the memo new machines start with; returns the old one."""
    global _DEFAULT_REPLAY_MEMO
    old, _DEFAULT_REPLAY_MEMO = _DEFAULT_REPLAY_MEMO, memo
    return old


class Machine:
    """A simulated GPU configured for one of the paper's techniques.

    Everything beyond the technique name is a tuning knob, so the
    constructor takes it keyword-only: ``Machine("coal",
    initial_chunk_objects=1024)``.
    """

    def __init__(
        self,
        technique: str = "cuda",
        *,
        config: Optional[GPUConfig] = None,
        initial_chunk_objects: int = 4096,
        heap_capacity: int = 1 << 22,
        merge_adjacent: bool = True,
    ):
        spec = _resolve_technique(technique)
        self.technique = spec.name          # canonicalises aliases
        self.config = config or GPUConfig()
        #: allocator tuning knobs, read by the registry's factories
        self.initial_chunk_objects = initial_chunk_objects
        self.merge_adjacent = merge_adjacent
        self.heap = Heap(capacity=heap_capacity)
        self.arena = VTableArena(self.heap)
        self.hierarchy = MemoryHierarchy(self.config)
        self.constmem = ConstantMemory(self.config.num_sms)
        self.tlb = (
            TLBHierarchy(self.config.num_sms, self.config.tlb_l1_entries,
                         self.config.tlb_l2_entries)
            if self.config.model_tlb else None
        )

        #: stage-two replay engine (see repro.gpu.replay); owns cache
        #: state for its lifetime, like a real GPU across kernels
        self.engine = make_engine(
            resolve_engine_name(self.config), self.config, self.hierarchy
        )
        #: optional cross-run replay memo (set by harness.runner before
        #: any launch); plus the trace-hash chain and pending traces
        self._replay_memo = _DEFAULT_REPLAY_MEMO
        self._trace_chain: Optional[bytes] = None
        self._pending_traces: List[object] = []
        self._waves_replayed = 0
        #: optional zero-copy trace store (see harness.store.TraceStore):
        #: memo hits spill their waves here instead of pinning raw
        #: traces in memory until the next miss drains them
        self._trace_store = None
        self._trace_bucket: Optional[str] = None

        # no per-technique branching here: the registry spec carries the
        # dispatch strategy, allocator recipe and MMU mode
        self.strategy = spec.dispatch_factory()
        self._registered: set = set()
        self.registry = TypeRegistry(header_size=self.strategy.header_size)
        self.allocator = spec.allocator_factory(self)
        self.mmu = MMU(self.heap, mode=spec.mmu_mode)
        self.strategy.bind(self)

        #: accumulated counters across every launch of this machine
        self.run_stats = KernelStats()
        self.launches = 0
        #: (label, KernelStats) per launch, newest last (bounded)
        self.launch_history: List[tuple] = []
        self.max_history = 256

    # ------------------------------------------------------------------
    # object and array management
    # ------------------------------------------------------------------
    def register(self, *types: TypeDescriptor) -> None:
        """Register types (ensuring their vTables exist in the arena)."""
        for t in types:
            if t in self._registered:
                continue
            self.registry.register(t)
            for member in t.mro():
                self.arena.ensure_type(member)
            self._registered.add(t)

    def new_objects(self, type_desc: TypeDescriptor, count: int) -> np.ndarray:
        """Allocate and construct ``count`` objects; returns their pointers.

        Pointers are tagged under TypePointer techniques.  Construction
        (header writes) is host-side, matching the paper's methodology
        of excluding object initialisation from kernel measurements.
        """
        self.register(type_desc)
        layout = self.registry.layout(type_desc)
        alloc = self.allocator.alloc_object
        if count == 1:
            ptr = alloc(type_desc, layout.size)
            self.strategy.on_construct(
                self.allocator._canonical(ptr), type_desc
            )
            return np.array([ptr], dtype=np.uint64)
        ptrs = np.empty(count, dtype=np.uint64)
        for i in range(count):
            ptrs[i] = alloc(type_desc, layout.size)
        # batched header writes (strip_tag_array is every allocator's
        # _canonical, vectorised: identity when pointers carry no tag)
        self.strategy.on_construct_many(strip_tag_array(ptrs), type_desc)
        return ptrs

    def free_objects(self, ptrs: Iterable[int]) -> None:
        """Free a batch of (possibly tagged) object pointers.

        Batched mirror of :meth:`new_objects`: the allocators validate
        and release the whole batch vectorised (``free_objects_many``)
        instead of walking a per-pointer Python loop.
        """
        if isinstance(ptrs, np.ndarray):
            arr = ptrs.astype(np.uint64, copy=False)
        else:
            arr = np.fromiter((int(p) for p in ptrs), dtype=np.uint64)
        if arr.size == 0:
            return
        if arr.size == 1:
            self.allocator.free_object(int(arr[0]))
            return
        self.allocator.free_objects_many(arr)

    # ------------------------------------------------------------------
    # host-side field access
    # ------------------------------------------------------------------
    def _layout_of(self, type_or_layout) -> ObjectLayout:
        if isinstance(type_or_layout, ObjectLayout):
            return type_or_layout
        return self.registry.layout(type_or_layout)

    def field_addr(self, ptr: int, type_or_layout, field: str) -> int:
        """Canonical address of one object's field under this allocator."""
        layout = self._layout_of(type_or_layout)
        canon = self.allocator._canonical(int(ptr))
        return self.allocator.field_addr(canon, layout, field)

    def read_field(self, ptrs, type_or_layout, field: str):
        """Host-side read of one field from one or many object pointers.

        Pointers may carry TypePointer tags.  Scalar in, scalar out;
        array in, array out.  All placement knowledge stays inside the
        allocator's ``field_addr(s)`` hook -- under the SoA technique
        these addresses are field-major, not base + offset.
        """
        layout = self._layout_of(type_or_layout)
        dtype = layout.dtype(field)
        if isinstance(ptrs, np.ndarray):
            canon = strip_tag_array(ptrs.astype(np.uint64, copy=False))
            addrs = self.allocator.field_addrs(canon, layout, field)
            return self.heap.gather(addrs, dtype)
        return self.heap.load(self.field_addr(ptrs, layout, field), dtype)

    def write_field(self, ptrs, type_or_layout, field: str, values) -> None:
        """Host-side write of one field; broadcasts a scalar ``values``."""
        layout = self._layout_of(type_or_layout)
        dtype = layout.dtype(field)
        if isinstance(ptrs, np.ndarray):
            canon = strip_tag_array(ptrs.astype(np.uint64, copy=False))
            addrs = self.allocator.field_addrs(canon, layout, field)
            vals = np.broadcast_to(np.asarray(values), addrs.shape)
            self.heap.scatter(addrs, dtype, vals)
            return
        self.heap.store(self.field_addr(ptrs, layout, field), dtype, values)

    def array(self, dtype: str, count: int) -> DeviceArray:
        return DeviceArray(self, dtype, count)

    def array_from(self, values, dtype: str) -> DeviceArray:
        vals = np.asarray(values)
        arr = DeviceArray(self, dtype, int(vals.size))
        arr.write(vals)
        return arr

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def set_replay_memo(self, memo) -> None:
        """Attach a cross-run replay memo (see ``harness.runner``).

        Must happen before the first launch: memo keys chain over every
        wave replayed since machine construction, so attaching mid-run
        would let two machines with different cache state share keys.
        """
        if self._waves_replayed:
            raise LaunchError(
                "replay memo must be attached before the first launch"
            )
        self._replay_memo = memo

    def set_trace_store(self, store, bucket: str) -> None:
        """Attach a zero-copy trace store for memo-hit waves.

        Without a store, every memo hit pins its raw trace list in
        memory until the next miss drains it through the engine -- an
        unbounded cost on long warm runs.  With one attached, hit waves
        are delta-encoded into the store's ``bucket`` (keyed by the
        same chained hash as the memo) and the pending list holds only
        the 20-byte keys; the drain decodes them back as views into
        the mapped bucket file.  Same attach-before-first-launch rule
        as the memo, for the same chaining reason.
        """
        if self._waves_replayed:
            raise LaunchError(
                "trace store must be attached before the first launch"
            )
        self._trace_store = store
        self._trace_bucket = bucket

    def _advance_chain(self, traces) -> bytes:
        import hashlib

        h = hashlib.sha1()
        if self._trace_chain is None:
            cfg = self.config
            h.update(repr((
                self.engine.name, cfg.num_sms, cfg.l1, cfg.l2,
                cfg.dram_row_bytes, cfg.dram_num_banks,
            )).encode())
        else:
            h.update(self._trace_chain)
        for t in traces:
            t.digest_into(h)
        self._trace_chain = h.digest()
        return self._trace_chain

    def replay_wave(self, traces, stats: KernelStats) -> None:
        """Replay (or reuse) one wave of traces via the engine.

        With a memo attached, the wave's counters are looked up under a
        hash chained over the machine's whole trace history -- replay
        counters are a pure function of that chain, so a hit is exact.
        Hits defer the engine's state update (traces go to a pending
        list); the first miss drains the pending traces through the
        engine to rebuild cache state before replaying live.
        """
        self._waves_replayed += 1
        obs.count("machine.waves")
        memo = self._replay_memo
        if memo is None:
            self.engine.replay_wave(traces, stats)
            return
        key = self._advance_chain(traces)
        hit = memo.get(key)
        if hit is not None:
            obs.count("machine.memo_hits")
            stats.merge(hit)
            if self._trace_store is not None:
                self._trace_store.put_wave(self._trace_bucket, key, traces)
                self._pending_traces.append(key)
            else:
                self._pending_traces.append(traces)
            return
        obs.count("machine.memo_misses")
        if self._pending_traces:
            scratch = KernelStats()
            for wave in self._pending_traces:
                if isinstance(wave, bytes):
                    wave = self._trace_store.get_wave(
                        self._trace_bucket, wave)
                self.engine.replay_wave(wave, scratch)
            self._pending_traces.clear()
        delta = KernelStats()
        self.engine.replay_wave(traces, delta)
        stats.merge(delta)
        memo.put(key, delta)

    def launch(self, kernel, num_threads: int,
               label: Optional[str] = None) -> KernelStats:
        """Run one kernel; returns its stats and accumulates run totals.

        ``label`` names the launch in the per-kernel profile (defaults
        to the kernel callable's __name__, like nvprof's kernel list).
        """
        stats = _launch(self, kernel, num_threads)
        self.run_stats.merge(stats)
        self.launches += 1
        obs.count("machine.launches")
        name = label or getattr(kernel, "__name__", "kernel")
        if len(self.launch_history) < self.max_history:
            self.launch_history.append((name, stats))
        return stats

    def reset_run(self) -> None:
        """Clear accumulated run statistics (not memory contents)."""
        self.run_stats = KernelStats()
        self.launches = 0
        self.launch_history = []
        self.hierarchy.reset_stats()
        self.constmem.reset_stats()
        if self.tlb is not None:
            self.tlb.reset_stats()

    # ------------------------------------------------------------------
    @property
    def num_types(self) -> int:
        return len(self.registry)

    def describe(self) -> str:
        return (
            f"Machine(technique={self.technique}, allocator={self.allocator.name}, "
            f"strategy={self.strategy.name}, mmu={self.mmu.mode.value}, "
            f"gpu={self.config.name})"
        )
