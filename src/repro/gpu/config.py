"""V100-like GPU configuration.

Parameters follow the NVIDIA Volta V100 the paper measures on
(section 7) at the granularity our roofline timing model needs: SIMT
width, SM count, cache geometry, and per-level sector bandwidth.
Absolute numbers are not the goal (see DESIGN.md section 5); the
*ratios* between levels are what shape Figures 6-12.
"""
from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = 128
    sector_bytes: int = 32

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc

    @property
    def sectors_per_line(self) -> int:
        return self.line_bytes // self.sector_bytes

    def __post_init__(self):
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        if self.line_bytes % self.sector_bytes:
            raise ValueError("line size must be a multiple of the sector size")
        if (self.size_bytes // self.line_bytes) % self.assoc:
            raise ValueError("line count must be a multiple of associativity")


@dataclass(frozen=True)
class GPUConfig:
    """Top-level machine description (defaults: V100 Volta)."""

    name: str = "V100"
    warp_size: int = 32
    num_sms: int = 80
    schedulers_per_sm: int = 4
    core_clock_ghz: float = 1.38

    #: per-SM L1 (V100: 128KB combined L1/shared; we give L1 64KB)
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=64 * 1024, assoc=4)
    )
    #: device-wide L2 (V100: 6MB)
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=6 * 1024 * 1024, assoc=16)
    )

    # ------------------------------------------------------------------
    # roofline throughput model (sectors are 32B)
    # ------------------------------------------------------------------
    #: warp instructions the whole chip can issue per cycle
    #: (one per scheduler: 80 SMs x 4 schedulers)
    @property
    def issue_width(self) -> int:
        return self.num_sms * self.schedulers_per_sm

    #: L1 sectors serviceable per cycle chip-wide (4 x 32B per SM per cycle)
    l1_sectors_per_cycle: float = 320.0
    #: L2 sectors per cycle chip-wide (~2.1 TB/s at 1.38 GHz)
    l2_sectors_per_cycle: float = 48.0
    #: DRAM sectors per cycle chip-wide (~900 GB/s HBM2 at 1.38 GHz)
    dram_sectors_per_cycle: float = 20.0

    # ------------------------------------------------------------------
    # DRAM row-buffer model: accesses that stay in an open row stream at
    # full bandwidth; a row miss pays an activate/precharge penalty.
    # This is what rewards SharedOA's contiguous same-type regions over
    # the CUDA allocator's scattered, padded placements (section 8.2).
    # ------------------------------------------------------------------
    dram_row_bytes: int = 2048
    dram_num_banks: int = 16
    #: extra cost of a row miss, in sector-service equivalents
    dram_row_miss_penalty_sectors: float = 8.0

    #: warps concurrently resident per SM.  The executor interleaves the
    #: memory traces of one wave (num_sms x this) of warps through the
    #: caches round-robin, modelling the inter-warp thrashing that makes
    #: the embedded vTable-pointer load a poor prefetch on GPUs
    #: (paper section 1).
    resident_warps_per_sm: int = 16

    # ------------------------------------------------------------------
    # replay engine (stage two of the capture -> replay pipeline).
    # "reference", "vector" and "fused" are cross-validated
    # bit-identical (tests/test_replay_engines.py); the env var
    # REPRO_REPLAY_ENGINE overrides this per process.  See
    # repro.gpu.replay.
    # ------------------------------------------------------------------
    replay_engine: str = "vector"

    # ------------------------------------------------------------------
    # TLB model (off by default; see repro.gpu.tlb and the TLB ablation)
    # ------------------------------------------------------------------
    model_tlb: bool = False
    tlb_l1_entries: int = 32
    tlb_l2_entries: int = 512
    #: cycles one page-table walk costs (amortised over walk parallelism)
    tlb_walk_cycles: float = 20.0

    #: fixed kernel-launch overhead in cycles (driver + ramp-up)
    kernel_launch_cycles: float = 4000.0
    #: exposed latency charged per round of dependent memory levels; a
    #: small term so tiny launches are not reported as free
    base_memory_latency_cycles: float = 400.0

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.core_clock_ghz * 1e9)

    # ------------------------------------------------------------------
    # validated overrides: the one path sweep points and the CLI's
    # ``--config k=v`` both go through
    # ------------------------------------------------------------------
    def with_overrides(self, **knobs: Any) -> "GPUConfig":
        """A copy with ``knobs`` replaced, rejecting unknown names.

        Unknown field names raise ``ValueError`` with did-you-mean
        hints; ``l1``/``l2`` accept either a :class:`CacheGeometry` or
        a mapping of geometry fields (missing fields keep the current
        geometry's values), and constructing the geometry re-runs its
        size/line/associativity divisibility checks.
        """
        import difflib

        known = {f.name for f in fields(self)}
        resolved: dict = {}
        for name, value in knobs.items():
            if name not in known:
                msg = f"unknown GPUConfig knob {name!r}"
                close = difflib.get_close_matches(name, sorted(known), n=3)
                if close:
                    msg += f"; did you mean: {', '.join(close)}?"
                raise ValueError(msg)
            if name in ("l1", "l2") and isinstance(value, Mapping):
                geo_known = {f.name for f in fields(CacheGeometry)}
                bad = sorted(set(value) - geo_known)
                if bad:
                    raise ValueError(
                        f"unknown CacheGeometry field(s) {bad} for "
                        f"{name!r}; known: {', '.join(sorted(geo_known))}")
                value = replace(getattr(self, name), **dict(value))
            resolved[name] = value
        return replace(self, **resolved)


#: dotted sweep knobs reach into these nested geometries
_NESTED_KNOBS = ("l1", "l2")


def base_configs() -> dict:
    """Named base configurations a sweep spec / CLI may start from."""
    return {
        "scaled": scaled_config,
        "small": small_config,
        "v100": GPUConfig,
    }


def config_with_knobs(base: GPUConfig,
                      knobs: Mapping[str, Any]) -> GPUConfig:
    """Apply a flat knob mapping (dotted keys reach into l1/l2).

    ``{"l1.size_bytes": 8192, "model_tlb": True}`` becomes a validated
    :meth:`GPUConfig.with_overrides` call; unless the mapping sets
    ``name`` explicitly the result is renamed ``<base>+<hash>`` so two
    different knob sets can never share a replay-store bucket or a
    runner cache key.
    """
    from ..canon import content_id

    flat: dict = {}
    nested: dict = {}
    for key, value in knobs.items():
        if "." in key:
            prefix, _, leaf = key.partition(".")
            if prefix not in _NESTED_KNOBS:
                raise ValueError(
                    f"unknown nested knob {key!r}; dotted knobs must "
                    f"start with one of: {', '.join(_NESTED_KNOBS)}")
            nested.setdefault(prefix, {})[leaf] = value
        else:
            flat[key] = value
    for prefix, leaves in nested.items():
        if prefix in flat:
            raise ValueError(
                f"knob {prefix!r} given both whole ({prefix}=...) and "
                f"dotted ({prefix}.field=...) -- pick one form")
        flat[prefix] = leaves
    cfg = base.with_overrides(**flat)
    if "name" not in flat and knobs:
        cfg = replace(cfg, name=f"{base.name}+{content_id(dict(knobs))}")
    return cfg


def scaled_config() -> GPUConfig:
    """A V100 scaled down 5x for tractable pure-Python workloads.

    The paper runs ~10^6-object workloads on 80 SMs; our workloads run
    ~10^4-10^5 objects, so the machine shrinks proportionally (16 SMs,
    per-SM L1 halved, L2 and bandwidths divided by ~5-6) to preserve
    the objects-per-SM and working-set-to-cache ratios that shape
    Figures 6-12.  See DESIGN.md section 2 (substitution table).
    """
    return GPUConfig(
        name="V100/5",
        num_sms=16,
        schedulers_per_sm=4,
        l1=CacheGeometry(size_bytes=8 * 1024, assoc=4),
        l2=CacheGeometry(size_bytes=256 * 1024, assoc=8),
        l1_sectors_per_cycle=32.0,
        l2_sectors_per_cycle=9.6,
        dram_sectors_per_cycle=4.0,
        dram_row_miss_penalty_sectors=6.0,
        resident_warps_per_sm=12,
        kernel_launch_cycles=300.0,
        base_memory_latency_cycles=100.0,
    )


def small_config() -> GPUConfig:
    """A scaled-down machine for unit tests: fewer SMs, tiny caches.

    Tiny caches make hit/miss behaviour observable with small inputs.
    """
    return GPUConfig(
        name="test-gpu",
        num_sms=4,
        schedulers_per_sm=2,
        l1=CacheGeometry(size_bytes=4 * 1024, assoc=2),
        l2=CacheGeometry(size_bytes=32 * 1024, assoc=4),
        l1_sectors_per_cycle=16.0,
        l2_sectors_per_cycle=4.0,
        dram_sectors_per_cycle=2.0,
        kernel_launch_cycles=100.0,
    )
