"""GPU simulator: SIMT executor, trace capture, replay engines, timing."""

from .cache import MemoryHierarchy, SectoredCache
from .coalescing import (
    SECTOR_BYTES,
    Transaction,
    coalesce,
    coalesce_arrays,
    count_sectors,
)
from .config import CacheGeometry, GPUConfig, small_config
from .dram import DRAMModel, account_rows
from .executor import WARP_SIZE, ExecutionContext, launch
from .isa import InstrClass, Opcode, TraceRecord
from .machine import FIGURE6_TECHNIQUES, TECHNIQUES, Machine
from .replay import ENGINES, ReferenceEngine, ReplayEngine, VectorEngine
from .stats import KernelStats
from .timing import bottleneck, compute_cycles, finalize_timing, memory_cycles
from .trace import MemoryTrace, flatten_wave

__all__ = [
    "MemoryHierarchy",
    "SectoredCache",
    "SECTOR_BYTES",
    "Transaction",
    "coalesce",
    "coalesce_arrays",
    "count_sectors",
    "CacheGeometry",
    "GPUConfig",
    "small_config",
    "DRAMModel",
    "account_rows",
    "WARP_SIZE",
    "ExecutionContext",
    "launch",
    "InstrClass",
    "Opcode",
    "TraceRecord",
    "FIGURE6_TECHNIQUES",
    "TECHNIQUES",
    "Machine",
    "ENGINES",
    "ReplayEngine",
    "ReferenceEngine",
    "VectorEngine",
    "KernelStats",
    "MemoryTrace",
    "flatten_wave",
    "bottleneck",
    "compute_cycles",
    "finalize_timing",
    "memory_cycles",
]
