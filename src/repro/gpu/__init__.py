"""GPU simulator: SIMT executor, coalescer, caches, timing."""

from .cache import MemoryHierarchy, SectoredCache
from .coalescing import SECTOR_BYTES, Transaction, coalesce, count_sectors
from .config import CacheGeometry, GPUConfig, small_config
from .dram import DRAMModel
from .executor import WARP_SIZE, ExecutionContext, launch
from .isa import InstrClass, Opcode, TraceRecord
from .machine import FIGURE6_TECHNIQUES, TECHNIQUES, Machine
from .stats import KernelStats
from .timing import bottleneck, compute_cycles, finalize_timing, memory_cycles

__all__ = [
    "MemoryHierarchy",
    "SectoredCache",
    "SECTOR_BYTES",
    "Transaction",
    "coalesce",
    "count_sectors",
    "CacheGeometry",
    "GPUConfig",
    "small_config",
    "DRAMModel",
    "WARP_SIZE",
    "ExecutionContext",
    "launch",
    "InstrClass",
    "Opcode",
    "TraceRecord",
    "FIGURE6_TECHNIQUES",
    "TECHNIQUES",
    "Machine",
    "KernelStats",
    "bottleneck",
    "compute_cycles",
    "finalize_timing",
    "memory_cycles",
]
