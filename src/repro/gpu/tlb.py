"""GPU TLB hierarchy for unified-memory address translation.

SharedOA's whole premise is CPU/GPU unified virtual memory (section 4),
which makes translation machinery part of the substrate: every global
access translates its pages through a per-SM L1 TLB backed by a shared
L2 TLB; double misses cost a page-table walk.

Scattered object layouts touch more pages per warp than packed ones,
so the TLB is another channel through which the CUDA allocator loses
to SharedOA.  The model is **off by default** (``GPUConfig.model_tlb``)
so the headline calibration is unaffected; the ablation benchmark
turns it on and reports how much it amplifies the allocator gap.
"""
from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..memory.address_space import PAGE_SIZE


@dataclass
class TLBStats:
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    walks: int = 0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def walk_rate(self) -> float:
        return self.walks / self.l1_accesses if self.l1_accesses else 0.0

    def reset(self) -> None:
        self.l1_accesses = 0
        self.l1_hits = 0
        self.l2_accesses = 0
        self.l2_hits = 0
        self.walks = 0


class _LRUSet:
    """Fully-associative LRU translation buffer."""

    def __init__(self, entries: int):
        self.entries = entries
        self._map: OrderedDict = OrderedDict()

    def access(self, page: int) -> bool:
        if page in self._map:
            self._map.move_to_end(page)
            return True
        if len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[page] = True
        return False

    def flush(self) -> None:
        self._map.clear()


class TLBHierarchy:
    """Per-SM L1 TLBs over a shared L2 TLB."""

    def __init__(self, num_sms: int, l1_entries: int = 32,
                 l2_entries: int = 512):
        self.num_sms = num_sms
        self.l1s = [_LRUSet(l1_entries) for _ in range(num_sms)]
        self.l2 = _LRUSet(l2_entries)
        self.stats = TLBStats()

    # ------------------------------------------------------------------
    def translate_pages(self, sm: int, addrs: np.ndarray) -> int:
        """Probe the TLBs for one warp access; returns page walks taken.

        Page extraction and uniquing are batched (one numpy pass over
        the warp's addresses); only the stateful LRU probes walk the
        handful of distinct pages.

        ``sm`` must name a real SM: wrapping an out-of-range id would
        silently alias two SMs' L1 TLB state and corrupt the ablation's
        hit rates.  Addresses are coerced to ``uint64`` before the page
        divide -- a signed trace dtype would otherwise promote the
        divide to float64 and miscompute pages above 2**53.
        """
        if not 0 <= sm < self.num_sms:
            raise IndexError(
                f"SM id {sm} out of range for {self.num_sms} SMs"
            )
        a = np.asarray(addrs).astype(np.uint64, copy=False)
        pages = np.unique(a // np.uint64(PAGE_SIZE)).tolist()
        stats = self.stats
        l1 = self.l1s[sm]
        l2 = self.l2
        walks = 0
        stats.l1_accesses += len(pages)
        for p in pages:
            if l1.access(p):
                stats.l1_hits += 1
                continue
            stats.l2_accesses += 1
            if l2.access(p):
                stats.l2_hits += 1
                continue
            stats.walks += 1
            walks += 1
        return walks

    def flush(self) -> None:
        for l1 in self.l1s:
            l1.flush()
        self.l2.flush()

    def reset_stats(self) -> None:
        self.stats.reset()
