"""The memory-access coalescer.

When a warp executes a global load/store, the coalescer merges the 32
per-lane addresses into the minimal set of 32-byte sector transactions
(Volta counts sectors, and NVProf's ``gld_transactions`` counts what we
count here).  A fully converged access (all lanes read the same word)
costs 1 transaction; a fully diverged one (each lane a different
sector) costs up to 32 -- the entire difference between the vTable
pointer load A and the vTable access B in Figure 1.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

SECTOR_BYTES = 32
LINE_BYTES = 128
SECTORS_PER_LINE = LINE_BYTES // SECTOR_BYTES

_U64_SECTOR = np.uint64(SECTOR_BYTES)


@dataclass(frozen=True)
class Transaction:
    """One line-granular memory transaction with its sector mask."""

    line_addr: int           # byte address of the 128B line
    sector_mask: int         # bitmask over the line's 4 sectors

    @property
    def num_sectors(self) -> int:
        return bin(self.sector_mask).count("1")


def coalesce_arrays(addrs: np.ndarray, width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Batched coalescer: the array-returning entry point of the trace IR.

    Returns ``(line_addrs, sector_masks)`` -- uint64 byte addresses of
    the touched 128B lines (ascending) and the uint8 4-sector bitmask
    per line.  Semantics match :func:`coalesce` exactly; this form goes
    straight into :class:`repro.gpu.trace.MemoryTrace` without building
    per-transaction Python objects.
    """
    if addrs.size == 0:
        return (np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint8))
    a = addrs.astype(np.uint64, copy=False)
    first_sector = a // _U64_SECTOR
    last_sector = (a + np.uint64(max(width - 1, 0))) // _U64_SECTOR
    if (first_sector == last_sector).all():
        sectors = np.unique(first_sector)
    else:
        sectors = np.unique(np.concatenate([first_sector, last_sector]))

    lines = sectors // np.uint64(SECTORS_PER_LINE)
    sector_in_line = (sectors % np.uint64(SECTORS_PER_LINE)).astype(np.int64)

    uniq_lines, inverse = np.unique(lines, return_inverse=True)
    masks = np.zeros(len(uniq_lines), dtype=np.uint8)
    np.bitwise_or.at(
        masks, inverse,
        (np.int64(1) << sector_in_line).astype(np.uint8),
    )
    return uniq_lines * np.uint64(LINE_BYTES), masks


def coalesce(addrs: np.ndarray, width: int) -> List[Transaction]:
    """Coalesce per-lane accesses of ``width`` bytes into transactions.

    ``addrs`` holds the active lanes' byte addresses (already MMU
    translated / canonical).  Accesses that straddle a sector boundary
    touch both sectors, as on hardware.  Object-returning wrapper over
    :func:`coalesce_arrays`.
    """
    lines, masks = coalesce_arrays(addrs, width)
    return [
        Transaction(line_addr=line, sector_mask=mask)
        for line, mask in zip(lines.tolist(), masks.tolist())
    ]


def count_sectors(addrs: np.ndarray, width: int) -> int:
    """Number of sector transactions the access generates (fast path)."""
    if addrs.size == 0:
        return 0
    a = addrs.astype(np.uint64, copy=False)
    first_sector = a // _U64_SECTOR
    last_sector = (a + np.uint64(max(width - 1, 0))) // _U64_SECTOR
    if (first_sector == last_sector).all():
        return len(np.unique(first_sector))
    return len(np.unique(np.concatenate([first_sector, last_sector])))


def sector_addresses(addrs: np.ndarray, width: int) -> np.ndarray:
    """Unique sector byte-addresses touched by the access, sorted."""
    if addrs.size == 0:
        return np.empty(0, dtype=np.uint64)
    a = addrs.astype(np.uint64, copy=False)
    first_sector = a // _U64_SECTOR
    last_sector = (a + np.uint64(max(width - 1, 0))) // _U64_SECTOR
    if (first_sector == last_sector).all():
        sectors = np.unique(first_sector)
    else:
        sectors = np.unique(np.concatenate([first_sector, last_sector]))
    return sectors * _U64_SECTOR
