"""Roofline timing model: counters -> cycles.

GPUs hide latency with massive multithreading (the paper's key
contrast with CPUs, section 1), so kernel time is governed by the
busier of two throughput limits:

* instruction issue: total dynamic warp instructions over the chip's
  issue width, and
* the memory system: sector counts at each level over that level's
  sector bandwidth.  Levels are charged independently and summed --
  a miss consumes bandwidth at every level it traverses.

``kernel_cycles = max(compute, memory) + launch overhead + a small
latency term`` so that empty launches are not free.  The model is
deliberately simple; DESIGN.md section 5 records it as part of the
substitution for silicon measurement.
"""
from __future__ import annotations

from .config import GPUConfig
from .stats import KernelStats


def compute_cycles(stats: KernelStats, config: GPUConfig) -> float:
    """Issue-limited time: one warp instruction per scheduler per cycle."""
    return stats.total_warp_instrs / config.issue_width


def memory_cycles(stats: KernelStats, config: GPUConfig) -> float:
    """Memory-throughput-limited time across the three levels.

    DRAM sectors that miss the open row pay an activate/precharge
    penalty (expressed in sector-service equivalents), which is how
    contiguous, tightly-packed layouts win over scattered ones.
    """
    l1_time = stats.l1_accesses / config.l1_sectors_per_cycle
    l2_time = stats.l2_accesses / config.l2_sectors_per_cycle
    dram_equiv = (
        stats.dram_accesses
        + stats.dram_row_misses * config.dram_row_miss_penalty_sectors
    )
    dram_time = dram_equiv / config.dram_sectors_per_cycle
    # constant-cache misses fetch through the L2 path; hits are free
    # beyond their issue slot (the table "fits in the dedicated constant
    # memory cache", section 2)
    const_time = (
        (stats.const_accesses - stats.const_hits)
        / config.l2_sectors_per_cycle
    )
    # page-table walks serialise behind the walkers (when modelled)
    tlb_time = (
        stats.tlb_walks * config.tlb_walk_cycles / config.num_sms
        if config.model_tlb else 0.0
    )
    # store traffic traverses L2/DRAM too and is already included in the
    # l2/dram counters by the hierarchy model.
    return l1_time + l2_time + dram_time + const_time + tlb_time


def finalize_timing(stats: KernelStats, config: GPUConfig) -> KernelStats:
    """Fill ``stats.cycles`` (and the component fields) in place.

    Issue and memory time overlap imperfectly on real SMs (every
    instruction still occupies a scheduler slot, and poor SIMD
    utilisation at high type divergence costs real time even in
    memory-bound kernels -- paper section 8.3), so the components add.
    """
    c = compute_cycles(stats, config)
    m = memory_cycles(stats, config)
    stats.compute_cycles = c
    stats.memory_cycles = m
    stats.cycles = (
        c + m + config.kernel_launch_cycles + config.base_memory_latency_cycles
    )
    return stats


def bottleneck(stats: KernelStats) -> str:
    """'memory' or 'compute', whichever bound the kernel."""
    return "memory" if stats.memory_cycles >= stats.compute_cycles else "compute"
