"""Pluggable replay engines: stage two of the capture -> replay pipeline.

A :class:`ReplayEngine` consumes one wave of :class:`MemoryTrace`
records (see :mod:`repro.gpu.trace`) and charges their cache/DRAM
effects into a :class:`KernelStats`.  Three implementations are kept
and cross-validated against each other (``tests/test_replay_engines.py``
asserts bit-identical counters):

``ReferenceEngine``
    the historical semantics, verbatim: the dict-based
    :class:`~repro.gpu.cache.SectoredCache` hierarchy driven one
    transaction at a time in the wave's round-robin interleave.  This
    is the executable specification.

``VectorEngine``
    the fast engine.  The wave is flattened into struct-of-arrays form
    up front (``trace.flatten_wave``): interleave scheduling, set/tag
    decomposition, sector popcounts and per-role attribution are all
    batched numpy work, and DRAM row-buffer accounting is vectorized
    per bank after the fact.  Only the inherently order-dependent cache
    state transitions remain sequential, and those run as a tight loop
    over packed integers -- each line is one dict entry holding
    ``(lru_stamp << 4) | sector_mask``, so probe/refresh/evict are a
    couple of int ops.  LRU stamps are unique per set (the clock ticks
    every access), which makes packed-value ordering identical to LRU
    ordering and eviction bit-compatible with the reference.

``FusedEngine``
    the fastest engine.  The whole coalesce -> L1 -> L2 -> DRAM walk
    runs as a single vectorized pass per cache level: the transaction
    stream is sorted by (set, tag), tag-runs are compressed to one
    representative each, and the survivors are scheduled into dense
    *rounds* of set-distinct accesses so the packed-integer cache
    transition becomes a handful of 2-d numpy gathers/scatters per
    round instead of a python loop per transaction (section 5.10 of
    DESIGN.md).  Everything state-independent about a wave -- flatten
    output, sort permutations, run structure, the round schedule --
    is stitched once per trace-shape signature and memoized in a
    digest-keyed *plan cache*, so repeated waves (fixpoint loops in
    the graph workloads repeat 60-75% of their traffic verbatim) pay
    only the state-dependent work.  Equivalence with the clock-stamp
    engines rests on LRU stamps only ever being *compared within one
    set of one level*: any stamping that is monotone in service order
    per set (here: flat wave positions) makes identical decisions.

Engine choice comes from ``GPUConfig.replay_engine`` and can be forced
globally with the ``REPRO_REPLAY_ENGINE`` environment variable.
Unknown names raise :class:`~repro.errors.UnknownEngineError` with
did-you-mean hints, same UX as unknown techniques.
"""
from __future__ import annotations

import difflib
import hashlib
import os
from typing import List, Protocol

import numpy as np

from ..errors import LaunchError, UnknownEngineError
from .cache import MemoryHierarchy
from .config import GPUConfig
from .dram import account_rows
from .stats import KernelStats
from .trace import MemoryTrace, POPCOUNT4, flatten_wave, role_name

#: engine names accepted by GPUConfig.replay_engine / REPRO_REPLAY_ENGINE
ENGINES = ("reference", "vector", "fused")

#: environment override checked at machine construction
ENGINE_ENV_VAR = "REPRO_REPLAY_ENGINE"


def _unknown_engine(name: str) -> UnknownEngineError:
    hints = difflib.get_close_matches(name, ENGINES, n=3, cutoff=0.5)
    return UnknownEngineError(name, known=ENGINES, hints=hints)


class ReplayEngine(Protocol):
    """Stage-two contract: replay one wave of traces into stats.

    Engines own whatever cache/DRAM state they need and keep it across
    launches (real GPUs do not flush caches between kernels); the
    machine constructs one engine and reuses it for its lifetime.
    """

    name: str

    def replay_wave(self, traces: List[MemoryTrace],
                    stats: KernelStats) -> None:
        """Charge one wave's memory traffic into ``stats``."""


def resolve_engine_name(config: GPUConfig) -> str:
    """Engine selection: env var beats config; validates the name."""
    name = os.environ.get(ENGINE_ENV_VAR) or config.replay_engine
    if name not in ENGINES:
        raise _unknown_engine(name)
    return name


def make_engine(name: str, config: GPUConfig,
                hierarchy: MemoryHierarchy) -> "ReplayEngine":
    """Construct the named engine against one machine's hierarchy/config."""
    if name == "reference":
        return ReferenceEngine(hierarchy)
    if name == "vector":
        return VectorEngine(config)
    if name == "fused":
        return FusedEngine(config)
    raise _unknown_engine(name)


# ----------------------------------------------------------------------
# reference engine
# ----------------------------------------------------------------------
class ReferenceEngine:
    """The executable specification: dict-based caches, access at a time."""

    name = "reference"

    def __init__(self, hierarchy: MemoryHierarchy):
        self.hierarchy = hierarchy

    def replay_wave(self, traces: List[MemoryTrace],
                    stats: KernelStats) -> None:
        hier = self.hierarchy
        cursors = [0] * len(traces)
        remaining = sum(t.n_accesses for t in traces)
        while remaining:
            for i, t in enumerate(traces):
                c = cursors[i]
                if c >= t.n_accesses:
                    continue
                cursors[i] = c + 1
                remaining -= 1
                s = t.txn_start[c]
                e = s + t.txn_count[c]
                lines = t.line[s:e].tolist()
                masks = t.mask[s:e].tolist()
                sm = t.sm
                role = role_name(int(t.role[c]))
                if t.store[c]:
                    rm0 = hier.dram_row_misses
                    for line, m in zip(lines, masks):
                        hier.store(sm, line, m)
                    stats.dram_row_misses += hier.dram_row_misses - rm0
                    continue
                for line, m in zip(lines, masks):
                    n_sec = int(POPCOUNT4[m])
                    rm0 = hier.dram_row_misses
                    l1_hits, l2_hits, dram = hier.load(sm, line, m)
                    stats.l1_accesses += n_sec
                    stats.l1_hits += l1_hits
                    stats.l2_accesses += n_sec - l1_hits
                    stats.l2_hits += l2_hits
                    stats.dram_accesses += dram
                    stats.dram_row_misses += hier.dram_row_misses - rm0
                    stats.add_role_levels(role, l1_hits, l2_hits, dram)


# ----------------------------------------------------------------------
# vector engine
# ----------------------------------------------------------------------
_POP = POPCOUNT4.tolist()


class VectorEngine:
    """Array-flattened replay with packed-integer cache cores."""

    name = "vector"

    def __init__(self, config: GPUConfig):
        self.config = config
        g1, g2 = config.l1, config.l2
        self.num_sms = config.num_sms
        self._l1_line_bytes = g1.line_bytes
        self._l1_nsets = g1.num_sets
        self._l1_assoc = g1.assoc
        self._l2_line_bytes = g2.line_bytes
        self._l2_nsets = g2.num_sets
        self._l2_assoc = g2.assoc
        # per-SM L1s: one dict per set, tag -> (lru << 4) | sector_mask
        self._l1 = [
            [dict() for _ in range(self._l1_nsets)]
            for _ in range(self.num_sms)
        ]
        self._l1_clock = [0] * self.num_sms
        self._l2 = [dict() for _ in range(self._l2_nsets)]
        self._l2_clock = 0
        # DRAM row-buffer state (per bank), as the hierarchy keeps it
        self._row_bytes = config.dram_row_bytes
        self._num_banks = config.dram_num_banks
        self._open_rows = {}
        self.dram_row_hits = 0

    # ------------------------------------------------------------------
    def replay_wave(self, traces: List[MemoryTrace],
                    stats: KernelStats) -> None:
        flat = flatten_wave(traces)
        if flat is None:
            return
        line, mask, sm, store, role, nsec = flat
        n = len(line)

        # batched set/tag decomposition for both levels
        l1_line_no = (line // np.uint64(self._l1_line_bytes)).astype(np.int64)
        l1_set = l1_line_no % self._l1_nsets
        l1_tag = l1_line_no // self._l1_nsets
        l2_line_no = (line // np.uint64(self._l2_line_bytes)).astype(np.int64)
        l2_set = l2_line_no % self._l2_nsets
        l2_tag = l2_line_no // self._l2_nsets

        # python-int views for the sequential core
        mask_l = mask.tolist()
        nsec_l = nsec.tolist()
        sm_l = sm.tolist()
        store_l = store.tolist()
        l1_set_l = l1_set.tolist()
        l1_tag_l = l1_tag.tolist()
        l2_set_l = l2_set.tolist()
        l2_tag_l = l2_tag.tolist()

        l1h = [0] * n
        l2h = [0] * n
        drm = [0] * n
        # lines whose sectors reached DRAM, in service order (loads and
        # stores interleaved exactly as the reference visits them)
        row_lines: List[int] = []

        l1_banks = self._l1
        l1_clocks = self._l1_clock
        l2_sets = self._l2
        l2_clock = self._l2_clock
        l1_assoc = self._l1_assoc
        l2_assoc = self._l2_assoc
        num_sms = self.num_sms
        pop = _POP

        for i in range(n):
            m = mask_l[i]
            l2_req = m
            if store_l[i]:
                # write-through L1: refresh sectors if present, no clock
                d1 = l1_banks[sm_l[i] % num_sms][l1_set_l[i]]
                t1 = l1_tag_l[i]
                v1 = d1.get(t1)
                if v1 is not None:
                    d1[t1] = v1 | m
            else:
                # L1 load access (allocate)
                d1 = l1_banks[sm_l[i] % num_sms][l1_set_l[i]]
                t1 = l1_tag_l[i]
                smi = sm_l[i] % num_sms
                clk = l1_clocks[smi] + 1
                l1_clocks[smi] = clk
                v1 = d1.get(t1)
                if v1 is not None:
                    cm = v1 & 15
                    miss = m & ~cm
                    d1[t1] = (clk << 4) | cm | m
                else:
                    miss = m
                    if len(d1) >= l1_assoc:
                        del d1[min(d1, key=d1.__getitem__)]
                    d1[t1] = (clk << 4) | m
                l1h[i] = pop[m] - pop[miss]
                if not miss:
                    continue
                l2_req = miss
            # L2 access (allocate) -- l1 misses of loads, all stores
            d2 = l2_sets[l2_set_l[i]]
            t2 = l2_tag_l[i]
            l2_clock += 1
            v2 = d2.get(t2)
            if v2 is not None:
                cm = v2 & 15
                miss2 = l2_req & ~cm
                d2[t2] = (l2_clock << 4) | cm | l2_req
            else:
                miss2 = l2_req
                if len(d2) >= l2_assoc:
                    del d2[min(d2, key=d2.__getitem__)]
                d2[t2] = (l2_clock << 4) | l2_req
            if not store_l[i]:
                l2h[i] = pop[l2_req] - pop[miss2]
                drm[i] = pop[miss2]
            if miss2:
                row_lines.append(i)

        self._l2_clock = l2_clock

        # ------------------------------------------------------------------
        # vectorized DRAM row-buffer accounting over the miss stream
        # ------------------------------------------------------------------
        if row_lines:
            hits, misses = account_rows(
                line[np.asarray(row_lines, dtype=np.int64)],
                self._row_bytes, self._num_banks, self._open_rows,
            )
            stats.dram_row_misses += misses
            self.dram_row_hits += hits

        # ------------------------------------------------------------------
        # bulk counter accumulation
        # ------------------------------------------------------------------
        is_load = ~store
        l1h_a = np.asarray(l1h, dtype=np.int64)
        l2h_a = np.asarray(l2h, dtype=np.int64)
        drm_a = np.asarray(drm, dtype=np.int64)
        l1_acc = int(nsec[is_load].sum())
        l1_hits = int(l1h_a.sum())
        stats.l1_accesses += l1_acc
        stats.l1_hits += l1_hits
        stats.l2_accesses += l1_acc - l1_hits
        stats.l2_hits += int(l2h_a.sum())
        stats.dram_accesses += int(drm_a.sum())

        # per-role L1/L2/DRAM attribution (loads only, like the reference)
        load_roles = role[is_load]
        if len(load_roles):
            minlength = int(load_roles.max()) + 1
            by_l1 = np.bincount(load_roles, weights=l1h_a[is_load],
                                minlength=minlength)
            by_l2 = np.bincount(load_roles, weights=l2h_a[is_load],
                                minlength=minlength)
            by_dr = np.bincount(load_roles, weights=drm_a[is_load],
                                minlength=minlength)
            present = np.bincount(load_roles, minlength=minlength)
            for rid in np.flatnonzero(present).tolist():
                if rid == 0:
                    continue  # role None is never attributed
                stats.add_role_levels(
                    role_name(rid), int(by_l1[rid]), int(by_l2[rid]),
                    int(by_dr[rid]),
                )


# ----------------------------------------------------------------------
# fused engine
# ----------------------------------------------------------------------

#: stop emitting dense rounds once fewer sets than this stay alive; the
#: remaining transactions run through a dict-based tail (python loop),
#: which beats numpy fixed costs at small widths.
ROUND_CUTOFF = 24

#: run-compress a stream only when representatives are at most this
#: fraction of it; near-duplicate-free streams skip the reduceat work.
COMPRESS_THRESHOLD = 0.85

#: spread the 4 sector-mask bits of a transaction into 16-bit lanes of
#: one int64, so a cumulative sum computes four saturating prefix
#: counts at once (each lane counts earlier transactions touching that
#: sector; runs are shorter than 2**15 so lanes cannot overflow).
_SPREAD16 = np.array(
    [sum(((m >> b) & 1) << (16 * b) for b in range(4)) for m in range(16)],
    dtype=np.int64)
#: adding this to a lane-packed count raises lane bit 15 iff lane > 0.
_SAT = np.int64(0x7FFF * (1 + (1 << 16) + (1 << 32) + (1 << 48)))


def _shift_of(x: int):
    """log2(x) when x is a power of two, else None (division fallback)."""
    return x.bit_length() - 1 if x > 0 and (x & (x - 1)) == 0 else None


class _PlanCache:
    """Insertion-ordered plan cache bounded by estimated byte cost.

    Plans hold O(wave) arrays, so a count cap alone could pin gigabytes
    on large waves; eviction is FIFO (oldest wave shape first), which
    matches how fixpoint workloads retire wave shapes.
    """

    def __init__(self, budget_bytes: int):
        self.budget = budget_bytes
        self._d = {}
        self._cost = {}
        self._bytes = 0

    def get(self, key):
        return self._d.get(key)

    def put(self, key, value, cost: int) -> None:
        if key in self._d:
            self._bytes -= self._cost[key]
        self._d[key] = value
        self._cost[key] = cost
        self._bytes += cost
        while self._bytes > self.budget and len(self._d) > 1:
            k = next(iter(self._d))
            if k == key:
                break
            del self._d[k]
            self._bytes -= self._cost.pop(k)

    def __len__(self) -> int:
        return len(self._d)


class FusedEngine:
    """Single-pass vectorized replay with a per-wave-shape plan cache.

    The engine's LRU stamps are flat wave positions rather than the
    clock ticks the other engines use.  Stamps are only ever compared
    within one set of one cache level, and positions are strictly
    monotone in service order there, so every hit/evict decision -- and
    therefore every counter -- is bit-identical to the reference
    (DESIGN.md section 5.10 carries the full argument).

    State lives in four dense tables (``tag``/``val`` per level) of
    shape ``(num_sets, assoc)``; empty ways hold tag -1 / value 0,
    matching the packed dict encoding of :class:`VectorEngine`.
    """

    name = "fused"

    #: byte budgets for the two plan caches (class attrs so tests and
    #: memory-constrained callers can dial them down)
    WAVE_PLAN_BUDGET = 64 << 20
    L2_PLAN_BUDGET = 64 << 20

    def __init__(self, config: GPUConfig):
        self.config = config
        g1, g2 = config.l1, config.l2
        self.num_sms = config.num_sms
        self._l1_line_bytes = g1.line_bytes
        self._l1_nsets = g1.num_sets
        self._l1_assoc = g1.assoc
        self._l2_line_bytes = g2.line_bytes
        self._l2_nsets = g2.num_sets
        self._l2_assoc = g2.assoc
        ns1 = self.num_sms * self._l1_nsets
        self._ns1 = ns1
        self._l1_tag = np.full((ns1, self._l1_assoc), -1, dtype=np.int64)
        self._l1_val = np.zeros((ns1, self._l1_assoc), dtype=np.int64)
        self._l2_tag = np.full((self._l2_nsets, self._l2_assoc), -1,
                               dtype=np.int64)
        self._l2_val = np.zeros((self._l2_nsets, self._l2_assoc),
                                dtype=np.int64)
        self._stamp = 1
        self._row_bytes = config.dram_row_bytes
        self._num_banks = config.dram_num_banks
        self._open_rows = {}
        self.dram_row_hits = 0
        self._l1_lb_sh = _shift_of(g1.line_bytes)
        self._l1_ns_sh = _shift_of(g1.num_sets)
        self._l2_lb_sh = _shift_of(g2.line_bytes)
        self._l2_ns_sh = _shift_of(g2.num_sets)
        self._plans = _PlanCache(self.WAVE_PLAN_BUDGET)
        self._l2_plans = _PlanCache(self.L2_PLAN_BUDGET)
        self._shard_pool = None

    # ------------------------------------------------------------------
    def attach_shard_pool(self, pool) -> None:
        """Route every wave's L1 pass through a worker pool.

        ``pool`` is duck-typed (see ``harness.service.WaveShardPool``):
        it owns ``num_shards`` persistent workers, each holding the L1
        state for its share of the SMs, and runs their build/exec for
        each wave.  Must be attached before the first wave: L1 state is
        partitioned across the workers, so serial and sharded passes
        cannot be mixed within one engine lifetime.
        """
        if self._stamp != 1:
            raise LaunchError(
                "attach_shard_pool: engine has already replayed waves; "
                "L1 state cannot migrate into the pool"
            )
        self._shard_pool = pool
        self._plans = _PlanCache(self.WAVE_PLAN_BUDGET)

    # ------------------------------------------------------------------
    @staticmethod
    def _digest(traces) -> bytes:
        """Plan-cache key: blake2b over the replay-relevant columns."""
        h = hashlib.blake2b(digest_size=16)
        for t in traces:
            if not t.n_accesses:
                continue
            h.update(t.line.tobytes())
            h.update(t.mask.tobytes())
            h.update(t.txn_count.tobytes())
            h.update(t.store.tobytes())
            h.update(t.role.tobytes())
            h.update(t.sm.to_bytes(4, "little"))
        return h.digest()

    # ------------------------------------------------------------------
    @staticmethod
    def _build_plan(skey, tag, req, store, ns, assoc, allocate_all):
        """All state-independent artifacts of one stream at one level.

        ``skey``/``tag``/``req`` are the per-transaction set key, line
        tag and requested sector mask, in service order; ``store`` is
        the per-transaction store flag (None when ``allocate_all``, the
        L2 semantics where stores allocate like loads).  Positions are
        kept *relative* (0..n-1 in service order); exec adds the wave's
        stamp base via a single offset on the packed values, which is
        sound because ``(p + base) << 4 | m == (p << 4 | m) + (base << 4)``.
        """
        n = len(skey)
        if ns <= 32767:
            order = np.argsort(skey.astype(np.int16), kind="stable")
        else:
            order = np.argsort(skey, kind="stable")
        ks = skey[order]
        ts = tag[order]
        ms = req[order].astype(np.int64, copy=False)
        ps = order  # relative positions (the stream is in service order)
        if allocate_all:
            ss = ld = None
        else:
            ss = store[order]
            ld = ~ss

        nb = np.empty(n, dtype=bool)
        nb[0] = True
        np.not_equal(ks[1:], ks[:-1], out=nb[1:])
        tb = nb.copy()
        tb[1:] |= ts[1:] != ts[:-1]
        compressed = False
        rstart = rlen = pm = None
        if tb.sum() <= COMPRESS_THRESHOLD * n:
            # run compression: consecutive same-(set, tag) transactions
            # collapse to one representative access; members recover
            # their outcomes post-hoc from the run's pre-state mask.
            compressed = True
            if allocate_all:
                run_start = tb
            else:
                # L1 write-through: stores before the first load of a
                # run stay singleton runs (they must not allocate)
                tstart = np.flatnonzero(tb)
                tlen = np.diff(np.concatenate([tstart, [n]]))
                idx_in = np.arange(n, dtype=np.int64) - np.repeat(tstart,
                                                                  tlen)
                fl = np.minimum.reduceat(np.where(ld, idx_in, n), tstart)
                run_start = tb | (idx_in <= np.repeat(fl, tlen))
            rstart = np.flatnonzero(run_start)
            rlen = np.diff(np.concatenate([rstart, [n]]))
            rep_key = ks[rstart]
            rep_tag = ts[rstart]
            rep_m = np.bitwise_or.reduceat(ms, rstart)
            if allocate_all:
                rep_pos = ps[rstart + rlen - 1]
                rep_st = None
            else:
                rep_pos = np.maximum.reduceat(np.where(ld, ps, -1), rstart)
                rep_st = ss[rstart]
            R = len(rstart)
            if int(rlen.max()) > 1:
                # member pre-access bits within each run (prefix-OR of
                # earlier members) -- purely structural
                v = _SPREAD16[ms]
                c = np.cumsum(v)
                cv = c - v
                exc = cv - np.repeat(cv[rstart], rlen)
                q = exc + _SAT
                pm = (((q >> 15) & 1) | ((q >> 30) & 2)
                      | ((q >> 45) & 4) | ((q >> 60) & 8))
        else:
            rep_key = ks
            rep_tag = ts
            rep_m = ms
            rep_pos = ps
            rep_st = None if allocate_all else ss
            R = n
        rep_pv_rel = (rep_pos << 4) | rep_m

        # round schedule: group representatives by set; round r serves
        # the r-th representative of every set still alive, so each
        # round is a dense batch of set-distinct accesses
        rnb = np.empty(R, dtype=bool)
        rnb[0] = True
        np.not_equal(rep_key[1:], rep_key[:-1], out=rnb[1:])
        gstart = np.flatnonzero(rnb)
        glen = np.diff(np.concatenate([gstart, [R]]))
        G = len(gstart)

        cnt = np.bincount(glen)
        round_sizes = np.cumsum(cnt[::-1])[::-1][1:]
        sizes_l = round_sizes.tolist()
        n_rounds = len(sizes_l)
        r_cut = 0
        while r_cut < n_rounds and sizes_l[r_cut] >= ROUND_CUTOFF:
            r_cut += 1
        has_tail = r_cut < n_rounds

        plan = {
            "n": n, "R": R, "order": order, "ms": ms,
            "compressed": compressed, "rstart": rstart, "rlen": rlen,
            "pm": pm, "r_cut": r_cut, "has_tail": has_tail, "G": G,
            "assoc": assoc,
            "t_r": None, "pv_r_rel": None, "st_r": None, "m_r": None,
            "st_any": None, "bounds_l": None, "sets_slot": None,
            "arA": None, "oldm_map": None, "in_rounds": None,
            "sk_l": None, "t_l": None, "pv_rel_tail": None, "st_l": None,
            "m_l": None, "uset": None, "tail_sel": None,
        }

        if r_cut > 0:
            # longest groups get the lowest slots so alive groups stay
            # a prefix of the slot range in every round
            rrank = np.arange(R, dtype=np.int64) - np.repeat(gstart, glen)
            g_order = np.argsort(-glen, kind="stable")
            g_slot = np.empty(G, dtype=np.int64)
            g_slot[g_order] = np.arange(G, dtype=np.int64)
            bounds = np.concatenate([[0], np.cumsum(round_sizes)])
            tpos = bounds[rrank] + np.repeat(g_slot, glen)
            bounds_l = bounds.tolist()
            nv = bounds_l[r_cut]
            if has_tail:
                in_rounds = rrank < r_cut
                tpos_r = tpos[in_rounds]
                t_r = np.empty(nv, dtype=np.int64)
                t_r[tpos_r] = rep_tag[in_rounds]
                pv_r = np.empty(nv, dtype=np.int64)
                pv_r[tpos_r] = rep_pv_rel[in_rounds]
                plan["in_rounds"] = in_rounds
                plan["oldm_map"] = tpos_r
            else:
                tpos_r = tpos
                t_r = np.empty(nv, dtype=np.int64)
                t_r[tpos] = rep_tag
                pv_r = np.empty(nv, dtype=np.int64)
                pv_r[tpos] = rep_pv_rel
                plan["oldm_map"] = tpos
            if rep_st is not None and rep_st.any():
                st_r = np.empty(nv, dtype=bool)
                m_r = np.empty(nv, dtype=np.int64)
                if has_tail:
                    st_r[tpos_r] = rep_st[in_rounds]
                    m_r[tpos_r] = rep_m[in_rounds]
                else:
                    st_r[tpos] = rep_st
                    m_r[tpos] = rep_m
                plan["st_r"] = st_r
                plan["m_r"] = m_r
                plan["st_any"] = np.logical_or.reduceat(
                    st_r, bounds[:r_cut]).tolist()
            plan["t_r"] = t_r
            plan["pv_r_rel"] = pv_r
            plan["bounds_l"] = bounds_l
            plan["sets_slot"] = rep_key[gstart][g_order]
            plan["arA"] = np.arange(G, dtype=np.int64) * assoc

        if has_tail:
            # representatives past the round cutoff run through the
            # dict tail, in sorted order (within-set order preserved)
            if r_cut > 0:
                sel = ~plan["in_rounds"]
                plan["tail_sel"] = sel
                sk = rep_key[sel]
                plan["sk_l"] = sk.tolist()
                plan["t_l"] = rep_tag[sel].tolist()
                plan["pv_rel_tail"] = rep_pv_rel[sel]
                if rep_st is not None:
                    plan["st_l"] = rep_st[sel].tolist()
                    plan["m_l"] = rep_m[sel].tolist()
                plan["uset"] = np.unique(sk)
            else:
                plan["sk_l"] = rep_key.tolist()
                plan["t_l"] = rep_tag.tolist()
                plan["pv_rel_tail"] = rep_pv_rel
                if rep_st is not None:
                    plan["st_l"] = rep_st.tolist()
                    plan["m_l"] = rep_m.tolist()
                plan["uset"] = np.unique(rep_key)
        return plan

    # ------------------------------------------------------------------
    @staticmethod
    def _exec_plan(plan, tags_st, vals_st, pos_base):
        """Run the state-dependent part of one stream pass.

        ``tags_st``/``vals_st`` are the level's dense state tables,
        updated in place.  Returns per-transaction ``(hits, residue)``
        in the stream's original service order.
        """
        n = plan["n"]
        R = plan["R"]
        assoc = plan["assoc"]
        r_cut = plan["r_cut"]
        off = np.int64(pos_base) << 4
        oldm_runs = np.empty(R, dtype=np.int64)

        if r_cut > 0:
            bounds_l = plan["bounds_l"]
            t_r = plan["t_r"]
            pv_r = plan["pv_r_rel"] + off
            st_r = plan["st_r"]
            m_r = plan["m_r"]
            st_any = plan["st_any"]
            sets_slot = plan["sets_slot"]
            arA = plan["arA"]
            G = plan["G"]
            nv = bounds_l[r_cut]
            oldm_r = np.empty(nv, dtype=np.int64)
            # gather the touched sets' state once; the extra dummy slot
            # at index G*assoc absorbs scatters for not-updated lanes
            GA = G * assoc
            rtf = np.empty(GA + 1, dtype=np.int64)
            rvf = np.empty(GA + 1, dtype=np.int64)
            rtf[:GA] = tags_st[sets_slot].ravel()
            rvf[:GA] = vals_st[sets_slot].ravel()
            rt = rtf[:GA].reshape(G, assoc)
            rv = rvf[:GA].reshape(G, assoc)

            for r in range(r_cut):
                a, b = bounds_l[r], bounds_l[r + 1]
                k = b - a
                t = t_r[a:b]
                hitw = rt[:k] == t[:, None]
                hit = hitw.any(axis=1)
                # single argmin picks the hit way (forced value -1) or
                # the LRU victim (min packed value >= 0)
                way = np.where(hitw, -1, rv[:k]).argmin(axis=1)
                idx = arA[:k] + way
                old = rvf[idx]
                om = np.where(hit, old & 15, 0)
                oldm_r[a:b] = om
                if st_any is None or not st_any[r]:
                    rvf[idx] = pv_r[a:b] | om
                    rtf[idx] = t
                else:
                    # mixed round: stores refresh-if-present only
                    st = st_r[a:b]
                    lod = ~st
                    upd = lod | hit
                    new_val = np.where(lod, pv_r[a:b] | om, old | m_r[a:b])
                    rvf[np.where(upd, idx, GA)] = new_val
                    rtf[np.where(lod, idx, GA)] = t
            tags_st[sets_slot] = rt
            vals_st[sets_slot] = rv
            if plan["has_tail"]:
                oldm_runs[plan["in_rounds"]] = oldm_r[plan["oldm_map"]]
            else:
                oldm_runs = oldm_r[plan["oldm_map"]]

        if plan["has_tail"]:
            sk_l = plan["sk_l"]
            t_l = plan["t_l"]
            pv_l = (plan["pv_rel_tail"] + off).tolist()
            st_l = plan["st_l"]
            m_l = plan["m_l"]
            uset = plan["uset"]
            ntail = len(sk_l)
            # lift the touched sets into dicts (one batched gather),
            # run the dict core, scatter back
            urows_t = tags_st[uset].tolist()
            urows_v = vals_st[uset].tolist()
            dicts = {}
            for j, si in enumerate(uset.tolist()):
                trow = urows_t[j]
                vrow = urows_v[j]
                dicts[si] = {trow[w]: vrow[w] for w in range(assoc)
                             if trow[w] >= 0}
            om_l = [0] * ntail
            if st_l is None:
                for i in range(ntail):
                    d = dicts[sk_l[i]]
                    t1 = t_l[i]
                    v = d.get(t1)
                    if v is not None:
                        om = v & 15
                    else:
                        om = 0
                        if len(d) >= assoc:
                            del d[min(d, key=d.__getitem__)]
                    d[t1] = pv_l[i] | om
                    om_l[i] = om
            else:
                for i in range(ntail):
                    d = dicts[sk_l[i]]
                    t1 = t_l[i]
                    v = d.get(t1)
                    if st_l[i]:
                        if v is not None:
                            om_l[i] = v & 15
                            d[t1] = v | m_l[i]
                        continue
                    if v is not None:
                        om = v & 15
                    else:
                        om = 0
                        if len(d) >= assoc:
                            del d[min(d, key=d.__getitem__)]
                    d[t1] = pv_l[i] | om
                    om_l[i] = om
            nt = np.full((len(uset), assoc), -1, dtype=np.int64)
            nvv = np.zeros((len(uset), assoc), dtype=np.int64)
            for j, si in enumerate(uset.tolist()):
                d = dicts[si]
                if d:
                    nt[j, :len(d)] = list(d.keys())
                    nvv[j, :len(d)] = list(d.values())
            tags_st[uset] = nt
            vals_st[uset] = nvv
            if r_cut > 0:
                oldm_runs[plan["tail_sel"]] = om_l
            else:
                oldm_runs[:] = om_l

        # member finish: each transaction's outcome from its run's
        # pre-state mask OR'd with earlier members' sectors
        ms = plan["ms"]
        if plan["compressed"]:
            cur = np.repeat(oldm_runs, plan["rlen"])
            if plan["pm"] is not None:
                cur |= plan["pm"]
        else:
            cur = oldm_runs
        mo = cur & ms
        h_s = POPCOUNT4[mo]
        res_s = ms ^ mo
        order = plan["order"]
        hits = np.empty(n, dtype=np.int64)
        residue = np.empty(n, dtype=np.int64)
        hits[order] = h_s
        residue[order] = res_s
        return hits, residue

    # ------------------------------------------------------------------
    def _wave_plan(self, traces, dig):
        """Build and cache the state-independent artifacts of one wave."""
        flat = flatten_wave(traces)
        if flat is None:
            self._plans.put(dig, "empty", 64)
            return None
        line, mask, sm, store, role, nsec = flat
        n = len(line)
        if self._l1_lb_sh is not None:
            l1n = (line >> np.uint64(self._l1_lb_sh)).astype(np.int64)
        else:
            l1n = (line // np.uint64(self._l1_line_bytes)).astype(np.int64)
        if self._l1_ns_sh is not None:
            l1_key = (sm % self.num_sms) * self._l1_nsets + \
                (l1n & (self._l1_nsets - 1))
            l1_tag = l1n >> self._l1_ns_sh
        else:
            l1_key = (sm % self.num_sms) * self._l1_nsets + \
                (l1n % self._l1_nsets)
            l1_tag = l1n // self._l1_nsets
        req = mask.astype(np.int64)
        pool = self._shard_pool
        if pool is None:
            l1 = self._build_plan(l1_key, l1_tag, req, store, self._ns1,
                                  self._l1_assoc, allocate_all=False)
            shards = None
        else:
            # partition the stream by owning SM shard; each worker
            # builds/executes the plan for its own subset
            l1 = None
            nsh = pool.num_shards
            sh = (sm % self.num_sms) % nsh
            shards = []
            for s in range(nsh):
                idx_s = np.flatnonzero(sh == s)
                shards.append((idx_s, l1_key[idx_s], l1_tag[idx_s],
                               req[idx_s], store[idx_s]))
        is_load = ~store
        load_roles = role[is_load]
        minlength = int(load_roles.max()) + 1 if len(load_roles) else 0
        plan = {
            "l1": l1, "l1_shards": shards, "n": n, "line": line,
            "store": store, "req": req, "role": role, "is_load": is_load,
            "load_roles": load_roles, "minlength": minlength,
            "l1_acc": int(nsec[is_load].sum()),
            "present": (np.bincount(load_roles, minlength=minlength)
                        if minlength else None),
        }
        self._plans.put(dig, plan, 40 * 8 * n)
        return plan

    def _l2_plan(self, plan, idx2, l1_res):
        """L2 stream plan; a function of wave content plus L1 residues."""
        line2 = plan["line"][idx2]
        store = plan["store"]
        l2_req = np.where(store[idx2], plan["req"][idx2], l1_res[idx2])
        if self._l2_lb_sh is not None:
            l2n = (line2 >> np.uint64(self._l2_lb_sh)).astype(np.int64)
        else:
            l2n = (line2 // np.uint64(self._l2_line_bytes)).astype(np.int64)
        if self._l2_ns_sh is not None:
            l2_key = l2n & (self._l2_nsets - 1)
            l2_tag = l2n >> self._l2_ns_sh
        else:
            l2_key = l2n % self._l2_nsets
            l2_tag = l2n // self._l2_nsets
        p = self._build_plan(l2_key, l2_tag, l2_req, None, self._l2_nsets,
                             self._l2_assoc, allocate_all=True)
        ld2 = plan["is_load"][idx2]
        return {"p": p, "line2": line2, "ld2": ld2,
                "roles2l": plan["role"][idx2][ld2]}

    # ------------------------------------------------------------------
    def replay_wave(self, traces: List[MemoryTrace],
                    stats: KernelStats) -> None:
        dig = self._digest(traces)
        plan = self._plans.get(dig)
        if plan is None:
            plan = self._wave_plan(traces, dig)
            if plan is None:
                return
        elif plan == "empty":
            return
        n = plan["n"]
        # reserve a disjoint stamp window for this wave: L1 uses
        # base..base+n-1 (relative positions), L2 uses base+n+1..base+2n
        base = self._stamp
        self._stamp = base + 2 * n + 2

        if plan["l1_shards"] is not None:
            l1h, l1_res = self._shard_pool.run_l1(plan["l1_shards"], dig,
                                                  base, n)
        else:
            l1h, l1_res = self._exec_plan(plan["l1"], self._l1_tag,
                                          self._l1_val, base)
        store = plan["store"]
        is_load = plan["is_load"]
        go_l2 = store | (l1_res != 0)
        idx2 = np.flatnonzero(go_l2)
        stats_l2_hits = 0
        stats_dram = 0
        by_l2 = by_dr = None
        minlength = plan["minlength"]
        if len(idx2):
            rh = hashlib.blake2b(l1_res.tobytes(), digest_size=16).digest()
            l2key = (dig, rh)
            l2p = self._l2_plans.get(l2key)
            if l2p is None:
                l2p = self._l2_plan(plan, idx2, l1_res)
                self._l2_plans.put(l2key, l2p, 24 * 8 * len(idx2))
            h2, r2 = self._exec_plan(l2p["p"], self._l2_tag, self._l2_val,
                                     base + n + 1)
            ld2 = l2p["ld2"]
            drm2 = POPCOUNT4[r2]
            h2l = h2[ld2]
            drm2l = drm2[ld2]
            stats_l2_hits = int(h2l.sum())
            stats_dram = int(drm2l.sum())
            rsel = r2 != 0
            if rsel.any():
                hits_, misses = account_rows(l2p["line2"][rsel],
                                             self._row_bytes,
                                             self._num_banks,
                                             self._open_rows)
                stats.dram_row_misses += misses
                self.dram_row_hits += hits_
            if minlength:
                roles2l = l2p["roles2l"]
                by_l2 = np.bincount(roles2l, weights=h2l,
                                    minlength=minlength)
                by_dr = np.bincount(roles2l, weights=drm2l,
                                    minlength=minlength)

        l1h_l = l1h[is_load]
        l1_acc = plan["l1_acc"]
        l1_hits = int(l1h_l.sum())
        stats.l1_accesses += l1_acc
        stats.l1_hits += l1_hits
        stats.l2_accesses += l1_acc - l1_hits
        stats.l2_hits += stats_l2_hits
        stats.dram_accesses += stats_dram

        if minlength:
            by_l1 = np.bincount(plan["load_roles"], weights=l1h_l,
                                minlength=minlength)
            if by_l2 is None:
                by_l2 = by_dr = np.zeros(minlength)
            for rid in np.flatnonzero(plan["present"]).tolist():
                if rid == 0:
                    continue  # role None is never attributed
                stats.add_role_levels(
                    role_name(rid), int(by_l1[rid]), int(by_l2[rid]),
                    int(by_dr[rid]),
                )
