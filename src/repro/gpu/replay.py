"""Pluggable replay engines: stage two of the capture -> replay pipeline.

A :class:`ReplayEngine` consumes one wave of :class:`MemoryTrace`
records (see :mod:`repro.gpu.trace`) and charges their cache/DRAM
effects into a :class:`KernelStats`.  Two implementations are kept and
cross-validated against each other (``tests/test_replay_engines.py``
asserts bit-identical counters):

``ReferenceEngine``
    the historical semantics, verbatim: the dict-based
    :class:`~repro.gpu.cache.SectoredCache` hierarchy driven one
    transaction at a time in the wave's round-robin interleave.  This
    is the executable specification.

``VectorEngine``
    the fast engine.  The wave is flattened into struct-of-arrays form
    up front (``trace.flatten_wave``): interleave scheduling, set/tag
    decomposition, sector popcounts and per-role attribution are all
    batched numpy work, and DRAM row-buffer accounting is vectorized
    per bank after the fact.  Only the inherently order-dependent cache
    state transitions remain sequential, and those run as a tight loop
    over packed integers -- each line is one dict entry holding
    ``(lru_stamp << 4) | sector_mask``, so probe/refresh/evict are a
    couple of int ops.  LRU stamps are unique per set (the clock ticks
    every access), which makes packed-value ordering identical to LRU
    ordering and eviction bit-compatible with the reference.

Engine choice comes from ``GPUConfig.replay_engine`` and can be forced
globally with the ``REPRO_REPLAY_ENGINE`` environment variable.
"""
from __future__ import annotations

import os
from typing import List, Protocol

import numpy as np

from ..errors import LaunchError
from .cache import MemoryHierarchy
from .config import GPUConfig
from .dram import account_rows
from .stats import KernelStats
from .trace import MemoryTrace, POPCOUNT4, flatten_wave, role_name

#: engine names accepted by GPUConfig.replay_engine / REPRO_REPLAY_ENGINE
ENGINES = ("reference", "vector")

#: environment override checked at machine construction
ENGINE_ENV_VAR = "REPRO_REPLAY_ENGINE"


class ReplayEngine(Protocol):
    """Stage-two contract: replay one wave of traces into stats.

    Engines own whatever cache/DRAM state they need and keep it across
    launches (real GPUs do not flush caches between kernels); the
    machine constructs one engine and reuses it for its lifetime.
    """

    name: str

    def replay_wave(self, traces: List[MemoryTrace],
                    stats: KernelStats) -> None:
        """Charge one wave's memory traffic into ``stats``."""


def resolve_engine_name(config: GPUConfig) -> str:
    """Engine selection: env var beats config; validates the name."""
    name = os.environ.get(ENGINE_ENV_VAR) or config.replay_engine
    if name not in ENGINES:
        raise LaunchError(
            f"unknown replay engine {name!r}; expected one of {ENGINES}"
        )
    return name


def make_engine(name: str, config: GPUConfig,
                hierarchy: MemoryHierarchy) -> "ReplayEngine":
    """Construct the named engine against one machine's hierarchy/config."""
    if name == "reference":
        return ReferenceEngine(hierarchy)
    if name == "vector":
        return VectorEngine(config)
    raise LaunchError(
        f"unknown replay engine {name!r}; expected one of {ENGINES}"
    )


# ----------------------------------------------------------------------
# reference engine
# ----------------------------------------------------------------------
class ReferenceEngine:
    """The executable specification: dict-based caches, access at a time."""

    name = "reference"

    def __init__(self, hierarchy: MemoryHierarchy):
        self.hierarchy = hierarchy

    def replay_wave(self, traces: List[MemoryTrace],
                    stats: KernelStats) -> None:
        hier = self.hierarchy
        cursors = [0] * len(traces)
        remaining = sum(t.n_accesses for t in traces)
        while remaining:
            for i, t in enumerate(traces):
                c = cursors[i]
                if c >= t.n_accesses:
                    continue
                cursors[i] = c + 1
                remaining -= 1
                s = t.txn_start[c]
                e = s + t.txn_count[c]
                lines = t.line[s:e].tolist()
                masks = t.mask[s:e].tolist()
                sm = t.sm
                role = role_name(int(t.role[c]))
                if t.store[c]:
                    rm0 = hier.dram_row_misses
                    for line, m in zip(lines, masks):
                        hier.store(sm, line, m)
                    stats.dram_row_misses += hier.dram_row_misses - rm0
                    continue
                for line, m in zip(lines, masks):
                    n_sec = int(POPCOUNT4[m])
                    rm0 = hier.dram_row_misses
                    l1_hits, l2_hits, dram = hier.load(sm, line, m)
                    stats.l1_accesses += n_sec
                    stats.l1_hits += l1_hits
                    stats.l2_accesses += n_sec - l1_hits
                    stats.l2_hits += l2_hits
                    stats.dram_accesses += dram
                    stats.dram_row_misses += hier.dram_row_misses - rm0
                    stats.add_role_levels(role, l1_hits, l2_hits, dram)


# ----------------------------------------------------------------------
# vector engine
# ----------------------------------------------------------------------
_POP = POPCOUNT4.tolist()


class VectorEngine:
    """Array-flattened replay with packed-integer cache cores."""

    name = "vector"

    def __init__(self, config: GPUConfig):
        self.config = config
        g1, g2 = config.l1, config.l2
        self.num_sms = config.num_sms
        self._l1_line_bytes = g1.line_bytes
        self._l1_nsets = g1.num_sets
        self._l1_assoc = g1.assoc
        self._l2_line_bytes = g2.line_bytes
        self._l2_nsets = g2.num_sets
        self._l2_assoc = g2.assoc
        # per-SM L1s: one dict per set, tag -> (lru << 4) | sector_mask
        self._l1 = [
            [dict() for _ in range(self._l1_nsets)]
            for _ in range(self.num_sms)
        ]
        self._l1_clock = [0] * self.num_sms
        self._l2 = [dict() for _ in range(self._l2_nsets)]
        self._l2_clock = 0
        # DRAM row-buffer state (per bank), as the hierarchy keeps it
        self._row_bytes = config.dram_row_bytes
        self._num_banks = config.dram_num_banks
        self._open_rows = {}
        self.dram_row_hits = 0

    # ------------------------------------------------------------------
    def replay_wave(self, traces: List[MemoryTrace],
                    stats: KernelStats) -> None:
        flat = flatten_wave(traces)
        if flat is None:
            return
        line, mask, sm, store, role, nsec = flat
        n = len(line)

        # batched set/tag decomposition for both levels
        l1_line_no = (line // np.uint64(self._l1_line_bytes)).astype(np.int64)
        l1_set = l1_line_no % self._l1_nsets
        l1_tag = l1_line_no // self._l1_nsets
        l2_line_no = (line // np.uint64(self._l2_line_bytes)).astype(np.int64)
        l2_set = l2_line_no % self._l2_nsets
        l2_tag = l2_line_no // self._l2_nsets

        # python-int views for the sequential core
        mask_l = mask.tolist()
        nsec_l = nsec.tolist()
        sm_l = sm.tolist()
        store_l = store.tolist()
        l1_set_l = l1_set.tolist()
        l1_tag_l = l1_tag.tolist()
        l2_set_l = l2_set.tolist()
        l2_tag_l = l2_tag.tolist()

        l1h = [0] * n
        l2h = [0] * n
        drm = [0] * n
        # lines whose sectors reached DRAM, in service order (loads and
        # stores interleaved exactly as the reference visits them)
        row_lines: List[int] = []

        l1_banks = self._l1
        l1_clocks = self._l1_clock
        l2_sets = self._l2
        l2_clock = self._l2_clock
        l1_assoc = self._l1_assoc
        l2_assoc = self._l2_assoc
        num_sms = self.num_sms
        pop = _POP

        for i in range(n):
            m = mask_l[i]
            l2_req = m
            if store_l[i]:
                # write-through L1: refresh sectors if present, no clock
                d1 = l1_banks[sm_l[i] % num_sms][l1_set_l[i]]
                t1 = l1_tag_l[i]
                v1 = d1.get(t1)
                if v1 is not None:
                    d1[t1] = v1 | m
            else:
                # L1 load access (allocate)
                d1 = l1_banks[sm_l[i] % num_sms][l1_set_l[i]]
                t1 = l1_tag_l[i]
                smi = sm_l[i] % num_sms
                clk = l1_clocks[smi] + 1
                l1_clocks[smi] = clk
                v1 = d1.get(t1)
                if v1 is not None:
                    cm = v1 & 15
                    miss = m & ~cm
                    d1[t1] = (clk << 4) | cm | m
                else:
                    miss = m
                    if len(d1) >= l1_assoc:
                        del d1[min(d1, key=d1.__getitem__)]
                    d1[t1] = (clk << 4) | m
                l1h[i] = pop[m] - pop[miss]
                if not miss:
                    continue
                l2_req = miss
            # L2 access (allocate) -- l1 misses of loads, all stores
            d2 = l2_sets[l2_set_l[i]]
            t2 = l2_tag_l[i]
            l2_clock += 1
            v2 = d2.get(t2)
            if v2 is not None:
                cm = v2 & 15
                miss2 = l2_req & ~cm
                d2[t2] = (l2_clock << 4) | cm | l2_req
            else:
                miss2 = l2_req
                if len(d2) >= l2_assoc:
                    del d2[min(d2, key=d2.__getitem__)]
                d2[t2] = (l2_clock << 4) | l2_req
            if not store_l[i]:
                l2h[i] = pop[l2_req] - pop[miss2]
                drm[i] = pop[miss2]
            if miss2:
                row_lines.append(i)

        self._l2_clock = l2_clock

        # ------------------------------------------------------------------
        # vectorized DRAM row-buffer accounting over the miss stream
        # ------------------------------------------------------------------
        if row_lines:
            hits, misses = account_rows(
                line[np.asarray(row_lines, dtype=np.int64)],
                self._row_bytes, self._num_banks, self._open_rows,
            )
            stats.dram_row_misses += misses
            self.dram_row_hits += hits

        # ------------------------------------------------------------------
        # bulk counter accumulation
        # ------------------------------------------------------------------
        is_load = ~store
        l1h_a = np.asarray(l1h, dtype=np.int64)
        l2h_a = np.asarray(l2h, dtype=np.int64)
        drm_a = np.asarray(drm, dtype=np.int64)
        l1_acc = int(nsec[is_load].sum())
        l1_hits = int(l1h_a.sum())
        stats.l1_accesses += l1_acc
        stats.l1_hits += l1_hits
        stats.l2_accesses += l1_acc - l1_hits
        stats.l2_hits += int(l2h_a.sum())
        stats.dram_accesses += int(drm_a.sum())

        # per-role L1/L2/DRAM attribution (loads only, like the reference)
        load_roles = role[is_load]
        if len(load_roles):
            minlength = int(load_roles.max()) + 1
            by_l1 = np.bincount(load_roles, weights=l1h_a[is_load],
                                minlength=minlength)
            by_l2 = np.bincount(load_roles, weights=l2h_a[is_load],
                                minlength=minlength)
            by_dr = np.bincount(load_roles, weights=drm_a[is_load],
                                minlength=minlength)
            present = np.bincount(load_roles, minlength=minlength)
            for rid in np.flatnonzero(present).tolist():
                if rid == 0:
                    continue  # role None is never attributed
                stats.add_role_levels(
                    role_name(rid), int(by_l1[rid]), int(by_l2[rid]),
                    int(by_dr[rid]),
                )
