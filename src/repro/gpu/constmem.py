"""Constant memory and the per-kernel virtual-function indirection.

GPUs do not share code across kernels, so the same virtual function
has a different instruction address in every kernel.  CUDA therefore
adds a layer of indirection (paper section 2): the global vTable entry
(operation B) yields an *offset into constant memory*, and a per-kernel
constant-memory table maps that offset to the function's address in
the running kernel's instruction memory.

The paper omits this load from Figure 1 because the table is small and
"fits in the dedicated constant memory cache and we did not observe it
to be a bottleneck."  We model it anyway -- a per-SM constant cache in
front of a per-kernel table -- so that claim is *checkable* (see
``benchmarks/test_ablation_constmem.py``): the constant load costs one
warp instruction per call and all but its first accesses hit.

Concord needs no per-kernel table (its call targets are direct), which
is part of its code-size-for-flexibility trade.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ConstantCacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class ConstantMemory:
    """Per-kernel constant tables plus a tiny per-SM constant cache.

    The cache is modelled at entry granularity: the first access to a
    (kernel, entry) pair on an SM misses; later ones hit.  Entry count
    is bounded; a full cache evicts nothing in practice because the
    tables are tiny (the point the paper makes).
    """

    #: entries one SM's constant cache holds (2KiB / 8B, V100-like)
    CACHE_ENTRIES = 256

    def __init__(self, num_sms: int):
        self.num_sms = num_sms
        self.stats = ConstantCacheStats()
        self._resident: Dict[int, set] = {sm: set() for sm in range(num_sms)}
        self._kernel_epoch = 0

    # ------------------------------------------------------------------
    def begin_kernel(self) -> None:
        """A new kernel binds a new constant table (cold caches)."""
        self._kernel_epoch += 1
        for sm in self._resident:
            self._resident[sm].clear()

    def access(self, sm: int, entry: int) -> bool:
        """One warp-converged constant load; returns True on a hit."""
        resident = self._resident[sm % self.num_sms]
        key = entry % self.CACHE_ENTRIES
        self.stats.accesses += 1
        if key in resident:
            self.stats.hits += 1
            return True
        resident.add(key)
        return False

    def reset_stats(self) -> None:
        self.stats = ConstantCacheStats()
