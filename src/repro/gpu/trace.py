"""The memory-trace intermediate representation of the two-stage pipeline.

Execution is split into *capture* and *replay*: warps run functionally
and append their post-coalescing memory transactions to a
:class:`MemoryTrace` (one per warp), and a pluggable replay engine
(:mod:`repro.gpu.replay`) later pushes one whole wave of traces through
the cache/DRAM model in the round-robin interleave the simulator has
always used.

The trace is a struct-of-arrays record (DynaSOAr's layout lesson,
applied to the simulator itself): parallel numpy arrays of line
addresses and sector masks at transaction granularity, plus per-access
arrays (transaction count, store flag, role id) that preserve the
access boundaries the wave interleave is defined over.  Keeping the IR
columnar makes the replay engines able to batch, and makes a trace
hashable in one pass (the per-launch replay memo in
``repro.harness.runner``).
"""
from __future__ import annotations

from typing import List, Optional

import numpy as np

#: popcount over the 16 possible 4-sector masks (indexable by mask).
POPCOUNT4 = np.array([bin(i).count("1") for i in range(16)], dtype=np.int64)

_EMPTY_U64 = np.empty(0, dtype=np.uint64)
_EMPTY_U8 = np.empty(0, dtype=np.uint8)

# ----------------------------------------------------------------------
# role interning: traces store small integer ids, not strings
# ----------------------------------------------------------------------
_ROLE_IDS = {None: 0}
_ROLE_NAMES: List[Optional[str]] = [None]


def role_id(role: Optional[str]) -> int:
    """Intern a dispatch-role string (None -> 0); process-stable."""
    rid = _ROLE_IDS.get(role)
    if rid is None:
        rid = len(_ROLE_NAMES)
        _ROLE_IDS[role] = rid
        _ROLE_NAMES.append(role)
    return rid


def role_name(rid: int) -> Optional[str]:
    """Inverse of :func:`role_id`."""
    return _ROLE_NAMES[rid]


_U64_SECTOR = np.uint64(32)
_U64_SPL = np.uint64(4)          # sectors per 128B line
_U64_LINE = np.uint64(128)
#: single-sector bit per in-line sector index
_BIT4 = np.array([1, 2, 4, 8], dtype=np.uint8)


class MemoryTrace:
    """One warp's charged memory accesses, in program order.

    Capture is cheap on purpose: each access appends its lanes' raw
    sector indices (a couple of numpy ops) and coalescing is deferred
    to ``finalize``, which runs ONE segmented sort/dedup pass over the
    whole warp's sectors instead of a ``np.unique`` per access -- the
    batched form of ``coalescing.coalesce``.  Finalize also settles the
    deferred transaction counters (``global_*_transactions`` and
    per-role sector attribution) into the launch's ``KernelStats``;
    totals are identical to charging per access, just accumulated once.

    Frozen columns:

    ``line``/``mask``
        per-transaction 128B line byte-address (uint64) and 4-sector
        bitmask (uint8), in coalescer order (ascending line) within
        each access;
    ``txn_count``/``txn_start``
        per-access transaction counts and exclusive-prefix offsets into
        the transaction arrays (CSR layout);
    ``store``/``role``
        per-access store flag (bool) and interned role id (int16);
    ``sm``
        the SM whose L1 this warp's traffic targets (scalar -- a warp
        never migrates).
    """

    __slots__ = (
        "sm", "line", "mask", "txn_count", "txn_start", "store", "role",
        "_sectors", "_seclens", "_stores", "_roles",
    )

    def __init__(self, sm: int):
        self.sm = sm
        self._sectors: List[np.ndarray] = []
        self._seclens: List[int] = []
        self._stores: List[bool] = []
        self._roles: List[int] = []

    # ------------------------------------------------------------------
    def append_access(self, canonical: np.ndarray, width: int,
                      store: bool, rid: int) -> None:
        """Record one charged access (canonical lane addresses)."""
        a = canonical.astype(np.uint64, copy=False)
        sectors = a // _U64_SECTOR
        if width > 1:
            last = (a + np.uint64(width - 1)) // _U64_SECTOR
            if not (sectors == last).all():
                # accesses straddling a sector boundary touch both
                sectors = np.concatenate([sectors, last])
        self._sectors.append(sectors)
        self._seclens.append(len(sectors))
        self._stores.append(store)
        self._roles.append(rid)

    def finalize(self, stats=None) -> "MemoryTrace":
        """Coalesce the capture buffers into columnar arrays.

        When ``stats`` is given, also credits the deferred transaction
        counters (sector totals per access, split by store flag and
        role) -- the batched equivalent of what the executor used to do
        per access.
        """
        n_acc = len(self._seclens)
        self.store = np.asarray(self._stores, dtype=bool)
        self.role = np.asarray(self._roles, dtype=np.int16)
        total = sum(self._seclens)
        if total == 0:
            self.line = _EMPTY_U64
            self.mask = _EMPTY_U8
            self.txn_count = np.zeros(n_acc, dtype=np.int64)
            self.txn_start = np.zeros(n_acc, dtype=np.int64)
            self._sectors = None
            self._seclens = self._stores = self._roles = None
            return self

        sectors = np.concatenate(self._sectors)
        lens = np.asarray(self._seclens, dtype=np.int64)
        acc = np.repeat(np.arange(n_acc, dtype=np.int64), lens)
        # sort sectors within each access (acc is the primary key and
        # already sorted, so the permuted acc column equals acc itself)
        s_sorted = sectors[np.lexsort((sectors, acc))]
        keep = np.empty(total, dtype=bool)
        keep[0] = True
        keep[1:] = (s_sorted[1:] != s_sorted[:-1]) | (acc[1:] != acc[:-1])
        sec_u = s_sorted[keep]
        acc_u = acc[keep]

        line_of = sec_u // _U64_SPL
        new_txn = np.empty(len(sec_u), dtype=bool)
        new_txn[0] = True
        new_txn[1:] = (line_of[1:] != line_of[:-1]) | (acc_u[1:] != acc_u[:-1])
        starts = np.flatnonzero(new_txn)
        self.line = line_of[starts] * _U64_LINE
        bits = _BIT4[(sec_u % _U64_SPL).astype(np.intp)]
        self.mask = np.bitwise_or.reduceat(bits, starts)
        self.txn_count = np.bincount(acc_u[starts], minlength=n_acc)
        self.txn_start = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(self.txn_count)]
        )[:-1]

        if stats is not None:
            sec_per_acc = np.bincount(acc_u, minlength=n_acc)
            st = self.store
            gst = int(sec_per_acc[st].sum())
            stats.global_store_transactions += gst
            stats.global_load_transactions += int(sec_per_acc.sum()) - gst
            load_roles = self.role[~st]
            if len(load_roles) and load_roles.max() > 0:
                by_role = np.bincount(load_roles, weights=sec_per_acc[~st])
                for rid in range(1, len(by_role)):
                    n = int(by_role[rid])
                    if n:
                        stats.add_role_transactions(role_name(rid), n)

        self._sectors = None
        self._seclens = self._stores = self._roles = None
        return self

    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, sm: int, line, mask, txn_count, txn_start,
                     store, role) -> "MemoryTrace":
        """Rehydrate a finalized trace from its frozen columns.

        The arrays are adopted as-is (no copies, no dtype conversion);
        this is the constructor the zero-copy trace store decodes into,
        so read-only views over a mapped file are acceptable.
        """
        t = cls(sm)
        t.line = line
        t.mask = mask
        t.txn_count = txn_count
        t.txn_start = txn_start
        t.store = store
        t.role = role
        t._sectors = None
        t._seclens = t._stores = t._roles = None
        return t

    # ------------------------------------------------------------------
    @property
    def n_accesses(self) -> int:
        return len(self.txn_count)

    @property
    def n_txns(self) -> int:
        return len(self.line)

    def total_sectors(self) -> int:
        """Sector transactions across the whole trace."""
        return int(POPCOUNT4[self.mask].sum()) if self.n_txns else 0

    def digest_into(self, h) -> None:
        """Feed the trace's replay-relevant content into a hash object.

        Replay counters are a pure function of (line, mask, store, role,
        sm, access boundaries) plus the engine's prior state, so this is
        exactly the validator the launch memo chains over.
        """
        h.update(int(self.sm).to_bytes(4, "little"))
        h.update(int(self.n_accesses).to_bytes(8, "little"))
        h.update(self.line.tobytes())
        h.update(self.mask.tobytes())
        h.update(self.txn_count.tobytes())
        h.update(self.store.tobytes())
        h.update(self.role.tobytes())


def flatten_wave(traces: List[MemoryTrace]):
    """Expand one wave of traces into flat per-transaction arrays in the
    round-robin replay order.

    The wave interleave services access ``r`` of every warp (in warp
    order) before access ``r+1`` of any warp -- the invariant DESIGN.md
    section 5 calls load-bearing.  Returns ``None`` when the wave did no
    memory work, else a tuple of per-transaction arrays
    ``(line, mask, sm, store, role, nsec)`` ordered exactly as the
    reference replay would visit them.
    """
    live = [t for t in traces if t.n_accesses]
    if not live:
        return None
    n_acc = np.array([t.n_accesses for t in live], dtype=np.int64)
    total_acc = int(n_acc.sum())
    # per-access columns, concatenated in warp order; the access index
    # within each warp is a repeat/arange difference, not per-trace
    # aranges (this function is on the fused engine's warm path)
    acc_base = np.concatenate([[0], np.cumsum(n_acc)])[:-1]
    idx_within = np.arange(total_acc, dtype=np.int64) - np.repeat(
        acc_base, n_acc)
    counts = np.concatenate([t.txn_count for t in live])
    txn_base = np.concatenate(
        [[0], np.cumsum(np.array([t.n_txns for t in live], dtype=np.int64))]
    )[:-1]
    starts = np.concatenate([t.txn_start for t in live])
    starts = starts + np.repeat(txn_base, n_acc)
    stores = np.concatenate([t.store for t in live])
    roles = np.concatenate([t.role for t in live])
    sms = np.repeat(np.array([t.sm for t in live], dtype=np.int64), n_acc)
    line_all = np.concatenate([t.line for t in live])
    mask_all = np.concatenate([t.mask for t in live])

    # round-robin: sort by access index, stable within (preserves warp
    # order for equal rounds); int16 keys take numpy's radix path when
    # the deepest warp allows it
    if int(n_acc.max()) <= 32767:
        order = np.argsort(idx_within.astype(np.int16), kind="stable")
    else:
        order = np.argsort(idx_within, kind="stable")
    counts_o = counts[order]

    # CSR expansion: transaction gather index per interleaved access
    total = int(counts_o.sum())
    if total == 0:
        return None
    ends = np.cumsum(counts_o)
    offs = ends - counts_o
    gidx = np.arange(total, dtype=np.int64) + np.repeat(
        starts[order] - offs, counts_o)
    line = line_all[gidx]
    mask = mask_all[gidx]
    sm = np.repeat(sms[order], counts_o)
    store = np.repeat(stores[order], counts_o)
    role = np.repeat(roles[order], counts_o)
    nsec = POPCOUNT4[mask]
    return line, mask, sm, store, role, nsec


# ----------------------------------------------------------------------
# zero-copy wave encoding (the trace store's on-disk format)
# ----------------------------------------------------------------------

#: bump when the blob layout below changes; decoders reject mismatches.
TRACE_ENCODING_VERSION = 1

_TRACE_MAGIC = b"RTRC"
_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _pad8(n: int) -> int:
    return (-n) % 8


def encode_wave(traces: List[MemoryTrace]) -> bytes:
    """Serialize one wave of finalized traces into a flat binary blob.

    Layout (little-endian, every column 8-byte aligned so mapped reads
    can view it in place):

    ``RTRC`` magic, u32 version, u64 trace count; then per trace a
    24-byte header (``sm``, ``n_accesses``, ``n_txns`` as i64) followed
    by the columns: ``line`` delta-encoded as i64 (first element
    absolute, the rest wrapping uint64 differences -- graph traces walk
    mostly-adjacent lines, so deltas keep the blob byte-entropy low for
    filesystem compression), ``mask`` u8, ``txn_count`` i64, ``store``
    u8 and ``role`` i16, each padded to the next 8-byte boundary.
    ``txn_start`` is not stored; it is a prefix sum of ``txn_count``.
    """
    out = bytearray()
    out += _TRACE_MAGIC
    out += TRACE_ENCODING_VERSION.to_bytes(4, "little")
    out += len(traces).to_bytes(8, "little")
    for t in traces:
        n_txn = t.n_txns
        out += int(t.sm).to_bytes(8, "little", signed=True)
        out += int(t.n_accesses).to_bytes(8, "little")
        out += int(n_txn).to_bytes(8, "little")
        if n_txn:
            delta = np.empty(n_txn, dtype=np.uint64)
            delta[0] = t.line[0]
            np.subtract(t.line[1:], t.line[:-1], out=delta[1:])
            out += delta.tobytes()
            out += t.mask.tobytes()
            out += b"\0" * _pad8(n_txn)
        out += t.txn_count.tobytes()
        out += t.store.tobytes()
        out += b"\0" * _pad8(t.n_accesses)
        out += t.role.astype(np.int16, copy=False).tobytes()
        out += b"\0" * _pad8(2 * t.n_accesses)
    return bytes(out)


def decode_wave(buf, offset: int = 0) -> List[MemoryTrace]:
    """Inverse of :func:`encode_wave`, reading from ``buf`` in place.

    ``buf`` may be any buffer object -- bytes or an ``mmap`` -- and the
    per-access columns come back as views into it (``np.frombuffer``),
    so decoding a mapped bucket copies nothing but the cumulative sums
    that undo the line deltas and rebuild ``txn_start``.
    """
    mv = memoryview(buf)
    o = offset
    if bytes(mv[o:o + 4]) != _TRACE_MAGIC:
        raise ValueError("trace blob: bad magic")
    version = int.from_bytes(mv[o + 4:o + 8], "little")
    if version != TRACE_ENCODING_VERSION:
        raise ValueError(
            f"trace blob: version {version} != {TRACE_ENCODING_VERSION}"
        )
    n_traces = int.from_bytes(mv[o + 8:o + 16], "little")
    o += 16
    traces: List[MemoryTrace] = []
    for _ in range(n_traces):
        sm = int.from_bytes(mv[o:o + 8], "little", signed=True)
        n_acc = int.from_bytes(mv[o + 8:o + 16], "little")
        n_txn = int.from_bytes(mv[o + 16:o + 24], "little")
        o += 24
        if n_txn:
            delta = np.frombuffer(buf, dtype=np.uint64, count=n_txn,
                                  offset=o)
            o += 8 * n_txn
            line = np.cumsum(delta, dtype=np.uint64)
            mask = np.frombuffer(buf, dtype=np.uint8, count=n_txn, offset=o)
            o += n_txn + _pad8(n_txn)
        else:
            line = _EMPTY_U64
            mask = _EMPTY_U8
        if n_acc:
            txn_count = np.frombuffer(buf, dtype=np.int64, count=n_acc,
                                      offset=o)
            o += 8 * n_acc
            store = np.frombuffer(buf, dtype=np.bool_, count=n_acc,
                                  offset=o)
            o += n_acc + _pad8(n_acc)
            role = np.frombuffer(buf, dtype=np.int16, count=n_acc, offset=o)
            o += 2 * n_acc + _pad8(2 * n_acc)
            txn_start = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(txn_count)]
            )[:-1]
        else:
            txn_count = txn_start = _EMPTY_I64
            store = np.empty(0, dtype=bool)
            role = np.empty(0, dtype=np.int16)
        traces.append(MemoryTrace.from_columns(
            sm, line, mask, txn_count, txn_start, store, role))
    return traces
