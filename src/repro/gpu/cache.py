"""Sectored, set-associative cache model (L1 per SM, shared L2).

Volta-style behaviour at the fidelity the paper's counters need:

* 128B lines split into four 32B sectors; a line hit with an absent
  sector is still a miss for that sector (sector fill),
* LRU replacement within a set,
* loads allocate; stores write through without allocating in L1
  (Volta L1 is write-through) but allocate in L2.

The model is functional only -- it classifies each sector access as
hit or miss; the timing model converts level counts into cycles.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .config import CacheGeometry


@dataclass
class _Line:
    sector_mask: int
    lru: int


class SectoredCache:
    """One cache level."""

    def __init__(self, geometry: CacheGeometry, name: str = "cache"):
        self.geometry = geometry
        self.name = name
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(geometry.num_sets)]
        self._clock = 0
        self.accesses = 0          # sector accesses
        self.hits = 0              # sector hits

    # ------------------------------------------------------------------
    def _locate(self, line_addr: int) -> Tuple[Dict[int, _Line], int]:
        line_no = line_addr // self.geometry.line_bytes
        set_idx = line_no % self.geometry.num_sets
        tag = line_no // self.geometry.num_sets
        return self._sets[set_idx], tag

    def access(self, line_addr: int, sector_mask: int, allocate: bool = True) -> int:
        """Access the sectors of one line; returns a bitmask of MISSED sectors.

        ``allocate=False`` models a write-through store that should not
        install the line on a miss.
        """
        self._clock += 1
        cache_set, tag = self._locate(line_addr)
        requested = sector_mask
        n_requested = bin(requested).count("1")
        self.accesses += n_requested

        line = cache_set.get(tag)
        if line is not None:
            line.lru = self._clock
            hit_mask = line.sector_mask & requested
            miss_mask = requested & ~line.sector_mask
            self.hits += bin(hit_mask).count("1")
            if allocate:
                line.sector_mask |= requested
            return miss_mask

        # full line miss
        if allocate:
            if len(cache_set) >= self.geometry.assoc:
                victim = min(cache_set, key=lambda t: cache_set[t].lru)
                del cache_set[victim]
            cache_set[tag] = _Line(sector_mask=requested, lru=self._clock)
        return requested

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Flush all contents (between kernels, if desired)."""
        for s in self._sets:
            s.clear()

    def reset_stats(self) -> None:
        self.accesses = 0
        self.hits = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class MemoryHierarchy:
    """Per-SM L1s in front of one shared L2, in front of DRAM.

    ``sm_of(warp_id)`` decides which L1 a warp's accesses go to; the
    executor assigns warps to SMs round-robin, matching how a real grid
    distributes thread blocks.
    """

    def __init__(self, config, num_sms: int = None):
        self.config = config
        self.num_sms = num_sms if num_sms is not None else config.num_sms
        self.l1s = [
            SectoredCache(config.l1, name=f"L1[{i}]") for i in range(self.num_sms)
        ]
        self.l2 = SectoredCache(config.l2, name="L2")
        self.dram_accesses = 0     # sectors served by DRAM
        # DRAM row-buffer state: per-bank open row
        self._row_bytes = config.dram_row_bytes
        self._num_banks = config.dram_num_banks
        self._open_rows: Dict[int, int] = {}
        self.dram_row_hits = 0
        self.dram_row_misses = 0

    def _dram_access(self, line_addr: int, sectors: int) -> None:
        """Track row-buffer locality for sectors that reach DRAM."""
        self.dram_accesses += sectors
        row = line_addr // self._row_bytes
        bank = row % self._num_banks
        if self._open_rows.get(bank) == row:
            self.dram_row_hits += 1
        else:
            self._open_rows[bank] = row
            self.dram_row_misses += 1

    # ------------------------------------------------------------------
    def load(self, sm: int, line_addr: int, sector_mask: int) -> Tuple[int, int, int]:
        """Service a load transaction; returns (l1_hits, l2_hits, dram) sectors."""
        l1 = self.l1s[sm % self.num_sms]
        n_req = bin(sector_mask).count("1")
        l1_miss_mask = l1.access(line_addr, sector_mask, allocate=True)
        n_l1_miss = bin(l1_miss_mask).count("1")
        l1_hits = n_req - n_l1_miss
        if not l1_miss_mask:
            return l1_hits, 0, 0
        l2_miss_mask = self.l2.access(line_addr, l1_miss_mask, allocate=True)
        n_l2_miss = bin(l2_miss_mask).count("1")
        l2_hits = n_l1_miss - n_l2_miss
        if n_l2_miss:
            self._dram_access(line_addr, n_l2_miss)
        return l1_hits, l2_hits, n_l2_miss

    def store(self, sm: int, line_addr: int, sector_mask: int) -> None:
        """Service a store: write-through L1 (update if present), allocate L2."""
        l1 = self.l1s[sm % self.num_sms]
        cache_set, tag = l1._locate(line_addr)
        line = cache_set.get(tag)
        if line is not None:
            line.sector_mask |= sector_mask  # update-in-place on store hit
        l2_miss_mask = self.l2.access(line_addr, sector_mask, allocate=True)
        # write-allocate in L2; misses still cost DRAM fill traffic
        n_miss = bin(l2_miss_mask).count("1")
        if n_miss:
            self._dram_access(line_addr, n_miss)

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        for l1 in self.l1s:
            l1.invalidate()
        self.l2.invalidate()

    def l1_totals(self) -> Tuple[int, int]:
        """(accesses, hits) summed over all per-SM L1s."""
        return (
            sum(c.accesses for c in self.l1s),
            sum(c.hits for c in self.l1s),
        )

    def reset_stats(self) -> None:
        for l1 in self.l1s:
            l1.reset_stats()
        self.l2.reset_stats()
        self.dram_accesses = 0
        self.dram_row_hits = 0
        self.dram_row_misses = 0
