"""DRAM (HBM2) accounting.

The cache hierarchy already counts the sectors that reach DRAM; this
module adds byte accounting, a simple efficiency report so ablation
benches can show how much of the paper's win is DRAM traffic, and the
vectorized row-buffer pass the :class:`~repro.gpu.replay.VectorEngine`
runs over each wave's DRAM miss stream.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .coalescing import SECTOR_BYTES


def account_rows(
    line_addrs: np.ndarray,
    row_bytes: int,
    num_banks: int,
    open_rows: Dict[int, int],
) -> Tuple[int, int]:
    """Vectorized row-buffer accounting over an ordered DRAM access stream.

    ``line_addrs`` holds the 128B-line byte addresses whose sectors
    reached DRAM, one entry per transaction, in service order.  Banks
    are independent, so each bank's subsequence is compared against its
    own predecessor in one shifted-comparison pass; only the first
    access per bank consults (and the last updates) the persistent
    ``open_rows`` state.  Returns ``(row_hits, row_misses)`` --
    bit-identical to feeding the stream through
    ``MemoryHierarchy._dram_access`` one transaction at a time.
    """
    if len(line_addrs) == 0:
        return 0, 0
    rows = (line_addrs // np.uint64(row_bytes)).astype(np.int64)
    banks = rows % num_banks
    order = np.argsort(banks, kind="stable")
    rb = banks[order]
    rr = rows[order]
    miss = np.empty(len(rr), dtype=bool)
    miss[1:] = rr[1:] != rr[:-1]
    miss[0] = True
    starts = np.flatnonzero(np.concatenate([[True], rb[1:] != rb[:-1]]))
    ends = np.concatenate([starts[1:], [len(rb)]])
    for s, e in zip(starts.tolist(), ends.tolist()):
        bank = int(rb[s])
        miss[s] = open_rows.get(bank) != int(rr[s])
        open_rows[bank] = int(rr[e - 1])
    n_miss = int(np.count_nonzero(miss))
    return len(rr) - n_miss, n_miss


@dataclass
class DRAMModel:
    """Aggregates DRAM traffic for one run."""

    sectors: int = 0

    def add_sectors(self, n: int) -> None:
        self.sectors += n

    @property
    def bytes_transferred(self) -> int:
        return self.sectors * SECTOR_BYTES

    def utilisation(self, cycles: float, sectors_per_cycle: float) -> float:
        """Fraction of peak DRAM bandwidth consumed over ``cycles``."""
        if cycles <= 0:
            return 0.0
        return min(1.0, self.sectors / (cycles * sectors_per_cycle))

    def reset(self) -> None:
        self.sectors = 0
