"""DRAM (HBM2) accounting.

The cache hierarchy already counts the sectors that reach DRAM; this
module adds byte accounting and a simple efficiency report so ablation
benches can show how much of the paper's win is DRAM traffic.
"""
from __future__ import annotations

from dataclasses import dataclass

from .coalescing import SECTOR_BYTES


@dataclass
class DRAMModel:
    """Aggregates DRAM traffic for one run."""

    sectors: int = 0

    def add_sectors(self, n: int) -> None:
        self.sectors += n

    @property
    def bytes_transferred(self) -> int:
        return self.sectors * SECTOR_BYTES

    def utilisation(self, cycles: float, sectors_per_cycle: float) -> float:
        """Fraction of peak DRAM bandwidth consumed over ``cycles``."""
        if cycles <= 0:
            return 0.0
        return min(1.0, self.sectors / (cycles * sectors_per_cycle))

    def reset(self) -> None:
        self.sectors = 0
