"""The SIMT executor: warp-granular functional + cost simulation.

A kernel is a Python callable ``kernel(ctx)`` invoked once per warp.
The :class:`ExecutionContext` exposes the warp's thread ids and the
charged operations a lowered GPU program performs: global loads and
stores (which run through the MMU, the coalescer and the cache
hierarchy against *real* simulated addresses), ALU and control
instructions (counted into the Figure 7 buckets), and -- the heart of
the model -- ``vcall``, which asks the machine's dispatch strategy to
resolve a virtual call per Table 1 and then executes each distinct
target once (SIMT serialization across types).
"""
from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from .. import obs
from ..errors import LaunchConfigError, LaunchError
from ..memory.address_space import strip_tag_array
from ..memory.heap import SCALAR_TYPES
from ..runtime.typesystem import TypeDescriptor
from .isa import (
    InstrClass,
    Opcode,
    ROLE_CONST_INDIRECTION,
    ROLE_DISPATCH_OVERHEAD,
    ROLE_INDIRECT_CALL,
)
from .stats import KernelStats
from .trace import MemoryTrace, role_id

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

WARP_SIZE = 32


def validate_num_threads(num_threads) -> int:
    """Check a launch's thread count before any execution starts.

    Accepts Python and numpy integers (but not bools); anything else,
    and any non-positive count, raises :class:`LaunchConfigError` with
    the offending value in the message.  Returns the count as ``int``.
    """
    if isinstance(num_threads, bool) or not isinstance(
            num_threads, (int, np.integer)):
        raise LaunchConfigError(
            f"num_threads must be an integer, got "
            f"{type(num_threads).__name__} ({num_threads!r})"
        )
    if num_threads <= 0:
        raise LaunchConfigError(
            f"num_threads must be positive, got {num_threads}"
        )
    return int(num_threads)


class ExecutionContext:
    """One warp's view of the machine during a kernel.

    Memory accesses are *charged* immediately (instruction counts,
    transaction counts) but their cache effects are captured in the
    warp's :class:`MemoryTrace` and replayed by the launcher's engine
    interleaved with the other warps resident on the same wave -- real
    warps do not run to completion atomically, and the inter-warp
    interference is exactly what makes the diverged vTable-pointer load
    expensive (section 1).
    """

    __slots__ = ("machine", "warp_id", "sm", "tid", "stats", "trace")

    def __init__(
        self,
        machine: "Machine",
        warp_id: int,
        sm: int,
        tid: np.ndarray,
        stats: KernelStats,
        trace: MemoryTrace = None,
    ):
        self.machine = machine
        self.warp_id = warp_id
        self.sm = sm
        self.tid = tid  # active lanes' global thread ids (dense)
        self.stats = stats
        # the warp's captured memory accesses (stage one of the pipeline)
        self.trace = trace if trace is not None else MemoryTrace(sm)

    # ------------------------------------------------------------------
    @property
    def lane_count(self) -> int:
        return len(self.tid)

    @property
    def heap(self):
        return self.machine.heap

    def subcontext(self, lane_sel: np.ndarray) -> "ExecutionContext":
        """Context for a subset of lanes (SIMT predication/serialization)."""
        return ExecutionContext(
            self.machine, self.warp_id, self.sm, self.tid[lane_sel],
            self.stats, trace=self.trace,
        )

    # ------------------------------------------------------------------
    # instruction charging
    # ------------------------------------------------------------------
    def alu(self, n: int = 1, op: Opcode = Opcode.IADD, role: str = None) -> None:
        """Charge ``n`` warp-wide compute instructions."""
        self.stats.add_instr(op.klass, self.lane_count, role, count=n)

    def ctrl(self, n: int = 1, op: Opcode = Opcode.BRA, role: str = None) -> None:
        """Charge ``n`` warp-wide control instructions."""
        self.stats.add_instr(op.klass, self.lane_count, role, count=n)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def _charge_transactions(
        self, canonical: np.ndarray, width: int, store: bool, role: str
    ) -> None:
        stats = self.stats
        stats.add_instr(InstrClass.MEM, self.lane_count, role)
        tlb = self.machine.tlb
        if tlb is not None:
            stats.tlb_walks += tlb.translate_pages(self.sm, canonical)
        # coalescing and the global_*_transactions / per-role counters
        # are deferred to MemoryTrace.finalize (one batched pass per warp)
        self.trace.append_access(canonical, width, store, role_id(role))

    def load(self, addrs: np.ndarray, dtype: str = "u64", role: str = None,
             width: int = None) -> np.ndarray:
        """Charged global load: MMU translate, coalesce, cache, fetch."""
        a = np.asarray(addrs, dtype=np.uint64)
        canonical = self.machine.mmu.translate(a)
        w = width if width is not None else SCALAR_TYPES[dtype][1]
        self._charge_transactions(canonical, w, store=False, role=role)
        return self.heap.gather(canonical, dtype)

    def store(self, addrs: np.ndarray, dtype: str, values, role: str = None) -> None:
        """Charged global store (write-through)."""
        a = np.asarray(addrs, dtype=np.uint64)
        canonical = self.machine.mmu.translate(a)
        w = SCALAR_TYPES[dtype][1]
        self._charge_transactions(canonical, w, store=True, role=role)
        vals = np.broadcast_to(np.asarray(values), (len(canonical),))
        self.heap.scatter(canonical, dtype, vals)

    def charged_load(self, addrs: np.ndarray, width: int, role: str = None) -> None:
        """Charge a load's cost without fetching (value read via peek)."""
        a = np.asarray(addrs, dtype=np.uint64)
        canonical = self.machine.mmu.translate(a)
        self._charge_transactions(canonical, width, store=False, role=role)

    def atomic(self, addrs: np.ndarray, dtype: str, values, op: str = "add",
               role: str = None) -> None:
        """Charged atomic read-modify-write (atomicAdd / atomicMin / atomicMax).

        Functionally exact under lane conflicts: lanes are applied in
        order, each seeing the previous lane's result -- what the
        hardware's serialised atomic units guarantee.  Charged as one
        memory instruction with store-like traffic.  When every lane
        targets a distinct address there is nothing to serialise, so
        the update runs as one vectorized gather/modify/scatter; the
        ordered per-lane loop is kept only for conflicting lanes.
        """
        a = np.asarray(addrs, dtype=np.uint64)
        canonical = self.machine.mmu.translate(a)
        np_dtype, w = SCALAR_TYPES[dtype]
        self._charge_transactions(canonical, w, store=True, role=role)
        vals = np.broadcast_to(np.asarray(values, dtype=np_dtype),
                               (len(canonical),))
        heap = self.heap
        if op not in ("add", "min", "max"):
            raise ValueError(f"unsupported atomic op {op!r}")
        lanes = canonical.tolist()
        if lanes and len(set(lanes)) == len(lanes):
            old = heap.gather(canonical, dtype)
            if op == "add":
                new = (old + vals).astype(np_dtype, copy=False)
            elif op == "min":
                # np.where, not np.minimum: replicates min(old, v)
                new = np.where(vals < old, vals, old)
            else:
                new = np.where(vals > old, vals, old)
            heap.scatter(canonical, dtype, new)
            return
        for addr, v in zip(canonical, vals):
            old = heap.load(int(addr), dtype)
            if op == "add":
                new = np_dtype(old + v)
            elif op == "min":
                new = min(old, v)
            else:
                new = max(old, v)
            heap.store(int(addr), dtype, new)

    def atomic_field(self, objptrs: np.ndarray, type_desc: TypeDescriptor,
                     field: str, values, op: str = "add",
                     role: str = None) -> None:
        """Atomic RMW on an object member (atomicAdd(&obj->f, v))."""
        layout = self.machine.registry.layout(type_desc)
        addrs = self.machine.allocator.field_addrs(
            self.object_addrs(objptrs), layout, field
        )
        self.atomic(addrs, layout.dtype(field), values, op=op, role=role)

    def peek(self, addrs: np.ndarray, dtype: str = "u64") -> np.ndarray:
        """Uncharged functional read of already-canonical addresses.

        Used by lowering code that charged the access separately (e.g.
        the COAL tree walk charges one 64B load covering four words).
        """
        return self.heap.gather(np.asarray(addrs, dtype=np.uint64), dtype)

    # ------------------------------------------------------------------
    # object member access
    # ------------------------------------------------------------------
    def object_addrs(self, objptrs: np.ndarray) -> np.ndarray:
        """Canonicalise object pointers for a member dereference.

        Under the TypePointer software prototype the compiler inserted
        an AND to clear the tag bits before every member access
        (section 6.3); charge it.  Under the HW variant the MMU strips
        for free, so the (possibly tagged) pointer passes through.
        """
        a = np.asarray(objptrs, dtype=np.uint64)
        if self.machine.strategy.software_mask:
            self.alu(1, op=Opcode.AND, role=ROLE_DISPATCH_OVERHEAD)
            return strip_tag_array(a)
        return a

    def load_field(self, objptrs: np.ndarray, type_desc: TypeDescriptor,
                   field: str, role: str = None) -> np.ndarray:
        layout = self.machine.registry.layout(type_desc)
        # the allocator owns field placement: base + offset for the AoS
        # allocators (tag-transparent), field-major for SoA blocks
        addrs = self.machine.allocator.field_addrs(
            self.object_addrs(objptrs), layout, field
        )
        return self.load(addrs, layout.dtype(field), role=role)

    def store_field(self, objptrs: np.ndarray, type_desc: TypeDescriptor,
                    field: str, values) -> None:
        layout = self.machine.registry.layout(type_desc)
        addrs = self.machine.allocator.field_addrs(
            self.object_addrs(objptrs), layout, field
        )
        self.store(addrs, layout.dtype(field), values)

    # ------------------------------------------------------------------
    # SIMT control flow
    # ------------------------------------------------------------------
    def branch(self, cond: np.ndarray, then_fn=None, else_fn=None):
        """A two-way divergent branch with SIMT serialization.

        ``cond`` is a per-lane boolean; each taken direction executes
        once under a subcontext holding just its lanes (the SIMT stack
        behaviour).  Charges the reconvergence push (SSY), the compare
        and the branch; a fully converged branch executes only one
        side.  Returns (then_result, else_result).
        """
        cond = np.asarray(cond, dtype=bool)
        if len(cond) != self.lane_count:
            raise LaunchError(
                f"branch condition has {len(cond)} lanes, warp has "
                f"{self.lane_count}"
            )
        self.ctrl(1, op=Opcode.SSY)
        self.alu(1, op=Opcode.SETP)
        self.ctrl(1, op=Opcode.BRA)
        then_out = else_out = None
        if then_fn is not None and cond.any():
            then_out = then_fn(self.subcontext(cond), cond)
        if else_fn is not None and (~cond).any():
            else_out = else_fn(self.subcontext(~cond), ~cond)
        return then_out, else_out

    # ------------------------------------------------------------------
    # virtual dispatch
    # ------------------------------------------------------------------
    def vcall(self, objptrs: np.ndarray, static_type: TypeDescriptor,
              method: str, uniform: bool = False) -> Optional[np.ndarray]:
        """Execute ``obj->method()`` for every active lane.

        ``static_type`` plays the role of the pointer's static C++ type:
        it supplies the vTable slot index the compiler would embed.

        If the implementations return per-lane arrays (virtual getters),
        the groups' results are recombined into one lane-aligned array
        and returned; void methods return None.
        """
        ptrs = np.asarray(objptrs, dtype=np.uint64)
        if len(ptrs) != self.lane_count:
            raise LaunchError(
                f"vcall got {len(ptrs)} pointers for {self.lane_count} lanes"
            )
        if self.lane_count == 0:
            return None
        slot = static_type.slot_of(method)
        strategy = self.machine.strategy
        stats = self.stats
        stats.vfunc_calls += self.lane_count

        targets = strategy.resolve(self, ptrs, slot, uniform=uniform)
        unique_targets = np.unique(targets)
        stats.call_serializations += max(0, len(unique_targets) - 1)

        if not strategy.direct_call:
            # section 2: one constant-memory load translates the global
            # vFunc entry into the running kernel's instruction address
            stats.add_instr(InstrClass.MEM, self.lane_count,
                            ROLE_CONST_INDIRECTION)
            constmem = self.machine.constmem
            for code_addr in unique_targets:
                stats.const_accesses += 1
                if constmem.access(self.sm, int(code_addr) // 64):
                    stats.const_hits += 1

        arena = self.machine.arena
        result: Optional[np.ndarray] = None
        for code_addr in unique_targets:
            sel = targets == code_addr
            impl = arena.impl_of_code_addr(int(code_addr))
            sub = self.subcontext(sel)
            if strategy.direct_call:
                # Concord: direct branch to a statically-known body
                sub.ctrl(1, op=Opcode.BRA, role=ROLE_DISPATCH_OVERHEAD)
            else:
                # operation C of Figure 1a: indirect call
                sub.ctrl(1, op=Opcode.CALL, role=ROLE_INDIRECT_CALL)
            ret = impl(sub, ptrs[sel])
            sub.ctrl(1, op=Opcode.RET)
            if ret is not None:
                ret = np.asarray(ret)
                if result is None:
                    result = np.zeros(self.lane_count, dtype=ret.dtype)
                result[sel] = ret
        return result


def launch(machine: "Machine", kernel, num_threads: int) -> KernelStats:
    """Run ``kernel`` over ``num_threads`` threads, wave by wave.

    Warps are assigned to SMs round-robin (as thread blocks are on real
    hardware).  A *wave* is the set of warps concurrently resident on
    the whole chip (``num_sms x resident_warps_per_sm``).  Each wave is
    a capture -> replay round trip: its warps execute functionally,
    appending to per-warp :class:`MemoryTrace` records, and the
    machine's replay engine then pushes the wave's traces through the
    cache/DRAM model in the round-robin interleave (or reuses memoized
    counters -- see ``Machine.replay_wave``).
    """
    num_threads = validate_num_threads(num_threads)
    reg = obs.registry()
    with reg.span("machine.launch"):
        machine.strategy.prepare_launch()
        machine.constmem.begin_kernel()
        stats = KernelStats()
        num_warps = (num_threads + WARP_SIZE - 1) // WARP_SIZE
        num_sms = machine.hierarchy.num_sms
        wave_size = max(1, num_sms * machine.config.resident_warps_per_sm)

        # phase timings (capture -> coalesce -> replay) accumulate
        # locally and land in the registry once per launch
        track = reg.enabled
        perf = time.perf_counter
        t_capture = t_coalesce = t_replay = 0.0
        num_waves = 0

        for wave_start in range(0, num_warps, wave_size):
            num_waves += 1
            wave_end = min(wave_start + wave_size, num_warps)
            traces = []
            t0 = perf() if track else 0.0
            for warp_id in range(wave_start, wave_end):
                lo = warp_id * WARP_SIZE
                hi = min(lo + WARP_SIZE, num_threads)
                tid = np.arange(lo, hi, dtype=np.int64)
                ctx = ExecutionContext(
                    machine, warp_id, warp_id % num_sms, tid, stats
                )
                kernel(ctx)
                if track:
                    tc = perf()
                    traces.append(ctx.trace.finalize(stats))
                    t_coalesce += perf() - tc
                else:
                    traces.append(ctx.trace.finalize(stats))
            if track:
                t1 = perf()
                t_capture += t1 - t0
                machine.replay_wave(traces, stats)
                t_replay += perf() - t1
            else:
                machine.replay_wave(traces, stats)

        from .timing import finalize_timing

        finalize_timing(stats, machine.config)
        if track:
            reg.add_time("machine.capture", t_capture - t_coalesce,
                         count=num_waves)
            reg.add_time("machine.coalesce", t_coalesce, count=num_warps)
            reg.add_time("machine.replay", t_replay, count=num_waves)
    return stats
