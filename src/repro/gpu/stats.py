"""Per-kernel and per-run statistics (the simulated NVProf counters)."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .isa import InstrClass


@dataclass
class KernelStats:
    """Counters collected while executing one kernel launch.

    Warp-level instruction counts are bucketed by :class:`InstrClass`
    (Figure 7); memory-system counters are in 32B sectors, matching
    NVProf's ``gld_transactions`` (Figure 8); cache counters give the
    L1/L2 hit rates of Figure 9.
    """

    # dynamic warp instructions by class
    warp_instrs: Dict[InstrClass, int] = field(
        default_factory=lambda: {c: 0 for c in InstrClass}
    )
    # thread-level instruction count (denominator for vFuncPKI, Table 2)
    thread_instrs: int = 0
    # dynamic virtual function calls (thread-level; numerator for vFuncPKI)
    vfunc_calls: int = 0
    # dispatch serialization: extra executions of a call body because a
    # warp held several types (SIMD-utilization loss, Figure 12b)
    call_serializations: int = 0

    # memory system (32B sectors)
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    l1_accesses: int = 0
    l1_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0
    dram_row_misses: int = 0
    # per-kernel constant-memory indirection (section 2): dedicated
    # constant-cache accesses, not part of the global-load counters
    const_accesses: int = 0
    const_hits: int = 0
    # page-table walks taken (only populated when GPUConfig.model_tlb)
    tlb_walks: int = 0

    # dispatch-role attribution: role -> sector count, for Figure 1b
    role_transactions: Dict[str, int] = field(default_factory=dict)
    role_instrs: Dict[str, int] = field(default_factory=dict)
    # role -> [l1_hit, l2_hit, dram] sector counts: lets the Figure 1b
    # harness weight each dispatch operation by where its data came from
    role_levels: Dict[str, list] = field(default_factory=dict)

    # filled by the timing model
    cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0

    # ------------------------------------------------------------------
    @property
    def total_warp_instrs(self) -> int:
        return sum(self.warp_instrs.values())

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def const_hit_rate(self) -> float:
        return self.const_hits / self.const_accesses if self.const_accesses else 0.0

    @property
    def vfunc_pki(self) -> float:
        """Dynamic virtual function calls per thousand thread instructions."""
        if not self.thread_instrs:
            return 0.0
        return 1000.0 * self.vfunc_calls / self.thread_instrs

    # ------------------------------------------------------------------
    def add_instr(self, klass: InstrClass, active_lanes: int,
                  role: str = None, count: int = 1) -> None:
        """Charge ``count`` identical warp instructions in one call."""
        self.warp_instrs[klass] += count
        self.thread_instrs += active_lanes * count
        if role is not None and count:
            self.role_instrs[role] = self.role_instrs.get(role, 0) + count

    def add_role_transactions(self, role: str, n: int) -> None:
        if role is not None and n:
            self.role_transactions[role] = self.role_transactions.get(role, 0) + n

    def add_role_levels(self, role: str, l1: int, l2: int, dram: int) -> None:
        if role is not None:
            entry = self.role_levels.setdefault(role, [0, 0, 0])
            entry[0] += l1
            entry[1] += l2
            entry[2] += dram

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another launch's counters into this one."""
        for klass, n in other.warp_instrs.items():
            self.warp_instrs[klass] += n
        self.thread_instrs += other.thread_instrs
        self.vfunc_calls += other.vfunc_calls
        self.call_serializations += other.call_serializations
        self.global_load_transactions += other.global_load_transactions
        self.global_store_transactions += other.global_store_transactions
        self.l1_accesses += other.l1_accesses
        self.l1_hits += other.l1_hits
        self.l2_accesses += other.l2_accesses
        self.l2_hits += other.l2_hits
        self.dram_accesses += other.dram_accesses
        self.dram_row_misses += other.dram_row_misses
        self.const_accesses += other.const_accesses
        self.const_hits += other.const_hits
        self.tlb_walks += other.tlb_walks
        for role, n in other.role_transactions.items():
            self.role_transactions[role] = self.role_transactions.get(role, 0) + n
        for role, n in other.role_instrs.items():
            self.role_instrs[role] = self.role_instrs.get(role, 0) + n
        for role, levels in other.role_levels.items():
            entry = self.role_levels.setdefault(role, [0, 0, 0])
            for i in range(3):
                entry[i] += levels[i]
        self.cycles += other.cycles
        self.compute_cycles += other.compute_cycles
        self.memory_cycles += other.memory_cycles

    def summary(self) -> str:
        """Human-readable one-launch summary."""
        mix = "/".join(
            f"{c.value}={self.warp_instrs[c]}" for c in InstrClass
        )
        return (
            f"cycles={self.cycles:.0f} warp_instrs[{mix}] "
            f"gld={self.global_load_transactions} "
            f"L1={self.l1_hit_rate:.1%} L2={self.l2_hit_rate:.1%} "
            f"vfuncPKI={self.vfunc_pki:.1f}"
        )
