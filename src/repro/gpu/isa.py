"""Instruction classes of the simulated SASS-like ISA.

The executor does not interpret encoded instructions; workload kernels
are Python functions that *emit* instruction events through the
execution context.  This module defines the vocabulary: opcodes, their
class (MEM / COMPUTE / CTRL, the three buckets of Figure 7), and an
optional trace record used by tests and the Figure 1b breakdown.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class InstrClass(enum.Enum):
    """The three instruction buckets the paper plots in Figure 7."""

    MEM = "MEM"
    COMPUTE = "COMPUTE"
    CTRL = "CTRL"


class Opcode(enum.Enum):
    """Opcodes the dispatch lowerings and workloads emit."""

    # memory
    LDG = ("LDG", InstrClass.MEM)       # global load
    STG = ("STG", InstrClass.MEM)       # global store
    # compute
    IADD = ("IADD", InstrClass.COMPUTE)
    IMUL = ("IMUL", InstrClass.COMPUTE)
    FADD = ("FADD", InstrClass.COMPUTE)
    FMUL = ("FMUL", InstrClass.COMPUTE)
    FFMA = ("FFMA", InstrClass.COMPUTE)
    SHR = ("SHR", InstrClass.COMPUTE)   # TypePointer tag extract (Fig 5b)
    SHL = ("SHL", InstrClass.COMPUTE)
    AND = ("AND", InstrClass.COMPUTE)   # TypePointer prototype masking
    SETP = ("SETP", InstrClass.COMPUTE)  # predicate set (compares)
    SEL = ("SEL", InstrClass.COMPUTE)
    MOV = ("MOV", InstrClass.COMPUTE)
    # control
    BRA = ("BRA", InstrClass.CTRL)      # direct branch
    CALL = ("CALL", InstrClass.CTRL)    # indirect call (op C in Fig 1a)
    RET = ("RET", InstrClass.CTRL)
    SSY = ("SSY", InstrClass.CTRL)      # reconvergence push

    def __init__(self, mnemonic: str, klass: InstrClass):
        self.mnemonic = mnemonic
        self.klass = klass


@dataclass(frozen=True)
class TraceRecord:
    """One executed warp instruction, recorded when tracing is enabled.

    ``role`` labels dispatch-related instructions so the Figure 1b
    latency attribution can bucket them:

    * ``"load_vtable_ptr"``  -- operation A of Figure 1a
    * ``"load_vfunc_ptr"``   -- operation B
    * ``"indirect_call"``    -- operation C
    * ``"dispatch_overhead"``-- COAL tree walk / Concord switch /
      TypePointer shift-add
    * ``None``               -- ordinary workload instruction
    """

    opcode: Opcode
    warp_id: int
    active_lanes: int
    role: Optional[str] = None
    transactions: int = 0
    addresses: Optional[Tuple[int, ...]] = None

    @property
    def klass(self) -> InstrClass:
        return self.opcode.klass


#: Dispatch roles used by TraceRecord.role and the Fig 1b breakdown.
ROLE_LOAD_VTABLE = "load_vtable_ptr"
ROLE_CONST_INDIRECTION = "const_indirection"
ROLE_LOAD_VFUNC = "load_vfunc_ptr"
ROLE_INDIRECT_CALL = "indirect_call"
ROLE_DISPATCH_OVERHEAD = "dispatch_overhead"
