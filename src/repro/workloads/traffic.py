"""TRAF: Nagel-Schreckenberg traffic simulation (DynaSOAr suite).

Streets, cars/trucks, traffic lights and road sensors as polymorphic
agents on a ring road.  Each iteration runs the two classic NaSch
kernels through virtual calls:

* ``step_velocity`` -- accelerate, brake to the gap ahead (scanning the
  occupancy and signal maps), randomised slowdown (per-vehicle LCG),
* ``step_move`` -- vacate the old cell, advance, claim the new cell;
  lights toggle their signal, sensors count traffic.

Six types as in Table 2 (abstract RoadAgent and Vehicle; concrete Car,
Truck, TrafficLight, Sensor).  The synchronous NaSch gap rule keeps
car positions collision-free -- a tested invariant.
"""
from __future__ import annotations

import numpy as np

from ..runtime.typesystem import TypeDescriptor
from .base import PaperCharacteristics, Workload, register_workload

#: Maximum velocities; also the depth of the gap scan.
CAR_VMAX = 3
TRUCK_VMAX = 2

_LCG_A = np.uint32(1664525)
_LCG_C = np.uint32(1013904223)


def _lcg_next(state: np.ndarray) -> np.ndarray:
    return (state * _LCG_A + _LCG_C).astype(np.uint32)


class TrafficTypes:
    """Type hierarchy bound to one Traffic instance (closures need it)."""

    def __init__(self, wl: "Traffic"):
        road = wl  # closed over by the method implementations

        def vehicle_velocity(ctx, objs, vmax):
            base = road.RoadAgent
            pos = ctx.load_field(objs, base, "pos")
            vel = ctx.load_field(objs, road.Vehicle, "vel")
            rnd = ctx.load_field(objs, road.Vehicle, "rand_state")
            ctx.alu(2)  # accelerate: min(v+1, vmax)
            vel = np.minimum(vel + 1, vmax).astype(np.uint32)
            # gap scan: nearest blocked cell among the next vmax cells
            length = np.uint32(road.length)
            gap = np.full(len(pos), vmax, dtype=np.uint32)
            for k in range(vmax, 0, -1):
                ahead = (pos + np.uint32(k)) % length
                occ = road.occupancy.ld(ctx, ahead)
                sig = road.signals.ld(ctx, ahead)
                ctx.alu(2)  # blocked test + gap select
                blocked = (occ != 0) | (sig != 0)
                gap = np.where(blocked, k - 1, gap).astype(np.uint32)
            ctx.alu(1)
            vel = np.minimum(vel, gap).astype(np.uint32)
            # random slowdown with probability 1/8 (per-vehicle LCG)
            rnd = _lcg_next(rnd)
            ctx.alu(3)
            slow = ((rnd >> np.uint32(16)) & np.uint32(7)) == 0
            vel = np.where(slow & (vel > 0), vel - 1, vel).astype(np.uint32)
            ctx.store_field(objs, road.Vehicle, "vel", vel)
            ctx.store_field(objs, road.Vehicle, "rand_state", rnd)

        def car_velocity(ctx, objs):
            vehicle_velocity(ctx, objs, CAR_VMAX)

        def truck_velocity(ctx, objs):
            vehicle_velocity(ctx, objs, TRUCK_VMAX)

        def vehicle_move(ctx, objs):
            base = road.RoadAgent
            pos = ctx.load_field(objs, base, "pos")
            vel = ctx.load_field(objs, road.Vehicle, "vel")
            ctx.alu(2)
            new_pos = ((pos + vel) % np.uint32(road.length)).astype(np.uint32)
            road.occupancy.st(ctx, pos, np.zeros(len(pos), dtype=np.uint32))
            road.occupancy.st(ctx, new_pos, np.ones(len(pos), dtype=np.uint32))
            ctx.store_field(objs, base, "pos", new_pos)

        def light_velocity(ctx, objs):
            # lights do no velocity work; they still pay the dispatch
            ctx.alu(1)

        def light_move(ctx, objs):
            base = road.RoadAgent
            pos = ctx.load_field(objs, base, "pos")
            timer = ctx.load_field(objs, road.TrafficLight, "timer")
            period = ctx.load_field(objs, road.TrafficLight, "period")
            phase = ctx.load_field(objs, road.TrafficLight, "phase")
            ctx.alu(3)
            timer = (timer + 1).astype(np.uint32)
            flip = timer % period == 0
            phase = np.where(flip, 1 - phase, phase).astype(np.uint32)
            road.signals.st(ctx, pos, phase)
            ctx.store_field(objs, road.TrafficLight, "timer", timer)
            ctx.store_field(objs, road.TrafficLight, "phase", phase)

        def sensor_velocity(ctx, objs):
            ctx.alu(1)

        def sensor_move(ctx, objs):
            base = road.RoadAgent
            pos = ctx.load_field(objs, base, "pos")
            occ = road.occupancy.ld(ctx, pos)
            count = ctx.load_field(objs, road.Sensor, "count")
            ctx.alu(1)
            ctx.store_field(objs, road.Sensor, "count",
                            (count + occ).astype(np.uint32))

        self.RoadAgent = TypeDescriptor(
            f"RoadAgent#{id(wl):x}",
            fields=[("pos", "u32")],
            methods={"step_velocity": None, "step_move": None},
        )
        self.Vehicle = TypeDescriptor(
            f"Vehicle#{id(wl):x}",
            fields=[("vel", "u32"), ("rand_state", "u32"), ("dist", "u32")],
            base=self.RoadAgent,
        )
        self.Car = TypeDescriptor(
            f"Car#{id(wl):x}",
            base=self.Vehicle,
            methods={"step_velocity": car_velocity, "step_move": vehicle_move},
        )
        self.Truck = TypeDescriptor(
            f"Truck#{id(wl):x}",
            fields=[("cargo", "u32")],
            base=self.Vehicle,
            methods={"step_velocity": truck_velocity, "step_move": vehicle_move},
        )
        self.TrafficLight = TypeDescriptor(
            f"TrafficLight#{id(wl):x}",
            fields=[("timer", "u32"), ("period", "u32"), ("phase", "u32")],
            base=self.RoadAgent,
            methods={"step_velocity": light_velocity, "step_move": light_move},
        )
        self.Sensor = TypeDescriptor(
            f"Sensor#{id(wl):x}",
            fields=[("count", "u32")],
            base=self.RoadAgent,
            methods={"step_velocity": sensor_velocity, "step_move": sensor_move},
        )


@register_workload
class Traffic(Workload):
    """TRAF: Nagel-Schreckenberg model with polymorphic road agents."""

    name = "TRAF"
    suite = "Dynasoar"
    description = ("Nagel-Schreckenberg traffic flow over streets, cars "
                   "and traffic lights")
    paper = PaperCharacteristics(
        objects=1573714, types=6, vfuncs=74, vfunc_pki=30.6
    )
    default_iterations = 3

    # default (scale=1.0) sizes
    ROAD_LENGTH = 16384
    NUM_CARS = 2400
    NUM_TRUCKS = 800
    NUM_LIGHTS = 96
    NUM_SENSORS = 96

    def setup(self) -> None:
        m = self.machine
        rng = np.random.default_rng(self.seed)
        self.length = self._scaled(self.ROAD_LENGTH, minimum=256)
        n_cars = self._scaled(self.NUM_CARS)
        n_trucks = self._scaled(self.NUM_TRUCKS)
        n_lights = self._scaled(self.NUM_LIGHTS, minimum=4)
        n_sensors = self._scaled(self.NUM_SENSORS, minimum=4)

        t = TrafficTypes(self)
        self.RoadAgent, self.Vehicle = t.RoadAgent, t.Vehicle
        self.Car, self.Truck = t.Car, t.Truck
        self.TrafficLight, self.Sensor = t.TrafficLight, t.Sensor
        m.register(self.Car, self.Truck, self.TrafficLight, self.Sensor)

        self.occupancy = m.array("u32", self.length)
        self.occupancy.write(np.zeros(self.length, dtype=np.uint32))
        self.signals = m.array("u32", self.length)
        self.signals.write(np.zeros(self.length, dtype=np.uint32))

        # distinct starting cells for all agents
        cells = rng.choice(
            self.length, size=n_cars + n_trucks + n_lights + n_sensors,
            replace=False,
        ).astype(np.uint32)
        car_pos = cells[:n_cars]
        truck_pos = cells[n_cars:n_cars + n_trucks]
        light_pos = cells[n_cars + n_trucks:n_cars + n_trucks + n_lights]
        sensor_pos = cells[n_cars + n_trucks + n_lights:]

        # allocation interleaves types, as real construction code does
        ptrs = []
        kinds = (["car"] * n_cars + ["truck"] * n_trucks
                 + ["light"] * n_lights + ["sensor"] * n_sensors)
        rng.shuffle(kinds)
        it_car = iter(car_pos)
        it_truck = iter(truck_pos)
        it_light = iter(light_pos)
        it_sensor = iter(sensor_pos)
        occ = self.occupancy
        for kind in kinds:
            if kind == "car":
                p = m.new_objects(self.Car, 1)[0]
                self._init_vehicle(p, next(it_car), rng)
                occ[int(self._field_addr_index(p))] = 1
            elif kind == "truck":
                p = m.new_objects(self.Truck, 1)[0]
                self._init_vehicle(p, next(it_truck), rng)
                occ[int(self._field_addr_index(p))] = 1
            elif kind == "light":
                p = m.new_objects(self.TrafficLight, 1)[0]
                lay = m.registry.layout(self.TrafficLight)
                m.write_field(p, lay, "pos", int(next(it_light)))
                m.write_field(p, lay, "period", int(8 + rng.integers(8)))
                m.write_field(p, lay, "phase", 0)
            else:
                p = m.new_objects(self.Sensor, 1)[0]
                m.write_field(p, self.Sensor, "pos", int(next(it_sensor)))
            ptrs.append(p)

        # DynaSOAr-style do-all enumeration: the processing array groups
        # objects by type (each group in allocation order), even though
        # construction interleaved the types on the heap.  Thread i of a
        # group therefore touches the i-th *allocated* object of that
        # type -- contiguous under SharedOA, scattered under CUDA.
        by_kind = {"car": [], "truck": [], "light": [], "sensor": []}
        for p, k in zip(ptrs, kinds):
            by_kind[k].append(p)
        ordered = (by_kind["car"] + by_kind["truck"]
                   + by_kind["light"] + by_kind["sensor"])
        self.agent_ptrs = np.array(ordered, dtype=np.uint64)
        self.agents = m.array_from(self.agent_ptrs, "u64")
        self.num_agents = len(ordered)
        self._vehicle_ptrs = np.array(
            by_kind["car"] + by_kind["truck"], dtype=np.uint64
        )

    # ------------------------------------------------------------------
    def _init_vehicle(self, ptr, pos, rng) -> None:
        m = self.machine
        lay = m.registry.layout(self.Vehicle)
        m.write_field(ptr, lay, "pos", int(pos))
        m.write_field(ptr, lay, "vel", int(rng.integers(1, 3)))
        m.write_field(ptr, lay, "rand_state", int(rng.integers(1, 2**32 - 1)))

    def _field_addr_index(self, ptr) -> int:
        return int(self.machine.read_field(ptr, self.Vehicle, "pos"))

    # ------------------------------------------------------------------
    def iterate(self) -> None:
        agents, RoadAgent = self.agents, self.RoadAgent

        def velocity_kernel(ctx):
            ptrs = agents.ld(ctx, ctx.tid)
            ctx.vcall(ptrs, RoadAgent, "step_velocity")

        def move_kernel(ctx):
            ptrs = agents.ld(ctx, ctx.tid)
            ctx.vcall(ptrs, RoadAgent, "step_move")

        self.machine.launch(velocity_kernel, self.num_agents)
        self.machine.launch(move_kernel, self.num_agents)

    # ------------------------------------------------------------------
    def vehicle_positions(self) -> np.ndarray:
        m = self.machine
        lay = m.registry.layout(self.Vehicle)
        return m.read_field(self._vehicle_ptrs, lay, "pos")

    def checksum(self) -> float:
        m = self.machine
        lay = m.registry.layout(self.Vehicle)
        total = int(m.read_field(self._vehicle_ptrs, lay, "pos")
                    .astype(np.int64).sum())
        total += 7 * int(m.read_field(self._vehicle_ptrs, lay, "vel")
                         .astype(np.int64).sum())
        sensor_lay = m.registry.layout(self.Sensor)
        for p in self.agent_ptrs:
            if m.allocator.owner_type(int(p)) is self.Sensor:
                total += 13 * int(m.read_field(int(p), sensor_lay, "count"))
        return float(total)
