"""Shared infrastructure for the cellular-automaton workloads (GOL, GEN).

DynaSOAr's Game-of-Life benchmarks model every grid cell as an object
whose *concrete type is its state*: when a cell's state changes, the
old object is destroyed and an object of the new type allocated
(DynaSOAr's dynamic allocation pattern).  Each iteration:

* ``count`` kernel (virtual): every cell gathers the 8 neighbours'
  pointers from the grid and reads their ``alive`` member,
* ``update`` kernel (virtual): each type applies its transition rule,
  writing the cell's next state,
* a host-side *retype phase* frees/reallocates cells whose state
  changed (allocation is excluded from kernel measurements, matching
  the paper's methodology).

The hierarchy and kernels are written against the public front-end:
:class:`Agent`/:class:`Cell` are :func:`~repro.device_class`
declarations shared by both automata (concrete state classes live in
the workload modules), and the two kernels are plain
:func:`~repro.kernel` functions -- the same API a user program uses.
"""
from __future__ import annotations

from typing import Dict

import numpy as np

from ..frontend import abstract, device_class, kernel
from ..runtime.typesystem import TypeDescriptor
from .base import Workload


@device_class
class Agent:
    """Abstract actor: anything on the grid that can be stepped."""

    @abstract
    def update(self, ctx): ...


@device_class
class Cell(Agent):
    """One grid cell; its concrete subclass *is* its state."""

    alive: "u32"
    state: "u32"
    neighbors: "u32"
    index: "u32"


@kernel
def count_kernel(ctx, grid, neighbor_idx):
    """Gather the 8 neighbours' ``alive`` flags into ``neighbors``."""
    ptrs = grid.ld(ctx, ctx.tid)
    counts = np.zeros(ctx.lane_count, dtype=np.uint32)
    for nidx in neighbor_idx:
        nb_ptrs = grid.ld(ctx, nidx[ctx.tid])
        alive = Cell.view(ctx, nb_ptrs).alive
        ctx.alu(1)
        counts += alive
    Cell.view(ctx, ptrs).neighbors = counts


@kernel
def update_kernel(ctx, grid):
    """Virtual-dispatch each cell's transition rule."""
    ptrs = grid.ld(ctx, ctx.tid)
    Cell.view(ctx, ptrs).update()


class CellularAutomaton(Workload):
    """Common machinery: grid of cell objects with dynamic retyping."""

    GRID_W = 128
    GRID_H = 128
    default_iterations = 2

    #: state id -> concrete device class; set by each workload module
    state_classes: Dict[int, type] = {}

    #: state id -> concrete type descriptor (derived from state_classes)
    state_types: Dict[int, TypeDescriptor]

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------
    def _initial_states(self, rng) -> np.ndarray:
        """Initial per-cell state ids."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def setup(self) -> None:
        m = self.machine
        rng = np.random.default_rng(self.seed)
        side_scale = max(0.1, self.scale) ** 0.5
        self.width = max(16, int(self.GRID_W * side_scale))
        self.height = max(16, int(self.GRID_H * side_scale))
        self.n_cells = self.width * self.height

        #: the abstract static type kernels dispatch through -- kept as
        #: a TypeDescriptor attribute for layout-level tests/tools
        self.Cell = Cell.descriptor()
        self.state_types = {
            s: c.descriptor() for s, c in self.state_classes.items()
        }
        m.register(*self.state_types.values())

        states = self._initial_states(rng)
        self.states = states
        ptrs = np.empty(self.n_cells, dtype=np.uint64)
        for i in range(self.n_cells):
            ptrs[i] = self._construct_cell(i, int(states[i]))
        self.cell_ptrs = ptrs
        self.grid = m.array_from(ptrs, "u64")

        # neighbour index table (8 per cell, torus wrap), precomputed
        idx = np.arange(self.n_cells)
        x = idx % self.width
        y = idx // self.width
        self._neighbor_idx = []
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                nx = (x + dx) % self.width
                ny = (y + dy) % self.height
                self._neighbor_idx.append((ny * self.width + nx).astype(np.int64))

    def _construct_cell(self, index: int, state: int) -> int:
        m = self.machine
        tdesc = self.state_types[state]
        ptr = m.new_objects(tdesc, 1)[0]
        lay = m.registry.layout(tdesc)
        m.write_field(ptr, lay, "alive", 1 if state == 1 else 0)
        m.write_field(ptr, lay, "state", state)
        m.write_field(ptr, lay, "index", index)
        return int(ptr)

    # ------------------------------------------------------------------
    def iterate(self) -> None:
        self.launch(count_kernel, self.n_cells, self.grid,
                    self._neighbor_idx)
        self.launch(update_kernel, self.n_cells, self.grid)
        self._retype_phase()

    def _retype_phase(self) -> None:
        """Destroy/recreate cells whose state changed (host side)."""
        m = self.machine
        lay = m.registry.layout(self.Cell)
        # one host-side gather over every cell's state field finds the
        # changed cells; only those walk the free/reconstruct path
        new_states = m.read_field(self.cell_ptrs, lay, "state")
        changed_idx = np.flatnonzero(new_states != self.states)
        for i in changed_idx.tolist():
            new_state = int(new_states[i])
            m.free_objects([int(self.cell_ptrs[i])])
            new_ptr = self._construct_cell(i, new_state)
            self.cell_ptrs[i] = new_ptr
            self.grid[i] = new_ptr
            self.states[i] = new_state
        self._last_retyped = len(changed_idx)

    # ------------------------------------------------------------------
    def alive_count(self) -> int:
        return int((self.states == 1).sum())

    def checksum(self) -> float:
        return float(
            (self.states.astype(np.int64) * (np.arange(self.n_cells) % 97 + 1)).sum()
        )
