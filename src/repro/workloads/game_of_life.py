"""GOL: Conway's Game of Life with per-cell objects (DynaSOAr suite).

Two abstract classes (Agent, Cell) and two concrete states (AliveCell,
DeadCell) -- 4 types as in Table 2.  State transitions retype the cell
object (free + allocate), exercising the allocators dynamically.

The states are :func:`~repro.device_class` subclasses of the shared
:class:`~repro.workloads.cellular.Cell`, so GOL is a front-end client
end to end; the module-level declarations also give the types stable,
deterministic names (the old per-instance ``id(self)`` tags varied
between processes).
"""
from __future__ import annotations

import numpy as np

from ..frontend import device_class, virtual
from .base import PaperCharacteristics, register_workload
from .cellular import Cell, CellularAutomaton

STATE_DEAD = 0
STATE_ALIVE = 1


@device_class(name="AliveCell#gol")
class GolAliveCell(Cell):
    @virtual
    def update(self, ctx):
        n = self.neighbors
        ctx.alu(3)  # two compares + select
        survives = (n == 2) | (n == 3)
        new_state = np.where(survives, STATE_ALIVE, STATE_DEAD)
        self.state = new_state.astype(np.uint32)
        self.alive = (new_state == STATE_ALIVE).astype(np.uint32)


@device_class(name="DeadCell#gol")
class GolDeadCell(Cell):
    @virtual
    def update(self, ctx):
        n = self.neighbors
        ctx.alu(2)  # compare + select
        born = n == 3
        new_state = np.where(born, STATE_ALIVE, STATE_DEAD)
        self.state = new_state.astype(np.uint32)
        self.alive = (new_state == STATE_ALIVE).astype(np.uint32)


@register_workload
class GameOfLife(CellularAutomaton):
    """GOL: Conway's cellular automaton, cells as polymorphic objects."""

    name = "GOL"
    suite = "Dynasoar"
    description = "Conway's Game of Life with Cell/Agent class hierarchy"
    paper = PaperCharacteristics(
        objects=5645916, types=4, vfuncs=29, vfunc_pki=26.9
    )

    ALIVE_FRACTION = 0.35

    state_classes = {STATE_ALIVE: GolAliveCell, STATE_DEAD: GolDeadCell}

    def _initial_states(self, rng) -> np.ndarray:
        return (rng.random(self.n_cells) < self.ALIVE_FRACTION).astype(np.int64)

    # ------------------------------------------------------------------
    def reference_step(self, states: np.ndarray) -> np.ndarray:
        """Pure-numpy Conway step for functional validation."""
        grid = states.reshape(self.height, self.width)
        n = sum(
            np.roll(np.roll(grid, dy, axis=0), dx, axis=1)
            for dy in (-1, 0, 1)
            for dx in (-1, 0, 1)
            if (dx, dy) != (0, 0)
        )
        return (((grid == 1) & ((n == 2) | (n == 3))) | ((grid == 0) & (n == 3))
                ).astype(np.int64).ravel()
