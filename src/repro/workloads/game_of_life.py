"""GOL: Conway's Game of Life with per-cell objects (DynaSOAr suite).

Two abstract classes (Agent, Cell) and two concrete states (AliveCell,
DeadCell) -- 4 types as in Table 2.  State transitions retype the cell
object (free + allocate), exercising the allocators dynamically.
"""
from __future__ import annotations

import numpy as np

from ..runtime.typesystem import TypeDescriptor
from .base import PaperCharacteristics, register_workload
from .cellular import CellularAutomaton, make_cell_base

STATE_DEAD = 0
STATE_ALIVE = 1


@register_workload
class GameOfLife(CellularAutomaton):
    """GOL: Conway's cellular automaton, cells as polymorphic objects."""

    name = "GOL"
    suite = "Dynasoar"
    description = "Conway's Game of Life with Cell/Agent class hierarchy"
    paper = PaperCharacteristics(
        objects=5645916, types=4, vfuncs=29, vfunc_pki=26.9
    )

    ALIVE_FRACTION = 0.35

    def _make_types(self) -> None:
        self.Cell = make_cell_base(f"gol{id(self):x}")
        Cell = self.Cell

        def alive_update(ctx, objs):
            n = ctx.load_field(objs, Cell, "neighbors")
            ctx.alu(3)  # two compares + select
            survives = (n == 2) | (n == 3)
            new_state = np.where(survives, STATE_ALIVE, STATE_DEAD)
            ctx.store_field(objs, Cell, "state", new_state.astype(np.uint32))
            ctx.store_field(objs, Cell, "alive",
                            (new_state == STATE_ALIVE).astype(np.uint32))

        def dead_update(ctx, objs):
            n = ctx.load_field(objs, Cell, "neighbors")
            ctx.alu(2)  # compare + select
            born = n == 3
            new_state = np.where(born, STATE_ALIVE, STATE_DEAD)
            ctx.store_field(objs, Cell, "state", new_state.astype(np.uint32))
            ctx.store_field(objs, Cell, "alive",
                            (new_state == STATE_ALIVE).astype(np.uint32))

        AliveCell = TypeDescriptor(
            f"AliveCell#gol{id(self):x}", base=Cell,
            methods={"update": alive_update},
        )
        DeadCell = TypeDescriptor(
            f"DeadCell#gol{id(self):x}", base=Cell,
            methods={"update": dead_update},
        )
        self.state_types = {STATE_ALIVE: AliveCell, STATE_DEAD: DeadCell}

    def _initial_states(self, rng) -> np.ndarray:
        return (rng.random(self.n_cells) < self.ALIVE_FRACTION).astype(np.int64)

    # ------------------------------------------------------------------
    def reference_step(self, states: np.ndarray) -> np.ndarray:
        """Pure-numpy Conway step for functional validation."""
        grid = states.reshape(self.height, self.width)
        n = sum(
            np.roll(np.roll(grid, dy, axis=0), dx, axis=1)
            for dy in (-1, 0, 1)
            for dx in (-1, 0, 1)
            if (dx, dy) != (0, 0)
        )
        return (((grid == 1) & ((n == 2) | (n == 3))) | ((grid == 0) & (n == 3))
                ).astype(np.int64).ravel()
