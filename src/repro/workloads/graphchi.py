"""GraphChi graph-analytics workloads: BFS, CC and PageRank.

Two variants, as in the paper (Table 2):

* **vE**: only *edges* are polymorphic -- abstract ``ChiEdge`` with a
  concrete ``Edge`` implementing its virtual functions.  Vertex data
  is reached by dereferencing vertex object pointers directly.
* **vEN**: *edges and vertices* are polymorphic -- edge processing
  performs nested virtual calls into ``ChiVertex`` accessors and a
  second virtual kernel updates every vertex, roughly a 1.5x higher
  vFuncPKI (52 vs 36 for BFS), as published.

The graph is a deterministic random digraph (out-degree ~6, plus a
ring to keep it connected).  Edge objects are allocated in edge order;
vertex objects in vertex order; a thread per edge (and, for vEN, per
vertex) processes the graph iteratively, exactly the diverged
object-access pattern whose vTable-pointer loads the paper attacks.
"""
from __future__ import annotations

from typing import Dict

import numpy as np

from ..runtime.naming import mint_tag
from ..runtime.typesystem import TypeDescriptor
from .base import PaperCharacteristics, Workload, register_workload

INF_LEVEL = np.uint32(1_000_000)
DAMPING = np.float32(0.85)


class _GraphWorkload(Workload):
    """Shared graph construction + object allocation for all six."""

    NUM_VERTICES = 4096
    AVG_DEGREE = 6
    default_iterations = 4
    #: True when vertices are polymorphic too (the vEN variants)
    virtual_vertices = False
    #: number of disjoint blocks edges are confined to; >1 yields a
    #: multi-component graph (used by the CC variants so component
    #: discovery is non-trivial)
    NUM_BLOCKS = 1

    # ------------------------------------------------------------------
    def setup(self) -> None:
        m = self.machine
        rng = np.random.default_rng(self.seed)
        self.n_vertices = self._scaled(self.NUM_VERTICES, minimum=64)
        n = self.n_vertices

        blocks = max(1, min(self.NUM_BLOCKS, n // 8))
        block_size = n // blocks
        if blocks == 1:
            # ring + random extra edges: connected, deterministic
            src = [np.arange(n, dtype=np.int64)]
            dst = [(np.arange(n, dtype=np.int64) + 1) % n]
            extra = (self.AVG_DEGREE - 1) * n
            src.append(rng.integers(0, n, size=extra))
            dst.append(rng.integers(0, n, size=extra))
        else:
            # block-confined random edges: ``blocks`` components
            extra = self.AVG_DEGREE * n
            s = rng.integers(0, n, size=extra)
            block_of = np.minimum(s // block_size, blocks - 1)
            lo = block_of * block_size
            hi = np.where(block_of == blocks - 1, n, lo + block_size)
            d = lo + rng.integers(0, 1 << 30, size=extra) % (hi - lo)
            src, dst = [s], [d]
        self.edge_src = np.concatenate(src).astype(np.uint32)
        self.edge_dst = np.concatenate(dst).astype(np.uint32)
        keep = self.edge_src != self.edge_dst
        self.edge_src = self.edge_src[keep]
        self.edge_dst = self.edge_dst[keep]
        self.n_edges = len(self.edge_src)
        self.out_degree = np.maximum(
            np.bincount(self.edge_src, minlength=n), 1
        ).astype(np.uint32)

        self._make_types()
        m.register(self.Edge, self.Vertex)

        # vertex objects first, then edge objects (construction order)
        vptrs = np.empty(n, dtype=np.uint64)
        vlay = m.registry.layout(self.Vertex)
        for i in range(n):
            p = m.new_objects(self.Vertex, 1)[0]
            m.write_field(p, vlay, "vid", i)
            m.write_field(p, vlay, "degree", int(self.out_degree[i]))
            vptrs[i] = p
        self.vertex_ptrs = vptrs
        self.vertices = m.array_from(vptrs, "u64")

        eptrs = np.empty(self.n_edges, dtype=np.uint64)
        elay = m.registry.layout(self.Edge)
        for j in range(self.n_edges):
            p = m.new_objects(self.Edge, 1)[0]
            m.write_field(p, elay, "src", int(self.edge_src[j]))
            m.write_field(p, elay, "dst", int(self.edge_dst[j]))
            eptrs[j] = p
        self.edge_ptrs = eptrs
        self.edges = m.array_from(eptrs, "u64")

        self._init_vertex_state()

    # subclass hooks ----------------------------------------------------
    def _make_types(self) -> None:
        raise NotImplementedError

    def _init_vertex_state(self) -> None:
        raise NotImplementedError

    # helpers ------------------------------------------------------------
    def _vertex_field(self, field: str) -> np.ndarray:
        m = self.machine
        lay = m.registry.layout(self.Vertex)
        return m.read_field(self.vertex_ptrs, lay, field)

    def _set_vertex_field(self, field: str, values) -> None:
        m = self.machine
        lay = m.registry.layout(self.Vertex)
        m.write_field(self.vertex_ptrs, lay, field, values)

    def _edge_kernel(self):
        edges, ChiEdge = self.edges, self.ChiEdge

        def kernel(ctx):
            ptrs = edges.ld(ctx, ctx.tid)
            ctx.vcall(ptrs, ChiEdge, "process")

        return kernel

    def _vertex_kernel(self):
        vertices, ChiVertex = self.vertices, self.ChiVertex

        def kernel(ctx):
            ptrs = vertices.ld(ctx, ctx.tid)
            ctx.vcall(ptrs, ChiVertex, "update")

        return kernel


# ======================================================================
# type factories
# ======================================================================
def _edge_types(tag: str, process) -> Dict[str, TypeDescriptor]:
    chi_edge = TypeDescriptor(f"ChiEdge#{tag}", methods={"process": None})
    edge = TypeDescriptor(
        f"Edge#{tag}",
        fields=[("src", "u32"), ("dst", "u32"), ("weight", "f32")],
        base=chi_edge,
        methods={"process": process},
    )
    return {"ChiEdge": chi_edge, "Edge": edge}


def _vertex_types(tag: str, fields, methods=None, virtual=False):
    if virtual:
        base_methods = {"update": None, "get_value": None, "set_value": None}
    else:
        base_methods = {}
    chi_vertex = TypeDescriptor(f"ChiVertex#{tag}", methods=base_methods)
    vertex = TypeDescriptor(
        f"Vertex#{tag}",
        fields=[("vid", "u32"), ("degree", "u32")] + list(fields),
        base=chi_vertex,
        methods=methods or {},
    )
    return {"ChiVertex": chi_vertex, "Vertex": vertex}


# ======================================================================
# vE variants: virtual edges only
# ======================================================================
@register_workload
class BFSvE(_GraphWorkload):
    """BFS-vE: breadth-first level propagation, virtual edges."""

    name = "BFS-vE"
    suite = "GraphChi-vE"
    description = "BFS over ChiEdge/Edge; vertex data accessed directly"
    paper = PaperCharacteristics(
        objects=2254419, types=4, vfuncs=5, vfunc_pki=35.9
    )

    def _make_types(self) -> None:
        wl = self
        tag = mint_tag("bfsve")

        def process(ctx, objs):
            E, V = wl.Edge, wl.Vertex
            src = ctx.load_field(objs, E, "src")
            dst = ctx.load_field(objs, E, "dst")
            ctx.alu(4)  # index scaling + bounds predicates
            sptr = wl.vertices.ld(ctx, src)
            dptr = wl.vertices.ld(ctx, dst)
            lsrc = ctx.load_field(sptr, V, "level")
            ctx.alu(1)  # add
            # atomicMin: exact under intra-warp dst conflicts
            ctx.atomic_field(dptr, V, "level",
                             (lsrc + np.uint32(1)).astype(np.uint32),
                             op="min")

        d = _edge_types(tag, process)
        self.ChiEdge, self.Edge = d["ChiEdge"], d["Edge"]
        v = _vertex_types(tag, [("level", "u32")])
        self.ChiVertex, self.Vertex = v["ChiVertex"], v["Vertex"]

    def _init_vertex_state(self) -> None:
        levels = np.full(self.n_vertices, INF_LEVEL, dtype=np.uint32)
        levels[0] = 0
        self._set_vertex_field("level", levels)

    def iterate(self) -> None:
        self.machine.launch(self._edge_kernel(), self.n_edges)

    def levels(self) -> np.ndarray:
        return self._vertex_field("level")

    def checksum(self) -> float:
        lv = np.minimum(self.levels(), INF_LEVEL).astype(np.int64)
        return float((lv * (np.arange(self.n_vertices) % 31 + 1)).sum())


@register_workload
class CCvE(_GraphWorkload):
    """CC-vE: connected components via iterative min-label, virtual edges."""

    name = "CC-vE"
    suite = "GraphChi-vE"
    description = "Connected components by min-label propagation"
    paper = PaperCharacteristics(
        objects=2254419, types=4, vfuncs=6, vfunc_pki=29.5
    )
    NUM_BLOCKS = 24

    def _make_types(self) -> None:
        wl = self
        tag = mint_tag("ccve")

        def process(ctx, objs):
            E, V = wl.Edge, wl.Vertex
            src = ctx.load_field(objs, E, "src")
            dst = ctx.load_field(objs, E, "dst")
            ctx.alu(4)  # index scaling + bounds predicates
            sptr = wl.vertices.ld(ctx, src)
            dptr = wl.vertices.ld(ctx, dst)
            lsrc = ctx.load_field(sptr, V, "label")
            ldst = ctx.load_field(dptr, V, "label")
            ctx.alu(1)
            lo = np.minimum(lsrc, ldst).astype(np.uint32)
            ctx.atomic_field(dptr, V, "label", lo, op="min")
            ctx.atomic_field(sptr, V, "label", lo, op="min")

        d = _edge_types(tag, process)
        self.ChiEdge, self.Edge = d["ChiEdge"], d["Edge"]
        v = _vertex_types(tag, [("label", "u32")])
        self.ChiVertex, self.Vertex = v["ChiVertex"], v["Vertex"]

    def _init_vertex_state(self) -> None:
        self._set_vertex_field(
            "label", np.arange(self.n_vertices, dtype=np.uint32)
        )

    def iterate(self) -> None:
        self.machine.launch(self._edge_kernel(), self.n_edges)

    def labels(self) -> np.ndarray:
        return self._vertex_field("label")

    def checksum(self) -> float:
        lb = self.labels().astype(np.int64)
        return float((lb * (np.arange(self.n_vertices) % 29 + 1)).sum())


@register_workload
class PageRankvE(_GraphWorkload):
    """PR-vE: PageRank with virtual edges."""

    name = "PR-vE"
    suite = "GraphChi-vE"
    description = "PageRank: per-edge rank scatter + per-vertex apply"
    paper = PaperCharacteristics(
        objects=2254419, types=4, vfuncs=3, vfunc_pki=36.9
    )

    def _make_types(self) -> None:
        wl = self
        tag = mint_tag("prve")

        def process(ctx, objs):
            E, V = wl.Edge, wl.Vertex
            src = ctx.load_field(objs, E, "src")
            dst = ctx.load_field(objs, E, "dst")
            ctx.alu(4)  # index scaling + bounds predicates
            sptr = wl.vertices.ld(ctx, src)
            dptr = wl.vertices.ld(ctx, dst)
            rank = ctx.load_field(sptr, V, "rank")
            deg = ctx.load_field(sptr, V, "degree")
            ctx.alu(1)
            contrib = (rank / deg.astype(np.float32)).astype(np.float32)
            ctx.atomic_field(dptr, V, "acc", contrib, op="add")

        d = _edge_types(tag, process)
        self.ChiEdge, self.Edge = d["ChiEdge"], d["Edge"]
        v = _vertex_types(tag, [("rank", "f32"), ("acc", "f32")])
        self.ChiVertex, self.Vertex = v["ChiVertex"], v["Vertex"]

    def _init_vertex_state(self) -> None:
        self._set_vertex_field(
            "rank", np.float32(1.0 / self.n_vertices)
        )
        self._set_vertex_field("acc", np.float32(0.0))

    def iterate(self) -> None:
        self.machine.launch(self._edge_kernel(), self.n_edges)
        # apply phase: vertex data is non-virtual in the vE variant
        wl = self

        def apply_kernel(ctx):
            V = wl.Vertex
            ptrs = wl.vertices.ld(ctx, ctx.tid)
            acc = ctx.load_field(ptrs, V, "acc")
            ctx.alu(3)
            base = np.float32((1.0 - float(DAMPING)) / wl.n_vertices)
            rank = (base + DAMPING * acc).astype(np.float32)
            ctx.store_field(ptrs, V, "rank", rank)
            ctx.store_field(ptrs, V, "acc",
                            np.zeros(ctx.lane_count, dtype=np.float32))

        self.machine.launch(apply_kernel, self.n_vertices)

    def ranks(self) -> np.ndarray:
        return self._vertex_field("rank")

    def checksum(self) -> float:
        # weighted digest: sensitive to the rank *distribution* (the
        # plain sum is conserved at ~1.0 and would hide ranking bugs)
        r = self.ranks().astype(np.float64)
        w = np.arange(self.n_vertices) % 23 + 1
        return round(float((r * w).sum()) * 1e6, 1)


# ======================================================================
# vEN variants: virtual edges AND vertices
# ======================================================================
class _GraphWorkloadVEN(_GraphWorkload):
    virtual_vertices = True


@register_workload
class BFSvEN(_GraphWorkloadVEN):
    """BFS-vEN: virtual edges and vertices (nested virtual accessors)."""

    name = "BFS-vEN"
    suite = "GraphChi-vEN"
    description = "BFS with ChiVertex virtual accessors and updates"
    paper = PaperCharacteristics(
        objects=2254419, types=4, vfuncs=15, vfunc_pki=52.2
    )

    def _make_types(self) -> None:
        wl = self
        tag = mint_tag("bfsven")

        def get_value(ctx, objs):
            return ctx.load_field(objs, wl.Vertex, "level")

        def set_value(ctx, objs):
            # virtual setter slot (present in the vTable; the BFS kernel
            # uses direct next_level stores instead)
            ctx.alu(1)

        def vertex_update(ctx, objs):
            # commit next_level into level
            nxt = ctx.load_field(objs, wl.Vertex, "next_level")
            lvl = ctx.load_field(objs, wl.Vertex, "level")
            ctx.alu(1)
            ctx.store_field(objs, wl.Vertex, "level",
                            np.minimum(lvl, nxt).astype(np.uint32))

        def process(ctx, objs):
            E, CV, V = wl.Edge, wl.ChiVertex, wl.Vertex
            src = ctx.load_field(objs, E, "src")
            dst = ctx.load_field(objs, E, "dst")
            ctx.alu(4)  # index scaling + bounds predicates
            sptr = wl.vertices.ld(ctx, src)
            dptr = wl.vertices.ld(ctx, dst)
            lsrc = ctx.vcall(sptr, CV, "get_value")  # nested virtual call
            ctx.alu(1)
            ctx.atomic_field(dptr, V, "next_level",
                             (lsrc + np.uint32(1)).astype(np.uint32),
                             op="min")

        d = _edge_types(tag, process)
        self.ChiEdge, self.Edge = d["ChiEdge"], d["Edge"]
        v = _vertex_types(
            tag,
            [("level", "u32"), ("next_level", "u32")],
            methods={"update": vertex_update, "get_value": get_value,
                     "set_value": set_value},
            virtual=True,
        )
        self.ChiVertex, self.Vertex = v["ChiVertex"], v["Vertex"]

    def _init_vertex_state(self) -> None:
        levels = np.full(self.n_vertices, INF_LEVEL, dtype=np.uint32)
        levels[0] = 0
        self._set_vertex_field("level", levels)
        self._set_vertex_field("next_level", levels)

    def iterate(self) -> None:
        self.machine.launch(self._edge_kernel(), self.n_edges)
        self.machine.launch(self._vertex_kernel(), self.n_vertices)

    def levels(self) -> np.ndarray:
        return self._vertex_field("level")

    def checksum(self) -> float:
        lv = np.minimum(self.levels(), INF_LEVEL).astype(np.int64)
        return float((lv * (np.arange(self.n_vertices) % 31 + 1)).sum())


@register_workload
class CCvEN(_GraphWorkloadVEN):
    """CC-vEN: connected components, virtual edges and vertices."""

    name = "CC-vEN"
    suite = "GraphChi-vEN"
    description = "Connected components with virtual vertex accessors"
    paper = PaperCharacteristics(
        objects=2254419, types=4, vfuncs=15, vfunc_pki=44.2
    )
    NUM_BLOCKS = 24

    def _make_types(self) -> None:
        wl = self
        tag = mint_tag("ccven")

        def get_value(ctx, objs):
            return ctx.load_field(objs, wl.Vertex, "label")

        def vertex_update(ctx, objs):
            nxt = ctx.load_field(objs, wl.Vertex, "next_label")
            lbl = ctx.load_field(objs, wl.Vertex, "label")
            ctx.alu(1)
            ctx.store_field(objs, wl.Vertex, "label",
                            np.minimum(lbl, nxt).astype(np.uint32))

        def process(ctx, objs):
            E, CV, V = wl.Edge, wl.ChiVertex, wl.Vertex
            src = ctx.load_field(objs, E, "src")
            dst = ctx.load_field(objs, E, "dst")
            ctx.alu(4)  # index scaling + bounds predicates
            sptr = wl.vertices.ld(ctx, src)
            dptr = wl.vertices.ld(ctx, dst)
            lsrc = ctx.vcall(sptr, CV, "get_value")
            ldst = ctx.vcall(dptr, CV, "get_value")
            ctx.alu(1)
            lo = np.minimum(lsrc, ldst).astype(np.uint32)
            ctx.atomic_field(dptr, V, "next_label", lo, op="min")
            ctx.atomic_field(sptr, V, "next_label", lo, op="min")

        d = _edge_types(tag, process)
        self.ChiEdge, self.Edge = d["ChiEdge"], d["Edge"]
        v = _vertex_types(
            tag,
            [("label", "u32"), ("next_label", "u32")],
            methods={"update": vertex_update, "get_value": get_value,
                     "set_value": lambda ctx, objs: None},
            virtual=True,
        )
        self.ChiVertex, self.Vertex = v["ChiVertex"], v["Vertex"]

    def _init_vertex_state(self) -> None:
        ids = np.arange(self.n_vertices, dtype=np.uint32)
        self._set_vertex_field("label", ids)
        self._set_vertex_field("next_label", ids)

    def iterate(self) -> None:
        self.machine.launch(self._edge_kernel(), self.n_edges)
        self.machine.launch(self._vertex_kernel(), self.n_vertices)

    def labels(self) -> np.ndarray:
        return self._vertex_field("label")

    def checksum(self) -> float:
        lb = self.labels().astype(np.int64)
        return float((lb * (np.arange(self.n_vertices) % 29 + 1)).sum())


@register_workload
class PageRankvEN(_GraphWorkloadVEN):
    """PR-vEN: PageRank, virtual edges and vertices."""

    name = "PR-vEN"
    suite = "GraphChi-vEN"
    description = "PageRank with virtual vertex accessors and apply"
    paper = PaperCharacteristics(
        objects=2254419, types=4, vfuncs=10, vfunc_pki=54.4
    )

    def _make_types(self) -> None:
        wl = self
        tag = mint_tag("prven")

        def get_value(ctx, objs):
            rank = ctx.load_field(objs, wl.Vertex, "rank")
            deg = ctx.load_field(objs, wl.Vertex, "degree")
            ctx.alu(1)
            return (rank / deg.astype(np.float32)).astype(np.float32)

        def vertex_update(ctx, objs):
            V = wl.Vertex
            acc = ctx.load_field(objs, V, "acc")
            ctx.alu(3)
            base = np.float32((1.0 - float(DAMPING)) / wl.n_vertices)
            rank = (base + DAMPING * acc).astype(np.float32)
            ctx.store_field(objs, V, "rank", rank)
            ctx.store_field(objs, V, "acc",
                            np.zeros(len(objs), dtype=np.float32))

        def process(ctx, objs):
            E, CV, V = wl.Edge, wl.ChiVertex, wl.Vertex
            src = ctx.load_field(objs, E, "src")
            dst = ctx.load_field(objs, E, "dst")
            ctx.alu(4)  # index scaling + bounds predicates
            sptr = wl.vertices.ld(ctx, src)
            dptr = wl.vertices.ld(ctx, dst)
            contrib = ctx.vcall(sptr, CV, "get_value")
            ctx.atomic_field(dptr, V, "acc",
                             contrib.astype(np.float32), op="add")

        d = _edge_types(tag, process)
        self.ChiEdge, self.Edge = d["ChiEdge"], d["Edge"]
        v = _vertex_types(
            tag,
            [("rank", "f32"), ("acc", "f32")],
            methods={"update": vertex_update, "get_value": get_value,
                     "set_value": lambda ctx, objs: None},
            virtual=True,
        )
        self.ChiVertex, self.Vertex = v["ChiVertex"], v["Vertex"]

    def _init_vertex_state(self) -> None:
        self._set_vertex_field("rank", np.float32(1.0 / self.n_vertices))
        self._set_vertex_field("acc", np.float32(0.0))

    def iterate(self) -> None:
        self.machine.launch(self._edge_kernel(), self.n_edges)
        self.machine.launch(self._vertex_kernel(), self.n_vertices)

    def ranks(self) -> np.ndarray:
        return self._vertex_field("rank")

    def checksum(self) -> float:
        # weighted digest: sensitive to the rank *distribution* (the
        # plain sum is conserved at ~1.0 and would hide ranking bugs)
        r = self.ranks().astype(np.float64)
        w = np.arange(self.n_vertices) % 23 + 1
        return round(float((r * w).sum()) * 1e6, 1)
